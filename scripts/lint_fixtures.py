#!/usr/bin/env python
"""Lint changed artifact fixtures (the pre-commit hook entry point).

Routes each path to ``repro lint`` by artifact kind — fault-plan JSON
(``*.json`` whose payload has ``node_faults``/``link_faults`` keys),
schedule archives (``*schedule*.npz``/``*sched*.npz``) and trace
archives (every other ``.npz``) — and fails when any file lints with
errors.  Files that are not repro artifacts (other JSON, source code)
are skipped, so the hook can be pointed at a broad file pattern.

Usage::

    python scripts/lint_fixtures.py [--mesh R C] FILE [FILE ...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.grid import Mesh2D  # noqa: E402
from repro.lint import (  # noqa: E402
    EXIT_CLEAN,
    EXIT_ERRORS,
    load_context,
    render_human,
    run_lint,
)

_SCHEDULE_HINTS = ("schedule", "sched")


def _classify(path: Path) -> str | None:
    """Artifact kind of ``path``: 'faults', 'schedule', 'trace' or None."""
    if path.suffix == ".json":
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if isinstance(payload, dict) and (
            "node_faults" in payload or "link_faults" in payload
        ):
            return "faults"
        return None
    if path.suffix == ".npz":
        name = path.name.lower()
        if any(hint in name for hint in _SCHEDULE_HINTS):
            return "schedule"
        return "trace"
    return None


def lint_file(path: Path, topology) -> int:
    kind = _classify(path)
    if kind is None:
        return EXIT_CLEAN
    context, failures = load_context(
        schedule_path=str(path) if kind == "schedule" else None,
        trace_path=str(path) if kind == "trace" else None,
        faults_path=str(path) if kind == "faults" else None,
        topology=topology,
    )
    report = run_lint(context)
    report.prepend(failures)
    if report.diagnostics:
        print(f"== {path} ({kind})")
        print(render_human(report))
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    args = parser.parse_args(argv)
    topology = Mesh2D(*args.mesh)
    worst = EXIT_CLEAN
    for path in args.paths:
        worst = max(worst, lint_file(path, topology))
    # warnings do not block a commit; errors do
    return EXIT_ERRORS if worst >= EXIT_ERRORS else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
