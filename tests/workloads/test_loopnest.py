"""Loop-nest DSL tests."""

import pytest

from repro.workloads import (
    Loop,
    LoopNest,
    lu_workload,
    matrix_data_ids,
    row_wise_owners,
)


def lu_update_nest(n, topo):
    owners = row_wise_owners(n, n, topo)
    ids = matrix_data_ids(n, n)
    return LoopNest(
        name="lu-update-dsl",
        loops=[
            Loop("k", 0, n - 1),
            Loop("i", lambda ix: ix["k"] + 1, n, parallel=True),
            Loop("j", lambda ix: ix["k"] + 1, n, parallel=True),
        ],
        owner=lambda ix: owners[ix["i"], ix["j"]],
        refs=[
            lambda ix: ids[ix["i"], ix["j"]],
            lambda ix: ids[ix["i"], ix["k"]],
            lambda ix: ids[ix["k"], ix["j"]],
        ],
        window_loop="k",
        data_shape=(n, n),
    )


class TestExecution:
    def test_triangular_domain_counts(self, mesh44):
        n = 6
        inst = lu_update_nest(n, mesh44).generate(mesh44, n * n)
        expected = sum(3 * (n - k - 1) ** 2 for k in range(n - 1))
        assert inst.trace.total_references == expected

    def test_window_per_sequential_iteration(self, mesh44):
        n = 6
        inst = lu_update_nest(n, mesh44).generate(mesh44, n * n)
        assert inst.windows.n_windows == n - 1

    def test_matches_handwritten_lu_update_pattern(self, mesh44):
        """The DSL's update-phase tensor equals the handwritten LU's when
        the division refs are added alongside."""
        n = 6
        dsl = lu_update_nest(n, mesh44).generate(mesh44, n * n)
        hand = lu_workload(n, mesh44)
        # compare per-datum totals of the update subset: every handwritten
        # reference not in the division step
        division = sum(2 * (n - k - 1) for k in range(n - 1))
        assert (
            hand.trace.total_references
            == dsl.trace.total_references + division
        )

    def test_parallel_loops_share_a_step(self, mesh44):
        nest = LoopNest(
            name="flat",
            loops=[Loop("i", 0, 5, parallel=True)],
            owner=lambda ix: ix["i"] % 4,
            refs=[lambda ix: ix["i"]],
        )
        inst = nest.generate(mesh44, 5)
        assert inst.trace.n_steps == 1
        assert inst.windows.n_windows == 1

    def test_sequential_loop_advances_steps(self, mesh44):
        nest = LoopNest(
            name="seq",
            loops=[Loop("t", 0, 4)],
            owner=lambda ix: 0,
            refs=[lambda ix: ix["t"]],
        )
        inst = nest.generate(mesh44, 4)
        assert inst.trace.n_steps == 4
        assert inst.trace.steps.tolist() == [0, 1, 2, 3]

    def test_guarded_reference_skipped(self, mesh44):
        nest = LoopNest(
            name="guarded",
            loops=[Loop("i", 0, 6, parallel=True)],
            owner=lambda ix: 0,
            refs=[lambda ix: ix["i"] if ix["i"] % 2 == 0 else None],
        )
        inst = nest.generate(mesh44, 6)
        assert sorted(inst.trace.data.tolist()) == [0, 2, 4]

    def test_counted_reference(self, mesh44):
        nest = LoopNest(
            name="counted",
            loops=[Loop("i", 0, 3, parallel=True)],
            owner=lambda ix: 0,
            refs=[lambda ix: (ix["i"], 5)],
        )
        inst = nest.generate(mesh44, 3)
        assert inst.trace.total_references == 15

    def test_nonlinear_reference_function(self, mesh44):
        """The paper's selling point: arbitrary (non-affine) references."""
        nest = LoopNest(
            name="nonlinear",
            loops=[Loop("t", 0, 8), Loop("i", 0, 4, parallel=True)],
            owner=lambda ix: (ix["i"] * 5 + ix["t"]) % 16,
            refs=[lambda ix: (ix["i"] ** 2 + 3 * ix["t"]) % 20],
            window_loop="t",
        )
        inst = nest.generate(mesh44, 20)
        assert inst.windows.n_windows == 8
        assert inst.trace.total_references == 32

    def test_empty_iteration_space_yields_empty_trace(self, mesh44):
        nest = LoopNest(
            name="empty",
            loops=[Loop("i", 3, 3, parallel=True)],
            owner=lambda ix: 0,
            refs=[lambda ix: 0],
        )
        inst = nest.generate(mesh44, 1)
        assert inst.trace.total_references == 0


class TestSchedulingIntegration:
    def test_dsl_workload_feeds_schedulers(self, mesh44):
        from repro.core import CostModel, evaluate_schedule, gomcds, scds

        n = 8
        inst = lu_update_nest(n, mesh44).generate(mesh44, n * n)
        tensor = inst.reference_tensor()
        model = CostModel(mesh44)
        go = evaluate_schedule(gomcds(tensor, model), tensor, model).total
        sc = evaluate_schedule(scds(tensor, model), tensor, model).total
        assert go <= sc


class TestValidation:
    def test_needs_loops(self, mesh44):
        with pytest.raises(ValueError):
            LoopNest(name="x", loops=[], owner=lambda ix: 0, refs=[])

    def test_duplicate_indices(self):
        with pytest.raises(ValueError):
            LoopNest(
                name="x",
                loops=[Loop("i", 0, 2), Loop("i", 0, 2)],
                owner=lambda ix: 0,
                refs=[],
            )

    def test_unknown_window_loop(self):
        with pytest.raises(ValueError):
            LoopNest(
                name="x",
                loops=[Loop("i", 0, 2)],
                owner=lambda ix: 0,
                refs=[],
                window_loop="z",
            )

    def test_parallel_window_loop_rejected(self):
        with pytest.raises(ValueError):
            LoopNest(
                name="x",
                loops=[Loop("i", 0, 2, parallel=True)],
                owner=lambda ix: 0,
                refs=[],
                window_loop="i",
            )
