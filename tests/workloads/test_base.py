"""WorkloadInstance and base-helper tests."""

import pytest

from repro.trace import windows_by_step_count
from repro.workloads import (
    WorkloadInstance,
    combine_windows,
    matrix_data_ids,
)


def test_matrix_data_ids_row_major():
    ids = matrix_data_ids(3, 4)
    assert ids[0, 0] == 0
    assert ids[0, 3] == 3
    assert ids[2, 3] == 11


def test_with_windows_resegments(mesh44, lu8):
    fine = windows_by_step_count(lu8.trace, 1)
    re = lu8.with_windows(fine)
    assert re.windows.n_windows == lu8.trace.n_steps
    assert re.trace is lu8.trace
    assert re.name == lu8.name


def test_reference_tensor_consistency(lu8):
    tensor = lu8.reference_tensor()
    assert tensor.total_references() == lu8.trace.total_references
    assert tensor.n_windows == lu8.windows.n_windows


def test_data_shape_must_cover_universe(mesh44, lu8):
    with pytest.raises(ValueError):
        WorkloadInstance(
            name="bad",
            trace=lu8.trace,
            windows=lu8.windows,
            data_shape=(7, 7),  # 49 != 64
            topology=mesh44,
        )


def test_topology_must_match_trace(lu8):
    from repro.grid import Mesh2D

    with pytest.raises(ValueError):
        WorkloadInstance(
            name="bad",
            trace=lu8.trace,
            windows=lu8.windows,
            data_shape=(8, 8),
            topology=Mesh2D(2, 2),
        )


def test_combine_windows_unions_boundaries():
    a = windows_by_step_count(6, 2)  # starts 0, 2, 4
    b = windows_by_step_count(4, 4)  # starts 0
    combined = combine_windows(a, b)
    assert combined.n_steps == 10
    assert combined.starts.tolist() == [0, 2, 4, 6]
