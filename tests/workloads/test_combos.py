"""Combined-benchmark (3, 4, 5) tests."""

import pytest

from repro.grid import Mesh2D
from repro.workloads import (
    BENCHMARK_NAMES,
    benchmark,
    code_workload,
    combine,
    lu_workload,
)


def test_combine_concatenates_time(mesh44):
    lu = lu_workload(8, mesh44)
    code = code_workload(8, mesh44)
    combo = combine(lu, code)
    assert combo.trace.n_steps == lu.trace.n_steps + code.trace.n_steps
    assert (
        combo.trace.total_references
        == lu.trace.total_references + code.trace.total_references
    )


def test_combine_window_boundaries_union(mesh44):
    lu = lu_workload(8, mesh44)
    code = code_workload(8, mesh44)
    combo = combine(lu, code)
    starts = set(combo.windows.starts.tolist())
    assert set(lu.windows.starts.tolist()) <= starts
    shifted = {int(s) + lu.trace.n_steps for s in code.windows.starts}
    assert shifted <= starts


def test_combine_rejects_mismatches(mesh44):
    lu = lu_workload(8, mesh44)
    with pytest.raises(ValueError):
        combine(lu, code_workload(16, mesh44))
    with pytest.raises(ValueError):
        combine(lu, code_workload(8, Mesh2D(2, 2)))


def test_benchmark_dispatch(mesh44):
    for number in (1, 2, 3, 4, 5):
        wl = benchmark(number, 8, mesh44)
        assert wl.n_data == 64
        assert wl.name == BENCHMARK_NAMES[number]


def test_benchmark_3_is_lu_plus_code(mesh44):
    b3 = benchmark(3, 8, mesh44)
    lu = lu_workload(8, mesh44)
    code = code_workload(8, mesh44)
    assert (
        b3.trace.total_references
        == lu.trace.total_references + code.trace.total_references
    )


def test_benchmark_5_is_palindromic_in_volume(mesh44):
    b5 = benchmark(5, 8, mesh44)
    code = code_workload(8, mesh44)
    assert b5.trace.total_references == 2 * code.trace.total_references


def test_unknown_benchmark(mesh44):
    with pytest.raises(ValueError):
        benchmark(6, 8, mesh44)
    with pytest.raises(ValueError):
        benchmark(0, 8, mesh44)


def test_benchmarks_deterministic(mesh44):
    import numpy as np

    for number in (3, 5):
        a = benchmark(number, 8, mesh44, seed=7)
        b = benchmark(number, 8, mesh44, seed=7)
        assert np.array_equal(a.trace.counts, b.trace.counts)
