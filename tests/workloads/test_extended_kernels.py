"""Extended-suite kernel tests: FFT, SOR, Floyd-Warshall, bitonic."""

import numpy as np
import pytest

from repro.workloads import (
    EXTENDED_KERNELS,
    bitonic_workload,
    fft_workload,
    floyd_workload,
    sor_workload,
)


class TestFFT:
    def test_stage_count(self, mesh44):
        wl = fft_workload(64, mesh44)
        assert wl.trace.n_steps == 6  # log2(64)
        assert wl.windows.n_windows == 6

    def test_reference_totals(self, mesh44):
        n = 32
        wl = fft_workload(n, mesh44)
        # per stage: n/2 pairs x 2 elements x count 2 = 2n references
        assert wl.trace.total_references == 2 * n * 5

    def test_every_element_touched_every_stage(self, mesh44):
        wl = fft_workload(16, mesh44)
        tensor = wl.reference_tensor()
        assert (tensor.counts.sum(axis=2) > 0).all()

    def test_stage_strides(self, mesh44):
        n = 16
        wl = fft_workload(n, mesh44)
        # at stage s, the owner of i references i and i ^ 2^s: both data of
        # each event pair differ by exactly the stride
        for s in range(4):
            mask = wl.trace.steps == s
            data = np.sort(np.unique(wl.trace.data[mask]))
            assert len(data) == n

    def test_power_of_two_required(self, mesh44):
        with pytest.raises(ValueError):
            fft_workload(24, mesh44)
        with pytest.raises(ValueError):
            fft_workload(1, mesh44)

    def test_late_stages_cost_more_under_row_wise(self, mesh44):
        """The stride-doubling signature: under the block layout, stage
        costs are non-decreasing in the stride."""
        from repro.core import CostModel, evaluate_schedule
        from repro.distrib import baseline_schedule

        wl = fft_workload(64, mesh44)
        tensor = wl.reference_tensor()
        model = CostModel(mesh44)
        schedule = baseline_schedule(wl, "row_wise")
        cost_tensor = model.all_placement_costs(tensor)
        d_idx = np.arange(tensor.n_data)[:, None]
        w_idx = np.arange(tensor.n_windows)[None, :]
        per_window = cost_tensor[d_idx, w_idx, schedule.centers].sum(axis=0)
        assert per_window[0] == 0.0  # neighbours share an owner block
        assert per_window[-1] == per_window.max()


class TestSOR:
    def test_steps_and_windows(self, mesh44):
        wl = sor_workload(8, mesh44, sweeps=3)
        assert wl.trace.n_steps == 6  # red + black per sweep
        assert wl.windows.n_windows == 3

    def test_reference_count(self, mesh44):
        n = 6
        wl = sor_workload(n, mesh44, sweeps=1)
        # every cell updated once; interior cells reference 5, edges 4,
        # corners 3
        interior = (n - 2) ** 2 * 5
        edges = 4 * (n - 2) * 4
        corners = 4 * 3
        assert wl.trace.total_references == interior + edges + corners

    def test_block_layout_is_near_optimal(self, mesh44):
        from repro.core import CostModel, evaluate_schedule, gomcds
        from repro.distrib import baseline_schedule

        wl = sor_workload(16, mesh44)
        tensor = wl.reference_tensor()
        model = CostModel(mesh44)
        block = evaluate_schedule(
            baseline_schedule(wl, "block"), tensor, model
        ).total
        best = evaluate_schedule(gomcds(tensor, model), tensor, model).total
        assert best <= block <= best * 1.1  # static block within 10%

    def test_validation(self, mesh44):
        with pytest.raises(ValueError):
            sor_workload(1, mesh44)
        with pytest.raises(ValueError):
            sor_workload(8, mesh44, sweeps=0)


class TestFloyd:
    def test_one_window_per_k(self, mesh44):
        wl = floyd_workload(8, mesh44)
        assert wl.windows.n_windows == 8

    def test_reference_total(self, mesh44):
        n = 6
        wl = floyd_workload(n, mesh44)
        assert wl.trace.total_references == 3 * n**3

    def test_pivot_row_hot_in_window_k(self, mesh44):
        n = 8
        wl = floyd_workload(n, mesh44)
        tensor = wl.reference_tensor()
        from repro.workloads import matrix_data_ids

        ids = matrix_data_ids(n, n)
        k = 3
        per_datum = tensor.counts[:, k, :].sum(axis=1)
        # D[k, j] is referenced by the whole column j: n refs + own update
        pivot_row_counts = per_datum[ids[k]]
        ordinary = per_datum[ids[0, 1]]  # i=0, j=1 not in row/col k
        assert (pivot_row_counts > ordinary).all()

    def test_uniform_window_weight(self, mesh44):
        wl = floyd_workload(8, mesh44)
        tensor = wl.reference_tensor()
        per_window = tensor.counts.sum(axis=(0, 2))
        assert len(set(per_window.tolist())) == 1

    def test_validation(self, mesh44):
        with pytest.raises(ValueError):
            floyd_workload(1, mesh44)
        with pytest.raises(ValueError):
            floyd_workload(8, mesh44, ks_per_window=0)


class TestBitonic:
    def test_step_count_is_triangular(self, mesh44):
        n = 32  # log n = 5 -> 1+2+3+4+5 = 15 sub-steps
        wl = bitonic_workload(n, mesh44)
        assert wl.trace.n_steps == 15
        assert wl.windows.n_windows == 5  # one window per stage

    def test_reference_total(self, mesh44):
        n = 16
        wl = bitonic_workload(n, mesh44)
        substeps = 1 + 2 + 3 + 4
        assert wl.trace.total_references == substeps * 2 * n

    def test_power_of_two_required(self, mesh44):
        with pytest.raises(ValueError):
            bitonic_workload(12, mesh44)

    def test_every_key_in_every_substep(self, mesh44):
        wl = bitonic_workload(16, mesh44)
        for s in range(wl.trace.n_steps):
            data = np.unique(wl.trace.data[wl.trace.steps == s])
            assert len(data) == 16


class TestRegistry:
    def test_all_registered_kernels_generate(self, mesh44):
        for name, (factory, n) in EXTENDED_KERNELS.items():
            wl = factory(n, mesh44)
            assert wl.name == name
            assert wl.trace.total_references > 0

    def test_extended_table_runs(self):
        from repro.analysis import run_extended_table

        table = run_extended_table(kernels=("fft", "sor"))
        assert len(table.rows) == 2
        for row in table.rows:
            assert row.result_for("GOMCDS").cost <= row.sf_cost
