"""Synthetic workload generator tests."""

import numpy as np
import pytest

from repro.trace import build_reference_tensor
from repro.workloads import (
    drifting_hotspot_workload,
    hotspot_workload,
    trace_from_counts,
    uniform_random_workload,
)


def test_uniform_shapes(mesh44):
    wl = uniform_random_workload(mesh44, n_data=10, n_steps=8, refs_per_step=16)
    assert wl.trace.n_steps == 8
    assert wl.trace.total_references == 8 * 16
    assert wl.n_data == 10


def test_uniform_deterministic(mesh44):
    a = uniform_random_workload(mesh44, n_data=10, seed=4)
    b = uniform_random_workload(mesh44, n_data=10, seed=4)
    assert np.array_equal(a.trace.counts, b.trace.counts)


def test_hotspot_concentrates_references(mesh44):
    wl = hotspot_workload(
        mesh44, n_data=10, hot_proc=5, hot_fraction=0.9, refs_per_step=64, seed=1
    )
    share = (wl.trace.counts[wl.trace.procs == 5]).sum() / wl.trace.total_references
    assert share > 0.75


def test_hotspot_fraction_validated(mesh44):
    with pytest.raises(ValueError):
        hotspot_workload(mesh44, n_data=4, hot_fraction=1.5)


def test_drift_moves_hot_processor(mesh44):
    wl = drifting_hotspot_workload(
        mesh44, n_data=10, n_steps=16, hot_fraction=0.9, refs_per_step=64, seed=2
    )
    tensor = wl.reference_tensor()
    hot_per_window = tensor.counts.sum(axis=0).argmax(axis=1)
    assert len(set(hot_per_window.tolist())) > 1  # the locus really moves


class TestTraceFromCounts:
    def test_roundtrip(self, mesh23):
        counts = np.zeros((3, 2, 6), dtype=np.int64)
        counts[0, 0, 1] = 2
        counts[1, 1, 5] = 7
        counts[2, 0, 0] = 1
        trace, windows = trace_from_counts(counts, mesh23)
        tensor = build_reference_tensor(trace, windows)
        assert np.array_equal(tensor.counts, counts)

    def test_rejects_mismatched_topology(self, mesh44):
        counts = np.zeros((1, 1, 6), dtype=np.int64)
        with pytest.raises(ValueError):
            trace_from_counts(counts, mesh44)
