"""CODE-substitute workload tests."""

import numpy as np
import pytest

from repro.trace import reverse_trace
from repro.workloads import code_workload, reversed_code_workload


def test_two_phases_of_n_steps(mesh44):
    wl = code_workload(8, mesh44)
    assert wl.trace.n_steps == 16


def test_deterministic_given_seed(mesh44):
    a = code_workload(8, mesh44, seed=5)
    b = code_workload(8, mesh44, seed=5)
    assert np.array_equal(a.trace.counts, b.trace.counts)
    assert np.array_equal(a.trace.procs, b.trace.procs)


def test_seed_changes_noise_only_slightly(mesh44):
    a = code_workload(8, mesh44, seed=1)
    b = code_workload(8, mesh44, seed=2)
    # the deterministic wavefront dominates: totals differ by at most the
    # noise budget (1 ref/step x 16 steps each way)
    assert abs(a.trace.total_references - b.trace.total_references) <= 32


def test_zero_noise_is_fully_deterministic(mesh44):
    a = code_workload(8, mesh44, noise=0, seed=1)
    b = code_workload(8, mesh44, noise=0, seed=999)
    assert np.array_equal(a.trace.counts, b.trace.counts)


def test_phase_boundary_starts_a_window(mesh44):
    wl = code_workload(8, mesh44)
    assert 8 in wl.windows.starts.tolist()


def test_intensity_scales_references(mesh44):
    light = code_workload(8, mesh44, intensity=1, noise=0)
    heavy = code_workload(8, mesh44, intensity=4, noise=0)
    assert heavy.trace.total_references > light.trace.total_references


def test_window_locality_is_tight(mesh44):
    """Within a window, a referenced datum's processors are clustered."""
    wl = code_workload(16, mesh44, noise=0)
    tensor = wl.reference_tensor()
    dist = mesh44.distance_matrix()
    spreads = []
    for d in range(tensor.n_data):
        for w in range(tensor.n_windows):
            procs = np.nonzero(tensor.counts[d, w])[0]
            if len(procs) > 1:
                spreads.append(dist[np.ix_(procs, procs)].max())
    # a wavefront row maps to very few owners: most (datum, window) pairs
    # have a single referencing processor (spread list stays empty) and any
    # multi-processor pair stays well below the 6-hop mesh diameter
    assert np.mean(spreads) < 3.0 if spreads else True


def test_reversed_code_mirrors_steps(mesh44):
    fwd = code_workload(8, mesh44, seed=5)
    rev = reversed_code_workload(8, mesh44, seed=5)
    assert rev.trace.n_steps == fwd.trace.n_steps
    manual = reverse_trace(fwd.trace)
    assert np.array_equal(np.sort(rev.trace.data), np.sort(manual.data))
    assert rev.trace.total_references == fwd.trace.total_references


def test_reversed_windows_cover_horizon(mesh44):
    rev = reversed_code_workload(8, mesh44)
    assert rev.windows.n_steps == rev.trace.n_steps
    assert rev.windows.sizes().sum() == rev.trace.n_steps


def test_parameter_validation(mesh44):
    with pytest.raises(ValueError):
        code_workload(1, mesh44)
    with pytest.raises(ValueError):
        code_workload(8, mesh44, intensity=0)
    with pytest.raises(ValueError):
        code_workload(8, mesh44, noise=-1)
