"""LU workload (benchmark 1) tests."""

import numpy as np
import pytest

from repro.workloads import lu_workload, matrix_data_ids, row_wise_owners


def test_window_per_outer_iteration(mesh44):
    wl = lu_workload(8, mesh44)
    assert wl.windows.n_windows == 7  # k = 0 .. n-2
    assert wl.trace.n_steps == 14  # two parallel steps per k


def test_reference_count_formula(mesh44):
    n = 6
    wl = lu_workload(n, mesh44)
    # division: 2 refs per row below pivot; update: 3 refs per cell
    expected = sum(2 * (n - k - 1) + 3 * (n - k - 1) ** 2 for k in range(n - 1))
    assert wl.trace.total_references == expected


def test_pivot_referenced_by_column_owners(mesh44):
    n = 4
    wl = lu_workload(n, mesh44)
    ids = matrix_data_ids(n, n)
    owners = row_wise_owners(n, n, mesh44)
    # in step 0 (k=0 division), the pivot A[0,0] is referenced by the
    # owners of column 0 below the pivot
    mask = (wl.trace.steps == 0) & (wl.trace.data == ids[0, 0])
    procs = set(wl.trace.procs[mask].tolist())
    assert procs == {int(owners[i, 0]) for i in range(1, n)}


def test_trailing_submatrix_shrinks(mesh44):
    wl = lu_workload(8, mesh44)
    tensor = wl.reference_tensor()
    per_window = tensor.counts.sum(axis=(0, 2))
    assert (np.diff(per_window) < 0).all()  # strictly fewer refs over time


def test_last_window_touches_only_corner(mesh44):
    n = 4
    wl = lu_workload(n, mesh44)
    tensor = wl.reference_tensor()
    ids = matrix_data_ids(n, n)
    last = tensor.counts[:, -1, :].sum(axis=1)
    touched = set(np.nonzero(last)[0].tolist())
    # k = n-2: division touches (n-1, n-2) and pivot (n-2, n-2);
    # update touches (n-1, n-1), (n-1, n-2), (n-2, n-1)
    expected = {
        int(ids[n - 1, n - 2]),
        int(ids[n - 2, n - 2]),
        int(ids[n - 1, n - 1]),
        int(ids[n - 2, n - 1]),
    }
    assert touched == expected


def test_data_shape_and_universe(mesh44):
    wl = lu_workload(8, mesh44)
    assert wl.data_shape == (8, 8)
    assert wl.n_data == 64


def test_partition_scheme_changes_trace(mesh44):
    a = lu_workload(8, mesh44, scheme="row_wise")
    b = lu_workload(8, mesh44, scheme="block")
    assert not np.array_equal(a.trace.procs, b.trace.procs)
    # but the referenced data are identical
    assert a.trace.total_references == b.trace.total_references


def test_deterministic(mesh44):
    a, b = lu_workload(8, mesh44), lu_workload(8, mesh44)
    assert np.array_equal(a.trace.counts, b.trace.counts)
    assert np.array_equal(a.trace.procs, b.trace.procs)


def test_too_small_rejected(mesh44):
    with pytest.raises(ValueError):
        lu_workload(1, mesh44)
