"""Iteration-partition map tests."""

import numpy as np
import pytest

from repro.grid import Mesh1D
from repro.workloads import (
    block_cyclic_owners,
    block_owners,
    column_wise_owners,
    owner_map,
    row_wise_owners,
)


class TestRowWise:
    def test_contiguous_blocks(self, mesh44):
        owners = row_wise_owners(8, 8, mesh44)
        # 64 elements over 16 procs: 4 consecutive elements each
        flat = owners.reshape(-1)
        assert flat[0] == 0 and flat[3] == 0 and flat[4] == 1
        assert flat[-1] == 15

    def test_every_processor_used_when_divisible(self, mesh44):
        owners = row_wise_owners(8, 8, mesh44)
        assert set(owners.reshape(-1).tolist()) == set(range(16))

    def test_balanced(self, mesh44):
        owners = row_wise_owners(8, 8, mesh44)
        counts = np.bincount(owners.reshape(-1), minlength=16)
        assert counts.max() - counts.min() == 0

    def test_non_divisible_sizes(self, mesh23):
        owners = row_wise_owners(3, 3, mesh23)
        assert owners.min() >= 0 and owners.max() < 6
        counts = np.bincount(owners.reshape(-1), minlength=6)
        assert counts.max() <= 2  # ceil(9/6)


class TestColumnWise:
    def test_is_transpose_of_row_wise(self, mesh44):
        assert np.array_equal(
            column_wise_owners(8, 8, mesh44), row_wise_owners(8, 8, mesh44).T
        )

    def test_first_column_on_first_procs(self, mesh44):
        owners = column_wise_owners(8, 8, mesh44)
        assert set(owners[:, 0].tolist()) == {0, 1}


class TestBlock:
    def test_tiles_map_to_mesh_coords(self, mesh44):
        owners = block_owners(8, 8, mesh44)
        # top-left 2x2 tile -> processor (0,0); bottom-right -> (3,3)
        assert owners[0, 0] == 0
        assert owners[1, 1] == 0
        assert owners[7, 7] == 15
        assert owners[0, 7] == 3

    def test_balance(self, mesh44):
        owners = block_owners(8, 8, mesh44)
        counts = np.bincount(owners.reshape(-1), minlength=16)
        assert (counts == 4).all()

    def test_requires_2d_topology(self):
        with pytest.raises(ValueError):
            block_owners(4, 4, Mesh1D(4))


class TestBlockCyclic:
    def test_round_robin_blocks(self, mesh44):
        owners = block_cyclic_owners(8, 8, mesh44, block=1)
        assert owners[0, 0] == 0
        assert owners[0, 4] == 0  # wraps after 4 columns
        assert owners[4, 0] == 0  # wraps after 4 rows
        assert owners[1, 1] == 5

    def test_block_size_two(self, mesh44):
        owners = block_cyclic_owners(8, 8, mesh44, block=2)
        assert owners[0, 0] == owners[1, 1] == 0
        assert owners[0, 2] == 1

    def test_bad_block(self, mesh44):
        with pytest.raises(ValueError):
            block_cyclic_owners(4, 4, mesh44, block=0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            block_cyclic_owners(4, 4, Mesh1D(4))


class TestDispatch:
    def test_owner_map_names(self, mesh44):
        for scheme in ("row_wise", "column_wise", "block", "block_cyclic"):
            owners = owner_map(scheme, 8, 8, mesh44)
            assert owners.shape == (8, 8)

    def test_unknown_scheme(self, mesh44):
        with pytest.raises(KeyError):
            owner_map("diagonal", 8, 8, mesh44)

    def test_bad_extents(self, mesh44):
        with pytest.raises(ValueError):
            row_wise_owners(0, 8, mesh44)
