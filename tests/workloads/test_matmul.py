"""Matrix-square workload (benchmark 2) tests."""

import pytest

from repro.workloads import matmul_workload, matrix_data_ids, row_wise_owners


def test_total_references(mesh44):
    n = 8
    wl = matmul_workload(n, mesh44)
    # each of n steps: n^2 iterations x 2 references
    assert wl.trace.total_references == 2 * n**3


def test_one_step_per_k(mesh44):
    wl = matmul_workload(8, mesh44)
    assert wl.trace.n_steps == 8


def test_default_window_count(mesh44):
    assert matmul_workload(16, mesh44).windows.n_windows == 8
    assert matmul_workload(8, mesh44).windows.n_windows == 8


def test_custom_window_size(mesh44):
    wl = matmul_workload(8, mesh44, ks_per_window=4)
    assert wl.windows.n_windows == 2


def test_step_k_touches_row_and_column_k(mesh44):
    n = 4
    wl = matmul_workload(n, mesh44)
    ids = matrix_data_ids(n, n)
    k = 2
    touched = set(wl.trace.data[wl.trace.steps == k].tolist())
    expected = {int(ids[i, k]) for i in range(n)} | {int(ids[k, j]) for j in range(n)}
    assert touched == expected


def test_reference_counts_per_step(mesh44):
    # at step k, A[i,k] is referenced by all n owners of row i
    n = 4
    wl = matmul_workload(n, mesh44)
    ids = matrix_data_ids(n, n)
    owners = row_wise_owners(n, n, mesh44)
    k, i = 1, 2
    mask = (wl.trace.steps == k) & (wl.trace.data == ids[i, k])
    total = int(wl.trace.counts[mask].sum())
    # n references from row i owners (+ n more if i == k, not here)
    assert total == n
    assert set(wl.trace.procs[mask].tolist()) == set(owners[i].tolist())


def test_symmetric_load_across_steps(mesh44):
    wl = matmul_workload(8, mesh44)
    tensor = wl.reference_tensor()
    per_window = tensor.counts.sum(axis=(0, 2))
    assert len(set(per_window.tolist())) == 1  # every window equally heavy


def test_too_small_rejected(mesh44):
    with pytest.raises(ValueError):
        matmul_workload(1, mesh44)
