"""Report schema versioning: every ``to_dict`` stamps ``schema_version``
and every ``from_dict`` loader checks it before reconstructing."""

import pytest

from repro import schedule
from repro.core.evaluate import CostBreakdown, evaluate_schedule
from repro.faults import FaultPlan
from repro.faults.online import RecoveryPolicy, RecoveryReport, replay_with_recovery
from repro.lint import LintContext, LintReport, run_lint
from repro.schema import SCHEMA_VERSION, SchemaError, check_schema
from repro.sim import SimReport, replay_schedule
from repro.verify import CertifyReport, certify_schedule


@pytest.fixture
def solved(lu8, lu8_tensor, model44):
    sched = schedule(lu8_tensor, model44, certify=True)
    return lu8, lu8_tensor, model44, sched


# --- check_schema itself ----------------------------------------------------


def test_check_schema_accepts_current_version():
    payload = {"kind": "cost_breakdown", "schema_version": SCHEMA_VERSION}
    assert check_schema(payload, "cost_breakdown") == SCHEMA_VERSION


def test_check_schema_rejects_non_mapping():
    with pytest.raises(SchemaError, match="mapping"):
        check_schema([1, 2], "cost_breakdown")


def test_check_schema_rejects_wrong_kind():
    payload = {"kind": "sim_report", "schema_version": SCHEMA_VERSION}
    with pytest.raises(SchemaError, match="cost_breakdown"):
        check_schema(payload, "cost_breakdown")


def test_check_schema_rejects_missing_version():
    with pytest.raises(SchemaError, match="schema_version"):
        check_schema({"kind": "cost_breakdown"}, "cost_breakdown")


@pytest.mark.parametrize("bad", [0, -1, "1", 1.5, True])
def test_check_schema_rejects_malformed_version(bad):
    payload = {"kind": "cost_breakdown", "schema_version": bad}
    with pytest.raises(SchemaError):
        check_schema(payload, "cost_breakdown")


def test_check_schema_rejects_newer_version():
    payload = {
        "kind": "cost_breakdown",
        "schema_version": SCHEMA_VERSION + 1,
    }
    with pytest.raises(SchemaError, match="only understands"):
        check_schema(payload, "cost_breakdown")


# --- per-report round-trips -------------------------------------------------


def test_cost_breakdown_roundtrip(solved):
    _, tensor, model, sched = solved
    breakdown = evaluate_schedule(sched, tensor, model)
    payload = breakdown.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    clone = CostBreakdown.from_dict(payload)
    assert clone.total == breakdown.total
    assert clone.reference_cost == breakdown.reference_cost
    assert clone.movement_cost == breakdown.movement_cost


def test_sim_report_roundtrip(solved):
    lu8, tensor, model, sched = solved
    report = replay_schedule(
        lu8.trace, sched, model, track_links=True
    )
    payload = report.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    clone = SimReport.from_dict(payload)
    assert clone.to_dict() == payload


def test_lint_report_roundtrip(solved):
    _, _, model, sched = solved
    report = run_lint(LintContext(schedule=sched, model=model))
    payload = report.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    clone = LintReport.from_dict(payload)
    assert clone.to_dict() == payload


def test_certify_report_roundtrip(solved):
    lu8, tensor, model, sched = solved
    report = certify_schedule(sched, lu8.trace, model, tensor=tensor)
    payload = report.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    clone = CertifyReport.from_dict(payload)
    assert clone.to_dict() == payload


def test_recovery_report_roundtrip(solved):
    lu8, tensor, model, sched = solved
    report = replay_with_recovery(
        lu8.trace, sched, model, FaultPlan(), tensor=tensor,
        policy=RecoveryPolicy(checkpoint_interval=2),
    )
    payload = report.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    clone = RecoveryReport.from_dict(payload)
    assert clone.to_dict() == payload


@pytest.mark.parametrize(
    ("loader", "kind"),
    [
        (CostBreakdown.from_dict, "cost_breakdown"),
        (SimReport.from_dict, "sim_report"),
        (LintReport.from_dict, "lint_report"),
        (CertifyReport.from_dict, "certify-report"),
        (RecoveryReport.from_dict, "recovery_report"),
    ],
)
def test_loaders_reject_future_payloads(loader, kind):
    with pytest.raises(SchemaError, match="only understands"):
        loader({"kind": kind, "schema_version": SCHEMA_VERSION + 1})


def test_loaders_recompute_derived_fields(solved):
    """A tampered summary block cannot smuggle in wrong counts."""
    _, _, model, sched = solved
    report = run_lint(LintContext(schedule=sched, model=model))
    payload = report.to_dict()
    payload["summary"]["errors"] = 999
    clone = LintReport.from_dict(payload)
    assert clone.n_errors == report.n_errors
