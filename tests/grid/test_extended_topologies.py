"""Mesh3D and WeightedMesh2D tests."""

import numpy as np
import pytest

from repro.core import CostModel, gomcds, evaluate_schedule, scds
from repro.grid import Mesh2D, Mesh3D, WeightedMesh2D, XYRouter


class TestMesh3D:
    def test_shape_and_count(self):
        topo = Mesh3D(2, 3, 4)
        assert topo.n_procs == 24
        assert topo.shape == (2, 3, 4)

    def test_distance(self):
        topo = Mesh3D(2, 2, 2)
        assert topo.distance(topo.pid(0, 0, 0), topo.pid(1, 1, 1)) == 3
        assert topo.distance(topo.pid(1, 0, 1), topo.pid(1, 0, 1)) == 0

    def test_neighbors_interior(self):
        topo = Mesh3D(3, 3, 3)
        center = topo.pid(1, 1, 1)
        assert len(topo.neighbors(center)) == 6

    def test_router_traverses_all_axes(self):
        topo = Mesh3D(2, 2, 2)
        router = XYRouter(topo)
        path = router.route(topo.pid(0, 0, 0), topo.pid(1, 1, 1))
        assert len(path) - 1 == 3
        dist = topo.distance_matrix()
        for a, b in zip(path[:-1], path[1:]):
            assert dist[a, b] == 1

    def test_schedulers_run_on_3d(self):
        from repro.trace import build_reference_tensor
        from repro.workloads import trace_from_counts

        rng = np.random.default_rng(71)
        topo = Mesh3D(2, 2, 2)
        counts = rng.integers(0, 3, size=(6, 3, 8))
        trace, windows = trace_from_counts(counts, topo)
        tensor = build_reference_tensor(trace, windows)
        model = CostModel(topo)
        go = evaluate_schedule(gomcds(tensor, model), tensor, model).total
        sc = evaluate_schedule(scds(tensor, model), tensor, model).total
        assert go <= sc

    def test_validation(self):
        with pytest.raises(ValueError):
            Mesh3D(0, 2, 2)


class TestWeightedMesh2D:
    def test_weighted_distance(self):
        topo = WeightedMesh2D(3, 3, row_weight=3, col_weight=1)
        a, b = topo.pid(0, 0), topo.pid(2, 2)
        assert topo.distance(a, b) == 3 * 2 + 1 * 2

    def test_unit_weights_match_plain_mesh(self):
        weighted = WeightedMesh2D(3, 4)
        plain = Mesh2D(3, 4)
        assert np.array_equal(weighted.distance_matrix(), plain.distance_matrix())

    def test_neighbors_are_physical_adjacency(self):
        topo = WeightedMesh2D(3, 3, row_weight=5, col_weight=1)
        assert len(topo.neighbors(topo.pid(1, 1))) == 4

    def test_scheduler_prefers_cheap_axis(self):
        """With expensive vertical wires, the optimal center of a
        two-point demand moves along the cheap axis."""
        from repro.trace import build_reference_tensor
        from repro.workloads import trace_from_counts

        topo = WeightedMesh2D(3, 3, row_weight=10, col_weight=1)
        counts = np.zeros((1, 1, 9), dtype=np.int64)
        counts[0, 0, topo.pid(0, 0)] = 1
        counts[0, 0, topo.pid(2, 0)] = 1
        counts[0, 0, topo.pid(0, 2)] = 3
        trace, windows = trace_from_counts(counts, topo)
        tensor = build_reference_tensor(trace, windows)
        schedule = scds(tensor, CostModel(topo))
        # heavy weighting of rows pins the center onto row 0
        assert topo.coords(int(schedule.centers[0, 0]))[0] == 0

    def test_router_paths_still_mesh_links(self):
        topo = WeightedMesh2D(3, 3, row_weight=7, col_weight=2)
        router = XYRouter(topo)
        path = router.route(topo.pid(0, 0), topo.pid(2, 2))
        assert len(path) - 1 == 4  # physical hops, not weighted distance

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            WeightedMesh2D(2, 2, row_weight=0)
        with pytest.raises(ValueError):
            WeightedMesh2D(2, 2, col_weight=-1)
