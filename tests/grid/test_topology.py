"""Topology unit tests: ids, coordinates, metrics, neighbors."""

import numpy as np
import pytest

from repro.grid import Mesh2D, Torus2D


class TestMesh2D:
    def test_n_procs(self):
        assert Mesh2D(4, 4).n_procs == 16
        assert Mesh2D(2, 3).n_procs == 6
        assert len(Mesh2D(3, 5)) == 15

    def test_pid_coords_roundtrip(self, mesh44):
        for pid in mesh44.iter_pids():
            assert mesh44.pid(*mesh44.coords(pid)) == pid

    def test_row_major_layout(self, mesh44):
        assert mesh44.pid(0, 0) == 0
        assert mesh44.pid(0, 3) == 3
        assert mesh44.pid(1, 0) == 4
        assert mesh44.coords(7) == (1, 3)

    def test_manhattan_distance(self, mesh44):
        assert mesh44.distance(mesh44.pid(0, 0), mesh44.pid(3, 3)) == 6
        assert mesh44.distance(mesh44.pid(1, 2), mesh44.pid(1, 2)) == 0
        assert mesh44.distance(mesh44.pid(2, 0), mesh44.pid(0, 1)) == 3

    def test_distance_matrix_symmetric_zero_diag(self, mesh44):
        dist = mesh44.distance_matrix()
        assert dist.shape == (16, 16)
        assert np.array_equal(dist, dist.T)
        assert np.all(np.diag(dist) == 0)
        # off-diagonal entries are positive
        off = dist[~np.eye(16, dtype=bool)]
        assert off.min() >= 1

    def test_triangle_inequality(self, mesh23):
        dist = mesh23.distance_matrix()
        n = mesh23.n_procs
        for a in range(n):
            for b in range(n):
                for c in range(n):
                    assert dist[a, c] <= dist[a, b] + dist[b, c]

    def test_neighbors_interior_and_corner(self, mesh44):
        corner = mesh44.pid(0, 0)
        assert sorted(mesh44.neighbors(corner)) == [mesh44.pid(0, 1), mesh44.pid(1, 0)]
        interior = mesh44.pid(1, 1)
        assert len(mesh44.neighbors(interior)) == 4

    def test_all_coords_matches_coords(self, mesh23):
        coords = mesh23.all_coords()
        for pid in mesh23.iter_pids():
            assert tuple(coords[pid]) == mesh23.coords(pid)

    def test_invalid_extents(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 4)
        with pytest.raises(ValueError):
            Mesh2D(4, -1)

    def test_pid_bounds_checked(self, mesh44):
        with pytest.raises(ValueError):
            mesh44.coords(16)
        with pytest.raises(ValueError):
            mesh44.pid(4, 0)
        with pytest.raises(ValueError):
            mesh44.pid(0, 0, 0)
        with pytest.raises(ValueError):
            mesh44.distance(0, 99)


class TestMesh1D:
    def test_distance_is_absolute_difference(self, line8):
        dist = line8.distance_matrix()
        assert dist[0, 7] == 7
        assert dist[3, 5] == 2

    def test_neighbors_are_adjacent(self, line8):
        assert line8.neighbors(0) == [1]
        assert line8.neighbors(4) == [3, 5]

    def test_shape(self, line8):
        assert line8.shape == (8,)
        assert line8.n_procs == 8


class TestTorus2D:
    def test_wraparound_distance(self, torus44):
        # opposite corners are 2 hops apart on a 4x4 torus (1 wrap each axis)
        assert torus44.distance(torus44.pid(0, 0), torus44.pid(3, 3)) == 2
        assert torus44.distance(torus44.pid(0, 0), torus44.pid(2, 2)) == 4

    def test_torus_never_longer_than_mesh(self):
        mesh, torus = Mesh2D(3, 5), Torus2D(3, 5)
        assert np.all(torus.distance_matrix() <= mesh.distance_matrix())

    def test_every_node_has_four_neighbors(self, torus44):
        for pid in torus44.iter_pids():
            assert len(torus44.neighbors(pid)) == 4

    def test_small_torus_neighbor_dedup(self):
        # On a 2-wide torus both directions reach the same node: distance 1.
        t = Torus2D(2, 2)
        assert len(t.neighbors(0)) == 2
