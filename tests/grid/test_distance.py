"""Distance-cache unit tests."""

import numpy as np
import pytest

from repro.grid import (
    Mesh2D,
    cached_distance_matrix,
    eccentricity,
    pairwise_distances,
)


def test_cache_returns_same_object(mesh44):
    first = cached_distance_matrix(mesh44)
    second = cached_distance_matrix(mesh44)
    assert first is second


def test_equal_topologies_share_cache_entry():
    assert cached_distance_matrix(Mesh2D(3, 3)) is cached_distance_matrix(Mesh2D(3, 3))


def test_cached_matrix_is_readonly(mesh44):
    dist = cached_distance_matrix(mesh44)
    with pytest.raises(ValueError):
        dist[0, 0] = 99


def test_matches_topology_matrix(mesh23):
    assert np.array_equal(cached_distance_matrix(mesh23), mesh23.distance_matrix())


def test_pairwise_distances_elementwise(mesh44):
    src = np.array([0, 5, 15])
    dst = np.array([15, 5, 0])
    out = pairwise_distances(mesh44, src, dst)
    assert out.tolist() == [6, 0, 6]


def test_pairwise_distances_broadcast(mesh44):
    out = pairwise_distances(mesh44, np.array([[0], [15]]), np.arange(16))
    assert out.shape == (2, 16)
    assert out[0, 0] == 0 and out[1, 15] == 0


def test_eccentricity_corner_vs_center(mesh44):
    assert eccentricity(mesh44, mesh44.pid(0, 0)) == 6
    assert eccentricity(mesh44, mesh44.pid(1, 1)) == 4
