"""x-y router unit tests."""

import pytest

from repro.grid import Mesh1D, Torus2D, XYRouter


@pytest.fixture
def router(mesh44):
    return XYRouter(mesh44)


def test_route_endpoints_and_length(router, mesh44):
    src, dst = mesh44.pid(0, 0), mesh44.pid(3, 3)
    path = router.route(src, dst)
    assert path[0] == src and path[-1] == dst
    assert len(path) == mesh44.distance(src, dst) + 1


def test_route_to_self_is_trivial(router):
    assert router.route(5, 5) == [5]
    assert router.links(5, 5) == []
    assert router.hop_count(5, 5) == 0


def test_x_before_y_order(router, mesh44):
    # From (0,0) to (2,3): fix the column first (x axis), then the row.
    path = [mesh44.coords(p) for p in router.route(mesh44.pid(0, 0), mesh44.pid(2, 3))]
    assert path == [(0, 0), (0, 1), (0, 2), (0, 3), (1, 3), (2, 3)]


def test_all_hops_are_adjacent(router, mesh44):
    for src in range(0, 16, 5):
        for dst in range(16):
            for a, b in router.links(src, dst):
                assert mesh44.distance(a, b) == 1


def test_hop_count_equals_metric_everywhere(router, mesh44):
    dist = mesh44.distance_matrix()
    for src in range(16):
        for dst in range(16):
            assert router.hop_count(src, dst) == dist[src, dst]


def test_links_count_matches_distance(router, mesh44):
    src, dst = mesh44.pid(1, 0), mesh44.pid(3, 2)
    assert len(router.links(src, dst)) == mesh44.distance(src, dst)


def test_1d_routing():
    line = Mesh1D(6)
    router = XYRouter(line)
    assert router.route(1, 4) == [1, 2, 3, 4]
    assert router.route(4, 1) == [4, 3, 2, 1]


def test_torus_routes_through_wraparound():
    torus = Torus2D(4, 4)
    router = XYRouter(torus)
    # (0,0) -> (0,3) wraps west: one hop.
    path = router.route(torus.pid(0, 0), torus.pid(0, 3))
    assert len(path) - 1 == torus.distance(torus.pid(0, 0), torus.pid(0, 3)) == 1


def test_torus_hop_count_equals_metric():
    torus = Torus2D(3, 4)
    router = XYRouter(torus)
    dist = torus.distance_matrix()
    for src in range(torus.n_procs):
        for dst in range(torus.n_procs):
            assert router.hop_count(src, dst) == dist[src, dst]


def test_rejects_unknown_topology():
    class Weird:
        pass

    with pytest.raises(TypeError):
        XYRouter(Weird())


def test_rejects_bad_pids(router):
    with pytest.raises(ValueError):
        router.route(0, 99)


class TestLinkKeys:
    def test_coordinate_form_with_shape(self):
        from repro.grid import link_key, parse_link_key

        assert link_key((1, 2), (4, 4)) == "0,1->0,2"
        assert parse_link_key("0,1->0,2", (4, 4)) == (1, 2)

    def test_pid_form_without_shape(self):
        from repro.grid import link_key, parse_link_key

        assert link_key((3, 7)) == "3->7"
        assert parse_link_key("3->7") == (3, 7)

    def test_round_trip_all_mesh_links(self, mesh44):
        from repro.grid import link_key, mesh_links, parse_link_key

        shape = tuple(mesh44.shape)
        for link in mesh_links(mesh44):
            assert parse_link_key(link_key(link, shape), shape) == link

    def test_malformed_keys_rejected(self):
        from repro.grid import parse_link_key

        for bad in ("nope", "1,2", "1,2->", "a,b->c,d"):
            with pytest.raises(ValueError, match="malformed link key"):
                parse_link_key(bad, (4, 4))
