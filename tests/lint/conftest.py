"""Seeded-violation artifact fixtures for the lint suite.

Each fixture writes a deliberately broken artifact to disk, exercising
the full load-then-lint path the CLI uses: a schedule whose centers
leave the array (SCH001), a schedule that overfills a memory (SCH002),
and a fault plan severing a wire the mesh does not have (FLT003).
"""

import numpy as np
import pytest

from repro.core import Schedule
from repro.faults import FaultPlan, LinkFault
from repro.trace import save_schedule, windows_by_step_count


@pytest.fixture
def windows4():
    return windows_by_step_count(8, 2)


@pytest.fixture
def residency_npz(tmp_path, windows4):
    """Schedule archive whose datum 1 sits on pid 20 of a 16-node array."""
    centers = np.full((3, 4), 5, dtype=np.int64)
    centers[1, 2] = 20
    path = tmp_path / "residency.npz"
    save_schedule(path, Schedule(centers=centers, windows=windows4))
    return path


@pytest.fixture
def capacity_npz(tmp_path, windows4):
    """Schedule archive stacking five data on one processor every window."""
    centers = np.zeros((5, 4), dtype=np.int64)
    path = tmp_path / "capacity.npz"
    save_schedule(path, Schedule(centers=centers, windows=windows4))
    return path


@pytest.fixture
def badplan_json(tmp_path):
    """Fault plan severing the non-existent 0 -> 5 wire of a 4x4 mesh."""
    path = tmp_path / "badplan.json"
    FaultPlan(link_faults=(LinkFault(src=0, dst=5),)).save_json(path)
    return path
