"""Engine, registry, report and renderer behavior."""

import json

import numpy as np
import pytest

from repro.core import Schedule
from repro.diagnostics import ALL_CODES, Diagnostic, Severity
from repro.lint import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    LintContext,
    LintReport,
    RULES,
    SARIF_SCHEMA_URI,
    render_human,
    render_json,
    render_sarif,
    resolve_codes,
    run_lint,
    workload_context,
)
from repro.lint.engine import MAX_DIAGNOSTICS_PER_RULE
from repro.trace import windows_by_step_count


def bad_schedule(n_bad=1):
    """3 data x 4 windows on a 16-node mesh; n_bad centers out of range."""
    centers = np.full((3, 4), 2, dtype=np.int64)
    flat = centers.ravel()
    flat[:n_bad] = 99
    return Schedule(
        centers=flat.reshape(3, 4), windows=windows_by_step_count(8, 2)
    )


def test_registry_covers_every_code():
    assert set(RULES) == set(ALL_CODES)
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.title
        assert rule.description
        assert rule.requires


def test_resolve_codes_expands_prefixes():
    assert set(resolve_codes(["SCH"])) == {c for c in RULES if c.startswith("SCH")}
    assert resolve_codes(["FLT003"]) == ["FLT003"]
    with pytest.raises(ValueError, match="unknown"):
        resolve_codes(["XYZ999"])


def test_empty_context_runs_nothing():
    report = run_lint(LintContext())
    assert report.diagnostics == []
    assert report.rules_run == []
    assert set(report.rules_skipped) == set(RULES)
    assert report.exit_code == EXIT_CLEAN


def test_clean_workload_lints_clean(mesh44):
    report = run_lint(workload_context(1, 8, mesh44))
    assert report.exit_code == EXIT_CLEAN
    assert report.diagnostics == []
    assert "SCH001" in report.rules_run
    assert "THY001" in report.rules_run


def test_residency_violation_gates(mesh44):
    report = run_lint(LintContext(schedule=bad_schedule(), topology=mesh44))
    assert report.exit_code == EXIT_ERRORS
    (diag,) = report.by_code("SCH001")
    assert diag.severity == Severity.ERROR
    assert diag.datum == 0 and diag.window == 0
    assert "16-node array" in diag.message


def test_select_and_ignore(mesh44):
    context = LintContext(schedule=bad_schedule(), topology=mesh44)
    only_sch003 = run_lint(context, select=["SCH003"])
    assert only_sch003.rules_run == ["SCH003"]
    assert only_sch003.exit_code == EXIT_CLEAN
    ignored = run_lint(context, ignore=["SCH001"])
    assert "SCH001" not in ignored.rules_run
    assert "SCH001" not in ignored.codes()


def test_severity_override_downgrades(mesh44):
    context = LintContext(schedule=bad_schedule(), topology=mesh44)
    report = run_lint(
        context,
        select=["SCH001"],
        severities={"SCH001": Severity.WARNING},
    )
    assert report.n_errors == 0
    assert report.n_warnings == 1
    assert report.exit_code == EXIT_WARNINGS


def test_severity_override_unknown_code_rejected():
    with pytest.raises(ValueError, match="unknown"):
        run_lint(LintContext(), severities={"NOP000": Severity.ERROR})


def test_truncation_caps_pathological_reports(mesh44):
    # 60 data x 4 windows all out of range: 240 raw SCH001 findings.
    centers = np.full((60, 4), 99, dtype=np.int64)
    schedule = Schedule(centers=centers, windows=windows_by_step_count(8, 2))
    report = run_lint(
        LintContext(schedule=schedule, topology=mesh44), select=["SCH001"]
    )
    errors = report.by_code("SCH001")
    suppressed = [d for d in errors if d.severity == Severity.INFO]
    assert len(errors) == MAX_DIAGNOSTICS_PER_RULE + 1
    assert len(suppressed) == 1
    assert "140 further SCH001 diagnostics suppressed" in suppressed[0].message


def test_report_counts_and_exit_codes():
    report = LintReport()
    assert report.exit_code == EXIT_CLEAN
    report.diagnostics.append(
        Diagnostic(code="THY001", severity=Severity.WARNING, message="w")
    )
    assert report.exit_code == EXIT_WARNINGS
    report.diagnostics.append(
        Diagnostic(code="SCH001", severity=Severity.ERROR, message="e")
    )
    assert report.exit_code == EXIT_ERRORS
    assert report.codes() == {"THY001", "SCH001"}
    assert len(report.by_code("SCH001")) == 1


def test_render_human_summary(mesh44):
    report = run_lint(LintContext(schedule=bad_schedule(), topology=mesh44))
    text = render_human(report)
    assert "SCH001 error:" in text
    assert "hint:" in text
    assert "error(s)" in text and "rule(s) run" in text
    clean = render_human(LintReport())
    assert "clean: no diagnostics" in clean


def test_render_json_payload(mesh44):
    report = run_lint(LintContext(schedule=bad_schedule(), topology=mesh44))
    payload = json.loads(render_json(report))
    assert payload["version"] == 1
    assert payload["summary"]["errors"] == report.n_errors
    assert payload["summary"]["exit_code"] == EXIT_ERRORS
    (first,) = [d for d in payload["diagnostics"] if d["code"] == "SCH001"]
    assert first["severity"] == "error"
    assert first["datum"] == 0 and first["window"] == 0


def test_render_sarif_shape(mesh44):
    report = run_lint(LintContext(schedule=bad_schedule(), topology=mesh44))
    doc = json.loads(render_sarif(report))
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert {r["id"] for r in driver["rules"]} == set(ALL_CODES)
    for rule_entry in driver["rules"]:
        assert rule_entry["shortDescription"]["text"]
        assert rule_entry["defaultConfiguration"]["level"] in (
            "error",
            "warning",
            "note",
        )
    result = next(r for r in run["results"] if r["ruleId"] == "SCH001")
    assert result["level"] == "error"
    assert result["message"]["text"]
    logical = result["locations"][0]["logicalLocations"][0]
    assert logical["fullyQualifiedName"] == "datum/0/window/0"
    assert logical["kind"] == "member"
