"""Per-rule unit tests: every code fires on its seeded violation."""

import numpy as np
import pytest

from repro.core import Schedule
from repro.diagnostics import Severity
from repro.faults import FaultPlan, LinkFault, NodeFault
from repro.lint import (
    LintContext,
    occupancy_overflows,
    run_lint,
    workload_context,
)
from repro.mem import CapacityPlan
from repro.trace import WindowSet, windows_by_step_count
from repro.workloads import trace_from_counts


def hotspot_bundle(mesh23, static_pid=None):
    """2 data / 3 windows on a 2x3 mesh, hottest at processors 0 and 4."""
    counts = np.zeros((2, 3, 6), dtype=np.int64)
    counts[0, :, 0] = 4
    counts[1, :, 4] = 4
    trace, windows = trace_from_counts(counts, mesh23)
    if static_pid is None:
        centers = np.array([[0, 0, 0], [4, 4, 4]])
    else:
        centers = np.full((2, 3), static_pid, dtype=np.int64)
    schedule = Schedule(centers=centers, windows=windows)
    return LintContext(schedule=schedule, trace=trace, topology=mesh23)


def test_occupancy_overflows_ignores_foreign_centers():
    centers = np.array([[0, 99], [0, 1]])
    caps = np.array([1, 1])
    assert occupancy_overflows(centers, caps) == [(0, 0, 2)]


def test_sch002_total_infeasibility(mesh23):
    schedule = Schedule(
        centers=np.zeros((8, 3), dtype=np.int64),
        windows=windows_by_step_count(3, 1),
    )
    context = LintContext(
        schedule=schedule,
        topology=mesh23,
        capacity=CapacityPlan.uniform(6, 1),
    )
    report = run_lint(context, select=["SCH002"])
    messages = [d.message for d in report.diagnostics]
    assert any("cannot fit into total capacity 6" in m for m in messages)
    assert any("memory of processor 0 over capacity: 8 > 1" in m for m in messages)
    assert all(d.severity == Severity.ERROR for d in report.diagnostics)


def test_sch003_movement_budget_violation(mesh23):
    centers = np.array([[0, 1, 2], [3, 3, 3]])
    schedule = Schedule(
        centers=centers,
        windows=windows_by_step_count(3, 1),
        meta={"max_moves": 1},
    )
    report = run_lint(LintContext(schedule=schedule), select=["SCH003"])
    (diag,) = report.diagnostics
    assert "movement budget of 1" in diag.message


def test_sch003_catches_a_lying_movement_list(mesh23):
    class LyingSchedule(Schedule):
        def movements(self):
            return super().movements() + [(1, 1, 3, 5)]

        def n_movements(self):
            return super().n_movements() + 1

    schedule = LyingSchedule(
        centers=np.array([[0, 1, 1], [3, 3, 3]]),
        windows=windows_by_step_count(3, 1),
    )
    report = run_lint(LintContext(schedule=schedule), select=["SCH003"])
    messages = [d.message for d in report.diagnostics]
    assert any("does not perform" in m for m in messages)
    assert any("n_movements() reports 2" in m for m in messages)


def test_sch004_trace_mismatches(mesh44):
    context = workload_context(1, 8, mesh44)
    context.schedule = context.schedule.restricted_to(
        np.arange(context.schedule.n_data - 1)
    )
    report = run_lint(context, select=["SCH004"])
    assert any("but the trace addresses" in d.message for d in report.diagnostics)


def test_sch004_capacity_topology_mismatch(mesh23):
    context = hotspot_bundle(mesh23)
    context.capacity = CapacityPlan.uniform(4, 2)
    report = run_lint(context, select=["SCH004"])
    assert any(
        "capacity plan covers 4 processors but the array has 6" in d.message
        for d in report.diagnostics
    )


def test_trc001_corrupted_event_arrays(mesh23):
    context = hotspot_bundle(mesh23)
    procs = context.trace.procs.copy()
    procs[0] = 99
    object.__setattr__(context.trace, "procs", procs)
    report = run_lint(context, select=["TRC001"])
    assert any(
        "names processor 99, outside [0, 6)" in d.message
        for d in report.diagnostics
    )


def test_trc002_window_trace_span_mismatch(mesh23):
    context = hotspot_bundle(mesh23)
    context.windows = WindowSet(starts=np.array([0, 5]), n_steps=10)
    report = run_lint(context, select=["TRC002"])
    assert any(
        "spans 10 steps but the trace has 3" in d.message
        for d in report.diagnostics
    )


def test_trc002_corrupted_starts(mesh23):
    windows = windows_by_step_count(6, 2)
    object.__setattr__(windows, "starts", np.array([1, 4, 4]))
    report = run_lint(LintContext(windows=windows), select=["TRC002"])
    messages = [d.message for d in report.diagnostics]
    assert any("must start at step 0" in m for m in messages)
    assert any("strictly increasing" in m for m in messages)


def test_trc003_empty_window_is_info(mesh23):
    counts = np.zeros((2, 3, 6), dtype=np.int64)
    counts[0, 0, 0] = 2
    counts[1, 2, 4] = 2  # window 1 holds no references
    trace, windows = trace_from_counts(counts, mesh23)
    report = run_lint(LintContext(trace=trace, windows=windows), select=["TRC003"])
    (diag,) = report.diagnostics
    assert diag.severity == Severity.INFO
    assert diag.window == 1
    assert report.exit_code == 0


def test_flt001_and_flt002_share_validate_for_logic(mesh44):
    plan = FaultPlan(node_faults=(NodeFault(pid=99, start=0),))
    report = run_lint(LintContext(faults=plan, topology=mesh44), select=["FLT"])
    (diag,) = report.by_code("FLT001")
    assert "only 16 processors" in diag.message

    late = FaultPlan(node_faults=(NodeFault(pid=2, start=7),))
    context = LintContext(
        faults=late,
        topology=mesh44,
        windows=windows_by_step_count(6, 2),
    )
    report = run_lint(context, select=["FLT002"])
    (diag,) = report.diagnostics
    assert "only 3 windows" in diag.message


def test_flt003_non_adjacent_link(mesh44):
    plan = FaultPlan(link_faults=(LinkFault(src=0, dst=5),))
    report = run_lint(LintContext(faults=plan, topology=mesh44), select=["FLT003"])
    (diag,) = report.diagnostics
    assert "non-adjacent" in diag.message
    assert diag.processor == 0
    # an existing wire is fine
    ok = FaultPlan(link_faults=(LinkFault(src=0, dst=1),))
    assert run_lint(
        LintContext(faults=ok, topology=mesh44), select=["FLT003"]
    ).diagnostics == []


def test_flt005_insufficient_surviving_capacity(mesh44):
    schedule = Schedule(
        centers=np.arange(16, dtype=np.int64)[:, None],
        windows=windows_by_step_count(1, 1),
    )
    plan = FaultPlan(node_faults=tuple(NodeFault(pid=p) for p in range(8)))
    context = LintContext(
        schedule=schedule,
        topology=mesh44,
        capacity=CapacityPlan.uniform(16, 1),
        faults=plan,
    )
    report = run_lint(context, select=["FLT005"])
    (diag,) = report.diagnostics
    assert "16 data items cannot fit into the 8 slots" in diag.message


def test_flt006_schedule_on_dead_node(mesh44):
    schedule = Schedule(
        centers=np.array([[5, 5], [2, 3]]),
        windows=windows_by_step_count(4, 2),
    )
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=1),))
    report = run_lint(
        LintContext(schedule=schedule, topology=mesh44, faults=plan),
        select=["FLT006"],
    )
    (diag,) = report.diagnostics
    assert diag.datum == 0 and diag.window == 1 and diag.processor == 5
    assert "reschedule_around_faults" in diag.hint


def test_cst001_flags_a_corrupted_evaluator(mesh44, monkeypatch):
    context = workload_context(1, 8, mesh44)
    clean = run_lint(context, select=["CST001"])
    assert clean.diagnostics == []

    import repro.core.evaluate as evaluate

    true_costs = evaluate.per_datum_costs

    def corrupted(schedule, tensor, model):
        ref, move = true_costs(schedule, tensor, model)
        return ref + 1.0, move

    monkeypatch.setattr(evaluate, "per_datum_costs", corrupted)
    report = run_lint(context, select=["CST001"])
    assert report.exit_code == 2
    assert all(d.code == "CST001" for d in report.diagnostics)
    assert "cost-graph path sums to" in report.diagnostics[0].message


def test_cst002_meta_cost_mismatch(mesh44):
    context = workload_context(1, 8, mesh44)
    context.schedule = Schedule(
        centers=context.schedule.centers,
        windows=context.schedule.windows,
        meta={"cost": 1.0},
    )
    report = run_lint(context, select=["CST002"])
    (diag,) = report.diagnostics
    assert diag.severity == Severity.WARNING
    assert "meta records cost 1" in diag.message
    assert report.exit_code == 1


def test_thy001_flags_stranded_center(mesh23):
    # Both data are pinned far from their only referencing processor.
    context = hotspot_bundle(mesh23, static_pid=5)
    report = run_lint(context, select=["THY001"])
    assert report.diagnostics
    assert {d.code for d in report.diagnostics} == {"THY001"}
    assert report.exit_code == 1
    assert any(d.datum == 0 for d in report.diagnostics)


def test_thy001_respects_capacity_headroom(mesh23):
    # The improving processors are full, so the "improvement" is not
    # realizable and must not be reported.
    context = hotspot_bundle(mesh23, static_pid=5)
    caps = np.ones(6, dtype=np.int64)
    caps[5] = 2
    context.capacity = CapacityPlan(caps)
    occupied = Schedule(
        centers=np.array([[0, 0, 0], [4, 4, 4]]),
        windows=context.schedule.windows,
    )
    # occupancy of the *linted* schedule fills 5 only; 0 and 4 stay free,
    # so with generous caps the warning persists...
    report = run_lint(context, select=["THY001"])
    assert report.diagnostics
    # ...but zero headroom anywhere else silences it.
    context.capacity = CapacityPlan(np.array([0, 0, 0, 0, 0, 2]))
    report = run_lint(context, select=["THY001"])
    assert report.diagnostics == []
    del occupied


def test_thy002_clean_on_manhattan_model(mesh23):
    context = hotspot_bundle(mesh23)
    report = run_lint(context, select=["THY002"])
    assert report.diagnostics == []


def test_gomcds_workloads_are_thy001_clean(mesh44):
    # The paper's greedy scheduler never leaves a one-step improvement.
    for bench in (1, 2, 3):
        report = run_lint(workload_context(bench, 8, mesh44), select=["THY"])
        assert report.diagnostics == [], bench

def test_flt007_checkpoint_interval_bounds(mesh44):
    from repro.faults import RecoveryPolicy

    report = run_lint(
        LintContext(recovery=RecoveryPolicy(checkpoint_interval=0)),
        select=["FLT007"],
    )
    (diag,) = report.diagnostics
    assert diag.severity is Severity.ERROR
    assert "checkpoint interval" in diag.message

    # interval past the horizon needs windows to be judged against
    context = LintContext(
        recovery=RecoveryPolicy(checkpoint_interval=9),
        windows=windows_by_step_count(6, 2),  # 3 windows
    )
    report = run_lint(context, select=["FLT007"])
    (diag,) = report.diagnostics
    assert "3" in diag.message

    ok = LintContext(
        recovery=RecoveryPolicy(checkpoint_interval=3),
        windows=windows_by_step_count(6, 2),
    )
    assert run_lint(ok, select=["FLT007"]).diagnostics == []


def test_flt008_replicate_needs_replicas(mesh44):
    from repro.core import CostModel, replicated_scds
    from repro.faults import RecoveryPolicy
    from repro.workloads import drifting_hotspot_workload

    policy = RecoveryPolicy(mode="replicate")
    report = run_lint(LintContext(recovery=policy), select=["FLT008"])
    (diag,) = report.diagnostics
    assert "replica" in diag.message

    wl = drifting_hotspot_workload(mesh44, 3, 8, seed=5)
    tensor = wl.reference_tensor()
    replicas = replicated_scds(tensor, CostModel(mesh44), k=2)
    ok = LintContext(recovery=policy, replicas=replicas)
    assert run_lint(ok, select=["FLT008"]).diagnostics == []

    # degrade mode never needs replicas
    plain = LintContext(recovery=RecoveryPolicy(mode="degrade"))
    assert run_lint(plain, select=["FLT008"]).diagnostics == []
