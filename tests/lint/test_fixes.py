"""Auto-fixes (`repro lint --fix`), diagnostic dedup, and SARIF
fingerprints."""

import json

import numpy as np
import pytest

from repro.core import CostModel, gomcds
from repro.diagnostics import FLT002, FLT007, TRC003, Diagnostic, Severity
from repro.faults import FaultPlan, NodeFault, RecoveryPolicy
from repro.grid import Mesh2D
from repro.lint import (
    FIXABLE_CODES,
    LintContext,
    apply_fixes,
    dedupe_diagnostics,
    render_diff,
    result_fingerprint,
    run_lint,
)
from repro.trace import build_reference_tensor, windows_by_step_count
from repro.workloads import trace_from_counts


@pytest.fixture
def mesh():
    return Mesh2D(4, 4)


def _empty_window_context(mesh, with_schedule=False):
    counts = np.zeros((2, 4, 16), dtype=np.int64)
    counts[0, 0, 0] = 2
    counts[1, 1, 3] = 1
    counts[0, 3, 5] = 2  # window 2 stays empty
    trace, windows = trace_from_counts(counts, mesh)
    context = LintContext(trace=trace, windows=windows, topology=mesh)
    if with_schedule:
        tensor = build_reference_tensor(trace, windows)
        context.schedule = gomcds(tensor, CostModel(mesh), None)
    return context


def test_fixable_codes_are_the_documented_trio():
    assert set(FIXABLE_CODES) == {FLT002, FLT007, TRC003}


def test_fix_drops_out_of_horizon_faults(mesh):
    plan = FaultPlan(
        node_faults=(NodeFault(pid=1, start=0), NodeFault(pid=2, start=50))
    )
    context = LintContext(
        faults=plan, topology=mesh, windows=windows_by_step_count(8, 2)
    )
    report = run_lint(context)
    assert report.by_code(FLT002)
    outcome = apply_fixes(context, report.diagnostics)
    assert outcome.n_fixed == 1 and outcome.modified == {"faults"}
    assert context.faults.node_faults == (NodeFault(pid=1, start=0),)
    assert not run_lint(context).by_code(FLT002)


def test_fix_clamps_checkpoint_interval(mesh):
    context = LintContext(
        topology=mesh,
        windows=windows_by_step_count(8, 2),
        recovery=RecoveryPolicy(mode="degrade", checkpoint_interval=99),
    )
    report = run_lint(context)
    assert report.by_code(FLT007)
    outcome = apply_fixes(context, report.diagnostics)
    assert outcome.modified == {"recovery"}
    assert context.recovery.checkpoint_interval == 4
    assert not run_lint(context).by_code(FLT007)


def test_fix_merges_empty_windows_and_schedule_columns(mesh):
    context = _empty_window_context(mesh, with_schedule=True)
    n_before = context.windows.n_windows
    report = run_lint(context)
    assert report.by_code(TRC003)
    outcome = apply_fixes(context, report.diagnostics)
    assert {"windows", "schedule"} <= outcome.modified
    assert context.windows.n_windows == n_before - 1
    assert context.schedule.n_windows == context.windows.n_windows
    fresh = run_lint(context)
    assert not fresh.by_code(TRC003)
    assert fresh.n_errors == 0


def test_empty_window_fix_skipped_under_faults(mesh):
    context = _empty_window_context(mesh)
    context.faults = FaultPlan(node_faults=(NodeFault(pid=1, start=0),))
    report = run_lint(context)
    outcome = apply_fixes(context, report.diagnostics)
    assert all(f.code != TRC003 for f in outcome.fixes)


def test_render_diff_shows_before_and_after(mesh):
    context = _empty_window_context(mesh)
    report = run_lint(context)
    outcome = apply_fixes(context, report.diagnostics)
    text = render_diff(outcome)
    assert text.startswith("--- windows [TRC003]")
    assert any(line.startswith("- ") for line in text.splitlines())
    assert any(line.startswith("+ ") for line in text.splitlines())
    assert render_diff(apply_fixes(context, [])) == "no applicable fixes"


def test_dedupe_preserves_order_and_distinct_findings():
    a = Diagnostic(code="SCH001", severity=Severity.ERROR, message="m", window=1)
    b = Diagnostic(code="SCH001", severity=Severity.ERROR, message="m", window=2)
    assert dedupe_diagnostics([a, b, a, b, a]) == [a, b]
    # hint differences do not make findings distinct
    c = Diagnostic(
        code="SCH001", severity=Severity.ERROR, message="m", window=1,
        hint="try this",
    )
    assert dedupe_diagnostics([a, c]) == [a]


def test_report_prepend_dedupes_loader_failures():
    from repro.lint import LintReport

    a = Diagnostic(code="TRC001", severity=Severity.ERROR, message="boom")
    report = LintReport(diagnostics=[a])
    report.prepend([a, a])
    assert report.diagnostics == [a]


def test_fingerprint_is_stable_and_location_sensitive():
    a = Diagnostic(code="SCH001", severity=Severity.ERROR, message="m", window=1)
    same = Diagnostic(
        code="SCH001", severity=Severity.ERROR, message="m", window=1
    )
    other = Diagnostic(
        code="SCH001", severity=Severity.ERROR, message="m", window=2
    )
    assert result_fingerprint(a) == result_fingerprint(same)
    assert result_fingerprint(a) != result_fingerprint(other)
    assert len(result_fingerprint(a)) == 32


def test_sarif_results_carry_fingerprints(mesh):
    from repro.lint import LintReport, render_sarif

    a = Diagnostic(code="SCH001", severity=Severity.ERROR, message="m", window=1)
    doc = json.loads(render_sarif(LintReport(diagnostics=[a])))
    result = doc["runs"][0]["results"][0]
    assert result["partialFingerprints"]["reproDiagnostic/v1"] == (
        result_fingerprint(a)
    )
