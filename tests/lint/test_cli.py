"""`repro-pim lint` end-to-end: files, workloads, formats, exit codes."""

import json

from repro.cli import main
from repro.lint import SARIF_SCHEMA_URI


def run(capsys, *argv):
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


def test_bench_workload_lints_clean(capsys):
    code, out = run(capsys, "--bench", "1", "--size", "8")
    assert code == 0
    assert "clean: no diagnostics" in out
    assert "0 error(s), 0 warning(s)" in out


def test_residency_fixture_gates(capsys, residency_npz):
    code, out = run(capsys, "--schedule", str(residency_npz))
    assert code == 2
    assert "SCH001 error:" in out
    assert "center 20" in out
    assert "(datum=1, window=2)" in out
    assert "hint: centers must lie in [0, 16)" in out


def test_capacity_fixture_gates(capsys, capacity_npz):
    code, out = run(capsys, "--schedule", str(capacity_npz), "--capacity", "2")
    assert code == 2
    assert "SCH002 error:" in out
    assert "memory of processor 0 over capacity: 5 > 2" in out
    assert "(window=0, processor=0)" in out


def test_fault_plan_fixture_gates(capsys, badplan_json):
    code, out = run(capsys, "--faults", str(badplan_json))
    assert code == 2
    assert "FLT003 error:" in out
    assert "link fault 0 -> 5 names a non-adjacent pair" in out


def test_no_capacity_flag_silences_sch002(capsys, capacity_npz):
    code, out = run(
        capsys, "--schedule", str(capacity_npz), "--capacity", "2", "--no-capacity"
    )
    assert code == 0


def test_select_limits_rules(capsys, residency_npz):
    code, out = run(capsys, "--schedule", str(residency_npz), "--select", "SCH003")
    assert code == 0
    code, out = run(capsys, "--schedule", str(residency_npz), "--ignore", "SCH001")
    assert code == 0


def test_severity_override_demotes_to_warning(capsys, residency_npz):
    code, out = run(
        capsys,
        "--schedule",
        str(residency_npz),
        "--severity",
        "SCH001=warning",
    )
    assert code == 1
    assert "SCH001 warning:" in out


def test_json_format(capsys, residency_npz):
    code, out = run(capsys, "--schedule", str(residency_npz), "--format", "json")
    assert code == 2
    payload = json.loads(out)
    assert payload["summary"]["exit_code"] == 2
    assert any(d["code"] == "SCH001" for d in payload["diagnostics"])


def test_sarif_format_shape(capsys, residency_npz):
    code, out = run(capsys, "--schedule", str(residency_npz), "--format", "sarif")
    assert code == 2
    doc = json.loads(out)
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert doc["version"] == "2.1.0"
    (sarif_run,) = doc["runs"]
    assert sarif_run["tool"]["driver"]["name"] == "repro-lint"
    result = next(
        r for r in sarif_run["results"] if r["ruleId"] == "SCH001"
    )
    assert result["level"] == "error"
    assert (
        result["locations"][0]["logicalLocations"][0]["fullyQualifiedName"]
        == "datum/1/window/2"
    )


def test_output_file(tmp_path, capsys, residency_npz):
    target = tmp_path / "report.sarif"
    code = main(
        [
            "lint",
            "--schedule",
            str(residency_npz),
            "--format",
            "sarif",
            "--output",
            str(target),
        ]
    )
    capsys.readouterr()
    assert code == 2
    assert json.loads(target.read_text())["version"] == "2.1.0"


def test_corrupt_archive_is_a_coded_diagnostic(tmp_path, capsys):
    bogus = tmp_path / "bogus.npz"
    bogus.write_bytes(b"not an archive")
    code, out = run(capsys, "--schedule", str(bogus))
    assert code == 2
    assert "error:" in out


def test_bare_fault_plan_with_horizon(tmp_path, capsys):
    from repro.faults import FaultPlan, NodeFault

    path = tmp_path / "late.json"
    FaultPlan(node_faults=(NodeFault(pid=2, start=9),)).save_json(path)
    code, out = run(capsys, "--faults", str(path), "--windows", "4")
    assert code == 2
    assert "FLT002" in out
    # without a horizon the plan is merely a machine-fit question
    code, out = run(capsys, "--faults", str(path))
    assert code == 0


def test_bench_with_fault_plan(capsys, tmp_path):
    from repro.faults import FaultPlan, NodeFault

    path = tmp_path / "dead5.json"
    FaultPlan(node_faults=(NodeFault(pid=5, start=0),)).save_json(path)
    # GOMCDS does not know about the plan, so FLT006 must fire.
    code, out = run(
        capsys, "--bench", "1", "--size", "8", "--faults", str(path)
    )
    assert code == 2
    assert "FLT006" in out


def test_bad_severity_spec_is_a_config_error(capsys, residency_npz):
    from repro.cli import EXIT_CONFIG_ERROR

    code = main(
        ["lint", "--schedule", str(residency_npz), "--severity", "SCH001"]
    )
    err = capsys.readouterr().err
    assert code == EXIT_CONFIG_ERROR
    assert "CODE=LEVEL" in err
