"""Property-based tests of the substrates: metrics, routing, traces."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import Mesh1D, Mesh2D, Torus2D, XYRouter, cached_distance_matrix
from repro.theory import closest_center_pair, lemma1_holds, theorem2_instance
from repro.trace import TraceBuilder, reverse_trace, windows_by_step_count
from repro.core import CostModel

meshes_2d = st.builds(
    Mesh2D, st.integers(1, 5), st.integers(1, 5)
)
toruses = st.builds(Torus2D, st.integers(1, 5), st.integers(1, 5))


@given(st.one_of(meshes_2d, toruses))
@settings(max_examples=50, deadline=None)
def test_distance_matrix_is_a_metric(topo):
    dist = cached_distance_matrix(topo)
    n = topo.n_procs
    assert np.array_equal(dist, dist.T)
    assert (np.diag(dist) == 0).all()
    # triangle inequality via min-plus closure
    closure = np.min(dist[:, :, None] + dist[None, :, :], axis=1)
    assert np.array_equal(closure, dist)


@given(meshes_2d, st.data())
@settings(max_examples=50, deadline=None)
def test_route_length_equals_distance(topo, data):
    router = XYRouter(topo)
    src = data.draw(st.integers(0, topo.n_procs - 1))
    dst = data.draw(st.integers(0, topo.n_procs - 1))
    path = router.route(src, dst)
    assert path[0] == src and path[-1] == dst
    assert len(path) - 1 == topo.distance(src, dst)
    dist = cached_distance_matrix(topo)
    for a, b in zip(path[:-1], path[1:]):
        assert dist[a, b] == 1


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5), st.integers(1, 3)), max_size=30))
@settings(max_examples=50, deadline=None)
def test_builder_preserves_reference_totals(events):
    builder = TraceBuilder(n_procs=4, n_data=6)
    total = 0
    for proc, datum, count in events:
        builder.add(proc, datum, count)
        total += count
    trace = builder.build()
    assert trace.total_references == total


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 5)), min_size=1, max_size=30
    ),
    st.integers(1, 5),
)
@settings(max_examples=50, deadline=None)
def test_reverse_preserves_tensor_mass(events, steps_per_window):
    builder = TraceBuilder(n_procs=4, n_data=6)
    for i, (proc, datum) in enumerate(events):
        builder.add(proc, datum)
        if i % 3 == 2:
            builder.end_step()
    trace = builder.build()
    rev = reverse_trace(trace)
    assert rev.total_references == trace.total_references
    assert np.array_equal(np.sort(rev.data), np.sort(trace.data))


@given(st.integers(1, 40), st.integers(1, 10))
@settings(max_examples=60, deadline=None)
def test_windows_partition_steps(n_steps, steps_per_window):
    ws = windows_by_step_count(n_steps, steps_per_window)
    assert ws.sizes().sum() == n_steps
    assert (ws.sizes() > 0).all()
    of = ws.window_of_steps()
    assert of[0] == 0 and of[-1] == ws.n_windows - 1
    assert np.array_equal(ws.assign(np.arange(n_steps)), of)


counts_1d = st.lists(st.integers(0, 5), min_size=7, max_size=7).filter(
    lambda c: sum(c) > 0
)


@given(counts_1d, counts_1d)
@settings(max_examples=80, deadline=None)
def test_lemma1_property(counts0, counts1):
    """Paper's Lemma 1 holds on every generated 1-D two-window instance."""
    topo = Mesh1D(7)
    model = CostModel(topo)
    costs0 = model.placement_costs(np.array(counts0))[0]
    costs1 = model.placement_costs(np.array(counts1))[0]
    p1, p2 = closest_center_pair(costs0, costs1, topo)
    assert lemma1_holds(costs0, p1, p2)


counts_2d = st.lists(st.integers(0, 4), min_size=12, max_size=12).filter(
    lambda c: sum(c) > 0
)


@given(counts_2d, counts_2d)
@settings(max_examples=80, deadline=None)
def test_theorem2_property(counts0, counts1):
    """Paper's Theorem 2 holds on every generated 2-D two-window instance."""
    topo = Mesh2D(3, 4)
    model = CostModel(topo)
    costs0 = model.placement_costs(np.array(counts0))[0]
    costs1 = model.placement_costs(np.array(counts1))[0]
    assert theorem2_instance(costs0, costs1, topo)


@given(counts_2d, counts_2d)
@settings(max_examples=80, deadline=None)
def test_theorem3_property(counts0, counts1):
    """Paper's Theorem 3: pairwise grouping never reduces unit-volume cost."""
    from repro.theory import theorem3_holds

    topo = Mesh2D(3, 4)
    model = CostModel(topo)
    costs0 = model.placement_costs(np.array(counts0))[0]
    costs1 = model.placement_costs(np.array(counts1))[0]
    assert theorem3_holds(costs0, costs1, topo)
