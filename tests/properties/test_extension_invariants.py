"""Property-based tests for the extension modules.

Same generator style as test_scheduler_invariants, covering: refinement,
the online scheduler, replication, and the extended topologies.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    CostModel,
    evaluate_replicated,
    evaluate_schedule,
    gomcds,
    omcds,
    refine_schedule,
    replicated_scds,
    scds,
)
from repro.grid import Mesh1D, Mesh2D, Mesh3D, WeightedMesh2D
from repro.mem import CapacityPlan
from repro.sim import replay_schedule
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts

MESHES = [Mesh1D(5), Mesh2D(2, 3), Mesh3D(2, 2, 2), WeightedMesh2D(2, 3, 3, 1)]


@st.composite
def tensors(draw, max_data=5, max_windows=4):
    topo = draw(st.sampled_from(MESHES))
    n_data = draw(st.integers(1, max_data))
    n_windows = draw(st.integers(1, max_windows))
    counts = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows, topo.n_procs),
            elements=st.integers(0, 4),
        )
    )
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    return tensor, trace, CostModel(topo)


@given(tensors())
@settings(max_examples=50, deadline=None)
def test_refinement_never_degrades_and_respects_capacity(case):
    tensor, _trace, model = case
    cap_value = -(-tensor.n_data // model.n_procs) + 1
    plan = CapacityPlan.uniform(model.n_procs, cap_value)
    schedule = gomcds(tensor, model, plan)
    result = refine_schedule(schedule, tensor, model, plan)
    assert result.final_cost <= result.initial_cost + 1e-9
    occ = result.schedule.occupancy(model.n_procs)
    assert (occ <= plan.capacities[None, :]).all()
    # reported costs are the true evaluator costs
    assert result.final_cost == pytest.approx(
        evaluate_schedule(result.schedule, tensor, model).total
    )


@given(tensors())
@settings(max_examples=50, deadline=None)
def test_refined_schedule_replays_exactly(case):
    tensor, trace, model = case
    result = refine_schedule(scds(tensor, model), tensor, model)
    analytic = evaluate_schedule(result.schedule, tensor, model)
    assert replay_schedule(trace, result.schedule, model).matches(analytic)


@given(tensors(), st.sampled_from([1.0, 2.0, math.inf]))
@settings(max_examples=50, deadline=None)
def test_online_never_beats_offline(case, hysteresis):
    tensor, _trace, model = case
    offline = evaluate_schedule(gomcds(tensor, model), tensor, model).total
    online = evaluate_schedule(
        omcds(tensor, model, hysteresis=hysteresis), tensor, model
    ).total
    assert offline <= online + 1e-9


@given(tensors())
@settings(max_examples=50, deadline=None)
def test_online_replays_exactly(case):
    tensor, trace, model = case
    schedule = omcds(tensor, model)
    analytic = evaluate_schedule(schedule, tensor, model)
    assert replay_schedule(trace, schedule, model).matches(analytic)


@given(tensors())
@settings(max_examples=50, deadline=None)
def test_replication_k1_equals_scds_and_k_monotone(case):
    tensor, _trace, model = case
    static_cost = evaluate_schedule(scds(tensor, model), tensor, model).total
    costs = []
    for k in (1, 2, 3):
        placement = replicated_scds(tensor, model, k)
        assert all(1 <= len(r) <= k for r in placement.replicas)
        costs.append(evaluate_replicated(placement, tensor, model))
    assert costs[0] == pytest.approx(static_cost)
    assert costs[0] >= costs[1] >= costs[2]


@given(tensors())
@settings(max_examples=40, deadline=None)
def test_replication_beats_any_single_center(case):
    """With k >= 1 replicas each datum costs at most its best single
    center (the greedy's first site is exactly that center)."""
    tensor, _trace, model = case
    placement = replicated_scds(tensor, model, k=2)
    merged = tensor.counts.sum(axis=1)
    dist = model.distances
    for d in range(tensor.n_data):
        sites = list(placement.replicas[d])
        nearest = dist[:, sites].min(axis=1)
        single_best = (merged[d] @ dist).min()
        assert (merged[d] @ nearest) * model.volume(d) <= single_best * model.volume(
            d
        ) + 1e-9


@given(tensors())
@settings(max_examples=50, deadline=None)
def test_weighted_and_3d_replay_agreement(case):
    """Evaluator == replay on every topology, including weighted meshes
    (where hop count != metric) and 3-D meshes."""
    tensor, trace, model = case
    for scheduler in (scds, gomcds):
        schedule = scheduler(tensor, model)
        analytic = evaluate_schedule(schedule, tensor, model)
        assert replay_schedule(trace, schedule, model).matches(analytic)


@given(tensors(), st.integers(0, 3))
@settings(max_examples=50, deadline=None)
def test_budgeted_interpolates_scds_and_gomcds(case, budget):
    from repro.core import gomcds_budgeted

    tensor, _trace, model = case
    static = evaluate_schedule(scds(tensor, model), tensor, model).total
    free = evaluate_schedule(gomcds(tensor, model), tensor, model).total
    budgeted = evaluate_schedule(
        gomcds_budgeted(tensor, model, budget), tensor, model
    ).total
    assert free - 1e-9 <= budgeted <= static + 1e-9
    # the budget truly binds per datum
    schedule = gomcds_budgeted(tensor, model, budget)
    moves = (schedule.centers[:, 1:] != schedule.centers[:, :-1]).sum(axis=1)
    assert moves.max(initial=0) <= budget


@given(tensors())
@settings(max_examples=40, deadline=None)
def test_optimal_static_never_beaten_by_any_static(case):
    """The assignment oracle lower-bounds greedy SCDS under capacity and
    equals it unconstrained."""
    from repro.core import optimal_static_placement

    tensor, _trace, model = case
    free_opt = evaluate_schedule(
        optimal_static_placement(tensor, model), tensor, model
    ).total
    free_greedy = evaluate_schedule(scds(tensor, model), tensor, model).total
    assert free_opt == pytest.approx(free_greedy)
    plan = CapacityPlan.uniform(model.n_procs, -(-tensor.n_data // model.n_procs))
    bound_opt = evaluate_schedule(
        optimal_static_placement(tensor, model, plan), tensor, model
    ).total
    bound_greedy = evaluate_schedule(scds(tensor, model, plan), tensor, model).total
    assert bound_opt <= bound_greedy + 1e-9
    occ = optimal_static_placement(tensor, model, plan).occupancy(model.n_procs)
    assert (occ <= plan.capacities[None, :]).all()
