"""Property-based tests of the lint engine (hypothesis).

The core soundness/precision contract: a schedule produced by the real
schedulers on a random valid workload lints with zero errors, and a
single seeded mutation is caught by exactly the rule that owns it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import CostModel, Schedule, gomcds, lomcds, scds
from repro.diagnostics import Severity
from repro.grid import Mesh1D, Mesh2D
from repro.lint import LintContext, run_lint
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts

MESHES = [Mesh1D(6), Mesh2D(2, 3), Mesh2D(3, 3)]


@st.composite
def bundles(draw, max_data=5, max_windows=4):
    topo = draw(st.sampled_from(MESHES))
    n_data = draw(st.integers(2, max_data))
    n_windows = draw(st.integers(2, max_windows))
    counts = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows, topo.n_procs),
            elements=st.integers(0, 4),
        )
    )
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    model = CostModel(topo)
    scheduler = draw(st.sampled_from([scds, lomcds, gomcds]))
    capacity = CapacityPlan.uniform(
        topo.n_procs, -(-n_data // topo.n_procs) * 2
    )
    schedule = scheduler(tensor, model, capacity)
    return LintContext(
        schedule=schedule,
        trace=trace,
        windows=windows,
        topology=topo,
        capacity=capacity,
        model=model,
    )


def errors_of(report):
    return [d for d in report.diagnostics if d.severity == Severity.ERROR]


@given(bundles())
@settings(max_examples=40, deadline=None)
def test_valid_schedules_produce_zero_errors(context):
    report = run_lint(context)
    assert errors_of(report) == [], [d.render() for d in report.diagnostics]
    assert report.exit_code in (0, 1)  # THY/TRC warnings and infos allowed


@given(bundles(), st.data())
@settings(max_examples=40, deadline=None)
def test_out_of_array_center_is_caught_by_exactly_sch001(context, data):
    schedule = context.schedule
    d = data.draw(st.integers(0, schedule.n_data - 1))
    w = data.draw(st.integers(0, schedule.n_windows - 1))
    centers = schedule.centers.copy()
    centers[d, w] = context.topology.n_procs + data.draw(st.integers(0, 3))
    context.schedule = Schedule(
        centers=centers, windows=schedule.windows, meta=dict(schedule.meta)
    )
    report = run_lint(context)
    culprits = {diag.code for diag in errors_of(report)}
    assert "SCH001" in culprits
    assert (d, w) in {(diag.datum, diag.window) for diag in report.by_code("SCH001")}
    # the mutation may also create a movement-free slot elsewhere, but it
    # must not implicate capacity or fault rules
    assert culprits <= {"SCH001"}


@given(bundles())
@settings(max_examples=40, deadline=None)
def test_shrunk_capacity_is_caught_by_exactly_sch002(context):
    occupancy = context.schedule.occupancy(context.topology.n_procs)
    peak = int(occupancy.max())
    if peak < 1:
        return  # degenerate: nothing resident anywhere
    context.capacity = CapacityPlan.uniform(context.topology.n_procs, peak - 1)
    report = run_lint(context, ignore=["THY"])
    culprits = {diag.code for diag in errors_of(report)}
    assert culprits == {"SCH002"}
    overfull = next(
        diag for diag in report.by_code("SCH002") if diag.processor is not None
    )
    assert occupancy[overfull.window, overfull.processor] == peak
