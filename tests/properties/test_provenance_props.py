"""Provenance properties: observational recording, exact attribution.

Two load-bearing contracts, on random instances:

1. provenance-on solves are **bit-identical** to dark solves — turning
   the explanation machinery on can never change a schedule;
2. the per-datum attributed costs sum to ``evaluate_schedule()``'s
   ``CostBreakdown`` with exact float equality (the attribution
   invariant of ``docs/explain.md``), on both kernels.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import schedule
from repro.core import CostModel, evaluate_schedule
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.obs import Instrumentation
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts

TOPO = Mesh2D(2, 3)
ALGORITHMS = ("SCDS", "LOMCDS", "GOMCDS")


@st.composite
def instances(draw, max_data=4, max_windows=5):
    n_data = draw(st.integers(1, max_data))
    n_windows = draw(st.integers(1, max_windows))
    counts = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows, TOPO.n_procs),
            elements=st.integers(0, 3),
        )
    )
    trace, windows = trace_from_counts(counts, TOPO)
    return build_reference_tensor(trace, windows)


@given(
    instances(),
    st.sampled_from(ALGORITHMS),
    st.booleans(),
    st.sampled_from(["numpy", "python"]),
)
@settings(max_examples=60, deadline=None)
def test_provenance_on_is_bit_identical_to_dark(
    tensor, algorithm, constrained, kernel
):
    model = CostModel(TOPO)
    capacity = (
        CapacityPlan.paper_rule(tensor.n_data, TOPO.n_procs)
        if constrained
        else None
    )
    dark = schedule(
        tensor, model, algorithm=algorithm, capacity=capacity, kernel=kernel
    )
    instr = Instrumentation.started(provenance=True)
    lit = schedule(
        tensor,
        model,
        algorithm=algorithm,
        capacity=capacity,
        kernel=kernel,
        instrument=instr,
    )
    assert np.array_equal(dark.centers, lit.centers)

    (log,) = instr.provenance.logs
    truth = evaluate_schedule(lit, tensor, model)
    ref, move = log.attributed_costs()
    assert ref.shape == move.shape == (tensor.n_data,)
    claimed = log.attribution()
    # exact float equality, not approx: the attribution invariant
    assert claimed.reference_cost == truth.reference_cost
    assert claimed.movement_cost == truth.movement_cost
    assert claimed.total == truth.total
    assert float(ref.sum()) == truth.reference_cost
    assert float(move.sum()) == truth.movement_cost
