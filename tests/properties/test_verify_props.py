"""Property-based tests of the certifier (hypothesis).

Two contracts the issue pins down exactly:

* the abstract interpreter's per-link volumes bit-agree with the
  replay's :class:`SpatialTrace` ground truth for *arbitrary* valid
  schedules (unit volumes are integers, so equality is exact);
* a certified GOMCDS schedule whose center sequence is perturbed into
  any strictly costlier path always fails certificate checking.
"""

import dataclasses

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import CostModel, Schedule, gomcds
from repro.diagnostics import VER007, Severity
from repro.grid import Mesh1D, Mesh2D
from repro.obs import Instrumentation
from repro.sim import replay_schedule
from repro.trace import build_reference_tensor
from repro.verify import check_certificate, interpret_schedule
from repro.workloads import trace_from_counts

MESHES = [Mesh1D(6), Mesh2D(2, 3), Mesh2D(3, 3)]


@st.composite
def workload_and_centers(draw, max_data=4, max_windows=4):
    """A random reference universe plus an *arbitrary* in-range schedule."""
    topo = draw(st.sampled_from(MESHES))
    n_data = draw(st.integers(1, max_data))
    n_windows = draw(st.integers(1, max_windows))
    counts = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows, topo.n_procs),
            elements=st.integers(0, 3),
        )
    )
    centers = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows),
            elements=st.integers(0, topo.n_procs - 1),
        )
    )
    return topo, counts, centers


@given(workload_and_centers())
@settings(max_examples=40, deadline=None)
def test_static_link_volumes_bit_agree_with_replay(bundle):
    topo, counts, centers = bundle
    trace, windows = trace_from_counts(counts, topo)
    assume(windows.n_windows == counts.shape[1])
    tensor = build_reference_tensor(trace, windows)
    model = CostModel(topo)
    schedule = Schedule(centers=centers, windows=windows, method="random")

    prediction, diags = interpret_schedule(
        schedule, tensor, model, trace=trace
    )
    assert not [d for d in diags if d.severity == Severity.ERROR]

    instr = Instrumentation.started(spatial=True)
    replay_schedule(trace, schedule, model, instrument=instr)
    spatial = instr.spatial.traces[-1]

    # unit volumes are integral, so agreement is exact, not approximate
    static = prediction.link_totals()
    dynamic = spatial.link_totals()
    assert set(static) == {
        link for link, vol in dynamic.items() if vol
    } | set(static)
    for link in set(static) | set(dynamic):
        assert static.get(link, 0.0) == dynamic.get(link, 0.0)


@st.composite
def certified_with_perturbation(draw, max_data=4, max_windows=4):
    topo = draw(st.sampled_from(MESHES))
    n_data = draw(st.integers(1, max_data))
    n_windows = draw(st.integers(2, max_windows))
    counts = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows, topo.n_procs),
            elements=st.integers(0, 3),
        )
    )
    datum = draw(st.integers(0, n_data - 1))
    window = draw(st.integers(0, n_windows - 1))
    new_center = draw(st.integers(0, topo.n_procs - 1))
    return topo, counts, datum, window, new_center


@given(certified_with_perturbation())
@settings(max_examples=40, deadline=None)
def test_perturbed_center_sequence_always_fails_certification(bundle):
    topo, counts, datum, window, new_center = bundle
    trace, windows = trace_from_counts(counts, topo)
    assume(windows.n_windows == counts.shape[1])
    tensor = build_reference_tensor(trace, windows)
    model = CostModel(topo)
    schedule = gomcds(tensor, model, None, certify=True)

    # the pristine certificate verifies
    assert check_certificate(schedule, tensor, model) == []

    centers = schedule.centers.copy()
    centers[datum, window] = new_center
    perturbed = dataclasses.replace(schedule, centers=centers)

    def path_cost(path):
        dist = model.distances
        cost = float(
            sum(dist[path[w], p] * counts[datum, w, p]
                for w in range(len(path)) for p in range(topo.n_procs))
        )
        cost += float(sum(dist[path[w - 1], path[w]]
                          for w in range(1, len(path))))
        return cost

    # only strictly costlier paths must fail: a tie is another optimum
    assume(path_cost(centers[datum]) > path_cost(schedule.centers[datum]))

    diags = check_certificate(perturbed, tensor, model)
    assert any(
        d.code == VER007 and d.severity == Severity.ERROR for d in diags
    )
