"""Structural property tests: windows, regrouping, evaluator consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import CostModel, Schedule, evaluate_schedule, per_datum_costs, scds
from repro.grid import Mesh2D
from repro.trace import (
    build_reference_tensor,
    single_window,
    windows_by_step_count,
    windows_from_boundaries,
)
from repro.workloads import trace_from_counts

TOPO = Mesh2D(2, 3)


@st.composite
def instances(draw, max_data=4, max_windows=5):
    n_data = draw(st.integers(1, max_data))
    n_windows = draw(st.integers(1, max_windows))
    counts = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows, TOPO.n_procs),
            elements=st.integers(0, 3),
        )
    )
    trace, windows = trace_from_counts(counts, TOPO)
    return build_reference_tensor(trace, windows), trace


@given(instances())
@settings(max_examples=60, deadline=None)
def test_regroup_to_single_window_preserves_mass(case):
    tensor, _trace = case
    merged = tensor.regroup(single_window(tensor.windows.n_steps))
    assert merged.total_references() == tensor.total_references()
    assert np.array_equal(
        merged.counts.sum(axis=1), tensor.counts.sum(axis=1)
    )


@given(instances())
@settings(max_examples=60, deadline=None)
def test_scds_cost_is_window_partition_invariant(case):
    """A static schedule's total cost does not depend on how the step
    axis is windowed (no movement, additive references)."""
    tensor, trace = case
    model = CostModel(TOPO)
    schedule = scds(tensor, model)
    fine_cost = evaluate_schedule(schedule, tensor, model).total
    merged = build_reference_tensor(trace, single_window(trace.n_steps))
    static = Schedule.static(schedule.initial_placement(), merged.windows)
    coarse_cost = evaluate_schedule(static, merged, model).total
    assert fine_cost == pytest.approx(coarse_cost)


@given(instances())
@settings(max_examples=60, deadline=None)
def test_per_datum_costs_sum_to_breakdown(case):
    tensor, _trace = case
    model = CostModel(TOPO)
    rng = np.random.default_rng(tensor.n_data)
    centers = rng.integers(
        0, TOPO.n_procs, size=(tensor.n_data, tensor.n_windows)
    )
    schedule = Schedule(centers=centers, windows=tensor.windows)
    ref, move = per_datum_costs(schedule, tensor, model)
    breakdown = evaluate_schedule(schedule, tensor, model)
    assert ref.sum() == pytest.approx(breakdown.reference_cost)
    assert move.sum() == pytest.approx(breakdown.movement_cost)


@given(st.integers(1, 60), st.lists(st.integers(0, 59), max_size=8))
@settings(max_examples=80, deadline=None)
def test_windows_from_boundaries_always_valid(n_steps, boundaries):
    ws = windows_from_boundaries(boundaries, n_steps)
    assert ws.starts[0] == 0
    assert ws.sizes().sum() == n_steps
    assert (ws.sizes() > 0).all()


@given(st.integers(2, 40), st.integers(1, 12), st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_coarser_uniform_windows_nest(n_steps, a, b):
    """windows_by_step_count(k*a) boundaries are a subset of (a)'s when the
    nominal sizes divide — the nesting the window-size ablation relies on."""
    fine = windows_by_step_count(n_steps, a)
    coarse = windows_by_step_count(n_steps, a * (b + 1))
    fine_starts = set(fine.starts.tolist())
    # every coarse start that is also a multiple of a must be a fine start
    for s in coarse.starts.tolist():
        if s % a == 0 and s < max(fine_starts) + 1:
            assert s in fine_starts or s == 0
