"""Property-based tests of scheduler invariants (hypothesis).

Random reference tensors on small meshes; the invariants are the paper's
optimality claims plus structural guarantees of the implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    CostModel,
    evaluate_schedule,
    gomcds,
    grouped_schedule,
    lomcds,
    scds,
)
from repro.grid import Mesh1D, Mesh2D
from repro.mem import CapacityPlan
from repro.sim import replay_schedule
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts

MESHES = [Mesh1D(6), Mesh2D(2, 3), Mesh2D(3, 3)]


@st.composite
def tensors(draw, max_data=5, max_windows=5):
    topo = draw(st.sampled_from(MESHES))
    n_data = draw(st.integers(1, max_data))
    n_windows = draw(st.integers(1, max_windows))
    counts = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows, topo.n_procs),
            elements=st.integers(0, 4),
        )
    )
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    return tensor, trace, CostModel(topo)


@given(tensors())
@settings(max_examples=60, deadline=None)
def test_gomcds_optimal_among_all(case):
    """Unconstrained GOMCDS is never beaten by SCDS, LOMCDS or grouping."""
    tensor, _trace, model = case
    best = evaluate_schedule(gomcds(tensor, model), tensor, model).total
    for other in (scds, lomcds, grouped_schedule):
        cost = evaluate_schedule(other(tensor, model), tensor, model).total
        assert best <= cost + 1e-9


@given(tensors())
@settings(max_examples=60, deadline=None)
def test_scds_optimal_among_static(case):
    """SCDS minimizes cost over *static* placements (per datum)."""
    tensor, _trace, model = case
    sched = scds(tensor, model)
    totals = model.all_placement_costs(tensor).sum(axis=1)  # (D, m)
    for d in range(tensor.n_data):
        assert totals[d, sched.centers[d, 0]] == totals[d].min()


@given(tensors())
@settings(max_examples=60, deadline=None)
def test_replay_equals_analytic(case):
    """The hop-level replay reproduces the analytic objective exactly."""
    tensor, trace, model = case
    for scheduler in (scds, lomcds, gomcds):
        schedule = scheduler(tensor, model)
        analytic = evaluate_schedule(schedule, tensor, model)
        report = replay_schedule(trace, schedule, model)
        assert report.matches(analytic)


@given(tensors())
@settings(max_examples=40, deadline=None)
def test_link_traffic_accounts_every_hop(case):
    tensor, trace, model = case
    schedule = lomcds(tensor, model)
    report = replay_schedule(trace, schedule, model, track_links=True)
    assert report.total_link_traffic == pytest.approx(report.total_cost)


@given(tensors(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_capacity_always_respected(case, cap_value):
    tensor, _trace, model = case
    total_needed = tensor.n_data
    if cap_value * model.n_procs < total_needed:
        cap_value = -(-total_needed // model.n_procs)  # make it feasible
    plan = CapacityPlan.uniform(model.n_procs, cap_value)
    for scheduler in (scds, lomcds, gomcds, grouped_schedule):
        schedule = scheduler(tensor, model, plan)
        occ = schedule.occupancy(model.n_procs)
        assert (occ <= plan.capacities[None, :]).all()


@given(tensors())
@settings(max_examples=40, deadline=None)
def test_constrained_never_beats_unconstrained(case):
    tensor, _trace, model = case
    plan = CapacityPlan.uniform(model.n_procs, -(-tensor.n_data // model.n_procs))
    free = evaluate_schedule(gomcds(tensor, model), tensor, model).total
    bound = evaluate_schedule(gomcds(tensor, model, plan), tensor, model).total
    assert free <= bound + 1e-9


@given(tensors())
@settings(max_examples=60, deadline=None)
def test_schedules_are_deterministic(case):
    tensor, _trace, model = case
    for scheduler in (scds, lomcds, gomcds, grouped_schedule):
        a = scheduler(tensor, model)
        b = scheduler(tensor, model)
        assert np.array_equal(a.centers, b.centers)


@given(tensors())
@settings(max_examples=60, deadline=None)
def test_grouping_never_worse_than_local_singletons(case):
    """Algorithm 3 accepts a merge only when cost does not increase, so the
    grouped schedule can't lose to per-window local centers evaluated with
    the same (no idle-hold) convention."""
    tensor, _trace, model = case
    from repro.core.grouping import partition_cost

    costs = model.all_placement_costs(tensor)
    grouped = grouped_schedule(tensor, model)
    for d in range(tensor.n_data):
        singles = [(w, w) for w in range(tensor.n_windows)]
        move = model.movement_cost_matrix(d)
        _c, baseline = partition_cost(costs[d], move, singles, "local")
        partition = grouped.meta["partitions"][d]
        _c, achieved = partition_cost(costs[d], move, partition, "local")
        assert achieved <= baseline + 1e-9
