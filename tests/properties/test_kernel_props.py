"""Kernel parity: the numpy fast path is bit-identical to the scalar
python reference oracle, on random instances and the paper benchmarks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import schedule
from repro.core import CostModel
from repro.core.kernels import (
    KERNELS,
    hold_position_numpy,
    hold_position_python,
    merged_totals_python,
    placement_cost_tensor_python,
    resolve_kernel,
    shortest_center_path_python,
)
from repro.core.gomcds import shortest_center_path
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import benchmark as make_benchmark, trace_from_counts

TOPO = Mesh2D(2, 3)
ALGORITHMS = ("SCDS", "LOMCDS", "GOMCDS")


@st.composite
def instances(draw, max_data=4, max_windows=5):
    n_data = draw(st.integers(1, max_data))
    n_windows = draw(st.integers(1, max_windows))
    counts = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows, TOPO.n_procs),
            elements=st.integers(0, 3),
        )
    )
    trace, windows = trace_from_counts(counts, TOPO)
    return build_reference_tensor(trace, windows)


@given(instances())
@settings(max_examples=60, deadline=None)
@pytest.mark.parametrize("name", ALGORITHMS)
def test_kernels_bit_identical_unconstrained(name, tensor):
    model = CostModel(TOPO)
    fast = schedule(tensor, model, algorithm=name, kernel="numpy")
    slow = schedule(tensor, model, algorithm=name, kernel="python")
    assert np.array_equal(fast.centers, slow.centers)


@given(instances())
@settings(max_examples=40, deadline=None)
@pytest.mark.parametrize("name", ALGORITHMS)
def test_kernels_bit_identical_constrained(name, tensor):
    model = CostModel(TOPO)
    capacity = CapacityPlan.paper_rule(tensor.n_data, TOPO.n_procs)
    fast = schedule(
        tensor, model, algorithm=name, capacity=capacity, kernel="numpy"
    )
    slow = schedule(
        tensor, model, algorithm=name, capacity=capacity, kernel="python"
    )
    assert np.array_equal(fast.centers, slow.centers)


@given(instances())
@settings(max_examples=40, deadline=None)
def test_placement_cost_tensor_matches_numpy(tensor):
    model = CostModel(TOPO)
    scalar = placement_cost_tensor_python(tensor, model)
    vector = model.all_placement_costs(tensor)
    assert np.array_equal(scalar, vector)
    assert np.array_equal(
        merged_totals_python(scalar), vector.sum(axis=1)
    )


@given(instances())
@settings(max_examples=40, deadline=None)
def test_certificates_bit_identical(tensor):
    model = CostModel(TOPO)
    fast = schedule(tensor, model, certify=True, kernel="numpy")
    slow = schedule(tensor, model, certify=True, kernel="python")
    assert np.array_equal(fast.centers, slow.centers)
    assert np.array_equal(
        fast.meta["certificate"]["potentials"],
        slow.meta["certificate"]["potentials"],
    )
    assert np.array_equal(
        fast.meta["certificate"]["totals"],
        slow.meta["certificate"]["totals"],
    )


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 6), st.just(6)),
        elements=st.floats(0, 50, allow_nan=False),
    )
)
@settings(max_examples=60, deadline=None)
def test_shortest_path_matches_vectorized(window_costs):
    move = CostModel(TOPO).distances.astype(float)
    path_py, total_py = shortest_center_path_python(window_costs, move)
    path_np, total_np = shortest_center_path(window_costs, move)
    assert np.array_equal(path_py, path_np)
    assert total_py == total_np


@given(
    arrays(dtype=np.int64, shape=(3, 5), elements=st.integers(0, 5)),
    arrays(dtype=np.bool_, shape=(3, 5)),
)
@settings(max_examples=60, deadline=None)
def test_hold_position_matches(centers, referenced):
    a = centers.copy()
    b = centers.copy()
    hold_position_python(a, referenced)
    hold_position_numpy(b, referenced)
    assert np.array_equal(a, b)


@pytest.mark.parametrize("bench", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("name", ALGORITHMS)
def test_paper_benchmarks_bit_identical(bench, name):
    """Acceptance gate: kernels agree on benchmarks 1-5 (constrained)."""
    topo = Mesh2D(4, 4)
    wl = make_benchmark(bench, 8, topo, seed=1998)
    tensor = build_reference_tensor(wl.trace, wl.windows)
    model = CostModel(topo)
    capacity = CapacityPlan.paper_rule(wl.n_data, topo.n_procs)
    fast = schedule(
        tensor, model, algorithm=name, capacity=capacity, kernel="numpy"
    )
    slow = schedule(
        tensor, model, algorithm=name, capacity=capacity, kernel="python"
    )
    assert np.array_equal(fast.centers, slow.centers)


def test_resolve_kernel_contract():
    assert resolve_kernel(None) == "numpy"
    assert resolve_kernel("NumPy") == "numpy"
    assert resolve_kernel("python") == "python"
    assert set(KERNELS) == {"numpy", "python"}
    with pytest.raises(ValueError, match="python"):
        resolve_kernel("fortran")
