"""Property-based tests of the fault-plan window semantics (hypothesis).

The contract under test: the per-fault ``_WindowedFault.active_in``
predicate and the plan-level ``FaultPlan.fault_epoch`` set view are two
projections of the same activation relation and can never disagree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, LinkFault, NodeFault

windows = st.integers(min_value=0, max_value=32)


@st.composite
def spans(draw):
    start = draw(st.integers(0, 16))
    end = draw(st.one_of(st.none(), st.integers(start + 1, 32)))
    return start, end


@st.composite
def node_faults(draw):
    start, end = draw(spans())
    return NodeFault(pid=draw(st.integers(0, 7)), start=start, end=end)


@st.composite
def link_faults(draw):
    start, end = draw(spans())
    src = draw(st.integers(0, 7))
    dst = draw(st.integers(0, 7).filter(lambda d: d != src))
    return LinkFault(src=src, dst=dst, start=start, end=end)


@st.composite
def plans(draw):
    return FaultPlan(
        node_faults=tuple(draw(st.lists(node_faults(), max_size=5))),
        link_faults=tuple(draw(st.lists(link_faults(), max_size=5))),
    )


@settings(max_examples=200)
@given(fault=st.one_of(node_faults(), link_faults()), window=windows)
def test_active_in_matches_half_open_range(fault, window):
    expected = fault.start <= window and (
        fault.end is None or window < fault.end
    )
    assert fault.active_in(window) == expected


@settings(max_examples=200)
@given(plan=plans(), window=windows)
def test_active_in_agrees_with_fault_epoch_membership(plan, window):
    down_nodes, down_links = plan.fault_epoch(window)
    # an active fault always implies membership (faults overlapping on
    # the same pid/link make the converse a union, tested below)
    for fault in plan.node_faults:
        if fault.active_in(window):
            assert fault.pid in down_nodes
    for fault in plan.link_faults:
        if fault.active_in(window):
            assert (fault.src, fault.dst) in down_links
    # and the epoch never invents entries no active fault names
    assert down_links == frozenset(
        (f.src, f.dst) for f in plan.link_faults if f.active_in(window)
    )


@settings(max_examples=200)
@given(plan=plans(), window=windows)
def test_epoch_nodes_are_exactly_the_active_faults(plan, window):
    down_nodes, _ = plan.fault_epoch(window)
    active = {f.pid for f in plan.node_faults if f.active_in(window)}
    assert down_nodes == frozenset(active)
