"""Traffic-conservation property: link volume == analytic cost (hypothesis).

On any fault-free replay over a unit-weight topology, every hop of every
transfer occupies exactly one directed link for exactly its volume, so
the spatial recorder's summed link traffic must equal the analytic
``CostBreakdown`` hop x volume total *exactly* — on meshes and on tori
(where x-y routes use wrap-around wires).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import CostModel, evaluate_schedule, gomcds, scds
from repro.grid import Mesh1D, Mesh2D, Torus2D
from repro.obs import Instrumentation
from repro.sim import replay_schedule
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts

TOPOLOGIES = [Mesh1D(6), Mesh2D(2, 3), Mesh2D(3, 3), Torus2D(3, 3)]


@st.composite
def replay_cases(draw, max_data=5, max_windows=4):
    topo = draw(st.sampled_from(TOPOLOGIES))
    n_data = draw(st.integers(1, max_data))
    n_windows = draw(st.integers(1, max_windows))
    counts = draw(
        arrays(
            dtype=np.int64,
            shape=(n_data, n_windows, topo.n_procs),
            elements=st.integers(0, 4),
        )
    )
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    scheduler = draw(st.sampled_from([scds, gomcds]))
    return tensor, trace, CostModel(topo), scheduler


@given(replay_cases())
@settings(max_examples=50, deadline=None)
def test_link_traffic_conserves_hop_volume(case):
    tensor, trace, model, scheduler = case
    sched = scheduler(tensor, model)
    breakdown = evaluate_schedule(sched, tensor, model)
    instr = Instrumentation.started(spatial=True)
    report = replay_schedule(trace, sched, model, instrument=instr)
    (strace,) = instr.spatial.traces
    # exact equality: both sides are sums of the same float volumes
    assert strace.total_link_traffic == pytest.approx(breakdown.total, abs=1e-9)
    assert report.total_cost == pytest.approx(breakdown.total, abs=1e-9)
    # per-processor send/recv bound the link volume (every transfer has
    # exactly one source and one destination, carried over >= 1 links)
    assert strace.per_proc_send().sum() <= strace.total_link_traffic + 1e-9
    assert strace.per_proc_recv().sum() <= strace.total_link_traffic + 1e-9


@given(replay_cases())
@settings(max_examples=50, deadline=None)
def test_spatial_totals_equal_tracked_links(case):
    tensor, trace, model, scheduler = case
    sched = scheduler(tensor, model)
    instr = Instrumentation.started(spatial=True)
    report = replay_schedule(
        trace, sched, model, track_links=True, instrument=instr
    )
    (strace,) = instr.spatial.traces
    assert strace.link_totals() == report.link_traffic
    # all recorded links are structural wires of the topology
    assert set(strace.link_totals()) <= set(strace.links)
