"""Fault-model invariants (ISSUE acceptance properties).

Three properties pin the fault subsystem to the paper's fault-free
semantics:

1. a zero-fault plan reproduces the analytic cost *exactly* (the fault
   machinery is observationally absent when nothing fails);
2. evacuation never violates the :class:`~repro.mem.CapacityPlan` — no
   recovery move overfills a surviving memory;
3. a fault-aware route whose x-y path is untouched by faults is the x-y
   path itself, so its hop count equals the Manhattan (metric) distance.
"""

import numpy as np
import pytest

from repro.core import evaluate_schedule, gomcds, scds
from repro.faults import FaultPlan, NodeFault, plan_evacuation
from repro.grid import FaultAwareRouter, Mesh2D, XYRouter
from repro.sim import replay_schedule


# -- property 1: zero faults == analytic cost ---------------------------------


@pytest.mark.parametrize("scheduler", [scds, gomcds])
def test_zero_fault_plan_reproduces_analytic_cost(
    scheduler, lu8, lu8_tensor, model44, paper_capacity
):
    schedule = scheduler(lu8_tensor, model44, paper_capacity)
    analytic = evaluate_schedule(schedule, lu8_tensor, model44)
    report = replay_schedule(
        lu8.trace, schedule, model44,
        capacity=paper_capacity, faults=FaultPlan(),
    )
    assert report.matches(analytic)
    assert report.total_cost == pytest.approx(analytic.total)
    assert report.n_delivered == report.n_fetches
    assert report.degraded_cost == report.total_cost  # no recovery overhead


def test_zero_fault_plan_bit_identical_to_no_plan(
    drift, model44, paper_capacity
):
    tensor = drift.reference_tensor()
    schedule = gomcds(tensor, model44, paper_capacity)
    a = replay_schedule(
        drift.trace, schedule, model44,
        capacity=paper_capacity, track_links=True,
    )
    b = replay_schedule(
        drift.trace, schedule, model44,
        capacity=paper_capacity, track_links=True, faults=FaultPlan(),
    )
    assert a.reference_cost == b.reference_cost
    assert a.movement_cost == b.movement_cost
    assert a.link_traffic == b.link_traffic
    assert np.array_equal(a.per_window_cost, b.per_window_cost)


# -- property 2: evacuation respects capacity ---------------------------------


def test_evacuation_never_violates_capacity_plan(mesh44):
    """Randomized: applying the planned moves never exceeds any capacity."""
    rng = np.random.default_rng(2024)
    distances = mesh44.distance_matrix()
    n_procs = mesh44.n_procs
    for trial in range(200):
        n_data = int(rng.integers(1, 24))
        capacities = rng.integers(1, 4, size=n_procs)
        # a consistent pre-failure state that itself respects capacity
        locations = np.empty(n_data, dtype=np.int64)
        load = np.zeros(n_procs, dtype=np.int64)
        slots = np.repeat(np.arange(n_procs), capacities)
        rng.shuffle(slots)
        for d, p in enumerate(slots[:n_data]):
            locations[d], load[p] = p, load[p] + 1
        if len(slots) < n_data:
            continue  # infeasible universe; nothing to test
        failed = set(
            int(p) for p in rng.choice(n_procs, size=rng.integers(1, 4), replace=False)
        )
        alive = np.ones(n_procs, dtype=bool)
        alive[list(failed)] = False
        moves, lost = plan_evacuation(
            locations, load, capacities, failed, alive, distances
        )
        new_load = load.copy()
        for m in moves:
            assert not alive[m.src] or m.src in failed
            assert alive[m.dst]
            new_load[m.src] -= 1
            new_load[m.dst] += 1
        assert (new_load[alive] <= capacities[alive]).all(), trial
        # every victim is either moved or reported lost, never silent
        victims = {d for d in range(n_data) if int(locations[d]) in failed}
        assert victims == {m.datum for m in moves} | set(lost)


def test_replayed_evacuation_respects_capacity(
    lu8, lu8_tensor, model44, paper_capacity
):
    """End to end: a degraded replay's machine never overfills memory.

    ``PIMArray`` raises on any capacity violation, so completing the
    replay *is* the assertion; we additionally check the accounting.
    """
    plan = FaultPlan(
        node_faults=(NodeFault(pid=5, start=1), NodeFault(pid=6, start=2)),
        seed=3,
    )
    schedule = gomcds(lu8_tensor, model44, paper_capacity)
    report = replay_schedule(
        lu8.trace, schedule, model44, capacity=paper_capacity, faults=plan
    )
    assert report.accounts_for_all_fetches()
    assert report.n_evacuated >= 0 and report.n_lost == 0


# -- property 3: untouched x-y routes keep the Manhattan length ---------------


def test_detoured_routes_manhattan_when_xy_survives():
    """For every (src, dst): if no fault lies on the x-y path, the
    fault-aware route *is* the x-y path and its hop count equals the
    metric distance."""
    topology = Mesh2D(4, 5)
    xy = XYRouter(topology)
    rng = np.random.default_rng(7)
    for trial in range(30):
        dead_nodes = set(
            int(p)
            for p in rng.choice(
                topology.n_procs, size=rng.integers(1, 5), replace=False
            )
        )
        links = [
            ((int(a), int(b)) if rng.random() < 0.5 else (int(b), int(a)))
            for a, b in zip(
                rng.choice(topology.n_procs, 3), rng.choice(topology.n_procs, 3)
            )
        ]
        dead_links = {
            (a, b) for a, b in links
            if a != b and topology.distance(a, b) == 1
        }
        router = FaultAwareRouter(
            topology, dead_nodes=dead_nodes, dead_links=dead_links
        )
        for src in topology.iter_pids():
            for dst in topology.iter_pids():
                if src in dead_nodes or dst in dead_nodes:
                    assert router.route(src, dst) is None
                    continue
                xy_path = xy.route(src, dst)
                touched = any(p in dead_nodes for p in xy_path) or any(
                    link in dead_links
                    for link in zip(xy_path[:-1], xy_path[1:])
                )
                if not touched:
                    assert router.route(src, dst) == xy_path
                    assert router.hop_count(src, dst) == topology.distance(
                        src, dst
                    ), (trial, src, dst)


def test_detours_never_shorter_than_manhattan(mesh44):
    router = FaultAwareRouter(mesh44, dead_nodes={5, 10})
    for src in mesh44.iter_pids():
        for dst in mesh44.iter_pids():
            hops = router.hop_count(src, dst)
            if hops is not None:
                assert hops >= mesh44.distance(src, dst)
