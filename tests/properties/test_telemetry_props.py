"""Telemetry is observational: instrumented and dark batch runs are
bit-identical on random instances.  The cache key excludes the
instrument by construction; this is the behavioural check."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import ScheduleRequest, schedule_many
from repro.core import CostModel
from repro.engine import SolveCache, solve_key
from repro.grid import Mesh2D
from repro.obs import Instrumentation
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts

TOPO = Mesh2D(2, 3)
ALGORITHMS = ("SCDS", "LOMCDS", "GOMCDS")


@st.composite
def batches(draw, max_data=4, max_windows=4, max_requests=3):
    model = CostModel(TOPO)
    requests = []
    for _ in range(draw(st.integers(1, max_requests))):
        counts = draw(
            arrays(
                dtype=np.int64,
                shape=(
                    draw(st.integers(1, max_data)),
                    draw(st.integers(1, max_windows)),
                    TOPO.n_procs,
                ),
                elements=st.integers(0, 3),
            )
        )
        trace, windows = trace_from_counts(counts, TOPO)
        tensor = build_reference_tensor(trace, windows)
        requests.append(
            ScheduleRequest(
                tensor, model, algorithm=draw(st.sampled_from(ALGORITHMS))
            )
        )
    return requests


@given(batches())
@settings(max_examples=30, deadline=None)
def test_instrumented_batch_is_bit_identical(requests):
    dark = schedule_many(requests)
    instr = Instrumentation.started()
    traced = schedule_many(requests, instrument=instr)
    for a, b in zip(dark, traced):
        assert np.array_equal(a.centers, b.centers)
        assert a.method == b.method
    # and the session actually recorded the batch
    assert any(s.name == "engine.batch" for s in instr.tracer.spans)


@given(batches())
@settings(max_examples=30, deadline=None)
def test_instrumented_cache_reuse_is_bit_identical(requests):
    dark = schedule_many(requests, cache=SolveCache())
    cache = SolveCache()
    schedule_many(requests, cache=cache, instrument=Instrumentation.started())
    replayed = schedule_many(
        requests, cache=cache, instrument=Instrumentation.started()
    )
    for a, b in zip(dark, replayed):
        assert np.array_equal(a.centers, b.centers)


@given(batches(max_requests=1))
@settings(max_examples=30, deadline=None)
def test_solve_key_excludes_the_instrument(requests):
    (request,) = requests
    with_instr = solve_key(
        request.tensor,
        request.model,
        request.capacity,
        request.algorithm,
        {"instrument": object(), "kernel": "python"},
    )
    without = solve_key(
        request.tensor, request.model, request.capacity, request.algorithm
    )
    assert with_instr == without
