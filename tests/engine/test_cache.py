"""Content-addressed solve cache: key stability, LRU, disk, freezing."""

import numpy as np
import pytest

from repro import schedule
from repro.core import CostModel
from repro.engine import SolveCache, deep_freeze, solve_key
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import benchmark as make_benchmark, trace_from_counts

TOPO = Mesh2D(2, 3)


def _tensor_from(counts):
    counts = np.asarray(counts, dtype=np.int64)
    trace, windows = trace_from_counts(counts, TOPO)
    return build_reference_tensor(trace, windows)


@pytest.fixture
def small():
    counts = np.zeros((3, 2, TOPO.n_procs), dtype=np.int64)
    counts[0, 0, 0] = 3
    counts[0, 1, 5] = 2
    counts[1, :, 4] = 2
    counts[2, 0, 1] = 1
    return _tensor_from(counts), CostModel(TOPO)


# --- key stability ----------------------------------------------------------


def test_same_inputs_same_key(small):
    tensor, model = small
    assert solve_key(tensor, model) == solve_key(tensor, model)


def test_equal_but_reordered_tensors_hash_alike(small):
    """Layout (C vs F order) and dtype width must not change the key."""
    tensor, model = small
    f_counts = np.asfortranarray(tensor.counts)
    assert not f_counts.flags["C_CONTIGUOUS"]
    clone = _tensor_from(f_counts)
    assert np.array_equal(clone.counts, tensor.counts)
    assert solve_key(clone, model) == solve_key(tensor, model)


def test_counts_change_misses(small):
    tensor, model = small
    bumped = np.array(tensor.counts)
    bumped[0, 0, 0] += 1
    assert solve_key(_tensor_from(bumped), model) != solve_key(tensor, model)


def test_volumes_change_misses(small):
    tensor, _ = small
    unit = CostModel(TOPO)
    heavy = CostModel(TOPO, volumes=np.full(tensor.n_data, 2.0))
    assert solve_key(tensor, heavy) != solve_key(tensor, unit)


def test_capacity_change_misses(small):
    tensor, model = small
    cap = CapacityPlan.paper_rule(tensor.n_data, TOPO.n_procs)
    assert solve_key(tensor, model, cap) != solve_key(tensor, model, None)


def test_algorithm_change_misses(small):
    tensor, model = small
    a = solve_key(tensor, model, algorithm="scds")
    b = solve_key(tensor, model, algorithm="gomcds")
    assert a != b
    # ...but algorithm naming is case-insensitive
    assert solve_key(tensor, model, algorithm="ScDs") == a


def test_semantic_option_change_misses(small):
    tensor, model = small
    plain = solve_key(tensor, model)
    certified = solve_key(tensor, model, options={"certify": True})
    assert plain != certified


def test_kernel_option_does_not_change_key(small):
    """Kernels are bit-identical by contract, so they share entries."""
    tensor, model = small
    assert solve_key(tensor, model, options={"kernel": "python"}) == solve_key(
        tensor, model, options={"kernel": "numpy"}
    )
    assert solve_key(tensor, model, options={"kernel": "python"}) == solve_key(
        tensor, model
    )


def test_non_serializable_option_raises(small):
    tensor, model = small
    with pytest.raises(TypeError, match="content-addressable"):
        solve_key(tensor, model, options={"callback": lambda: None})


# --- the cache itself -------------------------------------------------------


def test_put_get_roundtrip(small):
    tensor, model = small
    cache = SolveCache()
    key = solve_key(tensor, model)
    assert cache.get(key) is None
    sched = schedule(tensor, model)
    frozen = cache.put(key, sched)
    hit = cache.get(key)
    assert hit is frozen
    assert np.array_equal(hit.centers, sched.centers)
    stats = cache.stats()
    assert stats == {
        "entries": 1,
        "maxsize": 256,
        "hits": 1,
        "misses": 1,
        "disk_hits": 0,
        "evictions": 0,
        "disk": None,
    }


def test_cached_schedules_are_deeply_frozen(small):
    tensor, model = small
    cache = SolveCache()
    key = solve_key(tensor, model)
    cache.put(key, schedule(tensor, model))
    hit = cache.get(key)
    assert hit.centers.flags.writeable is False
    with pytest.raises(ValueError):
        hit.centers[0, 0] = 99


def test_certificate_survives_the_cache(small):
    tensor, model = small
    cache = SolveCache()
    sched = schedule(tensor, model, certify=True)
    key = solve_key(tensor, model, options={"certify": True})
    cache.put(key, sched)
    cert = cache.get(key).meta["certificate"]
    assert cert["kind"] == "gomcds-potentials"
    assert np.array_equal(
        cert["potentials"], sched.meta["certificate"]["potentials"]
    )
    assert cert["potentials"].flags.writeable is False


def test_lru_evicts_oldest(small):
    tensor, model = small
    cache = SolveCache(maxsize=2)
    sched = schedule(tensor, model)
    for name in ("SCDS", "LOMCDS", "GOMCDS"):
        cache.put(solve_key(tensor, model, algorithm=name), sched)
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1
    assert solve_key(tensor, model, algorithm="SCDS") not in cache
    assert solve_key(tensor, model, algorithm="GOMCDS") in cache


def test_lru_get_refreshes_recency(small):
    tensor, model = small
    cache = SolveCache(maxsize=2)
    sched = schedule(tensor, model)
    key_a = solve_key(tensor, model, algorithm="SCDS")
    key_b = solve_key(tensor, model, algorithm="LOMCDS")
    cache.put(key_a, sched)
    cache.put(key_b, sched)
    cache.get(key_a)  # A is now most recent
    cache.put(solve_key(tensor, model, algorithm="GOMCDS"), sched)
    assert key_a in cache
    assert key_b not in cache


def test_disk_store_roundtrip(tmp_path, small):
    tensor, model = small
    key = solve_key(tensor, model)
    writer = SolveCache(disk_dir=tmp_path)
    sched = schedule(tensor, model)
    writer.put(key, sched)

    reader = SolveCache(disk_dir=tmp_path)  # fresh process, cold memory
    hit = reader.get(key)
    assert hit is not None
    assert np.array_equal(hit.centers, sched.centers)
    assert hit.centers.flags.writeable is False  # re-frozen after pickle
    assert reader.stats()["disk_hits"] == 1


def test_corrupt_disk_entry_is_a_miss(tmp_path, small):
    tensor, model = small
    key = solve_key(tensor, model)
    cache = SolveCache(disk_dir=tmp_path)
    cache.put(key, schedule(tensor, model))
    path = next(tmp_path.glob("*.pkl"))
    path.write_bytes(b"not a pickle")
    cold = SolveCache(disk_dir=tmp_path)
    assert cold.get(key) is None
    assert cold.stats()["misses"] == 1


def test_deep_freeze_preserves_equality(small):
    tensor, model = small
    sched = schedule(tensor, model, certify=True)
    frozen = deep_freeze(sched)
    assert np.array_equal(frozen.centers, sched.centers)
    assert frozen.method == sched.method
    assert np.array_equal(
        frozen.meta["certificate"]["potentials"],
        sched.meta["certificate"]["potentials"],
    )


def test_clear_keeps_disk(tmp_path, small):
    tensor, model = small
    key = solve_key(tensor, model)
    cache = SolveCache(disk_dir=tmp_path)
    cache.put(key, schedule(tensor, model))
    cache.clear()
    assert len(cache) == 0
    assert cache.get(key) is not None  # reloaded from disk


def test_benchmark_instances_key_stably():
    """Rebuilding the same seeded workload yields the same address."""
    topo = Mesh2D(4, 4)
    model = CostModel(topo)
    keys = set()
    for _ in range(2):
        wl = make_benchmark(1, 8, topo, seed=1998)
        tensor = build_reference_tensor(wl.trace, wl.windows)
        keys.add(solve_key(tensor, model))
    assert len(keys) == 1
