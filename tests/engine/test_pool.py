"""``schedule_many``: determinism, dedup, caching, kernel defaults."""

import numpy as np
import pytest

from repro import ScheduleRequest, schedule, schedule_many
from repro.core import CostModel
from repro.engine import SolveCache
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import benchmark as make_benchmark

TOPO = Mesh2D(4, 4)


def _suite(benchmarks=(1, 2), n=8, algorithms=("SCDS", "GOMCDS")):
    model = CostModel(TOPO)
    requests = []
    for bench in benchmarks:
        wl = make_benchmark(bench, n, TOPO, seed=1998)
        tensor = build_reference_tensor(wl.trace, wl.windows)
        capacity = CapacityPlan.paper_rule(wl.n_data, TOPO.n_procs)
        for name in algorithms:
            requests.append(
                ScheduleRequest(
                    tensor, model, capacity=capacity, algorithm=name,
                    label=f"bench{bench}:{name}",
                )
            )
    return requests


def test_results_match_sequential_facade():
    requests = _suite()
    batch = schedule_many(requests)
    for request, sched in zip(requests, batch):
        direct = schedule(
            request.tensor,
            request.model,
            algorithm=request.algorithm,
            capacity=request.capacity,
        )
        assert np.array_equal(sched.centers, direct.centers)
        assert sched.method == direct.method


@pytest.mark.parametrize("workers", [2, 8])
def test_deterministic_across_worker_counts(workers):
    requests = _suite()
    baseline = schedule_many(requests, workers=1)
    fanned = schedule_many(requests, workers=workers)
    assert len(fanned) == len(baseline)
    for a, b in zip(baseline, fanned):
        assert np.array_equal(a.centers, b.centers)


def test_order_matches_request_order():
    requests = _suite(algorithms=("GOMCDS", "SCDS", "LOMCDS"))
    batch = schedule_many(requests)
    assert [s.method for s in batch] == [
        r.algorithm for r in requests
    ]


def test_duplicate_requests_solved_once():
    requests = _suite(benchmarks=(1,), algorithms=("GOMCDS",))
    cache = SolveCache()
    batch = schedule_many(requests * 3, cache=cache)
    assert len(batch) == 3
    assert batch[0] is batch[1] is batch[2]
    # one miss (the solve), zero entries touched twice
    assert cache.stats()["misses"] == 1


def test_shared_cache_spans_calls():
    requests = _suite(benchmarks=(1,), algorithms=("GOMCDS",))
    cache = SolveCache()
    first = schedule_many(requests, cache=cache)
    second = schedule_many(requests, cache=cache)
    assert second[0] is first[0]
    assert cache.stats()["hits"] >= 1


def test_cached_results_are_frozen():
    requests = _suite(benchmarks=(1,), algorithms=("GOMCDS",))
    batch = schedule_many(requests, cache=SolveCache())
    assert batch[0].centers.flags.writeable is False


def test_batch_kernel_default_matches_per_request_kernel():
    requests = _suite(benchmarks=(1,), algorithms=("GOMCDS", "SCDS"))
    numpy_batch = schedule_many(requests, kernel="numpy")
    python_batch = schedule_many(requests, kernel="python")
    for a, b in zip(numpy_batch, python_batch):
        assert np.array_equal(a.centers, b.centers)


def test_request_kernel_wins_over_batch_default():
    model = CostModel(TOPO)
    wl = make_benchmark(1, 8, TOPO, seed=1998)
    tensor = build_reference_tensor(wl.trace, wl.windows)
    request = ScheduleRequest(
        tensor, model, algorithm="GOMCDS", options={"kernel": "python"}
    )
    (sched,) = schedule_many([request], kernel="numpy")
    direct = schedule(tensor, model, algorithm="GOMCDS", kernel="python")
    assert np.array_equal(sched.centers, direct.centers)


def test_batch_kernel_skips_unsupporting_algorithms():
    """OMCDS takes no ``kernel=``; the batch default must not break it."""
    model = CostModel(TOPO)
    wl = make_benchmark(1, 8, TOPO, seed=1998)
    tensor = build_reference_tensor(wl.trace, wl.windows)
    request = ScheduleRequest(tensor, model, algorithm="OMCDS")
    (sched,) = schedule_many([request], kernel="python")
    assert sched.method == "OMCDS"


def test_certify_option_rides_through():
    model = CostModel(TOPO)
    wl = make_benchmark(1, 8, TOPO, seed=1998)
    tensor = build_reference_tensor(wl.trace, wl.windows)
    request = ScheduleRequest(
        tensor, model, algorithm="GOMCDS", options={"certify": True}
    )
    (sched,) = schedule_many([request], cache=SolveCache())
    assert sched.meta["certificate"]["kind"] == "gomcds-potentials"


def test_rejects_non_request_items():
    with pytest.raises(TypeError, match="ScheduleRequest"):
        schedule_many(["not a request"])


def test_rejects_bad_worker_count():
    with pytest.raises(ValueError, match="workers"):
        schedule_many(_suite(), workers=0)


def test_empty_batch_is_empty():
    assert schedule_many([]) == []
