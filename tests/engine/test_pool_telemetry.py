"""Cross-process batch telemetry: merged traces, counter parity,
bit-identity.  The workers=1 inline path and the pooled path must be
indistinguishable in what they record and in what they return."""

import json

import numpy as np
import pytest

from repro import ScheduleRequest, schedule_many
from repro.core import CostModel
from repro.engine import SolveCache
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.obs import Instrumentation, chrome_trace
from repro.trace import build_reference_tensor
from repro.workloads import benchmark as make_benchmark

TOPO = Mesh2D(4, 4)

#: Counter keys both execution paths must record (docs/observability.md).
ENGINE_COUNTERS = (
    "engine.batch.requests",
    "engine.batch.dedup_hits",
    "engine.pool.requests",
    "engine.pool.dedup_hits",
    "engine.batch.solved",
)


def _suite(benchmarks=(1, 2), n=8, algorithms=("SCDS", "GOMCDS")):
    model = CostModel(TOPO)
    requests = []
    for bench in benchmarks:
        wl = make_benchmark(bench, n, TOPO, seed=1998)
        tensor = build_reference_tensor(wl.trace, wl.windows)
        capacity = CapacityPlan.paper_rule(wl.n_data, TOPO.n_procs)
        for name in algorithms:
            requests.append(
                ScheduleRequest(
                    tensor, model, capacity=capacity, algorithm=name,
                    label=f"bench{bench}:{name}",
                )
            )
    return requests


def _recorded_run(requests, workers, cache=None):
    instr = Instrumentation.started()
    batch = schedule_many(
        requests, workers=workers, cache=cache, instrument=instr
    )
    return batch, instr


@pytest.mark.parametrize("workers", [2, 4])
def test_telemetry_keeps_results_bit_identical(workers):
    requests = _suite()
    dark = schedule_many(requests, workers=1)
    harvested, _ = _recorded_run(requests, workers)
    for a, b in zip(dark, harvested):
        assert np.array_equal(a.centers, b.centers)
        assert a.method == b.method


@pytest.mark.parametrize("workers", [2, 4])
def test_merged_chrome_trace_is_schema_valid(workers):
    requests = _suite()
    _, instr = _recorded_run(requests, workers)
    trace = json.loads(json.dumps(chrome_trace(instr)))
    for event in trace["traceEvents"]:
        assert {"name", "ph", "pid", "ts"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 0 and event["ts"] >= 0


@pytest.mark.parametrize("workers", [2, 4])
def test_one_chrome_lane_per_worker(workers):
    requests = _suite()
    _, instr = _recorded_run(requests, workers)
    pids = {
        s.attrs["worker_pid"]
        for s in instr.tracer.spans
        if "worker_pid" in s.attrs
    }
    trace = chrome_trace(instr)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    worker_tids = {e["tid"] for e in spans} - {0}
    # one lane per distinct worker pid; the pool may give one worker
    # several tasks, so the count is bounded by workers, not equal to it
    assert len(worker_tids) == len(pids)
    assert 1 <= len(worker_tids) <= workers
    names = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert "main" in names
    for pid in pids:
        assert any(f"(pid {pid})" in name for name in names)


@pytest.mark.parametrize("workers", [2, 4])
def test_pooled_span_set_matches_inline(workers):
    requests = _suite()
    _, inline = _recorded_run(requests, 1)
    _, pooled = _recorded_run(requests, workers)
    assert sorted(s.name for s in inline.tracer.spans) == sorted(
        s.name for s in pooled.tracer.spans
    )
    # the pooled run attributes every worker-side span
    solver = [
        s
        for s in pooled.tracer.spans
        if s.name == "engine.request"
    ]
    assert solver and all("worker_pid" in s.attrs for s in solver)


def test_counter_parity_between_inline_and_pooled():
    requests = _suite()
    _, inline = _recorded_run(requests, 1, cache=SolveCache())
    _, pooled = _recorded_run(requests, 2, cache=SolveCache())
    inline_counters = {
        k: c.value for k, c in inline.metrics.counters.items()
    }
    pooled_counters = {
        k: c.value for k, c in pooled.metrics.counters.items()
    }
    assert set(inline_counters) == set(pooled_counters)
    for key in ENGINE_COUNTERS:
        assert inline_counters[key] == pooled_counters[key], key


def test_merged_cache_counters_cover_the_whole_batch():
    requests = _suite(benchmarks=(1,), algorithms=("GOMCDS",))
    cache = SolveCache()
    _, instr = _recorded_run(requests * 3, 2, cache=cache)
    counters = {k: c.value for k, c in instr.metrics.counters.items()}
    assert counters["engine.batch.requests"] == 3
    assert counters["engine.batch.dedup_hits"] == 2
    assert counters["engine.pool.requests"] == 1
    assert counters["engine.pool.dedup_hits"] == 2
    assert counters["engine.cache.misses"] == 1
    assert counters["engine.cache.puts"] == 1
    assert instr.metrics.histograms["engine.request_us"].count == 1


def test_pool_gauges_report_fanout_shape():
    requests = _suite()
    _, instr = _recorded_run(requests, 2)
    gauges = {k: g.value for k, g in instr.metrics.gauges.items()}
    assert gauges["engine.pool.workers"] == 2
    assert gauges["engine.pool.queue_depth"] == len(requests)


def test_dark_batch_records_nothing():
    requests = _suite(benchmarks=(1,), algorithms=("GOMCDS",))
    instr = Instrumentation.started()
    schedule_many(requests, workers=1)  # no instrument passed
    assert instr.tracer.spans == []
    assert len(instr.metrics) == 0


def test_worker_deprecation_warnings_do_not_leak(recwarn):
    import warnings

    requests = _suite(benchmarks=(1,), algorithms=("SCDS", "GOMCDS"))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        schedule_many(requests, workers=2)
