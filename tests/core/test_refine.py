"""Local-search refinement tests."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    Schedule,
    evaluate_schedule,
    gomcds,
    refine_schedule,
    scds,
)
from repro.grid import Mesh1D, Mesh2D
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def tensor_1d(counts):
    topo = Mesh1D(np.asarray(counts).shape[2])
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    return build_reference_tensor(trace, windows), CostModel(topo)


def test_never_degrades():
    rng = np.random.default_rng(51)
    topo = Mesh2D(3, 3)
    counts = rng.integers(0, 4, size=(20, 4, 9))
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    model = CostModel(topo)
    cap = CapacityPlan.uniform(9, 3)
    for scheduler in (scds, gomcds):
        schedule = scheduler(tensor, model, cap)
        result = refine_schedule(schedule, tensor, model, cap)
        assert result.final_cost <= result.initial_cost
        assert result.initial_cost == pytest.approx(
            evaluate_schedule(schedule, tensor, model).total
        )
        assert result.final_cost == pytest.approx(
            evaluate_schedule(result.schedule, tensor, model).total
        )


def test_unconstrained_optimum_is_a_fixed_point():
    rng = np.random.default_rng(53)
    topo = Mesh2D(3, 3)
    counts = rng.integers(0, 4, size=(10, 4, 9))
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    model = CostModel(topo)
    schedule = gomcds(tensor, model)
    result = refine_schedule(schedule, tensor, model)
    # already globally optimal per datum: nothing to improve
    assert result.final_cost == result.initial_cost
    assert result.relocations == 0 and result.swaps == 0


def test_fixes_an_obviously_bad_placement_via_swap():
    tensor, model = tensor_1d([[[5, 0, 0]], [[0, 0, 5]]])
    bad = Schedule(centers=np.array([[2], [0]]), windows=tensor.windows)
    # the middle processor has no memory, so relocation is impossible and
    # only the slot trade fixes the crossed placement
    plan = CapacityPlan(np.array([1, 0, 1]))
    result = refine_schedule(bad, tensor, model, plan)
    assert result.final_cost == 0.0
    assert result.swaps >= 1
    assert result.schedule.centers[:, 0].tolist() == [0, 2]


def test_relocation_into_free_slot():
    tensor, model = tensor_1d([[[5, 0, 0]]])
    bad = Schedule(centers=np.array([[2]]), windows=tensor.windows)
    result = refine_schedule(bad, tensor, model, CapacityPlan.uniform(3, 1))
    assert result.final_cost == 0.0
    assert result.relocations == 1


def test_capacity_preserved():
    rng = np.random.default_rng(57)
    topo = Mesh2D(3, 3)
    counts = rng.integers(0, 4, size=(18, 3, 9))
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    model = CostModel(topo)
    cap = CapacityPlan.uniform(9, 2)
    result = refine_schedule(gomcds(tensor, model, cap), tensor, model, cap)
    occ = result.schedule.occupancy(9)
    assert (occ <= 2).all()


def test_movement_terms_accounted():
    # relocating in one window must charge the adjacent movement edges:
    # the best single fix keeps the datum's path consistent
    tensor, model = tensor_1d(
        [[[5, 0, 0, 0, 0], [5, 0, 0, 0, 0], [5, 0, 0, 0, 0]]]
    )
    zigzag = Schedule(centers=np.array([[0, 4, 0]]), windows=tensor.windows)
    result = refine_schedule(zigzag, tensor, model)
    assert result.schedule.centers[0].tolist() == [0, 0, 0]
    assert result.final_cost == 0.0


def test_rejects_overfull_input():
    tensor, model = tensor_1d([[[1, 0]], [[0, 1]], [[1, 1]]])
    bad = Schedule(
        centers=np.zeros((3, 1), dtype=np.int64), windows=tensor.windows
    )
    with pytest.raises(ValueError):
        refine_schedule(bad, tensor, model, CapacityPlan.uniform(2, 2))


def test_rejects_mismatched_tensor(tiny_tensor, mesh23):
    model = CostModel(mesh23)
    wrong = Schedule(
        centers=np.zeros((5, 3), dtype=np.int64), windows=tiny_tensor.windows
    )
    with pytest.raises(ValueError):
        refine_schedule(wrong, tiny_tensor, model)


def test_deterministic():
    rng = np.random.default_rng(59)
    topo = Mesh2D(3, 3)
    counts = rng.integers(0, 4, size=(12, 3, 9))
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    model = CostModel(topo)
    cap = CapacityPlan.uniform(9, 2)
    a = refine_schedule(gomcds(tensor, model, cap), tensor, model, cap)
    b = refine_schedule(gomcds(tensor, model, cap), tensor, model, cap)
    assert np.array_equal(a.schedule.centers, b.schedule.centers)


def test_method_label(lu8_tensor, mesh44):
    model = CostModel(mesh44)
    result = refine_schedule(scds(lu8_tensor, model), lu8_tensor, model)
    assert result.schedule.method == "SCDS+refine"
