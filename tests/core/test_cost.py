"""CostModel unit tests."""

import numpy as np
import pytest

from repro.core import CostModel
from repro.grid import Mesh1D, Mesh2D


class TestPlacementCosts:
    def test_hand_computed_1d(self):
        model = CostModel(Mesh1D(4))
        # 2 refs at proc 0, 1 ref at proc 3
        counts = np.array([[2, 0, 0, 1]])
        costs = model.placement_costs(counts)
        # cost(c) = 2|c-0| + |c-3|
        assert costs[0].tolist() == [3.0, 4.0, 5.0, 6.0]

    def test_accepts_1d_row(self):
        model = CostModel(Mesh1D(3))
        costs = model.placement_costs(np.array([1, 0, 0]))
        assert costs.shape == (1, 3)
        assert costs[0].tolist() == [0.0, 1.0, 2.0]

    def test_zero_references_zero_cost(self, model44):
        costs = model44.placement_costs(np.zeros((2, 16)))
        assert not costs.any()

    def test_rejects_wrong_width(self, model44):
        with pytest.raises(ValueError):
            model44.placement_costs(np.ones((2, 5)))

    def test_all_placement_costs_matches_per_datum(self, tiny_tensor, mesh23):
        model = CostModel(mesh23)
        full = model.all_placement_costs(tiny_tensor)
        assert full.shape == (2, 3, 6)
        for d in range(2):
            expected = model.placement_costs(tiny_tensor.for_data(d), d)
            assert np.allclose(full[d], expected)

    def test_all_placement_costs_rejects_other_array(self, tiny_tensor):
        model = CostModel(Mesh2D(4, 4))
        with pytest.raises(ValueError):
            model.all_placement_costs(tiny_tensor)


class TestVolumes:
    def test_volume_scales_costs(self):
        topo = Mesh1D(3)
        unit = CostModel(topo)
        heavy = CostModel(topo, volumes=np.array([2.0, 5.0]))
        counts = np.array([[1, 0, 0]])
        assert np.allclose(
            heavy.placement_costs(counts, d=1), 5 * unit.placement_costs(counts)
        )

    def test_volume_lookup(self):
        model = CostModel(Mesh1D(3), volumes=np.array([2.0, 5.0]))
        assert model.volume(0) == 2.0
        assert model.volume(1) == 5.0
        assert CostModel(Mesh1D(3)).volume(7) == 1.0

    def test_movement_cost(self):
        model = CostModel(Mesh1D(5), volumes=np.array([3.0]))
        assert model.movement_cost(0, 0, 4) == 12.0
        assert model.movement_cost(0, 2, 2) == 0.0

    def test_movement_cost_matrix(self):
        model = CostModel(Mesh1D(3), volumes=np.array([2.0]))
        assert np.array_equal(
            model.movement_cost_matrix(0), 2.0 * model.distances
        )
        # unit model ignores d
        assert np.array_equal(
            CostModel(Mesh1D(3)).movement_cost_matrix(0),
            CostModel(Mesh1D(3)).distances,
        )

    def test_volume_validation(self):
        with pytest.raises(ValueError):
            CostModel(Mesh1D(3), volumes=np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            CostModel(Mesh1D(3), volumes=np.zeros((2, 2)))

    def test_volume_count_mismatch_caught(self, tiny_tensor, mesh23):
        model = CostModel(mesh23, volumes=np.array([1.0, 1.0, 1.0]))
        with pytest.raises(ValueError):
            model.all_placement_costs(tiny_tensor)
