"""LOMCDS unit tests."""

import numpy as np
import pytest

from repro.core import CostModel, evaluate_schedule, lomcds, scds
from repro.grid import Mesh1D
from repro.mem import CapacityError, CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def tensor_1d(counts):
    topo = Mesh1D(np.asarray(counts).shape[2])
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    return build_reference_tensor(trace, windows), CostModel(topo)


def test_centers_are_per_window_optima():
    tensor, model = tensor_1d([[[3, 0, 0, 0, 0], [0, 0, 0, 0, 2]]])
    sched = lomcds(tensor, model)
    assert sched.centers[0].tolist() == [0, 4]


def test_reference_cost_is_minimal_per_window():
    # LOMCDS minimizes each window's reference cost by construction
    tensor, model = tensor_1d([[[1, 0, 2, 0, 0], [0, 1, 0, 0, 3]]])
    sched = lomcds(tensor, model)
    costs = model.all_placement_costs(tensor)[0]
    for w in range(2):
        assert costs[w, sched.centers[0, w]] == costs[w].min()


def test_idle_window_holds_position():
    # datum referenced only in windows 0 and 2; window 1 must not move it
    tensor, model = tensor_1d([[[0, 0, 0, 0, 3], [0, 0, 0, 0, 0], [0, 0, 0, 0, 3]]])
    sched = lomcds(tensor, model)
    assert sched.centers[0].tolist() == [4, 4, 4]
    assert sched.n_movements() == 0


def test_leading_idle_windows_backfill():
    # unreferenced until window 1: the initial placement is already there
    tensor, model = tensor_1d([[[0, 0, 0], [0, 0, 2]]])
    sched = lomcds(tensor, model)
    assert sched.centers[0].tolist() == [2, 2]


def test_fully_unreferenced_datum_is_stable():
    tensor, model = tensor_1d([[[0, 0, 0], [0, 0, 0]], [[1, 0, 0], [1, 0, 0]]])
    sched = lomcds(tensor, model)
    assert sched.n_movements() == 0


def test_capacity_respected_per_window():
    rng = np.random.default_rng(1)
    counts = rng.integers(0, 3, size=(12, 3, 6))
    topo = Mesh1D(6)
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    cap = CapacityPlan.uniform(6, 2)
    sched = lomcds(tensor, CostModel(topo), capacity=cap)
    assert (sched.occupancy(6) <= 2).all()


def test_capacity_displacement_prefers_staying_put_when_idle():
    # datum 0 heavy at proc 0; datum 1 idle in window 1 should stay where
    # it was rather than be re-placed
    counts = [
        [[5, 0, 0], [5, 0, 0]],
        [[0, 0, 2], [0, 0, 0]],
    ]
    tensor, model = tensor_1d(counts)
    sched = lomcds(tensor, model, capacity=CapacityPlan.uniform(3, 2))
    assert sched.centers[1].tolist() == [2, 2]


def test_idle_window_eviction_when_held_slot_is_taken():
    # Tight capacity: one slot per processor.  Datum 0 (higher reference
    # volume, placed first) sits at proc 1 in window 0 and moves to
    # proc 0 in window 1.  Datum 1 lands at proc 0 in window 0 and is
    # idle in window 1 — it would hold position, but its slot is now
    # claimed by datum 0, so the `prev`-occupied eviction branch walks
    # the processor list and relocates it to proc 1.
    counts = [
        [[0, 5], [5, 0]],
        [[2, 0], [0, 0]],
    ]
    tensor, model = tensor_1d(counts)
    cap = CapacityPlan.uniform(2, 1)

    from repro.obs import Instrumentation

    instr = Instrumentation.started()
    sched = lomcds(tensor, model, capacity=cap, instrument=instr)
    assert sched.centers[0].tolist() == [1, 0]
    # evicted: could not stay at proc 0 while idle
    assert sched.centers[1].tolist() == [0, 1]
    assert (sched.occupancy(2) <= 1).all()
    assert instr.metrics.counters["lomcds.idle_evictions"].value == 1
    assert instr.metrics.counters["lomcds.idle_holds"].value == 0

    # with room to spare the same datum holds position instead
    roomy = lomcds(tensor, model, capacity=CapacityPlan.uniform(2, 2))
    assert roomy.centers[1].tolist() == [0, 0]


def test_idle_hold_is_counted():
    # same shape but capacity 2: the idle window becomes a hold, and the
    # instrumentation counters flip accordingly
    counts = [
        [[0, 5], [5, 0]],
        [[2, 0], [0, 0]],
    ]
    tensor, model = tensor_1d(counts)

    from repro.obs import Instrumentation

    instr = Instrumentation.started()
    lomcds(tensor, model, capacity=CapacityPlan.uniform(2, 2), instrument=instr)
    assert instr.metrics.counters["lomcds.idle_holds"].value == 1
    assert instr.metrics.counters["lomcds.idle_evictions"].value == 0


def test_infeasible_raises():
    tensor, model = tensor_1d([[[1, 0]], [[0, 1]], [[1, 1]]])
    with pytest.raises(CapacityError):
        lomcds(tensor, model, capacity=CapacityPlan.uniform(2, 1))


def test_single_window_equals_scds_cost(lu8_tensor, mesh44):
    from repro.trace import single_window

    model = CostModel(mesh44)
    merged = lu8_tensor.regroup(single_window(lu8_tensor.windows.n_steps))
    a = evaluate_schedule(lomcds(merged, model), merged, model).total
    b = evaluate_schedule(scds(merged, model), merged, model).total
    assert a == b


def test_deterministic(lu8_tensor, mesh44):
    model = CostModel(mesh44)
    assert np.array_equal(
        lomcds(lu8_tensor, model).centers, lomcds(lu8_tensor, model).centers
    )
