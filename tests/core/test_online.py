"""OMCDS (online scheduler extension) tests."""

import math

import numpy as np
import pytest

from repro.core import CostModel, evaluate_schedule, gomcds, omcds
from repro.grid import Mesh1D
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def tensor_1d(counts):
    topo = Mesh1D(np.asarray(counts).shape[2])
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    return build_reference_tensor(trace, windows), CostModel(topo)


def test_stationary_workload_never_moves():
    tensor, model = tensor_1d([[[3, 0, 0, 0, 0]] * 5])
    sched = omcds(tensor, model)
    assert sched.n_movements() == 0
    assert sched.centers[0, 0] == 0


def test_infinite_hysteresis_is_static():
    tensor, model = tensor_1d([[[5, 0, 0, 0, 0], [0, 0, 0, 0, 9], [0, 0, 0, 0, 9]]])
    sched = omcds(tensor, model, hysteresis=math.inf)
    assert sched.is_static()
    # anchored at the first window's optimum (no future knowledge)
    assert sched.centers[0, 0] == 0


def test_follows_persistent_drift_eventually():
    # demand moves to proc 4 and stays: regret accumulates, then we move
    counts = [[[5, 0, 0, 0, 0]] + [[0, 0, 0, 0, 5]] * 4]
    tensor, model = tensor_1d(counts)
    sched = omcds(tensor, model, hysteresis=1.0)
    assert sched.centers[0, -1] == 4
    assert sched.n_movements() == 1


def test_hysteresis_delays_the_move():
    counts = [[[5, 0, 0, 0, 0]] + [[0, 0, 0, 0, 2]] * 5]
    tensor, model = tensor_1d(counts)
    eager = omcds(tensor, model, hysteresis=1.0)
    lazy = omcds(tensor, model, hysteresis=4.0)
    first_move = lambda s: int(np.argmax(s.centers[0] == 4))
    assert first_move(eager) < first_move(lazy)


def test_ignores_transient_blip():
    # one odd window is not worth moving for at high hysteresis
    counts = [[[5, 0, 0, 0, 0], [0, 0, 0, 0, 1], [5, 0, 0, 0, 0]]]
    tensor, model = tensor_1d(counts)
    sched = omcds(tensor, model, hysteresis=2.0)
    assert sched.n_movements() == 0


def test_online_never_beats_offline_optimum(drift, mesh44):
    tensor = drift.reference_tensor()
    model = CostModel(mesh44)
    offline = evaluate_schedule(gomcds(tensor, model), tensor, model).total
    for h in (1.0, 2.0, 4.0):
        online = evaluate_schedule(
            omcds(tensor, model, hysteresis=h), tensor, model
        ).total
        assert offline <= online


def test_online_beats_static_anchor_on_drift(drift, mesh44):
    tensor = drift.reference_tensor()
    model = CostModel(mesh44)
    moving = evaluate_schedule(omcds(tensor, model, hysteresis=1.0), tensor, model)
    frozen = evaluate_schedule(
        omcds(tensor, model, hysteresis=math.inf), tensor, model
    )
    assert moving.total < frozen.total


def test_capacity_respected(mesh44):
    rng = np.random.default_rng(8)
    from repro.grid import Mesh2D

    topo = Mesh2D(4, 4)
    counts = rng.integers(0, 3, size=(40, 4, 16))
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    plan = CapacityPlan.uniform(16, 3)
    sched = omcds(tensor, CostModel(topo), capacity=plan)
    assert (sched.occupancy(16) <= 3).all()


def test_bad_hysteresis_rejected(drift, mesh44):
    tensor = drift.reference_tensor()
    with pytest.raises(ValueError):
        omcds(tensor, CostModel(mesh44), hysteresis=0.0)
    with pytest.raises(ValueError):
        omcds(tensor, CostModel(mesh44), hysteresis=-1.0)


def test_registered_in_scheduler_registry():
    from repro.core import SCHEDULERS, get_scheduler

    # get_scheduler returns the uniformly-shaped spec wrapping the function
    assert get_scheduler("omcds").func is omcds
    assert SCHEDULERS["OMCDS"] is omcds


def test_method_label(drift, mesh44):
    tensor = drift.reference_tensor()
    sched = omcds(tensor, CostModel(mesh44), hysteresis=3.0)
    assert sched.method == "OMCDS"
    assert sched.meta["hysteresis"] == 3.0
