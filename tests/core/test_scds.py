"""SCDS (Algorithm 1) unit tests."""

import numpy as np
import pytest

from repro.core import CostModel, evaluate_schedule, scds
from repro.grid import Mesh1D
from repro.mem import CapacityError, CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def tensor_1d(counts):
    topo = Mesh1D(np.asarray(counts).shape[2])
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    return build_reference_tensor(trace, windows), CostModel(topo)


def test_places_at_merged_optimum():
    # datum referenced at procs 0 (x1) and 4 (x3): weighted median is 4
    tensor, model = tensor_1d([[[1, 0, 0, 0, 3]]])
    sched = scds(tensor, model)
    assert sched.centers[0, 0] == 4
    assert sched.is_static()


def test_merges_all_windows():
    # per-window optima differ, but merged counts favour proc 0
    tensor, model = tensor_1d([[[3, 0, 0, 0, 0], [0, 0, 0, 0, 1]]])
    sched = scds(tensor, model)
    assert set(sched.centers[0]) == {0}


def test_tie_breaks_toward_lowest_pid():
    tensor, model = tensor_1d([[[1, 0, 1]]])  # any of 0,1,2 optimal
    assert scds(tensor, model).centers[0, 0] == 0


def test_unreferenced_datum_gets_some_placement():
    tensor, model = tensor_1d([[[0, 0, 0]], [[0, 1, 0]]][::-1])
    sched = scds(tensor, model)
    assert 0 <= sched.centers[0, 0] < 3


def test_capacity_displaces_to_second_best():
    # two data both want proc 2; capacity 1 forces the lighter one away
    counts = [
        [[0, 0, 5, 0, 0]],  # heavy: claims proc 2
        [[0, 0, 2, 1, 0]],  # light: second-best is the next cheapest slot
    ]
    tensor, model = tensor_1d(counts)
    cap = CapacityPlan.uniform(5, 1)
    sched = scds(tensor, model, capacity=cap)
    assert sched.centers[0, 0] == 2
    # light datum: costs by proc = [7,5,3,... wait compute: refs 2@2, 1@3
    # cost(c) = 2|c-2| + |c-3| -> [7,5,3,2*1+0=... ] argsort -> 2 best, then 3
    assert sched.centers[1, 0] == 3


def test_capacity_respected_globally():
    rng = np.random.default_rng(0)
    counts = rng.integers(0, 3, size=(12, 2, 6))
    topo = Mesh1D(6)
    trace, windows = trace_from_counts(counts, topo)
    tensor = build_reference_tensor(trace, windows)
    cap = CapacityPlan.uniform(6, 2)
    sched = scds(tensor, CostModel(topo), capacity=cap)
    occ = sched.occupancy(6)
    assert (occ <= 2).all()


def test_capacity_infeasible_raises():
    tensor, model = tensor_1d([[[1, 0]], [[0, 1]], [[1, 1]]])
    with pytest.raises(CapacityError):
        scds(tensor, model, capacity=CapacityPlan.uniform(2, 1))


def test_deterministic(lu8_tensor, mesh44):
    model = CostModel(mesh44)
    a = scds(lu8_tensor, model)
    b = scds(lu8_tensor, model)
    assert np.array_equal(a.centers, b.centers)


def test_capacity_none_equals_large_capacity(lu8_tensor, mesh44):
    model = CostModel(mesh44)
    unconstrained = scds(lu8_tensor, model)
    loose = scds(
        lu8_tensor, model, capacity=CapacityPlan.unbounded(16, lu8_tensor.n_data)
    )
    cost_a = evaluate_schedule(unconstrained, lu8_tensor, model).total
    cost_b = evaluate_schedule(loose, lu8_tensor, model).total
    assert cost_a == cost_b


def test_method_label(lu8_tensor, mesh44):
    assert scds(lu8_tensor, CostModel(mesh44)).method == "SCDS"
