"""Movement-budgeted GOMCDS tests."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    evaluate_schedule,
    gomcds,
    gomcds_budgeted,
    movement_frontier,
    scds,
)
from repro.grid import Mesh1D, Mesh2D
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def tensor_1d(counts):
    topo = Mesh1D(np.asarray(counts).shape[2])
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    return build_reference_tensor(trace, windows), CostModel(topo)


def random_instance(seed=111, n_data=10, n_windows=4):
    rng = np.random.default_rng(seed)
    topo = Mesh2D(3, 3)
    counts = rng.integers(0, 4, size=(n_data, n_windows, 9))
    trace, windows = trace_from_counts(counts, topo)
    return build_reference_tensor(trace, windows), CostModel(topo)


class TestReductions:
    def test_zero_budget_equals_scds(self):
        tensor, model = random_instance()
        b0 = evaluate_schedule(
            gomcds_budgeted(tensor, model, 0), tensor, model
        ).total
        static = evaluate_schedule(scds(tensor, model), tensor, model).total
        assert b0 == pytest.approx(static)
        assert gomcds_budgeted(tensor, model, 0).is_static()

    def test_full_budget_equals_gomcds(self):
        tensor, model = random_instance()
        full = evaluate_schedule(
            gomcds_budgeted(tensor, model, tensor.n_windows - 1), tensor, model
        ).total
        free = evaluate_schedule(gomcds(tensor, model), tensor, model).total
        assert full == pytest.approx(free)

    def test_budget_beyond_windows_is_harmless(self):
        tensor, model = random_instance()
        a = evaluate_schedule(
            gomcds_budgeted(tensor, model, 100), tensor, model
        ).total
        b = evaluate_schedule(gomcds(tensor, model), tensor, model).total
        assert a == pytest.approx(b)


class TestMonotonicity:
    def test_cost_nonincreasing_in_budget(self):
        tensor, model = random_instance(seed=222, n_windows=5)
        costs = [
            evaluate_schedule(
                gomcds_budgeted(tensor, model, b), tensor, model
            ).total
            for b in range(5)
        ]
        for a, b in zip(costs, costs[1:]):
            assert b <= a + 1e-9

    def test_budget_binds_per_datum(self):
        tensor, model = random_instance(seed=333, n_windows=6)
        for budget in (0, 1, 2):
            schedule = gomcds_budgeted(tensor, model, budget)
            per_datum_moves = (
                schedule.centers[:, 1:] != schedule.centers[:, :-1]
            ).sum(axis=1)
            assert per_datum_moves.max() <= budget


class TestCraftedCases:
    def test_one_move_spent_wisely(self):
        # three loci; with one move, serve the two heaviest exactly
        counts = [
            [
                [9, 0, 0, 0, 0],
                [0, 0, 1, 0, 0],
                [0, 0, 0, 0, 9],
            ]
        ]
        tensor, model = tensor_1d(counts)
        schedule = gomcds_budgeted(tensor, model, 1)
        assert schedule.centers[0, 0] == 0
        assert schedule.centers[0, 2] == 4
        assert schedule.n_movements() == 1

    def test_capacity_respected(self):
        tensor, model = random_instance(seed=444, n_data=20)
        plan = CapacityPlan.uniform(9, 3)
        schedule = gomcds_budgeted(tensor, model, 2, capacity=plan)
        assert (schedule.occupancy(9) <= 3).all()

    def test_negative_budget_rejected(self):
        tensor, model = random_instance()
        with pytest.raises(ValueError):
            gomcds_budgeted(tensor, model, -1)


class TestFrontier:
    def test_frontier_monotone(self):
        tensor, model = random_instance(seed=555, n_windows=5)
        rows = movement_frontier(tensor, model, budgets=(0, 1, 2, 4))
        totals = [r["total"] for r in rows]
        assert totals == sorted(totals, reverse=True) or all(
            b <= a + 1e-9 for a, b in zip(totals, totals[1:])
        )
        assert rows[0]["moves"] == 0

    def test_frontier_replays_exactly(self):
        from repro.sim import replay_schedule
        from repro.workloads import trace_from_counts

        rng = np.random.default_rng(666)
        topo = Mesh2D(3, 3)
        counts = rng.integers(0, 4, size=(8, 4, 9))
        trace, windows = trace_from_counts(counts, topo)
        tensor = build_reference_tensor(trace, windows)
        model = CostModel(topo)
        for b in (0, 1, 3):
            schedule = gomcds_budgeted(tensor, model, b)
            analytic = evaluate_schedule(schedule, tensor, model)
            assert replay_schedule(trace, schedule, model).matches(analytic)
