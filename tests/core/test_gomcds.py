"""GOMCDS (Algorithm 2) unit tests."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    evaluate_schedule,
    gomcds,
    lomcds,
    scds,
    shortest_center_path,
)
from repro.grid import Mesh1D
from repro.mem import CapacityError, CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def tensor_1d(counts):
    topo = Mesh1D(np.asarray(counts).shape[2])
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    return build_reference_tensor(trace, windows), CostModel(topo)


class TestShortestCenterPath:
    def test_single_window(self):
        path, cost = shortest_center_path(
            np.array([[3.0, 1.0, 2.0]]), np.zeros((3, 3))
        )
        assert path.tolist() == [1]
        assert cost == 1.0

    def test_weighs_movement_against_reference(self):
        # window costs make moving to proc 2 save 1 ref unit but cost 2 hops
        window_costs = np.array([[0.0, 5.0, 9.0], [2.0, 5.0, 1.0]])
        move = np.array([[0, 1, 2], [1, 0, 1], [2, 1, 0]], dtype=float)
        path, cost = shortest_center_path(window_costs, move)
        # staying at 0: 0 + 2 = 2; moving 0->2: 0 + 2 + 1 = 3 -> stay
        assert path.tolist() == [0, 0]
        assert cost == 2.0

    def test_movement_wins_when_cheap(self):
        window_costs = np.array([[0.0, 9.0, 9.0], [9.0, 9.0, 0.0]])
        move = np.array([[0, 1, 2], [1, 0, 1], [2, 1, 0]], dtype=float)
        path, cost = shortest_center_path(window_costs, move)
        assert path.tolist() == [0, 2]
        assert cost == 2.0

    def test_disallowed_cells_masked(self):
        window_costs = np.zeros((2, 2))
        move = np.array([[0, 1], [1, 0]], dtype=float)
        allowed = np.array([[True, False], [False, True]])
        path, cost = shortest_center_path(window_costs, move, allowed)
        assert path.tolist() == [0, 1]
        assert cost == 1.0

    def test_infeasible_layer_raises(self):
        allowed = np.array([[True, True], [False, False]])
        with pytest.raises(CapacityError):
            shortest_center_path(
                np.zeros((2, 2)), np.zeros((2, 2)), allowed
            )


class TestGomcds:
    def test_beats_or_matches_scds(self, lu8_tensor, mesh44):
        model = CostModel(mesh44)
        go = evaluate_schedule(gomcds(lu8_tensor, model), lu8_tensor, model).total
        sc = evaluate_schedule(scds(lu8_tensor, model), lu8_tensor, model).total
        assert go <= sc

    def test_beats_or_matches_lomcds_realized_cost(self, lu8_tensor, mesh44):
        model = CostModel(mesh44)
        go = evaluate_schedule(gomcds(lu8_tensor, model), lu8_tensor, model).total
        lo = evaluate_schedule(lomcds(lu8_tensor, model), lu8_tensor, model).total
        assert go <= lo

    def test_ignores_weak_remote_pull(self):
        # one faraway reference is not worth a round trip
        tensor, model = tensor_1d([[[5, 0, 0, 0, 0], [0, 0, 0, 0, 1], [5, 0, 0, 0, 0]]])
        sched = gomcds(tensor, model)
        assert sched.centers[0].tolist() == [0, 0, 0]

    def test_follows_strong_remote_pull(self):
        tensor, model = tensor_1d([[[5, 0, 0, 0, 0], [0, 0, 0, 0, 9], [5, 0, 0, 0, 0]]])
        sched = gomcds(tensor, model)
        assert sched.centers[0].tolist() == [0, 4, 0]

    def test_vectorized_matches_sequential(self, drift, mesh44):
        """The all-data DP must equal per-datum shortest paths."""
        tensor = drift.reference_tensor()
        model = CostModel(mesh44)
        fast = gomcds(tensor, model)
        dist = model.distances.astype(float)
        costs = model.all_placement_costs(tensor)
        for d in range(tensor.n_data):
            path, cost = shortest_center_path(costs[d], dist)
            got = evaluate_schedule(
                fast.restricted_to(np.array([d])),
                # build a single-datum tensor view
                type(tensor)(counts=tensor.counts[d : d + 1], windows=tensor.windows),
                model,
            ).total
            assert got == pytest.approx(cost)

    def test_capacity_respected(self, mesh44):
        rng = np.random.default_rng(2)
        counts = rng.integers(0, 3, size=(40, 4, 16))
        from repro.grid import Mesh2D

        topo = Mesh2D(4, 4)
        trace, windows = trace_from_counts(counts, topo)
        tensor = build_reference_tensor(trace, windows)
        cap = CapacityPlan.uniform(16, 3)
        sched = gomcds(tensor, CostModel(topo), capacity=cap)
        assert (sched.occupancy(16) <= 3).all()

    def test_infeasible_raises(self):
        tensor, model = tensor_1d([[[1, 0]], [[0, 1]], [[1, 1]]])
        with pytest.raises(CapacityError):
            gomcds(tensor, model, capacity=CapacityPlan.uniform(2, 1))

    def test_uniform_volume_scales_cost_not_centers(self):
        # volume multiplies reference and movement alike, so the optimal
        # path is volume-invariant and the cost scales linearly
        counts = [[[3, 0, 0, 0, 0], [0, 0, 0, 0, 3]]]
        topo = Mesh1D(5)
        trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
        tensor = build_reference_tensor(trace, windows)
        unit_model = CostModel(topo)
        heavy_model = CostModel(topo, volumes=np.array([100.0]))
        light = gomcds(tensor, unit_model)
        heavy = gomcds(tensor, heavy_model)
        assert np.array_equal(light.centers, heavy.centers)
        assert evaluate_schedule(heavy, tensor, heavy_model).total == pytest.approx(
            100.0 * evaluate_schedule(light, tensor, unit_model).total
        )

    def test_deterministic(self, lu8_tensor, mesh44):
        model = CostModel(mesh44)
        assert np.array_equal(
            gomcds(lu8_tensor, model).centers, gomcds(lu8_tensor, model).centers
        )
