"""Optimal static placement (assignment oracle) tests."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    evaluate_schedule,
    gomcds,
    optimal_static_placement,
    scds,
    static_lower_bound,
)
from repro.grid import Mesh1D
from repro.mem import CapacityError, CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def make_tensor(counts, topo):
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    return build_reference_tensor(trace, windows)


def test_unconstrained_matches_scds(lu8_tensor, mesh44):
    model = CostModel(mesh44)
    opt = evaluate_schedule(
        optimal_static_placement(lu8_tensor, model), lu8_tensor, model
    ).total
    greedy = evaluate_schedule(scds(lu8_tensor, model), lu8_tensor, model).total
    assert opt == greedy


def test_never_worse_than_greedy_scds(lu8_tensor, mesh44):
    model = CostModel(mesh44)
    for mult in (1.0, 1.5, 2.0):
        cap = CapacityPlan.paper_rule(lu8_tensor.n_data, 16, mult)
        opt = evaluate_schedule(
            optimal_static_placement(lu8_tensor, model, cap), lu8_tensor, model
        ).total
        greedy = evaluate_schedule(
            scds(lu8_tensor, model, cap), lu8_tensor, model
        ).total
        assert opt <= greedy


def test_capacity_respected(lu8_tensor, mesh44):
    model = CostModel(mesh44)
    cap = CapacityPlan.paper_rule(lu8_tensor.n_data, 16, 1.0)
    sched = optimal_static_placement(lu8_tensor, model, cap)
    occ = sched.occupancy(16)
    assert (occ <= cap.capacities[None, :]).all()


def test_exact_on_crafted_swap_instance():
    """Greedy misplaces on this instance; the assignment fixes it."""
    topo = Mesh1D(2)
    # datum 0 slightly prefers proc 0; datum 1 strongly prefers proc 0.
    # greedy (priority = volume) places datum 1 first -> both happy; flip
    # volumes so greedy serves datum 0 first and strands datum 1.
    counts = [
        [[3, 2]],  # datum 0: prefers proc 1 (cost 3 at 1? compute below)
        [[0, 4]],  # datum 1: prefers proc 1 strongly
    ]
    tensor = make_tensor(counts, topo)
    model = CostModel(topo)
    cap = CapacityPlan.uniform(2, 1)
    greedy = evaluate_schedule(scds(tensor, model, cap), tensor, model).total
    opt = evaluate_schedule(
        optimal_static_placement(tensor, model, cap), tensor, model
    ).total
    assert opt <= greedy
    # brute force over both assignments confirms exactness
    totals = model.all_placement_costs(tensor).sum(axis=1)
    brute = min(
        totals[0, 0] + totals[1, 1],
        totals[0, 1] + totals[1, 0],
    )
    assert opt == pytest.approx(brute)


def test_brute_force_agreement_random():
    """Exactness on random 3-data instances vs. brute-force enumeration."""
    from itertools import permutations

    rng = np.random.default_rng(83)
    topo = Mesh1D(3)
    model = CostModel(topo)
    cap = CapacityPlan.uniform(3, 1)
    for _ in range(25):
        counts = rng.integers(0, 5, size=(3, 2, 3))
        tensor = make_tensor(counts, topo)
        totals = model.all_placement_costs(tensor).sum(axis=1)
        brute = min(
            sum(totals[d, p] for d, p in enumerate(perm))
            for perm in permutations(range(3))
        )
        opt = evaluate_schedule(
            optimal_static_placement(tensor, model, cap), tensor, model
        ).total
        assert opt == pytest.approx(brute)


def test_movement_can_beat_the_static_optimum(mesh44):
    """static_lower_bound bounds static methods only: GOMCDS may go lower."""
    topo = Mesh1D(5)
    counts = [[[9, 0, 0, 0, 0], [0, 0, 0, 0, 9]]]
    tensor = make_tensor(counts, topo)
    model = CostModel(topo)
    bound = static_lower_bound(tensor, model)
    moving = evaluate_schedule(gomcds(tensor, model), tensor, model).total
    assert moving < bound


def test_infeasible_capacity(lu8_tensor, mesh44):
    model = CostModel(mesh44)
    with pytest.raises(CapacityError):
        optimal_static_placement(
            lu8_tensor, model, CapacityPlan.uniform(16, 1)
        )
