"""Algorithm 3 (window grouping) tests."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    evaluate_schedule,
    gomcds,
    greedy_grouping,
    grouped_schedule,
    lomcds,
    optimal_grouping,
    partition_cost,
)
from repro.grid import Mesh1D
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def line_costs(counts):
    """(window_costs, move) for one datum on a 1-D array."""
    topo = Mesh1D(np.asarray(counts).shape[2])
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    tensor = build_reference_tensor(trace, windows)
    model = CostModel(topo)
    return model.all_placement_costs(tensor)[0], model.distances.astype(float)


class TestPartitionCost:
    def test_singletons_equal_lomcds_cost(self):
        costs, move = line_costs([[[3, 0, 0, 0, 0], [0, 0, 0, 0, 2]]])
        centers, total = partition_cost(costs, move, [(0, 0), (1, 1)], "local")
        assert centers.tolist() == [0, 4]
        assert total == 0 + 0 + 4  # two optimal windows + one 4-hop move

    def test_merged_group_uses_summed_costs(self):
        costs, move = line_costs([[[3, 0, 0, 0, 0], [0, 0, 0, 0, 2]]])
        centers, total = partition_cost(costs, move, [(0, 1)], "local")
        # merged: cost(c) = 3c + 2(4 - c); min at c=0 -> 8
        assert centers.tolist() == [0]
        assert total == 8.0

    def test_global_center_method(self):
        costs, move = line_costs(
            [[[3, 0, 0, 0, 0], [0, 0, 0, 0, 1], [3, 0, 0, 0, 0]]]
        )
        _c_local, local = partition_cost(
            costs, move, [(0, 0), (1, 1), (2, 2)], "local"
        )
        _c_glob, glob = partition_cost(
            costs, move, [(0, 0), (1, 1), (2, 2)], "global"
        )
        assert glob <= local

    def test_unknown_method(self):
        costs, move = line_costs([[[1, 0]]])
        with pytest.raises(ValueError):
            partition_cost(costs, move, [(0, 0)], "bogus")


class TestGreedyGrouping:
    def test_covers_all_windows_contiguously(self):
        rng = np.random.default_rng(5)
        counts = rng.integers(0, 4, size=(1, 7, 5))
        costs, move = line_costs(counts)
        partition = greedy_grouping(costs, move)
        flat = [w for first, last in partition for w in range(first, last + 1)]
        assert flat == list(range(7))

    def test_groups_stationary_windows(self):
        # identical windows: grouping them is free, so one group results
        counts = [[[2, 0, 0, 0, 1]] * 4]
        costs, move = line_costs(counts)
        assert greedy_grouping(costs, move) == [(0, 3)]

    def test_keeps_far_apart_loci_separate(self):
        counts = [
            [
                [9, 0, 0, 0, 0],
                [9, 0, 0, 0, 0],
                [0, 0, 0, 0, 9],
                [0, 0, 0, 0, 9],
            ]
        ]
        costs, move = line_costs(counts)
        partition = greedy_grouping(costs, move)
        assert partition == [(0, 1), (2, 3)]

    def test_never_worse_than_singletons(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            counts = rng.integers(0, 4, size=(1, 6, 5))
            costs, move = line_costs(counts)
            partition = greedy_grouping(costs, move)
            _c, grouped = partition_cost(costs, move, partition, "local")
            singles = [(w, w) for w in range(6)]
            _c, ungrouped = partition_cost(costs, move, singles, "local")
            assert grouped <= ungrouped


class TestOptimalGrouping:
    def test_never_worse_than_greedy(self):
        rng = np.random.default_rng(13)
        for _ in range(20):
            counts = rng.integers(0, 4, size=(1, 6, 5))
            costs, move = line_costs(counts)
            _c, greedy = partition_cost(
                costs, move, greedy_grouping(costs, move), "local"
            )
            _c, optimal = partition_cost(
                costs, move, optimal_grouping(costs, move), "local"
            )
            assert optimal <= greedy

    def test_valid_partition(self):
        rng = np.random.default_rng(17)
        counts = rng.integers(0, 4, size=(1, 8, 4))
        costs, move = line_costs(counts)
        partition = optimal_grouping(costs, move)
        flat = [w for first, last in partition for w in range(first, last + 1)]
        assert flat == list(range(8))


class TestGroupedSchedule:
    def test_improves_or_matches_lomcds(self, drift, mesh44):
        tensor = drift.reference_tensor()
        model = CostModel(mesh44)
        plain = evaluate_schedule(lomcds(tensor, model), tensor, model).total
        grouped = evaluate_schedule(
            grouped_schedule(tensor, model, center_method="local"), tensor, model
        ).total
        assert grouped <= plain

    def test_gomcds_lower_bounds_local_grouping(self, drift, mesh44):
        tensor = drift.reference_tensor()
        model = CostModel(mesh44)
        bound = evaluate_schedule(gomcds(tensor, model), tensor, model).total
        for strategy in ("greedy", "optimal"):
            got = evaluate_schedule(
                grouped_schedule(tensor, model, strategy=strategy), tensor, model
            ).total
            assert bound <= got

    def test_capacity_respected(self, mesh44):
        rng = np.random.default_rng(3)
        from repro.grid import Mesh2D

        topo = Mesh2D(4, 4)
        counts = rng.integers(0, 3, size=(40, 5, 16))
        trace, windows = trace_from_counts(counts, topo)
        tensor = build_reference_tensor(trace, windows)
        cap = CapacityPlan.uniform(16, 3)
        for assign in ("local", "global"):
            sched = grouped_schedule(
                tensor, CostModel(topo), capacity=cap, assign_method=assign
            )
            assert (sched.occupancy(16) <= 3).all()

    def test_global_assignment_not_worse_than_local(self, drift, mesh44):
        tensor = drift.reference_tensor()
        model = CostModel(mesh44)
        local = evaluate_schedule(
            grouped_schedule(tensor, model, assign_method="local"), tensor, model
        ).total
        glob = evaluate_schedule(
            grouped_schedule(tensor, model, assign_method="global"), tensor, model
        ).total
        assert glob <= local

    def test_centers_constant_within_groups(self, drift, mesh44):
        tensor = drift.reference_tensor()
        model = CostModel(mesh44)
        sched = grouped_schedule(tensor, model)
        partitions = sched.meta["partitions"]
        for d, partition in partitions.items():
            for first, last in partition:
                group = sched.centers[d, first : last + 1]
                assert len(set(group.tolist())) == 1

    def test_unknown_strategy(self, drift, mesh44):
        tensor = drift.reference_tensor()
        with pytest.raises(ValueError):
            grouped_schedule(tensor, CostModel(mesh44), strategy="bogus")


class TestTightMemoryFallback:
    def test_grouped_datum_with_no_common_slot_degrades_gracefully(self):
        """Hypothesis-found corner: a group may have no processor free in
        every member window even though each window has slots; the datum
        must fall back to per-window placement instead of failing."""
        import numpy as np

        from repro.grid import Mesh1D
        from repro.mem import CapacityPlan
        from repro.trace import build_reference_tensor
        from repro.workloads import trace_from_counts

        topo = Mesh1D(6)
        counts = np.zeros((5, 4, 6), dtype=np.int64)
        counts[0, 0, 1] = 2
        counts[0, 0, 2] = 2
        counts[0, 1, 0] = 1
        counts[0, 1, 3] = 3
        trace, windows = trace_from_counts(counts, topo)
        tensor = build_reference_tensor(trace, windows)
        model = CostModel(topo)
        plan = CapacityPlan.uniform(6, 1)
        for assign in ("local", "global"):
            sched = grouped_schedule(
                tensor, model, capacity=plan, assign_method=assign
            )
            occ = sched.occupancy(6)
            assert (occ <= 1).all()

    def test_fallback_releases_partial_claims(self):
        """After a failed grouped assignment the tracker must hold exactly
        one slot per (datum, window) — no leaked claims."""
        import numpy as np

        from repro.grid import Mesh1D
        from repro.mem import CapacityPlan
        from repro.trace import build_reference_tensor
        from repro.workloads import trace_from_counts

        rng = np.random.default_rng(77)
        topo = Mesh1D(6)
        counts = rng.integers(0, 4, size=(6, 4, 6))
        trace, windows = trace_from_counts(counts, topo)
        tensor = build_reference_tensor(trace, windows)
        model = CostModel(topo)
        plan = CapacityPlan.uniform(6, 1)
        sched = grouped_schedule(tensor, model, capacity=plan)
        occ = sched.occupancy(6)
        assert occ.sum() == 6 * 4  # one slot per datum per window
        assert (occ <= 1).all()
