"""Replication extension tests."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    evaluate_replicated,
    evaluate_schedule,
    greedy_k_median,
    replicated_scds,
    scds,
)
from repro.grid import Mesh1D, Mesh2D
from repro.mem import CapacityError, CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def tensor_1d(counts):
    topo = Mesh1D(np.asarray(counts).shape[2])
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    return build_reference_tensor(trace, windows), CostModel(topo)


class TestGreedyKMedian:
    def test_k1_is_weighted_median(self):
        dist = Mesh1D(5).distance_matrix().astype(float)
        demand = np.array([1.0, 0, 0, 0, 3.0])
        assert greedy_k_median(demand, dist, 1) == [4]

    def test_two_demands_two_sites(self):
        dist = Mesh1D(5).distance_matrix().astype(float)
        demand = np.array([2.0, 0, 0, 0, 2.0])
        assert greedy_k_median(demand, dist, 2) == [0, 4]

    def test_stops_early_when_no_gain(self):
        dist = Mesh1D(5).distance_matrix().astype(float)
        demand = np.array([0, 0, 5.0, 0, 0])
        # one site already gives cost 0; extra replicas add nothing
        assert greedy_k_median(demand, dist, 3) == [2]

    def test_respects_allowed_mask(self):
        dist = Mesh1D(4).distance_matrix().astype(float)
        demand = np.array([5.0, 0, 0, 0])
        allowed = np.array([False, True, True, True])
        assert greedy_k_median(demand, dist, 1, allowed) == [1]

    def test_all_blocked_raises(self):
        dist = Mesh1D(3).distance_matrix().astype(float)
        with pytest.raises(CapacityError):
            greedy_k_median(np.ones(3), dist, 1, np.zeros(3, dtype=bool))

    def test_bad_k(self):
        dist = Mesh1D(3).distance_matrix().astype(float)
        with pytest.raises(ValueError):
            greedy_k_median(np.ones(3), dist, 0)

    def test_monotone_in_k(self):
        rng = np.random.default_rng(41)
        dist = Mesh2D(3, 3).distance_matrix().astype(float)
        for _ in range(20):
            demand = rng.integers(0, 5, size=9).astype(float)
            costs = []
            for k in (1, 2, 3, 4):
                sites = greedy_k_median(demand, dist, k)
                nearest = dist[:, sites].min(axis=1)
                costs.append(float(demand @ nearest))
            assert costs == sorted(costs, reverse=True)
            for a, b in zip(costs, costs[1:]):
                assert b <= a


class TestReplicatedScds:
    def test_k1_matches_scds_cost(self, lu8_tensor, mesh44):
        model = CostModel(mesh44)
        placement = replicated_scds(lu8_tensor, model, k=1)
        repl_cost = evaluate_replicated(placement, lu8_tensor, model)
        scds_cost = evaluate_schedule(
            scds(lu8_tensor, model), lu8_tensor, model
        ).total
        assert repl_cost == pytest.approx(scds_cost)

    def test_more_copies_never_hurt_unconstrained(self, lu8_tensor, mesh44):
        model = CostModel(mesh44)
        costs = [
            evaluate_replicated(
                replicated_scds(lu8_tensor, model, k=k), lu8_tensor, model
            )
            for k in (1, 2, 3)
        ]
        for a, b in zip(costs, costs[1:]):
            assert b <= a

    def test_split_demand_goes_to_zero_with_two_copies(self):
        # each datum referenced from the two ends of the line
        tensor, model = tensor_1d([[[4, 0, 0, 0, 4]], [[2, 0, 0, 0, 2]]])
        placement = replicated_scds(tensor, model, k=2)
        assert evaluate_replicated(placement, tensor, model) == 0.0
        assert placement.replicas[0] == (0, 4)

    def test_capacity_respected(self, mesh44):
        rng = np.random.default_rng(9)
        counts = rng.integers(0, 4, size=(40, 2, 16))
        topo = Mesh2D(4, 4)
        trace, windows = trace_from_counts(counts, topo)
        tensor = build_reference_tensor(trace, windows)
        plan = CapacityPlan.uniform(16, 4)
        placement = replicated_scds(tensor, model=CostModel(topo), k=3, capacity=plan)
        occ = placement.occupancy(16)
        assert (occ <= 4).all()
        # every datum has at least one copy
        assert all(len(r) >= 1 for r in placement.replicas)

    def test_slot_reservation_under_pressure(self):
        # 4 data on 2 procs with capacity 2: exactly one copy each fits
        tensor, model = tensor_1d(
            [[[3, 1]], [[1, 3]], [[2, 2]], [[1, 1]]]
        )
        plan = CapacityPlan.uniform(2, 2)
        placement = replicated_scds(tensor, model, k=2, capacity=plan)
        assert placement.total_copies() == 4
        assert all(len(r) == 1 for r in placement.replicas)

    def test_mismatched_tensor_rejected(self, lu8_tensor, mesh44, tiny_tensor):
        model = CostModel(mesh44)
        placement = replicated_scds(lu8_tensor, model, k=1)
        with pytest.raises(ValueError):
            evaluate_replicated(placement, tiny_tensor, model)
