"""Schedule unit tests."""

import numpy as np
import pytest

from repro.core import Schedule
from repro.trace import windows_by_step_count


@pytest.fixture
def windows3():
    return windows_by_step_count(6, 2)


def test_static_broadcast(windows3):
    sched = Schedule.static(np.array([1, 4, 2]), windows3)
    assert sched.centers.shape == (3, 3)
    assert sched.is_static()
    assert sched.n_movements() == 0
    assert sched.center_of(1, 2) == 4


def test_initial_placement(windows3):
    centers = np.array([[0, 1, 2], [3, 3, 3]])
    sched = Schedule(centers=centers, windows=windows3)
    assert sched.initial_placement().tolist() == [0, 3]


def test_movements_listing(windows3):
    centers = np.array([[0, 1, 1], [3, 3, 0]])
    sched = Schedule(centers=centers, windows=windows3)
    assert sched.movements() == [(0, 1, 0, 1), (1, 2, 3, 0)]
    assert sched.n_movements() == 2
    assert not sched.is_static()


def test_single_window_has_no_movements():
    windows = windows_by_step_count(4, 4)
    sched = Schedule(centers=np.array([[2]]), windows=windows)
    assert sched.movements() == []
    assert sched.n_movements() == 0


def test_occupancy(windows3):
    centers = np.array([[0, 1, 1], [0, 0, 1]])
    sched = Schedule(centers=centers, windows=windows3)
    occ = sched.occupancy(n_procs=3)
    assert occ[0].tolist() == [2, 0, 0]
    assert occ[1].tolist() == [1, 1, 0]
    assert occ[2].tolist() == [0, 2, 0]


def test_occupancy_with_movements_counts_every_window(windows3):
    # A moving datum occupies its old center before the boundary and its
    # new center after it; totals per window always equal n_data.
    centers = np.array([[0, 2, 2], [0, 0, 2], [1, 1, 1]])
    sched = Schedule(centers=centers, windows=windows3)
    occ = sched.occupancy(n_procs=3)
    assert occ.tolist() == [[2, 1, 0], [1, 1, 1], [0, 1, 2]]
    assert (occ.sum(axis=1) == sched.n_data).all()
    # Matches the naive per-window accumulation.
    naive = np.zeros((3, 3), dtype=np.int64)
    for w in range(3):
        np.add.at(naive[w], centers[:, w], 1)
    assert (occ == naive).all()


def test_occupancy_rejects_out_of_range_centers(windows3):
    sched = Schedule(centers=np.array([[0, 1, 5]]), windows=windows3)
    with pytest.raises(ValueError, match=r"\[SCH001\].*outside the 3-processor"):
        sched.occupancy(n_procs=3)
    with pytest.raises(ValueError, match="positive"):
        sched.occupancy(n_procs=0)


def test_restricted_to(windows3):
    centers = np.array([[0, 1, 1], [3, 3, 0], [2, 2, 2]])
    sched = Schedule(centers=centers, windows=windows3, method="x")
    sub = sched.restricted_to(np.array([2, 0]))
    assert sub.centers.tolist() == [[2, 2, 2], [0, 1, 1]]
    assert sub.method == "x"


def test_restricted_to_boolean_mask(windows3):
    centers = np.array([[0, 1, 1], [3, 3, 0], [2, 2, 2]])
    sched = Schedule(centers=centers, windows=windows3)
    sub = sched.restricted_to(np.array([True, False, True]))
    assert sub.centers.tolist() == [[0, 1, 1], [2, 2, 2]]
    occ = sub.occupancy(n_procs=4)
    assert (occ.sum(axis=1) == 2).all()


def test_restricted_to_validates_selection(windows3):
    centers = np.array([[0, 1, 1], [3, 3, 0], [2, 2, 2]])
    sched = Schedule(centers=centers, windows=windows3)
    with pytest.raises(ValueError, match="outside 0..2"):
        sched.restricted_to(np.array([0, 3]))
    with pytest.raises(ValueError, match="outside 0..2"):
        sched.restricted_to(np.array([-1]))  # no silent wrap-around
    with pytest.raises(ValueError, match="duplicates"):
        sched.restricted_to(np.array([1, 1]))
    with pytest.raises(ValueError, match="boolean mask"):
        sched.restricted_to(np.array([True, False]))
    with pytest.raises(ValueError, match="1-D"):
        sched.restricted_to(np.array([[0, 1]]))


def test_validation(windows3):
    with pytest.raises(ValueError):
        Schedule(centers=np.array([0, 1, 2]), windows=windows3)  # 1-D
    with pytest.raises(ValueError):
        Schedule(centers=np.zeros((2, 5), dtype=int), windows=windows3)
    with pytest.raises(ValueError):
        Schedule(centers=-np.ones((2, 3), dtype=int), windows=windows3)
    with pytest.raises(ValueError):
        Schedule.static(np.zeros((2, 2), dtype=int), windows3)
