"""Analytic evaluator unit tests (hand-computed costs)."""

import numpy as np
import pytest

from repro.core import CostModel, Schedule, evaluate_schedule, per_datum_costs
from repro.grid import Mesh1D, Mesh2D
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def make(counts, topo):
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    return build_reference_tensor(trace, windows), windows


class TestHandComputed:
    def test_static_1d(self):
        topo = Mesh1D(4)
        # datum 0: window 0 refs 2x at proc 0; window 1 refs 1x at proc 3
        tensor, windows = make([[[2, 0, 0, 0], [0, 0, 0, 1]]], topo)
        sched = Schedule.static(np.array([1]), windows)
        out = evaluate_schedule(sched, tensor, CostModel(topo))
        # refs: 2*|1-0| + 1*|1-3| = 4; no movement
        assert out.reference_cost == 4.0
        assert out.movement_cost == 0.0
        assert out.total == 4.0

    def test_movement_charged(self):
        topo = Mesh1D(4)
        tensor, windows = make([[[2, 0, 0, 0], [0, 0, 0, 1]]], topo)
        sched = Schedule(centers=np.array([[0, 3]]), windows=windows)
        out = evaluate_schedule(sched, tensor, CostModel(topo))
        assert out.reference_cost == 0.0
        assert out.movement_cost == 3.0  # one move 0 -> 3

    def test_volumes_scale_both_components(self):
        topo = Mesh1D(4)
        tensor, windows = make([[[1, 0, 0, 0], [0, 0, 0, 1]]], topo)
        sched = Schedule(centers=np.array([[1, 2]]), windows=windows)
        model = CostModel(topo, volumes=np.array([3.0]))
        out = evaluate_schedule(sched, tensor, model)
        assert out.reference_cost == 3.0 * (1 + 1)
        assert out.movement_cost == 3.0 * 1

    def test_2d_costs(self, mesh44):
        counts = np.zeros((1, 1, 16), dtype=np.int64)
        counts[0, 0, mesh44.pid(3, 3)] = 2
        tensor, windows = make(counts, mesh44)
        sched = Schedule.static(np.array([mesh44.pid(0, 0)]), windows)
        out = evaluate_schedule(sched, tensor, CostModel(mesh44))
        assert out.total == 12.0  # 2 refs x 6 hops

    def test_per_datum_decomposition_sums_to_total(self, tiny_tensor, mesh23):
        model = CostModel(mesh23)
        centers = np.array([[0, 2, 5], [4, 4, 4]])
        sched = Schedule(centers=centers, windows=tiny_tensor.windows)
        ref, move = per_datum_costs(sched, tiny_tensor, model)
        out = evaluate_schedule(sched, tiny_tensor, model)
        assert ref.sum() == out.reference_cost
        assert move.sum() == out.movement_cost
        # datum 1 never moves
        assert move[1] == 0.0


class TestBreakdownAlgebra:
    def test_addition(self):
        from repro.core import CostBreakdown

        a = CostBreakdown(1.0, 2.0)
        b = CostBreakdown(10.0, 20.0)
        s = a + b
        assert (s.reference_cost, s.movement_cost, s.total) == (11.0, 22.0, 33.0)


class TestValidation:
    def test_mismatched_data(self, tiny_tensor, mesh23):
        sched = Schedule.static(np.array([0]), tiny_tensor.windows)
        with pytest.raises(ValueError):
            evaluate_schedule(sched, tiny_tensor, CostModel(mesh23))

    def test_mismatched_windows(self, tiny_tensor, mesh23):
        from repro.trace import windows_by_step_count

        sched = Schedule.static(np.array([0, 1]), windows_by_step_count(3, 2))
        with pytest.raises(ValueError):
            evaluate_schedule(sched, tiny_tensor, CostModel(mesh23))

    def test_mismatched_model(self, tiny_tensor):
        sched = Schedule.static(np.array([0, 1]), tiny_tensor.windows)
        with pytest.raises(ValueError):
            evaluate_schedule(sched, tiny_tensor, CostModel(Mesh2D(5, 5)))

    def test_center_outside_array(self, tiny_tensor, mesh23):
        sched = Schedule.static(np.array([0, 10]), tiny_tensor.windows)
        with pytest.raises(ValueError):
            evaluate_schedule(sched, tiny_tensor, CostModel(mesh23))
