"""Cost-graph (Algorithm 2 DAG) tests: structure + oracle agreement."""

import networkx as nx
import numpy as np
import pytest

from repro.core import CostModel, build_cost_graph, shortest_center_path, solve_cost_graph
from repro.core.costgraph import SINK, SOURCE, gomcds_via_graph


class TestStructure:
    def test_node_and_edge_counts(self):
        window_costs = np.zeros((3, 4))
        graph = build_cost_graph(window_costs, np.zeros((4, 4)))
        # s, d, and 3*4 window nodes
        assert graph.number_of_nodes() == 2 + 12
        # s->layer0 (4) + 2 full bipartite layers (2*16) + layer2->d (4)
        assert graph.number_of_edges() == 4 + 32 + 4

    def test_edge_weights_match_definition(self):
        window_costs = np.array([[1.0, 2.0], [3.0, 4.0]])
        move = np.array([[0.0, 5.0], [5.0, 0.0]])
        graph = build_cost_graph(window_costs, move)
        assert graph[SOURCE][(0, 0)]["weight"] == 1.0
        assert graph[SOURCE][(0, 1)]["weight"] == 2.0
        # (0, j) -> (1, k): move[j, k] + window_costs[1, k]
        assert graph[(0, 0)][(1, 1)]["weight"] == 5.0 + 4.0
        assert graph[(0, 1)][(1, 1)]["weight"] == 0.0 + 4.0
        assert graph[(1, 0)][SINK]["weight"] == 0.0

    def test_disallowed_cells_omitted(self):
        allowed = np.array([[True, False], [True, True]])
        graph = build_cost_graph(np.zeros((2, 2)), np.zeros((2, 2)), allowed)
        assert (0, 1) not in graph
        assert (1, 1) in graph

    def test_is_dag(self):
        graph = build_cost_graph(np.zeros((4, 3)), np.zeros((3, 3)))
        assert nx.is_directed_acyclic_graph(graph)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            build_cost_graph(np.zeros((2, 3)), np.zeros((2, 2)))


class TestSolve:
    def test_path_length_and_cost(self):
        window_costs = np.array([[0.0, 9.0], [9.0, 0.0]])
        move = np.array([[0.0, 1.0], [1.0, 0.0]])
        graph = build_cost_graph(window_costs, move)
        centers, cost = solve_cost_graph(graph, n_windows=2)
        assert centers.tolist() == [0, 1]
        assert cost == 1.0

    def test_agrees_with_dp_on_random_instances(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            n_windows = int(rng.integers(1, 6))
            n_procs = int(rng.integers(2, 7))
            window_costs = rng.integers(0, 20, size=(n_windows, n_procs)).astype(float)
            move = np.abs(
                np.subtract.outer(np.arange(n_procs), np.arange(n_procs))
            ).astype(float)
            graph = build_cost_graph(window_costs, move)
            _g_centers, g_cost = solve_cost_graph(graph, n_windows)
            _d_centers, d_cost = shortest_center_path(window_costs, move)
            assert g_cost == pytest.approx(d_cost)

    def test_agrees_with_dp_under_masks(self):
        rng = np.random.default_rng(7)
        for _ in range(15):
            n_windows, n_procs = 4, 5
            window_costs = rng.integers(0, 10, size=(n_windows, n_procs)).astype(float)
            move = np.abs(
                np.subtract.outer(np.arange(n_procs), np.arange(n_procs))
            ).astype(float)
            allowed = rng.random((n_windows, n_procs)) > 0.3
            allowed[:, 0] = True  # keep it feasible
            graph = build_cost_graph(window_costs, move, allowed)
            _g, g_cost = solve_cost_graph(graph, n_windows)
            _d, d_cost = shortest_center_path(window_costs, move, allowed)
            assert g_cost == pytest.approx(d_cost)

    def test_gomcds_via_graph_matches_scheduler(self, drift, mesh44):
        from repro.core import evaluate_schedule, gomcds

        tensor = drift.reference_tensor()
        model = CostModel(mesh44)
        schedule = gomcds(tensor, model)
        for d in (0, 3, 7):
            centers, cost = gomcds_via_graph(tensor, model, d)
            single = type(tensor)(
                counts=tensor.counts[d : d + 1], windows=tensor.windows
            )
            dp_cost = evaluate_schedule(
                schedule.restricted_to(np.array([d])), single, model
            ).total
            assert cost == pytest.approx(dp_cost)
