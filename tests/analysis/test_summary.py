"""Report-generator tests (fast configuration)."""

from repro.analysis import generate_report, write_report


def test_report_contains_all_sections(tmp_path):
    report = generate_report(sizes=(8,), include_ablations=False)
    assert "# Measured results" in report
    assert "## Figure 1" in report
    assert "## Table 1" in report
    assert "## Table 2" in report
    assert "## Extended suite" in report
    assert "Ablation" not in report  # disabled


def test_write_report_roundtrip(tmp_path):
    path = write_report(tmp_path / "report.md", sizes=(8,), include_ablations=False)
    text = path.read_text()
    assert "## Table 1" in text
    assert text.endswith("\n")


def test_markdown_tables_well_formed(tmp_path):
    report = generate_report(sizes=(8,), include_ablations=False)
    table_lines = [l for l in report.splitlines() if l.startswith("|")]
    assert table_lines, "expected at least one markdown table"
    # each table line has a consistent cell count within its block
    assert all(l.count("|") >= 3 for l in table_lines)
