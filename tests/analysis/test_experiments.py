"""Experiment-harness tests (small configurations)."""

import pytest

from repro.analysis import (
    ablation_array_size,
    ablation_grouping_strategy,
    ablation_memory_pressure,
    ablation_window_size,
    run_figure1,
    run_table1,
    run_table2,
)


class TestFigure1:
    def test_scheduler_ordering(self):
        r = run_figure1()
        # the paper's story: single center worst, global movement best
        assert r.gomcds_cost <= r.lomcds_cost < r.scds_cost

    def test_lomcds_chases_every_window(self):
        r = run_figure1()
        # LOMCDS jumps to the east edge in window 1; GOMCDS does not
        assert r.lomcds_centers[1] == (1, 3)
        assert r.gomcds_centers[1] != (1, 3)

    def test_known_costs(self):
        r = run_figure1()
        assert r.scds_cost == 20.0
        assert r.lomcds_cost == 16.0
        assert r.gomcds_cost == 13.0


class TestTables:
    @pytest.fixture(scope="class")
    def table1(self):
        return run_table1(sizes=(8,), benchmarks=(1, 2, 5))

    @pytest.fixture(scope="class")
    def table2(self):
        return run_table2(sizes=(8,), benchmarks=(1, 2, 5))

    def test_table1_shape(self, table1):
        assert len(table1.rows) == 3
        assert table1.scheduler_names == ("SCDS", "LOMCDS", "GOMCDS")

    def test_gomcds_always_at_least_ties_scds(self, table1):
        for row in table1.rows:
            assert row.result_for("GOMCDS").cost <= row.result_for("SCDS").cost

    def test_schedulers_never_lose_to_sf_overall(self, table1):
        # GOMCDS beats the straight-forward baseline on every benchmark
        for row in table1.rows:
            assert row.result_for("GOMCDS").improvement >= 0

    def test_table2_grouping_helps_lomcds(self, table1, table2):
        for r1, r2 in zip(table1.rows, table2.rows):
            assert r2.result_for("LOMCDS").cost <= r1.result_for("LOMCDS").cost

    def test_table2_scds_column_unchanged(self, table1, table2):
        # SCDS is grouping-invariant
        for r1, r2 in zip(table1.rows, table2.rows):
            assert r1.result_for("SCDS").cost == r2.result_for("SCDS").cost


class TestAblations:
    def test_window_size_rows(self):
        rows = ablation_window_size(bench=1, n=8, steps_per_window=(1, 4))
        assert [r["steps_per_window"] for r in rows] == [1, 4]
        for row in rows:
            assert row["GOMCDS"] <= row["SCDS"]

    def test_finer_windows_never_hurt_gomcds(self):
        rows = ablation_window_size(bench=1, n=8, steps_per_window=(1, 2, 4, 14))
        costs = [r["GOMCDS"] for r in rows]
        assert costs == sorted(costs)  # refining windows only helps GOMCDS

    def test_array_size_rows(self):
        rows = ablation_array_size(bench=1, n=8, meshes=((2, 2), (4, 4)))
        assert rows[0]["mesh"] == "2x2"
        assert all(r["GOMCDS"] <= r["sf"] for r in rows)

    def test_memory_pressure_monotone_for_gomcds(self):
        rows = ablation_memory_pressure(bench=1, n=8, multipliers=(1.0, 2.0, 4.0))
        costs = [r["GOMCDS"] for r in rows]
        # looser memory can only help (ties allowed)
        assert costs[0] >= costs[-1]

    def test_grouping_strategy_ordering(self):
        out = ablation_grouping_strategy(bench=5, n=8)
        assert (
            out["GOMCDS bound"]
            <= out["optimal grouping"]
            <= out["greedy grouping"]
        )
        assert out["greedy grouping"] <= out["LOMCDS (no grouping)"]
