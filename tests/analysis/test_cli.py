"""CLI smoke tests (small configurations through the real entry point)."""

import pytest

from repro.cli import EXIT_CONFIG_ERROR, EXIT_OK, EXIT_UNREACHABLE_DATA, main


def run(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_figure1(capsys):
    out = run(capsys, "figure1")
    assert "SCDS" in out and "GOMCDS" in out
    assert "cost" in out


def test_table1_fast(capsys):
    out = run(capsys, "table1", "--fast", "--benchmarks", "1", "--sizes", "8")
    assert "Table 1" in out
    assert "8x8" in out
    assert "avg" in out


def test_table2_custom_mesh(capsys):
    out = run(
        capsys, "table2", "--benchmarks", "1", "--sizes", "8", "--mesh", "2", "2"
    )
    assert "2x2" in out


def test_capacity_multiplier_flag(capsys):
    out = run(
        capsys,
        "table1",
        "--benchmarks",
        "2",
        "--sizes",
        "8",
        "--capacity-multiplier",
        "4.0",
    )
    assert "Table 1" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_subcommand():
    with pytest.raises(SystemExit):
        main(["tablex"])


def test_extended_command(capsys):
    out = run(capsys, "extended")
    assert "Extended suite" in out
    assert "fft" not in out  # table shows sizes, not names, in rows
    assert "256" in out


def test_faults_fault_free_exits_ok(capsys):
    # no faults at all: every reference delivered, exit 0
    assert main(["faults"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "completion_pct: 100.0" in out
    assert "unreachable: 0" in out


def test_faults_with_drops_reports_retries(capsys):
    code = main(["faults", "--drop-rate", "0.1"])
    out = capsys.readouterr().out
    assert code in (EXIT_OK, EXIT_UNREACHABLE_DATA)
    assert "retried:" in out and "dropped:" in out


def test_faults_config_error_exit_code(capsys):
    # pid outside the 4x4 array is a configuration error -> exit 2
    assert main(["faults", "--fail-node", "99"]) == EXIT_CONFIG_ERROR
    err = capsys.readouterr().err
    assert "error:" in err
    assert "99" in err and "16 processors" in err


def test_faults_bad_drop_rate_exit_code(capsys):
    assert main(["faults", "--drop-rate", "1.5"]) == EXIT_CONFIG_ERROR
    assert "[0, 1]" in capsys.readouterr().err


def test_faults_unreachable_exit_code(capsys):
    # a dead node with evacuation disabled strands its residents -> exit 3
    code = main(["faults", "--fail-node", "5", "--no-evacuate"])
    captured = capsys.readouterr()
    assert code == EXIT_UNREACHABLE_DATA
    assert "unreachable" in captured.err


def test_faults_exit_codes_are_deterministic():
    # the same invocation always lands on the same exit code
    argv = ["faults", "--node-rate", "0.2", "--fault-seed", "4"]
    codes = {main(argv) for _ in range(3)}
    assert len(codes) == 1


def test_faults_sweep_renders_table(capsys):
    code = main(
        ["faults", "--sweep", "--drop-rate", "0.05", "--reschedule"]
    )
    out = capsys.readouterr().out
    assert code in (EXIT_OK, EXIT_UNREACHABLE_DATA)
    assert "node_rate" in out and "completion_pct" in out


def test_all_ablation_commands(capsys):
    for command in (
        "ablation-window",
        "ablation-array",
        "ablation-memory",
        "ablation-grouping",
        "ablation-partition",
        "ablation-online",
        "ablation-replication",
        "ablation-refine",
        "ablation-segmentation",
        "ablation-static",
    ):
        out = run(capsys, command)
        assert out.strip(), command


def test_metrics_flag_records_any_subcommand(tmp_path, capsys):
    import json

    path = tmp_path / "metrics.jsonl"
    run(capsys, "figure1", "--metrics", str(path))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    names = {r["name"] for r in records if r["type"] == "span"}
    # figure1 runs all three offline schedulers under the active session
    assert {"scheduler.scds", "scheduler.lomcds", "scheduler.gomcds"} <= names


def test_metrics_flag_composes_with_profile(tmp_path, capsys):
    import json

    path = tmp_path / "metrics.jsonl"
    run(
        capsys,
        "profile", "--benchmarks", "1", "--size", "8",
        "--metrics", str(path),
    )
    records = [json.loads(line) for line in path.read_text().splitlines()]
    # profile joins the active --metrics session instead of forking one
    assert any(
        r["type"] == "span" and r["name"] == "profile.instance"
        for r in records
    )


def test_profile_spatial_flag_exports_telemetry(capsys):
    out = run(
        capsys,
        "profile", "--benchmarks", "1", "--size", "8", "--spatial",
    )
    assert "Spatial telemetry:" in out
    assert "link load:" in out
    assert "congestion[GOMCDS]" in out


def test_heatmap_command(capsys):
    code = main(["heatmap", "--bench", "1", "--size", "8"])
    out = capsys.readouterr().out
    assert code in (0, 1)  # warnings allowed, errors are not
    assert "Spatial telemetry (benchmark 1" in out
    assert "processor traffic (send+recv):" in out
    assert "peak storage:" in out
    assert "link load:" in out
    assert "congestion[GOMCDS]" in out


def test_heatmap_thresholds_drive_exit_code(capsys):
    # impossible hotspot factor + gini threshold 1.0: nothing can fire
    assert (
        main(
            [
                "heatmap", "--bench", "1", "--size", "8",
                "--hotspot-factor", "1e9", "--gini-threshold", "1.0",
            ]
        )
        == 0
    )
    # gini threshold 0 flags any nonuniform load as a warning
    assert (
        main(
            [
                "heatmap", "--bench", "1", "--size", "8",
                "--hotspot-factor", "1e9", "--gini-threshold", "0.0",
            ]
        )
        == 1
    )
    capsys.readouterr()


def _bench_report_file(tmp_path, name="base.json", **overrides):
    import json

    from repro.analysis import run_bench_suite

    report = run_bench_suite(size=8, benchmarks=(1,), repeats=1)
    for key, value in overrides.items():
        report["results"][0][key] = value
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return path, report


def test_bench_compare_identical_files_exit_zero(tmp_path, capsys):
    path, _ = _bench_report_file(tmp_path)
    code = main(
        [
            "bench-compare", "--baseline", str(path), "--fresh", str(path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "bench-compare: OK" in out


def test_bench_compare_detects_injected_cost_regression(tmp_path, capsys):
    base, report = _bench_report_file(tmp_path)
    fresh, _ = _bench_report_file(
        tmp_path, name="fresh.json",
        gomcds_cost=report["results"][0]["gomcds_cost"] + 5.0,
    )
    code = main(
        ["bench-compare", "--baseline", str(base), "--fresh", str(fresh)]
    )
    out = capsys.readouterr().out
    assert code == 2
    assert "REG001" in out


def test_bench_compare_json_output(tmp_path, capsys):
    import json

    base, _ = _bench_report_file(tmp_path)
    out_path = tmp_path / "cmp.json"
    code = main(
        [
            "bench-compare", "--baseline", str(base), "--fresh", str(base),
            "--format", "json", "--output", str(out_path),
        ]
    )
    capsys.readouterr()
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["kind"] == "bench_comparison"
    assert payload["exit_code"] == 0


def test_bench_compare_missing_baseline_is_config_error(capsys):
    code = main(["bench-compare", "--baseline", "does/not/exist.json"])
    capsys.readouterr()
    assert code == EXIT_CONFIG_ERROR


def test_batch_human_output_prints_cache_summary(capsys):
    out = run(
        capsys,
        "batch", "--benchmarks", "1", "--sizes", "8",
        "--schedulers", "GOMCDS", "GOMCDS",
    )
    assert "hit rate" in out
    # the duplicate scheduler dedups: 2 requests, 1 solved
    assert "1 dedup save(s)" in out
    assert "2 request(s)" in out


def test_batch_telemetry_flag_writes_merged_session(tmp_path, capsys):
    import json

    path = tmp_path / "batch.jsonl"
    out = run(
        capsys,
        "batch", "--benchmarks", "1", "--sizes", "8", "--workers", "2",
        "--schedulers", "SCDS", "GOMCDS", "--telemetry", str(path),
    )
    assert f"wrote telemetry to {path}" in out
    records = [json.loads(line) for line in path.read_text().splitlines()]
    types = {r["type"] for r in records}
    assert {"span", "counter", "event"} <= types
    spans = [r for r in records if r["type"] == "span"]
    assert any(r["name"] == "engine.batch" for r in spans)
    # worker spans carry attribution after the merge
    assert any(r["attrs"].get("worker_pid") for r in spans)
    kinds = {r["kind"] for r in records if r["type"] == "event"}
    assert {"batch.start", "solve.start", "batch.end"} <= kinds


def test_batch_json_output_carries_merged_counters(capsys):
    import json

    out = run(
        capsys,
        "batch", "--benchmarks", "1", "--sizes", "8",
        "--schedulers", "GOMCDS", "--format", "json",
    )
    payload = json.loads(out)
    assert payload["metrics"]["engine.batch.requests"] == 1
    assert payload["metrics"]["engine.cache.misses"] == 1


def test_tail_renders_telemetry_events(tmp_path, capsys):
    path = tmp_path / "batch.jsonl"
    run(
        capsys,
        "batch", "--benchmarks", "1", "--sizes", "8",
        "--schedulers", "GOMCDS", "--telemetry", str(path),
    )
    out = run(capsys, "tail", str(path), "-n", "5")
    assert "batch.end" in out
    assert "matching record(s)" in out


def test_tail_kind_prefix_filter_and_jsonl(tmp_path, capsys):
    import json

    path = tmp_path / "batch.jsonl"
    run(
        capsys,
        "batch", "--benchmarks", "1", "--sizes", "8",
        "--schedulers", "GOMCDS", "--telemetry", str(path),
    )
    out = run(
        capsys, "tail", str(path), "--kind", "cache.", "--format", "jsonl"
    )
    records = [json.loads(line) for line in out.splitlines()]
    assert records
    assert all(r["kind"].startswith("cache.") for r in records)


def test_tail_all_includes_span_records(tmp_path, capsys):
    path = tmp_path / "metrics.jsonl"
    run(capsys, "figure1", "--metrics", str(path))
    out = run(capsys, "tail", str(path), "--all", "-n", "200")
    assert "scheduler.gomcds" in out


def test_tail_missing_file_is_config_error(capsys):
    code = main(["tail", "does/not/exist.jsonl"])
    assert code == EXIT_CONFIG_ERROR
    assert "cannot read telemetry file" in capsys.readouterr().err


def test_tail_non_jsonl_file_is_config_error(tmp_path, capsys):
    path = tmp_path / "junk.txt"
    path.write_text("this is not json\n")
    code = main(["tail", str(path)])
    assert code == EXIT_CONFIG_ERROR
    assert "not JSON-lines telemetry" in capsys.readouterr().err


def test_profile_prometheus_format(capsys):
    out = run(
        capsys,
        "profile", "--benchmarks", "1", "--size", "8",
        "--format", "prometheus",
    )
    assert "# TYPE repro_sim_fetches_total counter" in out
    assert "repro_sim_window_hops_count" in out
