"""CLI smoke tests (small configurations through the real entry point)."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_figure1(capsys):
    out = run(capsys, "figure1")
    assert "SCDS" in out and "GOMCDS" in out
    assert "cost" in out


def test_table1_fast(capsys):
    out = run(capsys, "table1", "--fast", "--benchmarks", "1", "--sizes", "8")
    assert "Table 1" in out
    assert "8x8" in out
    assert "avg" in out


def test_table2_custom_mesh(capsys):
    out = run(
        capsys, "table2", "--benchmarks", "1", "--sizes", "8", "--mesh", "2", "2"
    )
    assert "2x2" in out


def test_capacity_multiplier_flag(capsys):
    out = run(
        capsys,
        "table1",
        "--benchmarks",
        "2",
        "--sizes",
        "8",
        "--capacity-multiplier",
        "4.0",
    )
    assert "Table 1" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_subcommand():
    with pytest.raises(SystemExit):
        main(["tablex"])


def test_extended_command(capsys):
    out = run(capsys, "extended")
    assert "Extended suite" in out
    assert "fft" not in out  # table shows sizes, not names, in rows
    assert "256" in out


def test_all_ablation_commands(capsys):
    for command in (
        "ablation-window",
        "ablation-array",
        "ablation-memory",
        "ablation-grouping",
        "ablation-partition",
        "ablation-online",
        "ablation-replication",
        "ablation-refine",
        "ablation-segmentation",
        "ablation-static",
    ):
        out = run(capsys, command)
        assert out.strip(), command
