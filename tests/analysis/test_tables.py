"""Table assembly and rendering tests."""

import pytest

from repro.analysis import (
    SchedulerResult,
    Table,
    TableRow,
    percent_improvement,
    render_markdown_table,
    render_table,
)


def make_row(bench=1, size="8x8", sf=100.0, costs=(80.0, 70.0)):
    results = tuple(
        SchedulerResult(name, c, percent_improvement(sf, c))
        for name, c in zip(("A", "B"), costs)
    )
    return TableRow(bench, "lu", size, sf, results)


def test_percent_improvement():
    assert percent_improvement(100, 70) == 30.0
    assert percent_improvement(100, 100) == 0.0
    assert percent_improvement(100, 120) == -20.0
    assert percent_improvement(0, 5) == 0.0  # degenerate baseline


def test_row_lookup():
    row = make_row()
    assert row.result_for("A").cost == 80.0
    with pytest.raises(KeyError):
        row.result_for("C")


def test_table_average():
    table = Table(title="t", scheduler_names=("A", "B"))
    table.add(make_row(costs=(80.0, 70.0)))
    table.add(make_row(costs=(60.0, 50.0)))
    assert table.average_improvement("A") == pytest.approx(30.0)
    assert table.average_improvement("B") == pytest.approx(40.0)
    assert table.best_scheduler() == "B"


def test_table_rejects_mismatched_columns():
    table = Table(title="t", scheduler_names=("A", "Z"))
    with pytest.raises(KeyError):
        table.add(make_row())


def test_render_contains_all_cells():
    table = Table(title="My Table", scheduler_names=("A", "B"))
    table.add(make_row())
    text = render_table(table)
    assert "My Table" in text
    assert "8x8" in text
    assert "80" in text and "70" in text
    assert "30.0" in text
    assert "avg" in text


def test_render_markdown_shape():
    table = Table(title="T", scheduler_names=("A", "B"))
    table.add(make_row())
    md = render_markdown_table(table)
    lines = [line for line in md.splitlines() if line.startswith("|")]
    # header + separator + 1 row + avg
    assert len(lines) == 4
    assert all(line.count("|") == lines[0].count("|") for line in lines)


def test_empty_table_average():
    table = Table(title="t", scheduler_names=("A",))
    assert table.average_improvement("A") == 0.0
