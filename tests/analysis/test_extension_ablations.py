"""Tests of the extension ablations (E: partition, F: online, G: replication)."""

import math

from repro.analysis import (
    ablation_online_lookahead,
    ablation_partition_schemes,
    ablation_refinement,
    ablation_replication,
    ablation_window_segmentation,
)


class TestPartitionAblation:
    def test_all_schemes_present(self):
        rows = ablation_partition_schemes(bench=1, n=8)
        assert [r["scheme"] for r in rows] == [
            "row_wise",
            "column_wise",
            "block",
            "block_cyclic",
        ]

    def test_gomcds_beats_its_own_baseline_everywhere(self):
        for row in ablation_partition_schemes(bench=1, n=8):
            assert row["GOMCDS"] <= row["sf"]


class TestOnlineAblation:
    def test_offline_row_is_lower_bound(self):
        rows = ablation_online_lookahead(bench=5, n=8)
        offline = [r for r in rows if r["hysteresis"] == "offline"][0]
        for row in rows:
            assert row["OMCDS"] >= offline["OMCDS"] - 1e-9

    def test_infinite_hysteresis_never_moves(self):
        rows = ablation_online_lookahead(bench=5, n=8)
        frozen = [r for r in rows if r["hysteresis"] == math.inf][0]
        assert frozen["moves"] == 0

    def test_competitive_ratio_reported(self):
        rows = ablation_online_lookahead(bench=5, n=8, hysteresis=(2.0,))
        assert rows[0]["vs GOMCDS"] >= 1.0


class TestReplicationAblation:
    def test_k1_matches_scds_semantics(self):
        rows = ablation_replication(bench=5, n=8, copies=(1,))
        # one copy, no movement: this is exactly SCDS's placement cost
        assert rows[0]["total copies"] == 64

    def test_copies_bounded_by_slots(self):
        rows = ablation_replication(bench=5, n=8, copies=(4,))
        # capacity = 2x minimum -> at most 128 slots on the 4x4 array
        assert rows[0]["total copies"] <= 128

    def test_second_copy_helps_this_workload(self):
        rows = ablation_replication(bench=5, n=8, copies=(1, 2))
        assert rows[1]["replicated cost"] < rows[0]["replicated cost"]


class TestRefinementAblation:
    def test_never_degrades_any_row(self):
        for row in ablation_refinement(bench=5, n=8, multipliers=(1.0, 2.0)):
            assert row["refined"] <= row["greedy GOMCDS"]
            assert row["unconstrained floor"] <= row["refined"] + 1e-9

    def test_tight_memory_leaves_more_to_recover(self):
        rows = ablation_refinement(bench=5, n=8, multipliers=(1.0, 2.0))
        gap_tight = rows[0]["greedy GOMCDS"] - rows[0]["refined"]
        gap_loose = rows[1]["greedy GOMCDS"] - rows[1]["refined"]
        assert gap_tight >= gap_loose


class TestSegmentationAblation:
    def test_all_strategies_evaluated(self):
        rows = ablation_window_segmentation(bench=5, n=8)
        assert {r["strategy"] for r in rows} == {
            "natural (loop)",
            "fixed (4 steps)",
            "similarity",
            "dp-optimal",
        }
        assert all(r["GOMCDS"] > 0 for r in rows)
        assert all(r["n_windows"] >= 1 for r in rows)


class TestStaticOptimalityAblation:
    def test_gap_nonnegative_and_shrinks_with_memory(self):
        from repro.analysis import ablation_static_optimality

        rows = ablation_static_optimality(bench=1, n=8, multipliers=(1.0, 2.0))
        for row in rows:
            assert row["greedy SCDS"] >= row["optimal static"] - 1e-9
        assert rows[0]["gap %"] >= rows[1]["gap %"]


class TestSeedSensitivity:
    def test_ranking_holds_for_every_seed(self):
        from repro.analysis import seed_sensitivity

        rows = seed_sensitivity(bench=5, n=8, seeds=(1998, 7, 42))
        by_name = {r["scheduler"]: r for r in rows}
        # the paper's ranking must hold even in the worst seed
        assert by_name["GOMCDS"]["min %"] > by_name["LOMCDS"]["max %"] - 5
        assert by_name["LOMCDS"]["min %"] > by_name["SCDS"]["max %"] - 5
        assert by_name["GOMCDS"]["mean %"] > by_name["SCDS"]["mean %"]

    def test_noise_barely_moves_the_numbers(self):
        from repro.analysis import seed_sensitivity

        rows = seed_sensitivity(bench=5, n=8, seeds=(1998, 7, 42))
        assert all(r["std %"] < 3.0 for r in rows)
