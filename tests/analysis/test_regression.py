"""Regression sentinel tests: bench suite measurement and report diffs."""

import copy
import json

import pytest

from repro.analysis import (
    BENCH_SCHEDULERS,
    compare_bench_reports,
    load_bench_report,
    run_bench_suite,
)
from repro.diagnostics import REG001, REG002, REG003, Severity


@pytest.fixture(scope="module")
def suite_report():
    """One tiny real measurement shared by the module's tests."""
    return run_bench_suite(size=8, benchmarks=(1,), repeats=1)


class TestRunBenchSuite:
    def test_report_schema(self, suite_report):
        assert suite_report["config"]["schedulers"] == list(BENCH_SCHEDULERS)
        (row,) = suite_report["results"]
        assert row["benchmark"] == 1 and row["name"] == "lu"
        for sched in ("scds", "lomcds", "gomcds"):
            assert row[f"{sched}_cost"] > 0
            assert row[f"{sched}_s"] <= row[f"{sched}_median_s"]
        assert row["replay_s"] <= row["replay_median_s"]
        assert row["noop_overhead_pct"] >= 0

    def test_overhead_uses_medians(self, suite_report):
        overhead = suite_report["noop_overhead"]
        assert overhead["overhead_pct"] == pytest.approx(
            100.0 * overhead["probe_s"] / overhead["replay_s"]
        )

    def test_costs_are_deterministic(self, suite_report):
        again = run_bench_suite(size=8, benchmarks=(1,), repeats=1)
        for key in ("scds_cost", "lomcds_cost", "gomcds_cost"):
            assert again["results"][0][key] == suite_report["results"][0][key]

    def test_json_serializable(self, suite_report, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(suite_report))
        assert load_bench_report(path)["results"] == suite_report["results"]


def test_load_rejects_non_reports(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"rows": []}))
    with pytest.raises(ValueError, match="not a bench report"):
        load_bench_report(path)


class TestCompare:
    def test_identical_reports_are_clean(self, suite_report):
        comparison = compare_bench_reports(suite_report, suite_report)
        assert comparison.is_clean
        assert comparison.exit_code == 0
        assert comparison.n_rows == 1
        assert "OK" in comparison.summary()

    def test_injected_cost_regression_is_an_error(self, suite_report):
        fresh = copy.deepcopy(suite_report)
        fresh["results"][0]["gomcds_cost"] += 10.0
        comparison = compare_bench_reports(suite_report, fresh)
        assert comparison.exit_code == 2
        (diag,) = [d for d in comparison.diagnostics if d.code == REG001]
        assert diag.severity == Severity.ERROR
        assert "GOMCDS" in diag.message
        assert comparison.cost_deltas[0]["scheduler"] == "GOMCDS"

    def test_timing_regression_is_a_warning(self, suite_report):
        fresh = copy.deepcopy(suite_report)
        fresh["results"][0]["gomcds_s"] = (
            suite_report["results"][0]["gomcds_s"] * 10 + 1.0
        )
        comparison = compare_bench_reports(suite_report, fresh)
        assert comparison.exit_code == 1
        codes = {d.code for d in comparison.diagnostics}
        assert codes == {REG002}
        regressed = [r for r in comparison.time_rows if r["regressed"]]
        assert [r["key"] for r in regressed] == ["gomcds_s"]

    def test_small_absolute_deltas_never_regress(self, suite_report):
        # a 10x slowdown that stays under the absolute floor is noise
        fresh = copy.deepcopy(suite_report)
        fresh["results"][0]["replay_s"] = (
            suite_report["results"][0]["replay_s"] + 0.04
        )
        comparison = compare_bench_reports(
            suite_report, fresh, min_time_delta_s=0.05
        )
        assert comparison.is_clean

    def test_config_drift_is_not_comparable(self, suite_report):
        fresh = copy.deepcopy(suite_report)
        fresh["config"]["size"] = 16
        comparison = compare_bench_reports(suite_report, fresh)
        assert comparison.exit_code == 2
        (diag,) = comparison.diagnostics
        assert diag.code == REG003
        assert "size" in diag.message
        # no row comparison happens on incomparable reports
        assert comparison.n_rows == 0 and not comparison.time_rows

    def test_repeats_drift_is_tolerated(self, suite_report):
        fresh = copy.deepcopy(suite_report)
        fresh["config"]["repeats"] = 99
        assert compare_bench_reports(suite_report, fresh).is_clean

    def test_missing_row_is_an_error(self, suite_report):
        fresh = copy.deepcopy(suite_report)
        fresh["results"] = []
        comparison = compare_bench_reports(suite_report, fresh)
        assert comparison.exit_code == 2
        (diag,) = comparison.diagnostics
        assert diag.code == REG003 and "missing" in diag.message

    def test_to_dict_and_render(self, suite_report):
        fresh = copy.deepcopy(suite_report)
        fresh["results"][0]["scds_cost"] += 1
        comparison = compare_bench_reports(
            suite_report, fresh, baseline_label="base.json"
        )
        d = comparison.to_dict()
        assert d["kind"] == "bench_comparison"
        assert d["exit_code"] == 2
        assert d["diagnostics"][0]["code"] == REG001
        text = comparison.render()
        assert "REG001" in text and "base.json" in text
        assert "scds_s" in text  # timing table renders
