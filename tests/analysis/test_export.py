"""CSV export tests."""

import csv

from repro.analysis import (
    ablation_window_size,
    rows_to_csv,
    run_table1,
    table_to_csv,
)


def test_table_csv_roundtrip(tmp_path):
    table = run_table1(sizes=(8,), benchmarks=(1,))
    path = table_to_csv(table, tmp_path / "t1.csv")
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 1
    row = rows[0]
    assert row["name"] == "lu"
    assert row["size"] == "8x8"
    assert float(row["SCDS_cost"]) > 0
    assert float(row["GOMCDS_cost"]) <= float(row["SCDS_cost"])


def test_rows_csv(tmp_path):
    sweep = ablation_window_size(bench=1, n=8, steps_per_window=(1, 4))
    path = rows_to_csv(sweep, tmp_path / "sweep.csv")
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2
    assert rows[0]["steps_per_window"] == "1"


def test_empty_rows(tmp_path):
    path = rows_to_csv([], tmp_path / "empty.csv")
    assert path.read_text() == ""
