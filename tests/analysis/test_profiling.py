"""``profile_suite`` and the ``repro profile`` CLI subcommand."""

import json

import pytest

from repro.analysis import PROFILE_SCHEDULERS, profile_suite
from repro.cli import main
from repro.obs import Instrumentation


def test_suite_mode_profiles_requested_benchmarks():
    result = profile_suite(benchmarks=(1, 2), size=8)
    instances = [
        s for s in result.instrument.tracer.spans if s.name == "profile.instance"
    ]
    assert [s.attrs["workload"] for s in instances] == [
        "bench1:lu",
        "bench2:matsq",
    ]
    # one CostBreakdown per scheduler per instance, plus one SimReport each
    kinds = [r.to_dict()["kind"] for r in result.results]
    assert kinds.count("cost_breakdown") == 2 * len(PROFILE_SCHEDULERS)
    assert kinds.count("sim_report") == 2
    assert len(result.rows) == 2 * len(PROFILE_SCHEDULERS)


def test_scheduler_phase_spans_recorded():
    result = profile_suite(benchmarks=(1,), size=8)
    names = {s.name for s in result.instrument.tracer.spans}
    assert {"scheduler.scds", "scheduler.lomcds", "scheduler.gomcds"} <= names
    assert {"gomcds.cost_tensor", "gomcds.dp_sweep"} & names
    # replay of the last scheduler landed per-window metrics
    assert "sim.window" in names
    assert result.instrument.metrics.histograms["sim.window_hops"].count > 0


def test_paper_kernel_name_profiles_suite():
    # 'lu' is a paper kernel: it selects suite mode (benchmarks are
    # compositions of the paper kernels), honoring --benchmarks
    result = profile_suite(workload="lu", benchmarks=(3,), size=8)
    instances = [
        s for s in result.instrument.tracer.spans if s.name == "profile.instance"
    ]
    assert [s.attrs["workload"] for s in instances] == ["bench3:lu+code"]


def test_extended_kernel_profiles_single_workload():
    result = profile_suite(workload="fft", size=8, schedulers=("GOMCDS",))
    instances = [
        s for s in result.instrument.tracer.spans if s.name == "profile.instance"
    ]
    assert [s.attrs["workload"] for s in instances] == ["fft"]
    assert [r["scheduler"] for r in result.rows] == ["GOMCDS"]


def test_unknown_workload_raises():
    with pytest.raises(ValueError, match="unknown workload"):
        profile_suite(workload="nosuch")


def test_no_replay_skips_sim():
    result = profile_suite(benchmarks=(1,), size=8, replay=False)
    kinds = [r.to_dict()["kind"] for r in result.results]
    assert "sim_report" not in kinds
    assert "sim.window_hops" not in result.instrument.metrics.histograms


def test_explicit_instrument_session_is_used():
    instr = Instrumentation.started()
    result = profile_suite(benchmarks=(1,), size=8, instrument=instr)
    assert result.instrument is instr
    assert len(instr.tracer) > 0


def test_cli_profile_summary(capsys):
    assert main(["profile", "--benchmarks", "1", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "profile.instance" in out
    assert "sim.window_hops (histogram)" in out
    assert "cost: total" in out


def test_cli_profile_chrome_to_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    code = main(
        [
            "profile", "--workload", "lu", "--size", "8",
            "--format", "chrome", "--output", str(path),
        ]
    )
    assert code == 0
    trace = json.loads(path.read_text())
    events = trace["traceEvents"]
    span_names = {e["name"] for e in events if e["ph"] == "X"}
    assert "scheduler.gomcds" in span_names
    assert any(
        e["ph"] == "C" and e["name"] == "sim.window_hops" for e in events
    )
    # benchmarks 1-5 all profiled
    workloads = {
        e["args"]["workload"]
        for e in events
        if e["ph"] == "X" and e["name"] == "profile.instance"
    }
    assert len(workloads) == 5
    out = capsys.readouterr().out
    assert "wrote chrome export" in out
    assert "GOMCDS" in out  # rows table still printed


def test_cli_profile_unknown_workload_is_config_error(capsys):
    from repro.cli import EXIT_CONFIG_ERROR

    code = main(["profile", "--workload", "nosuch", "--size", "8"])
    assert code == EXIT_CONFIG_ERROR
    assert "unknown workload" in capsys.readouterr().err
