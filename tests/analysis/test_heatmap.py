"""ASCII heatmap rendering tests."""

import numpy as np
import pytest

from repro.analysis import render_heatmap, render_link_heatmap, render_numeric_grid
from repro.grid import Mesh1D, Mesh2D, Torus2D


def test_2d_shape(mesh44):
    out = render_heatmap(np.arange(16), mesh44, title="demo")
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert len(lines) == 5  # title + 4 rows
    assert all(len(line) == 6 for line in lines[1:])  # |....|


def test_extremes_use_extreme_shades(mesh44):
    values = np.zeros(16)
    values[15] = 10.0
    out = render_heatmap(values, mesh44)
    assert "█" in out.splitlines()[-1]
    assert "█" not in out.splitlines()[0]


def test_all_zero_renders_blank(mesh44):
    out = render_heatmap(np.zeros(16), mesh44)
    assert "█" not in out


def test_1d_single_row():
    out = render_heatmap(np.arange(5), Mesh1D(5))
    assert len(out.splitlines()) == 1


def test_torus_supported():
    out = render_heatmap(np.arange(16), Torus2D(4, 4))
    assert len(out.splitlines()) == 4


def test_wrong_length_rejected(mesh44):
    with pytest.raises(ValueError):
        render_heatmap(np.arange(5), mesh44)


def test_3d_topology_rejected():
    class Fake:
        n_procs = 8
        shape = (2, 2, 2)

    with pytest.raises(ValueError):
        render_heatmap(np.arange(8), Fake())


def test_numeric_grid_values_present(mesh44):
    values = np.arange(16.0)
    out = render_numeric_grid(values, mesh44, title="occ")
    assert "occ" in out
    assert "15" in out
    assert len(out.splitlines()) == 5


def test_numeric_grid_alignment(mesh44):
    out = render_numeric_grid(np.arange(16), mesh44, width=4)
    rows = out.splitlines()
    assert all(len(r) == 16 for r in rows)


class TestLinkHeatmap:
    def test_golden_2x2(self):
        mesh22 = Mesh2D(2, 2)
        traffic = {(0, 1): 3.0, (1, 0): 1.0, (0, 2): 8.0}
        out = render_link_heatmap(traffic, mesh22, title="links")
        # both directions of wire 0-1 combine to 4 (half shade); the
        # vertical wire 0-2 carries the peak 8 (full shade)
        assert out == "links\n|·▄·|\n|█  |\n|· ·|"

    def test_canvas_dimensions(self, mesh44):
        out = render_link_heatmap({(0, 1): 1.0}, mesh44)
        lines = out.splitlines()
        assert len(lines) == 7  # 2*4 - 1 rows
        assert all(len(line) == 9 for line in lines)  # |(2*4-1)|

    def test_empty_traffic_draws_blank_wires(self, mesh44):
        out = render_link_heatmap({}, mesh44)
        assert "█" not in out
        assert out.count("·") == 16

    def test_torus_wrap_links_reported_not_drawn(self):
        torus = Torus2D(3, 3)
        out = render_link_heatmap({(0, 2): 5.0, (0, 1): 5.0}, torus)
        assert "(1 non-planar links not drawn)" in out
        assert "█" in out  # the planar wire still renders

    def test_1d_renders_single_row(self):
        out = render_link_heatmap({(0, 1): 2.0}, Mesh1D(4))
        assert len(out.splitlines()) == 1

    def test_3d_topology_rejected(self):
        class Fake:
            n_procs = 8
            shape = (2, 2, 2)

        with pytest.raises(ValueError):
            render_link_heatmap({}, Fake())
