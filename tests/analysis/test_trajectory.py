"""Trajectory-rendering tests."""

import numpy as np
import pytest

from repro.analysis import render_trajectory, trajectory_summary
from repro.core import Schedule
from repro.grid import Mesh1D
from repro.trace import windows_by_step_count


@pytest.fixture
def roaming_schedule(mesh44):
    windows = windows_by_step_count(8, 2)  # 4 windows
    centers = np.array(
        [
            [mesh44.pid(1, 0), mesh44.pid(1, 3), mesh44.pid(1, 0), mesh44.pid(2, 2)],
            [0, 0, 0, 0],
        ]
    )
    return Schedule(centers=centers, windows=windows)


def test_render_marks_window_indices(roaming_schedule, mesh44):
    out = render_trajectory(roaming_schedule, 0, mesh44, title="datum 0")
    lines = out.splitlines()
    assert lines[0] == "datum 0"
    assert len(lines) == 5
    # window 2 overwrote window 0 at (1, 0); window 1 at (1, 3)
    assert lines[2][0] == "2"
    assert lines[2][3] == "1"
    assert lines[3][2] == "3"
    assert lines[1] == "...."


def test_render_static_datum(roaming_schedule, mesh44):
    out = render_trajectory(roaming_schedule, 1, mesh44)
    assert out.splitlines()[0][0] == "3"  # last window's mark
    assert out.count(".") == 15


def test_summary(roaming_schedule, mesh44):
    summary = trajectory_summary(roaming_schedule, 0, mesh44)
    assert summary["moves"] == 3
    assert summary["distinct_homes"] == 3
    # 3 + 3 + 3 hops of travel
    assert summary["hops_traveled"] == 9
    assert summary["centers"][0] == (1, 0)


def test_static_summary(roaming_schedule, mesh44):
    summary = trajectory_summary(roaming_schedule, 1, mesh44)
    assert summary["moves"] == 0
    assert summary["hops_traveled"] == 0


def test_validation(roaming_schedule, mesh44):
    with pytest.raises(ValueError):
        render_trajectory(roaming_schedule, 5, mesh44)
    with pytest.raises(ValueError):
        render_trajectory(roaming_schedule, 0, Mesh1D(16))
