"""Chaos campaign: seeded storms, recovery invariants, CLI gate."""

import dataclasses
import json

import pytest

from repro.analysis import ChaosReport, ChaosScenario, run_chaos_campaign
from repro.analysis.chaos import CAMPAIGN_MODES, EXIT_VIOLATION
from repro.cli import main
from repro.diagnostics import RCV004, Diagnostic, Severity

STRUCTURAL = (
    "index", "seed", "mode", "n_node_faults", "n_link_faults", "drop_rate",
    "recoverable", "data_preserved", "n_detections", "n_rollbacks",
    "max_rollback_depth", "wasted_cost", "n_lost", "n_unreachable",
    "n_replica_served", "n_replica_promoted",
)


def structural(scenario):
    """Scenario fields with the wall-clock latency stripped out."""
    return {f: getattr(scenario, f) for f in STRUCTURAL}


@pytest.fixture(scope="module")
def campaign():
    return run_chaos_campaign(seed=7, n_scenarios=4)


class TestCampaign:
    def test_invariants_hold_on_the_reference_seed(self, campaign):
        assert campaign.ok
        assert campaign.exit_code == 0
        assert campaign.violations == []

    def test_scenario_zero_is_the_fault_free_control(self, campaign):
        control = campaign.scenarios[0]
        assert control.n_node_faults == 0 and control.n_link_faults == 0
        assert control.drop_rate == 0.0
        assert control.n_detections == 0
        assert control.data_preserved

    def test_storms_actually_exercise_recovery(self, campaign):
        storms = campaign.scenarios[1:]
        assert sum(s.n_node_faults for s in storms) > 0
        assert sum(s.n_detections for s in storms) > 0
        assert {s.mode for s in storms} <= set(CAMPAIGN_MODES)

    def test_rollback_depth_bounded_by_checkpoint_interval(self, campaign):
        for s in campaign.scenarios:
            assert s.max_rollback_depth <= campaign.checkpoint_interval

    def test_same_seed_is_structurally_deterministic(self, campaign):
        again = run_chaos_campaign(seed=7, n_scenarios=4)
        assert [structural(s) for s in campaign.scenarios] == [
            structural(s) for s in again.scenarios
        ]

    def test_different_seed_samples_different_storms(self, campaign):
        other = run_chaos_campaign(seed=8, n_scenarios=4)
        assert [structural(s) for s in campaign.scenarios[1:]] != [
            structural(s) for s in other.scenarios[1:]
        ]

    def test_report_round_trips_through_json(self, campaign):
        d = campaign.to_dict()
        assert d["kind"] == "chaos_report"
        assert json.loads(json.dumps(d)) == d
        assert d["n_scenarios"] == 4 and d["exit_code"] == 0

    def test_render_mentions_every_scenario(self, campaign):
        text = campaign.render()
        for s in campaign.scenarios:
            assert f"#{s.index}" in text
        assert "OK" in campaign.summary()


class TestVerdict:
    def violating_report(self):
        clean = run_chaos_campaign(seed=7, n_scenarios=2)
        bad = dataclasses.replace(
            clean.scenarios[1],
            violations=(
                Diagnostic(
                    code=RCV004,
                    severity=Severity.ERROR,
                    message="rollback depth 5 exceeds checkpoint interval 2",
                ),
            ),
        )
        clean.scenarios[1] = bad
        return clean

    def test_violation_flips_the_exit_code(self):
        report = self.violating_report()
        assert not report.ok
        assert report.exit_code == EXIT_VIOLATION
        assert "VIOLATION" in report.summary()
        assert "RCV004" in report.render()

    def test_violation_survives_serialization(self):
        d = self.violating_report().to_dict()
        assert d["exit_code"] == EXIT_VIOLATION
        assert d["scenarios"][1]["violations"][0]["code"] == "RCV004"


class TestCli:
    def test_clean_campaign_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "chaos.json"
        code = main(
            ["chaos", "--seed", "7", "--scenarios", "3",
             "--output", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["kind"] == "chaos_report"
        assert report["n_scenarios"] == 3
        assert "chaos[seed=7]" in capsys.readouterr().out

    def test_json_format_on_stdout(self, capsys):
        assert main(["chaos", "--seed", "7", "--scenarios", "2",
                     "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["ok"] is True

    def test_violation_exits_three(self, capsys, monkeypatch):
        scenario = ChaosScenario(
            index=0, seed=70000, mode="degrade", n_node_faults=1,
            n_link_faults=0, drop_rate=0.0, recoverable=True,
            data_preserved=False, n_detections=1, n_rollbacks=1,
            max_rollback_depth=9, wasted_cost=0.0, n_lost=3,
            n_unreachable=0, n_replica_served=0, n_replica_promoted=0,
            recovery_latency_s=0.0,
            violations=(
                Diagnostic(
                    code=RCV004,
                    severity=Severity.ERROR,
                    message="rollback depth 9 exceeds checkpoint interval 2",
                ),
            ),
        )
        bad = ChaosReport(
            seed=7, bench=1, size=8, mesh=(4, 4), scheduler="GOMCDS",
            checkpoint_interval=2, scenarios=[scenario],
        )
        monkeypatch.setattr(
            "repro.analysis.run_chaos_campaign", lambda **kw: bad
        )
        assert main(["chaos", "--seed", "7", "--scenarios", "1"]) == 3
        captured = capsys.readouterr()
        assert "violation" in captured.err.lower()
