"""The explain runner and the ``repro explain`` CLI surface."""

import json

import pytest

from repro.analysis import (
    diff_explain_records,
    explain_records,
    explain_workload,
    load_explain_records,
    measure_overhead,
    render_explain_diff,
    render_explain_human,
)
from repro.cli import EXIT_CONFIG_ERROR, EXIT_OK, main

ARGS = ["--bench", "1", "--size", "8", "--mesh", "2", "4"]


def test_explain_workload_audits_clean():
    result = explain_workload(bench=1, size=8, mesh=(2, 4))
    assert result.attribution_exact
    assert result.diagnostics == []
    assert result.scheduler == "GOMCDS"
    assert result.log.label.startswith("bench1:")


def test_explain_workload_faulted_variant():
    result = explain_workload(
        bench=1, size=8, mesh=(2, 4), fail_node=3, fail_window=1
    )
    assert result.attribution_exact and not result.diagnostics
    assert result.scheduler == "GOMCDS+faults"
    assert "node 3" in result.workload
    # the dead node is never used from the failure window on
    assert (result.schedule.centers[:, 1:] != 3).all()


def test_explain_workload_rejects_unknown_benchmark():
    with pytest.raises(ValueError, match="unknown benchmark"):
        explain_workload(bench=9)


def test_records_round_trip_and_diff(tmp_path):
    base = explain_workload(bench=1, size=8, mesh=(2, 4))
    faulted = explain_workload(bench=1, size=8, mesh=(2, 4), fail_node=3)
    paths = []
    for name, result in (("a", base), ("b", faulted)):
        path = tmp_path / f"{name}.jsonl"
        path.write_text(
            "\n".join(json.dumps(rec) for rec in explain_records(result))
        )
        paths.append(path)
    parsed = [load_explain_records(p) for p in paths]
    assert parsed[0]["audit"]["attribution_exact"] is True
    assert len(parsed[0]["cells"]) == base.log.n_data * base.log.n_windows
    diff = diff_explain_records(*parsed)
    assert diff["n_changed"] > 0
    assert diff["total_delta"] == pytest.approx(
        faulted.breakdown.total - base.breakdown.total
    )
    text = render_explain_diff(diff, top=3)
    assert "total delta" in text
    # every changed record names a real decision flip
    for rec in diff["changed"]:
        assert rec["a"] != rec["b"]


def test_render_human_modes():
    result = explain_workload(bench=2, size=8, mesh=(2, 4))
    full = render_explain_human(result, top=2)
    assert "attribution: exact (bit-identical)" in full
    assert "timelines (per datum):" in full
    one_datum = render_explain_human(result, datum=0)
    assert "datum 0" in one_datum and "timelines" not in one_datum
    one_window = render_explain_human(result, window=1)
    assert "window 1:" in one_window


def test_measure_overhead_reports_medians():
    report = measure_overhead(
        bench=1, size=8, mesh=(2, 4), repeats=2, inner=1
    )
    assert report["dark_median_us"] > 0
    assert report["recorded_median_us"] > 0
    assert "overhead_pct" in report


def test_cli_human_and_check(capsys):
    assert main(["explain", *ARGS, "--datum", "0", "--check"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "attribution: exact" in out
    assert "provenance audit: attribution exact" in out


def test_cli_jsonl_and_diff(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    assert main(["explain", *ARGS, "--format", "jsonl", "--output", str(a)]) == EXIT_OK
    assert (
        main(
            [
                "explain", *ARGS, "--fail-node", "3",
                "--format", "jsonl", "--output", str(b),
            ]
        )
        == EXIT_OK
    )
    records = [json.loads(line) for line in a.read_text().splitlines()]
    assert records[0]["type"] == "provenance"
    assert records[-1]["type"] == "audit"
    assert records[-1]["attribution_exact"] is True
    capsys.readouterr()
    assert main(["explain", "--diff", str(a), str(b)]) == EXIT_OK
    assert "shared decisions changed" in capsys.readouterr().out


def test_cli_python_kernel_and_json(capsys):
    code = main(["explain", *ARGS, "--kernel", "python", "--format", "json"])
    assert code == EXIT_OK
    records = json.loads(capsys.readouterr().out)
    header = records[0]
    assert header["kernel"] == "python"


def test_cli_overhead_gate(capsys):
    # a generous budget always passes; an impossible one exits 2
    assert (
        main(["explain", *ARGS, "--max-overhead-pct", "10000", "--repeats", "1"])
        == EXIT_OK
    )
    capsys.readouterr()
    code = main(
        ["explain", *ARGS, "--max-overhead-pct", "-100", "--repeats", "1"]
    )
    assert code == EXIT_CONFIG_ERROR
    assert "exceeds" in capsys.readouterr().err
