"""``repro certify``: the CLI surface and its exit-code contract."""

import json

import pytest

from repro.cli import main
from repro.core import CostModel, gomcds
from repro.diagnostics import DIVERGENCE_CODES, VERIFY_CODES
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.trace import save_schedule, save_trace
from repro.verify import (
    EXIT_CERT_CLEAN,
    EXIT_CERT_DIVERGENCE,
    EXIT_CERT_ERRORS,
    certify_schedule,
    certify_workload,
    render_certify_sarif,
)
from repro.workloads import benchmark


def test_bench_mode_certifies_clean(capsys):
    code = main(["certify", "--bench", "1", "--size", "8"])
    out = capsys.readouterr().out
    assert code == EXIT_CERT_CLEAN
    assert "certified" in out and "proven optimal" in out


def test_faulted_bench_mode_certifies_clean(capsys):
    code = main(
        ["certify", "--bench", "1", "--size", "8", "--fail-node", "5",
         "--fail-window", "2"]
    )
    assert code == EXIT_CERT_CLEAN


def test_json_format_roundtrips(capsys):
    code = main(["certify", "--bench", "2", "--size", "8", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_CERT_CLEAN
    assert payload["kind"] == "certify-report"
    assert payload["exit_code"] == 0
    assert payload["certified_data"] > 0


def test_sarif_format_carries_fingerprints():
    mesh = Mesh2D(4, 4)
    report = certify_workload(1, 8, mesh, require_certificate=True)
    text = render_certify_sarif(report)
    doc = json.loads(text)
    run = doc["runs"][0]
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(
        VERIFY_CODES
    )
    for result in run["results"]:
        assert "reproDiagnostic/v1" in result["partialFingerprints"]


def test_file_mode_certifies_without_certificate(tmp_path, capsys):
    mesh = Mesh2D(4, 4)
    wl = benchmark(1, 8, mesh)
    tensor = wl.reference_tensor()
    model = CostModel(mesh)
    capacity = CapacityPlan.paper_rule(wl.n_data, mesh.n_procs, 2.0)
    schedule = gomcds(tensor, model, capacity)
    spath, tpath = tmp_path / "s.npz", tmp_path / "t.npz"
    save_schedule(spath, schedule)
    save_trace(tpath, wl.trace, wl.windows)
    code = main(["certify", "--schedule", str(spath), "--trace", str(tpath)])
    out = capsys.readouterr().out
    assert code == EXIT_CERT_CLEAN
    assert "VER005" in out  # optimality unproven, flagged as info


def test_file_mode_without_trace_is_config_error(tmp_path, capsys):
    code = main(["certify", "--schedule", str(tmp_path / "s.npz")])
    assert code == 2


def test_corrupted_schedule_exits_divergence():
    import dataclasses

    mesh = Mesh2D(4, 4)
    wl = benchmark(1, 8, mesh)
    tensor = wl.reference_tensor()
    model = CostModel(mesh)
    capacity = CapacityPlan.paper_rule(wl.n_data, mesh.n_procs, 2.0)
    schedule = gomcds(tensor, model, capacity, certify=True)
    centers = schedule.centers.copy()
    centers[0, 1] = (centers[0, 1] + 7) % mesh.n_procs
    bad = dataclasses.replace(schedule, centers=centers)
    report = certify_schedule(bad, wl.trace, model, capacity=capacity)
    assert report.exit_code == EXIT_CERT_DIVERGENCE
    assert report.diverged
    assert any(d.code in DIVERGENCE_CODES for d in report.diagnostics)


def test_static_error_exits_two():
    import dataclasses

    mesh = Mesh2D(4, 4)
    wl = benchmark(1, 8, mesh)
    tensor = wl.reference_tensor()
    model = CostModel(mesh)
    schedule = gomcds(tensor, model, None)
    centers = schedule.centers.copy()
    centers[:, 0] = 0
    bad = dataclasses.replace(schedule, centers=centers, meta={})
    tight = CapacityPlan.uniform(mesh.n_procs, 4)
    report = certify_schedule(
        bad, wl.trace, model, capacity=tight, differential=False
    )
    assert report.exit_code == EXIT_CERT_ERRORS
    assert not report.diverged


def test_mismatched_trace_is_rejected():
    mesh = Mesh2D(4, 4)
    wl = benchmark(1, 8, mesh)
    other = benchmark(2, 8, mesh)
    model = CostModel(mesh)
    schedule = gomcds(wl.reference_tensor(), model, None)
    with pytest.raises(ValueError):
        certify_schedule(schedule, other.trace, model)
