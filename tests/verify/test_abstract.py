"""The abstract interpreter: exactness on clean schedules, coded findings
on broken ones."""

import dataclasses

import numpy as np
import pytest

from repro.core import CostModel, evaluate_schedule, gomcds
from repro.diagnostics import VER001, VER002, VER003, VER004, Severity
from repro.faults import FaultPlan, NodeFault
from repro.mem import CapacityPlan
from repro.obs import Instrumentation
from repro.sim import replay_schedule
from repro.verify import interpret_schedule
from repro.workloads import benchmark


@pytest.fixture
def bench1(mesh44):
    wl = benchmark(1, 8, mesh44)
    tensor = wl.reference_tensor()
    model = CostModel(mesh44)
    capacity = CapacityPlan.paper_rule(wl.n_data, mesh44.n_procs, 2.0)
    schedule = gomcds(tensor, model, capacity)
    return wl, tensor, model, capacity, schedule


def test_prediction_matches_analytic_cost(bench1):
    wl, tensor, model, capacity, schedule = bench1
    prediction, diags = interpret_schedule(
        schedule, tensor, model, trace=wl.trace, capacity=capacity
    )
    assert not diags
    breakdown = evaluate_schedule(schedule, tensor, model)
    assert prediction.reference_cost == pytest.approx(breakdown.reference_cost)
    assert prediction.movement_cost == pytest.approx(breakdown.movement_cost)
    assert prediction.total == pytest.approx(breakdown.total)


def test_prediction_link_volumes_match_replay(bench1):
    wl, tensor, model, capacity, schedule = bench1
    prediction, _ = interpret_schedule(
        schedule, tensor, model, trace=wl.trace, capacity=capacity
    )
    instr = Instrumentation.started(spatial=True)
    replay_schedule(
        wl.trace, schedule, model, capacity=capacity, instrument=instr
    )
    spatial = instr.spatial.traces[-1]
    assert prediction.link_totals() == pytest.approx(spatial.link_totals())


def test_occupancy_overflow_is_ver001(bench1):
    wl, tensor, model, _, schedule = bench1
    # cram every datum onto processor 0 in window 0
    centers = schedule.centers.copy()
    centers[:, 0] = 0
    bad = dataclasses.replace(schedule, centers=centers, meta={})
    tight = CapacityPlan.uniform(model.topology.n_procs, 4)
    prediction, diags = interpret_schedule(
        bad, tensor, model, trace=wl.trace, capacity=tight
    )
    overflow = [d for d in diags if d.code == VER001]
    assert overflow and all(d.severity == Severity.ERROR for d in overflow)
    assert any(d.window == 0 and d.processor == 0 for d in overflow)


def test_out_of_range_center_is_ver002(bench1):
    wl, tensor, model, capacity, schedule = bench1
    centers = schedule.centers.copy()
    centers[0, 0] = model.topology.n_procs + 3
    bad = dataclasses.replace(schedule, centers=centers, meta={})
    prediction, diags = interpret_schedule(
        bad, tensor, model, trace=wl.trace, capacity=capacity
    )
    assert prediction is None
    assert [d.code for d in diags] == [VER002]


def test_dead_center_is_ver002(bench1):
    wl, tensor, model, _, schedule = bench1
    plan = FaultPlan(node_faults=(NodeFault(pid=int(schedule.centers[0, 1]), start=1),))
    prediction, diags = interpret_schedule(
        schedule, tensor, model, trace=wl.trace, faults=plan
    )
    assert any(
        d.code == VER002 and d.severity == Severity.ERROR for d in diags
    )


def test_hotspot_budget_is_ver003(bench1):
    wl, tensor, model, capacity, schedule = bench1
    _, clean = interpret_schedule(
        schedule, tensor, model, trace=wl.trace, capacity=capacity
    )
    assert not [d for d in clean if d.code == VER003]
    _, diags = interpret_schedule(
        schedule, tensor, model, trace=wl.trace, capacity=capacity,
        link_budget=0.5,
    )
    hot = [d for d in diags if d.code == VER003]
    assert hot and all(d.severity == Severity.WARNING for d in hot)


def test_strictly_wasteful_move_is_ver004(mesh44):
    from repro.trace import build_reference_tensor
    from repro.workloads import trace_from_counts

    counts = np.zeros((1, 3, 16), dtype=np.int64)
    counts[0, 0, 0] = 2
    counts[0, 2, 0] = 2
    trace, windows = trace_from_counts(counts, mesh44)
    tensor = build_reference_tensor(trace, windows)
    model = CostModel(mesh44)
    # stay at 0, detour to the far corner in the reference-free window,
    # and come back: strictly wasteful
    from repro.core import Schedule

    centers = np.array([[0, 15, 0]])
    sched = Schedule(centers=centers, windows=windows, method="handmade")
    _, diags = interpret_schedule(sched, tensor, model, trace=trace)
    assert any(d.code == VER004 for d in diags)
    # the direct schedule is quiet
    straight = Schedule(
        centers=np.array([[0, 0, 0]]), windows=windows, method="handmade"
    )
    _, diags = interpret_schedule(straight, tensor, model, trace=trace)
    assert not [d for d in diags if d.code == VER004]


def test_faulted_prediction_matches_replay(bench1, mesh44):
    from repro.core import reschedule_around_faults

    wl, tensor, model, capacity, _ = bench1
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=2),))
    schedule = reschedule_around_faults(tensor, model, plan, capacity)
    prediction, diags = interpret_schedule(
        schedule, tensor, model, trace=wl.trace, faults=plan
    )
    assert not [d for d in diags if d.severity == Severity.ERROR]
    report = replay_schedule(
        wl.trace, schedule, model, faults=plan
    )
    assert prediction.total == pytest.approx(report.total_cost)
    assert prediction.n_delivered == report.n_delivered
    assert prediction.n_evacuated == report.n_evacuated
