"""The provenance auditor: VER012 on any log/schedule divergence."""

import numpy as np
import pytest

from repro import schedule
from repro.core import CostModel
from repro.diagnostics import VER012, Severity
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.obs import ACTION_NAMES, Instrumentation
from repro.verify import check_provenance_log, interpret_schedule
from repro.verify.provenance import MAX_PROVENANCE_DIAGNOSTICS
from repro.workloads import benchmark as make_benchmark

TOPO = Mesh2D(2, 4)


@pytest.fixture()
def solved():
    workload = make_benchmark(1, 8, TOPO, seed=1998)
    tensor = workload.reference_tensor()
    model = CostModel(workload.topology)
    capacity = CapacityPlan.paper_rule(tensor.n_data, TOPO.n_procs)
    instr = Instrumentation.started(provenance=True)
    sched = schedule(
        tensor, model, capacity=capacity, instrument=instr
    )
    return sched, tensor, model, instr.provenance.logs[0]


def test_clean_log_audits_clean(solved):
    sched, tensor, model, log = solved
    assert check_provenance_log(log, sched, tensor, model) == []


def test_clean_log_accepts_precomputed_prediction(solved):
    sched, tensor, model, log = solved
    prediction, _ = interpret_schedule(sched, tensor, model)
    diags = check_provenance_log(
        log, sched, tensor, model, prediction=prediction
    )
    assert diags == []


def test_corrupted_centers_fire_ver012(solved):
    sched, tensor, model, log = solved
    log.centers = log.centers.copy()
    log.centers[0, 0] = (log.centers[0, 0] + 1) % log.n_procs
    diags = check_provenance_log(log, sched, tensor, model)
    assert diags, "a hand-corrupted decision log must not audit clean"
    assert {d.code for d in diags} == {VER012}
    assert all(d.severity is Severity.ERROR for d in diags)
    first = diags[0]
    assert first.datum == 0 and first.window == 0


def test_corrupted_attribution_fires_ver012(solved):
    sched, tensor, model, log = solved
    log.ref_costs = log.ref_costs.copy()
    log.ref_costs[0, 0] += 0.5  # any non-zero drift breaks bit-identity
    diags = check_provenance_log(log, sched, tensor, model)
    assert any(
        "bit-identically" in d.message for d in diags
    ), [d.message for d in diags]
    assert {d.code for d in diags} == {VER012}


def test_corrupted_actions_fire_ver012(solved):
    sched, tensor, model, log = solved
    log.actions = log.actions.copy()
    hold = ACTION_NAMES.index("hold")
    log.actions[0, 0] = hold  # window 0 can never be a hold
    diags = check_provenance_log(log, sched, tensor, model)
    assert any(d.window == 0 and "placement" in d.message for d in diags)


def test_shape_mismatch_short_circuits(solved):
    sched, tensor, model, log = solved
    log.centers = log.centers[:, :-1]
    diags = check_provenance_log(log, sched, tensor, model)
    assert len(diags) == 1
    assert "shape" in diags[0].message


def test_corruption_flood_is_capped(solved):
    sched, tensor, model, log = solved
    log.centers = (log.centers + 1) % log.n_procs  # every cell wrong
    diags = check_provenance_log(log, sched, tensor, model)
    assert 0 < len(diags) <= MAX_PROVENANCE_DIAGNOSTICS


def test_live_range_divergence_reported_via_prediction(solved):
    sched, tensor, model, log = solved
    prediction, _ = interpret_schedule(sched, tensor, model)
    prediction.live_ranges[0] = [(0, 0, log.n_windows - 1)]
    if log.live_ranges()[0] == prediction.live_ranges[0]:
        prediction.live_ranges[0] = [(1, 0, log.n_windows - 1)]
    diags = check_provenance_log(
        log, sched, tensor, model, prediction=prediction
    )
    assert any("abstract interpreter" in d.message for d in diags)
