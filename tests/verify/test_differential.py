"""The static-vs-dynamic gate: agreement on every benchmark, coded
divergence when the static prediction is wrong."""

import dataclasses

import pytest

from repro.core import CostModel, gomcds, reschedule_around_faults
from repro.diagnostics import VER008, VER009, VER010, Severity
from repro.faults import FaultPlan, NodeFault
from repro.mem import CapacityPlan
from repro.verify import interpret_schedule, run_differential
from repro.workloads import benchmark


def _setup(bench, mesh, faults=None):
    wl = benchmark(bench, 8, mesh)
    tensor = wl.reference_tensor()
    model = CostModel(mesh)
    capacity = CapacityPlan.paper_rule(wl.n_data, mesh.n_procs, 2.0)
    if faults is not None:
        schedule = reschedule_around_faults(tensor, model, faults, capacity)
    else:
        schedule = gomcds(tensor, model, capacity)
    prediction, diags = interpret_schedule(
        schedule, tensor, model, trace=wl.trace,
        capacity=None if faults is not None else capacity, faults=faults,
    )
    assert not [d for d in diags if d.severity == Severity.ERROR]
    return wl, tensor, model, capacity, schedule, prediction


@pytest.mark.parametrize("bench", [1, 2, 3, 4, 5])
def test_every_benchmark_agrees(bench, mesh44):
    wl, tensor, model, capacity, schedule, prediction = _setup(bench, mesh44)
    diags, facts = run_differential(
        schedule, wl.trace, tensor, model, prediction, capacity=capacity
    )
    assert diags == []
    assert facts["replay"]["n_delivered"] == prediction.n_delivered


def test_faulted_scenario_agrees(mesh44):
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=2),))
    wl, tensor, model, capacity, schedule, prediction = _setup(
        1, mesh44, faults=plan
    )
    diags, facts = run_differential(
        schedule, wl.trace, tensor, model, prediction, faults=plan
    )
    assert diags == []
    assert facts["static"]["faulted"] is True


def test_wrong_cost_prediction_is_ver008(mesh44):
    wl, tensor, model, capacity, schedule, prediction = _setup(1, mesh44)
    lying = dataclasses.replace(
        prediction, reference_cost=prediction.reference_cost + 1.0
    )
    diags, _ = run_differential(
        schedule, wl.trace, tensor, model, lying, capacity=capacity
    )
    assert any(d.code == VER008 for d in diags)


def test_wrong_link_volume_is_ver009(mesh44):
    wl, tensor, model, capacity, schedule, prediction = _setup(1, mesh44)
    window_links = [dict(links) for links in prediction.window_links]
    for links in window_links:
        if links:
            first = next(iter(links))
            links[first] += 2.0
            break
    lying = dataclasses.replace(prediction, window_links=window_links)
    diags, _ = run_differential(
        schedule, wl.trace, tensor, model, lying, capacity=capacity
    )
    assert any(d.code == VER009 for d in diags)


def test_wrong_accounting_is_ver010(mesh44):
    wl, tensor, model, capacity, schedule, prediction = _setup(1, mesh44)
    lying = dataclasses.replace(
        prediction, n_delivered=prediction.n_delivered - 1
    )
    diags, _ = run_differential(
        schedule, wl.trace, tensor, model, lying, capacity=capacity
    )
    assert any(d.code == VER010 for d in diags)
