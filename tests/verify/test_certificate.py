"""Certificate checking: clean proofs verify; every tamper direction is
caught by its own code."""

import copy
import dataclasses

import numpy as np
import pytest

from repro.core import (
    CostModel,
    gomcds,
    reschedule_around_faults,
    reschedule_from_window,
)
from repro.diagnostics import VER005, VER006, VER007, Severity
from repro.faults import FaultPlan, NodeFault
from repro.mem import CapacityPlan
from repro.verify import certificate_of, check_certificate
from repro.workloads import benchmark


@pytest.fixture
def certified(mesh44):
    wl = benchmark(1, 8, mesh44)
    tensor = wl.reference_tensor()
    model = CostModel(mesh44)
    capacity = CapacityPlan.paper_rule(wl.n_data, mesh44.n_procs, 2.0)
    schedule = gomcds(tensor, model, capacity, certify=True)
    return tensor, model, capacity, schedule


def _codes(diags):
    return {d.code for d in diags}


def test_clean_certificate_verifies(certified):
    tensor, model, _, schedule = certified
    cert = certificate_of(schedule)
    assert cert is not None and cert["kind"] == "gomcds-potentials"
    diags = check_certificate(schedule, tensor, model)
    assert not [d for d in diags if d.severity == Severity.ERROR]


def test_uncertified_schedule_is_silent_unless_required(certified):
    tensor, model, capacity, _ = certified
    plain = gomcds(tensor, model, capacity)
    assert certificate_of(plain) is None
    assert check_certificate(plain, tensor, model) == []
    required = check_certificate(plain, tensor, model, require=True)
    assert _codes(required) == {VER005}


def test_inflated_potential_is_dual_infeasible(certified):
    tensor, model, _, schedule = certified
    bad = dataclasses.replace(schedule, meta=copy.deepcopy(schedule.meta))
    bad.meta["certificate"]["potentials"][0, 2, :] += 3.0
    assert VER006 in _codes(check_certificate(bad, tensor, model))


def test_deflated_bound_is_not_tight(certified):
    tensor, model, _, schedule = certified
    bad = dataclasses.replace(schedule, meta=copy.deepcopy(schedule.meta))
    cert = bad.meta["certificate"]
    cert["potentials"][0, -1, :] -= 5.0
    cert["totals"] = cert["potentials"][:, -1, :].min(axis=1)
    assert VER007 in _codes(check_certificate(bad, tensor, model))


def test_perturbed_center_breaks_tightness(certified):
    tensor, model, _, schedule = certified
    centers = schedule.centers.copy()
    centers[0, 1] = (centers[0, 1] + 7) % model.topology.n_procs
    bad = dataclasses.replace(schedule, centers=centers)
    assert VER007 in _codes(check_certificate(bad, tensor, model))


def test_malformed_certificate_is_ver005(certified):
    tensor, model, _, schedule = certified
    bad = dataclasses.replace(schedule, meta=copy.deepcopy(schedule.meta))
    bad.meta["certificate"]["potentials"] = np.zeros((2, 2))
    diags = check_certificate(bad, tensor, model)
    assert _codes(diags) == {VER005}
    garbage = dataclasses.replace(schedule, meta={"certificate": "yes"})
    assert _codes(check_certificate(garbage, tensor, model)) == {VER005}


def test_faulted_certificates_verify(certified, mesh44):
    tensor, model, capacity, _ = certified
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=2),))
    schedule = reschedule_around_faults(
        tensor, model, plan, capacity, certify=True
    )
    diags = check_certificate(schedule, tensor, model, faults=plan)
    assert not [d for d in diags if d.severity == Severity.ERROR]


def test_mask_admitting_dead_node_is_ver005(certified, mesh44):
    tensor, model, capacity, _ = certified
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=0),))
    schedule = reschedule_around_faults(
        tensor, model, plan, capacity, certify=True
    )
    bad = dataclasses.replace(schedule, meta=copy.deepcopy(schedule.meta))
    bad.meta["certificate"]["masks"][:, :, 5] = True  # pid 5 is down
    assert VER005 in _codes(
        check_certificate(bad, tensor, model, faults=plan)
    )


def test_suffix_certificate_verifies(certified):
    tensor, model, capacity, schedule = certified
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=2),))
    suffix = reschedule_from_window(
        schedule, tensor, model, plan, from_window=2, capacity=capacity,
        certify=True,
    )
    cert = certificate_of(suffix)
    assert cert is not None and cert["from_window"] == 2
    diags = check_certificate(suffix, tensor, model, faults=plan)
    assert not [d for d in diags if d.severity == Severity.ERROR]


def test_restricted_to_keeps_certificate_consistent(certified):
    tensor, model, _, schedule = certified
    from repro.trace import ReferenceTensor

    ids = [0, 3, 5]
    sub = schedule.restricted_to(ids)
    subtensor = ReferenceTensor(tensor.counts[ids], tensor.windows)
    diags = check_certificate(sub, subtensor, model)
    assert not [d for d in diags if d.severity == Severity.ERROR]
