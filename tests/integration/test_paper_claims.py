"""End-to-end checks of the paper's headline claims (small sizes).

These are the claims EXPERIMENTS.md records, validated at 8x8/16x16 so
the suite stays fast; the full-size numbers come from the bench harness.
"""

import numpy as np
import pytest

from repro.analysis import run_table1, run_table2
from repro.core import CostModel, evaluate_schedule, gomcds, grouped_schedule, lomcds, scds
from repro.distrib import baseline_schedule
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.sim import replay_schedule
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def table1():
    return run_table1(sizes=(8, 16), benchmarks=(1, 2, 3, 4, 5))


@pytest.fixture(scope="module")
def table2():
    return run_table2(sizes=(8, 16), benchmarks=(1, 2, 3, 4, 5))


class TestTable1Claims:
    def test_all_schemes_beat_sf_on_average(self, table1):
        """'All of the proposed schemes give significant improvement
        compared with the straight forward data distribution.'"""
        for name in ("SCDS", "LOMCDS", "GOMCDS"):
            assert table1.average_improvement(name) > 5.0

    def test_gomcds_is_best_on_average(self, table1):
        """'the performance of GOMCDS is the best'"""
        assert table1.best_scheduler() == "GOMCDS"

    def test_lomcds_outperforms_scds_on_average(self, table1):
        """'LOMCDS outperforms SCDS' (on average)."""
        assert table1.average_improvement("LOMCDS") > table1.average_improvement(
            "SCDS"
        )

    def test_movement_helps_most_on_complex_patterns(self, table1):
        """'considering the data movement can be more effective especially
        for the benchmarks with complicate data reference patterns' —
        the movement advantage (GOMCDS vs SCDS) is larger on the combined
        benchmarks (3-5) than on the simple ones (1-2)."""

        def movement_edge(rows):
            return np.mean(
                [
                    r.result_for("GOMCDS").improvement
                    - r.result_for("SCDS").improvement
                    for r in rows
                ]
            )

        simple = [r for r in table1.rows if r.benchmark in (1, 2)]
        complex_ = [r for r in table1.rows if r.benchmark in (3, 4, 5)]
        assert movement_edge(complex_) > movement_edge(simple)

    def test_improvement_magnitude_band(self, table1):
        """The paper reports average improvements 'up to 30%'; our
        substituted CODE kernel lands in the same band or above, and the
        shape (GOMCDS ~tens of percent) must hold."""
        avg = table1.average_improvement("GOMCDS")
        assert 20.0 <= avg <= 70.0

    def test_gomcds_never_worse_than_scds_rowwise(self, table1):
        for row in table1.rows:
            assert row.result_for("GOMCDS").cost <= row.result_for("SCDS").cost


class TestTable2Claims:
    def test_grouping_further_improves(self, table1, table2):
        """'the performance is further improved by applying the grouping
        algorithm' — LOMCDS after grouping beats LOMCDS before, on
        average."""
        before = table1.average_improvement("LOMCDS")
        after = table2.average_improvement("LOMCDS")
        assert after >= before

    def test_grouping_never_hurts_lomcds_unconstrained(self):
        """Per-row the guarantee only holds without a memory constraint:
        Algorithm 3 accepts a merge only when the (unconstrained) cost does
        not increase.  Under capacity pressure individual rows may regress
        (the grouped placement displaces differently); the tables' claim is
        the average, checked above."""
        for bench in (1, 2, 5):
            topo = Mesh2D(4, 4)
            wl = benchmark(bench, 8, topo)
            tensor = wl.reference_tensor()
            model = CostModel(topo)
            plain = evaluate_schedule(lomcds(tensor, model), tensor, model).total
            grouped = evaluate_schedule(
                grouped_schedule(tensor, model, center_method="local"),
                tensor,
                model,
            ).total
            assert grouped <= plain


class TestFullStackConsistency:
    @pytest.mark.parametrize("bench", [1, 2, 5])
    def test_replay_matches_analytic_under_capacity(self, bench):
        """Scheduler -> allocator -> evaluator -> machine -> router all
        agree: the replayed cost of every scheduler equals the analytic
        objective, and the machine accepts the allocator's decisions."""
        topo = Mesh2D(4, 4)
        wl = benchmark(bench, 8, topo)
        tensor = wl.reference_tensor()
        model = CostModel(topo)
        cap = CapacityPlan.paper_rule(wl.n_data, topo.n_procs)
        for scheduler in (scds, lomcds, gomcds, grouped_schedule):
            schedule = scheduler(tensor, model, cap)
            analytic = evaluate_schedule(schedule, tensor, model)
            report = replay_schedule(wl.trace, schedule, model, capacity=cap)
            assert report.matches(analytic), scheduler.__name__

    def test_baseline_replay_matches(self):
        topo = Mesh2D(4, 4)
        wl = benchmark(3, 8, topo)
        tensor = wl.reference_tensor()
        model = CostModel(topo)
        schedule = baseline_schedule(wl, "row_wise")
        analytic = evaluate_schedule(schedule, tensor, model)
        report = replay_schedule(wl.trace, schedule, model)
        assert report.matches(analytic)

    def test_capacity_binds_but_stays_feasible(self):
        """At the paper's 2x rule the allocator must produce schedules the
        strict machine accepts, even when first choices collide."""
        topo = Mesh2D(4, 4)
        wl = benchmark(5, 8, topo)
        tensor = wl.reference_tensor()
        model = CostModel(topo)
        tight = CapacityPlan.paper_rule(wl.n_data, topo.n_procs, multiplier=1.0)
        schedule = gomcds(tensor, model, capacity=tight)
        occ = schedule.occupancy(topo.n_procs)
        assert (occ <= tight.capacities[None, :]).all()
        assert occ.max() == tight.capacities.max()  # the constraint binds
        replay_schedule(wl.trace, schedule, model, capacity=tight)
