"""Smoke tests: every example script runs end to end and passes its own
internal assertions (they assert replay agreement, claim ordering, etc.)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "replay check" in out
    assert "GOMCDS" in out


def test_irregular_kernel(capsys):
    run_example("irregular_kernel.py")
    out = capsys.readouterr().out
    assert "Algorithm 3 grouping" in out


def test_custom_workload(capsys):
    run_example("custom_workload.py")
    out = capsys.readouterr().out
    assert "Gauss-Seidel" in out
    assert "max link load" in out


@pytest.mark.slow
def test_reproduce_paper_fast(capsys):
    run_example("reproduce_paper.py", argv=["--fast"])
    out = capsys.readouterr().out
    assert "[ok]" in out and "FAIL" not in out


@pytest.mark.slow
def test_extended_suite(capsys):
    run_example("extended_suite.py")
    out = capsys.readouterr().out
    assert "Extended suite" in out
    assert "makespan" in out


def test_loop_nest_dsl(capsys):
    run_example("loop_nest_dsl.py")
    out = capsys.readouterr().out
    assert "quadratic-gather" in out
    assert "GOMCDS" in out
