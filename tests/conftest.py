"""Shared fixtures: small machines, models and workloads."""

import numpy as np
import pytest

from repro.core import CostModel
from repro.grid import Mesh1D, Mesh2D, Torus2D
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor
from repro.workloads import (
    drifting_hotspot_workload,
    lu_workload,
    trace_from_counts,
)


@pytest.fixture
def mesh44():
    return Mesh2D(4, 4)


@pytest.fixture
def mesh23():
    return Mesh2D(2, 3)


@pytest.fixture
def line8():
    return Mesh1D(8)


@pytest.fixture
def torus44():
    return Torus2D(4, 4)


@pytest.fixture
def model44(mesh44):
    return CostModel(mesh44)


@pytest.fixture
def lu8(mesh44):
    """LU factorization of an 8x8 matrix on the paper's 4x4 array."""
    return lu_workload(8, mesh44)


@pytest.fixture
def lu8_tensor(lu8):
    return lu8.reference_tensor()


@pytest.fixture
def paper_capacity(lu8, mesh44):
    return CapacityPlan.paper_rule(lu8.n_data, mesh44.n_procs)


@pytest.fixture
def drift(mesh44):
    """A drifting-hotspot workload where data movement clearly pays."""
    return drifting_hotspot_workload(mesh44, n_data=12, n_steps=8, seed=3)


def make_tensor(counts, topology):
    """Tensor + trace for explicit (D, W, m) reference counts."""
    counts = np.asarray(counts, dtype=np.int64)
    trace, windows = trace_from_counts(counts, topology)
    return build_reference_tensor(trace, windows), trace


@pytest.fixture
def tiny_tensor(mesh23):
    """2 data, 3 windows, 6 procs — small enough to verify by hand."""
    counts = np.zeros((2, 3, 6), dtype=np.int64)
    # datum 0: drifts from proc 0 to proc 5
    counts[0, 0, 0] = 3
    counts[0, 1, 2] = 2
    counts[0, 2, 5] = 3
    # datum 1: always hottest at proc 4
    counts[1, :, 4] = 2
    counts[1, 0, 1] = 1
    tensor, _trace = make_tensor(counts, mesh23)
    return tensor
