"""Spatial telemetry through the replay and network simulators.

The load-bearing invariant: on a fault-free replay the summed per-link
traffic must reconcile *exactly* with the analytic
:class:`~repro.core.CostBreakdown` — every hop of every transfer is one
unit of link volume, so total link volume == total hop x volume cost.
"""

import numpy as np
import pytest

from repro.core import CostModel, evaluate_schedule, gomcds
from repro.faults import FaultPlan, NodeFault
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.obs import Instrumentation
from repro.sim import replay_schedule, simulate_schedule_network
from repro.workloads import benchmark as make_benchmark


def spatial_replay(workload, model, capacity=None):
    tensor = workload.reference_tensor()
    sched = gomcds(tensor, model, capacity)
    breakdown = evaluate_schedule(sched, tensor, model)
    instr = Instrumentation.started(spatial=True)
    report = replay_schedule(
        workload.trace, sched, model, capacity=capacity, instrument=instr
    )
    return instr, report, breakdown


@pytest.mark.parametrize("bench", [1, 2, 3, 4, 5])
def test_link_traffic_reconciles_with_cost_breakdown(bench, mesh44):
    """Summed spatial link volume == analytic total on benchmarks 1-5."""
    workload = make_benchmark(bench, 8, mesh44, seed=1998)
    instr, report, breakdown = spatial_replay(workload, CostModel(mesh44))
    (trace,) = instr.spatial.traces
    assert trace.total_link_traffic == pytest.approx(breakdown.total)
    assert report.total_cost == pytest.approx(breakdown.total)


def test_per_window_series_recorded(lu8, mesh44):
    instr, _report, _ = spatial_replay(lu8, CostModel(mesh44))
    (trace,) = instr.spatial.traces
    assert trace.n_windows == lu8.reference_tensor().n_windows
    assert any(links for links in trace.window_links)
    # storage snapshots account for every datum in every window
    assert np.allclose(trace.storage.sum(axis=1), lu8.n_data)
    # window timestamps are monotone (tracer clock)
    assert all(a <= b for a, b in zip(trace.window_ts, trace.window_ts[1:]))


def test_spatial_matches_track_links_accounting(lu8, model44, paper_capacity):
    """The recorder's totals are exactly the track_links link traffic."""
    tensor = lu8.reference_tensor()
    sched = gomcds(tensor, model44, paper_capacity)
    instr = Instrumentation.started(spatial=True)
    report = replay_schedule(
        lu8.trace, sched, model44,
        capacity=paper_capacity, track_links=True, instrument=instr,
    )
    (trace,) = instr.spatial.traces
    assert trace.link_totals() == report.link_traffic


def test_replay_bit_identical_with_spatial_recording(
    lu8, model44, paper_capacity
):
    tensor = lu8.reference_tensor()
    sched = gomcds(tensor, model44, paper_capacity)
    plain = replay_schedule(
        lu8.trace, sched, model44, capacity=paper_capacity
    )
    instr = Instrumentation.started(spatial=True)
    spatial = replay_schedule(
        lu8.trace, sched, model44, capacity=paper_capacity, instrument=instr
    )
    assert spatial.to_dict() == plain.to_dict()


def test_plain_sessions_record_no_spatial_traces(lu8, model44):
    sched = gomcds(lu8.reference_tensor(), model44)
    instr = Instrumentation.started()  # spatial not requested
    replay_schedule(lu8.trace, sched, model44, instrument=instr)
    assert len(instr.spatial.traces) == 0


def test_faulted_replay_records_spatial_and_stays_identical(
    lu8, model44, paper_capacity
):
    sched = gomcds(lu8.reference_tensor(), model44, paper_capacity)
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=1),))
    plain = replay_schedule(
        lu8.trace, sched, model44,
        capacity=paper_capacity, faults=plan, track_links=True,
    )
    instr = Instrumentation.started(spatial=True)
    traced = replay_schedule(
        lu8.trace, sched, model44,
        capacity=paper_capacity, faults=plan, track_links=True,
        instrument=instr,
    )
    assert traced.to_dict() == plain.to_dict()
    (trace,) = instr.spatial.traces
    # the recorder mirrored every track_links charge (fetches, retries,
    # degraded moves and evacuations alike)
    assert trace.link_totals() == plain.link_traffic


def test_volumes_weight_link_traffic(mesh44):
    workload = make_benchmark(1, 8, mesh44, seed=7)
    volumes = np.full(workload.n_data, 3.0)
    model = CostModel(mesh44, volumes=volumes)
    instr, _report, breakdown = spatial_replay(workload, model)
    (trace,) = instr.spatial.traces
    assert trace.total_link_traffic == pytest.approx(breakdown.total)


def test_network_simulation_records_spatial(lu8, model44):
    sched = gomcds(lu8.reference_tensor(), model44)
    instr = Instrumentation.started(spatial=True)
    plain = simulate_schedule_network(lu8.trace, sched, model44)
    traced = simulate_schedule_network(
        lu8.trace, sched, model44, instrument=instr
    )
    assert np.array_equal(traced.fetch_cycles, plain.fetch_cycles)
    assert np.array_equal(traced.move_cycles, plain.move_cycles)
    (trace,) = instr.spatial.traces
    assert trace.label == "network:GOMCDS"
    assert trace.total_link_traffic > 0
    hist = instr.metrics.histograms["network.window_fetch_cycles"]
    assert hist.count == sched.n_windows


def test_report_topology_shape_round_trips(lu8, model44):
    from repro.sim import SimReport

    sched = gomcds(lu8.reference_tensor(), model44)
    report = replay_schedule(lu8.trace, sched, model44, track_links=True)
    assert report.topology_shape == (4, 4)
    serialized = report.to_dict()["link_traffic"]
    assert serialized  # non-empty and keyed by coordinate strings
    assert all("->" in key for key in serialized)
    parsed = SimReport.parse_link_traffic(serialized, shape=(4, 4))
    assert parsed == report.link_traffic
