"""Execution-time estimate tests."""

import numpy as np
import pytest

from repro.core import CostModel, Schedule, gomcds, scds
from repro.distrib import baseline_schedule
from repro.grid import Mesh1D
from repro.sim import TimingModel, estimate_execution_time
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


def instance_1d(counts):
    topo = Mesh1D(np.asarray(counts).shape[2])
    trace, windows = trace_from_counts(np.asarray(counts, dtype=np.int64), topo)
    tensor = build_reference_tensor(trace, windows)
    return trace, tensor, CostModel(topo)


class TestHandComputed:
    def test_all_local_is_pure_compute(self):
        trace, tensor, model = instance_1d([[[3, 0, 0]]])
        sched = Schedule.static(np.array([0]), tensor.windows)
        report = estimate_execution_time(trace, sched, model)
        assert report.compute_time.tolist() == [3.0]
        assert report.fetch_comm_time.tolist() == [0.0]
        assert report.comm_fraction == 0.0

    def test_remote_fetch_contention(self):
        # 2 refs from proc 2 to a datum at proc 0: volume 2 over 2 links;
        # endpoint volume is also 2 at both ends -> comm time 2
        trace, tensor, model = instance_1d([[[0, 0, 2]]])
        sched = Schedule.static(np.array([0]), tensor.windows)
        report = estimate_execution_time(trace, sched, model)
        assert report.fetch_comm_time.tolist() == [2.0]
        assert report.compute_time.tolist() == [2.0]
        assert report.total == 4.0

    def test_movement_phase_timed(self):
        trace, tensor, model = instance_1d([[[2, 0, 0], [0, 0, 2]]])
        sched = Schedule(centers=np.array([[0, 2]]), windows=tensor.windows)
        report = estimate_execution_time(trace, sched, model)
        # the move 0 -> 2 ships volume 1 over two links: phase time 1
        assert report.move_comm_time.tolist() == [0.0, 1.0]
        # window references are local on both sides
        assert report.fetch_comm_time.tolist() == [0.0, 0.0]

    def test_coefficients_scale_terms(self):
        trace, tensor, model = instance_1d([[[0, 0, 2]]])
        sched = Schedule.static(np.array([0]), tensor.windows)
        fast_net = estimate_execution_time(
            trace, sched, model, TimingModel(t_compute=1.0, t_hop=0.0)
        )
        slow_net = estimate_execution_time(
            trace, sched, model, TimingModel(t_compute=1.0, t_hop=10.0)
        )
        assert fast_net.total == 2.0
        assert slow_net.total == 2.0 + 20.0

    def test_parallel_compute_uses_max_not_sum(self):
        # two procs each do 2 local refs in the same window -> compute 2
        trace, tensor, model = instance_1d([[[2, 0, 0]], [[0, 0, 2]]])
        sched = Schedule.static(np.array([0, 2]), tensor.windows)
        report = estimate_execution_time(trace, sched, model)
        assert report.compute_time.tolist() == [2.0]


class TestComparative:
    def test_gomcds_localizes_fetch_phases(self, drift, mesh44):
        """GOMCDS optimizes hop x volume, which shrinks the *fetch*
        communication phases; its movement phases add serialized time the
        paper's metric never charges, so the makespan totals may go either
        way — exactly the metric gap this estimator exists to expose."""
        tensor = drift.reference_tensor()
        model = CostModel(mesh44)
        good = estimate_execution_time(
            drift.trace, gomcds(tensor, model), model
        )
        bad = estimate_execution_time(
            drift.trace, baseline_schedule(drift, "random"), model
        )
        assert good.fetch_comm_time.sum() <= bad.fetch_comm_time.sum()
        assert bad.move_comm_time.sum() == 0.0  # static baseline never moves

    def test_comm_fraction_in_unit_range(self, lu8, lu8_tensor, mesh44):
        model = CostModel(mesh44)
        report = estimate_execution_time(
            lu8.trace, scds(lu8_tensor, model), model
        )
        assert 0.0 <= report.comm_fraction < 1.0
        assert report.per_window_total.shape == (lu8_tensor.n_windows,)


class TestValidation:
    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(t_compute=-1.0)

    def test_span_mismatch(self, lu8, mesh44):
        from repro.trace import windows_by_step_count

        model = CostModel(mesh44)
        wrong = windows_by_step_count(lu8.trace.n_steps + 3, 2)
        sched = Schedule.static(np.zeros(lu8.n_data, dtype=np.int64), wrong)
        with pytest.raises(ValueError):
            estimate_execution_time(lu8.trace, sched, model)
