"""Replay-simulator tests: hop-level replay must equal the analytic model."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    Schedule,
    evaluate_schedule,
    gomcds,
    grouped_schedule,
    lomcds,
    scds,
)
from repro.distrib import baseline_schedule
from repro.mem import CapacityError, CapacityPlan
from repro.sim import replay_schedule


class TestAgreementWithAnalyticModel:
    @pytest.mark.parametrize("scheduler", [scds, lomcds, gomcds, grouped_schedule])
    def test_exact_agreement(self, lu8, lu8_tensor, mesh44, scheduler):
        model = CostModel(mesh44)
        schedule = scheduler(lu8_tensor, model)
        analytic = evaluate_schedule(schedule, lu8_tensor, model)
        report = replay_schedule(lu8.trace, schedule, model)
        assert report.matches(analytic)
        assert report.total_cost == pytest.approx(analytic.total)

    def test_agreement_with_baseline(self, lu8, lu8_tensor, mesh44):
        model = CostModel(mesh44)
        schedule = baseline_schedule(lu8, "row_wise")
        analytic = evaluate_schedule(schedule, lu8_tensor, model)
        report = replay_schedule(lu8.trace, schedule, model)
        assert report.matches(analytic)

    def test_agreement_with_volumes(self, drift, mesh44):
        rng = np.random.default_rng(0)
        tensor = drift.reference_tensor()
        model = CostModel(mesh44, volumes=rng.uniform(0.5, 3.0, tensor.n_data))
        schedule = gomcds(tensor, model)
        analytic = evaluate_schedule(schedule, tensor, model)
        report = replay_schedule(drift.trace, schedule, model)
        assert report.matches(analytic)

    def test_per_window_costs_sum_to_total(self, drift, mesh44):
        model = CostModel(mesh44)
        tensor = drift.reference_tensor()
        schedule = lomcds(tensor, model)
        report = replay_schedule(drift.trace, schedule, model)
        assert report.per_window_cost.sum() == pytest.approx(report.total_cost)


class TestLinkTracking:
    def test_link_traffic_equals_cost(self, drift, mesh44):
        # every hop carries its transfer's volume, so summed link traffic
        # must equal the hop x volume objective exactly
        model = CostModel(mesh44)
        tensor = drift.reference_tensor()
        schedule = gomcds(tensor, model)
        report = replay_schedule(drift.trace, schedule, model, track_links=True)
        assert report.total_link_traffic == pytest.approx(report.total_cost)

    def test_links_are_mesh_edges(self, drift, mesh44):
        model = CostModel(mesh44)
        tensor = drift.reference_tensor()
        report = replay_schedule(
            drift.trace, lomcds(tensor, model), model, track_links=True
        )
        for a, b in report.link_traffic:
            assert mesh44.distance(a, b) == 1

    def test_max_link_load_positive(self, drift, mesh44):
        model = CostModel(mesh44)
        tensor = drift.reference_tensor()
        report = replay_schedule(
            drift.trace, baseline_schedule(drift, "random"), model, track_links=True
        )
        assert report.max_link_load > 0
        assert report.max_link_load <= report.total_link_traffic


class TestCounters:
    def test_local_fetches_counted(self, drift, mesh44):
        model = CostModel(mesh44)
        tensor = drift.reference_tensor()
        report = replay_schedule(drift.trace, gomcds(tensor, model), model)
        assert 0 < report.n_local_fetches <= report.n_fetches

    def test_moves_counted(self, drift, mesh44):
        model = CostModel(mesh44)
        tensor = drift.reference_tensor()
        schedule = lomcds(tensor, model)
        report = replay_schedule(drift.trace, schedule, model)
        assert report.n_moves == schedule.n_movements()

    def test_static_schedule_never_moves(self, lu8, lu8_tensor, mesh44):
        model = CostModel(mesh44)
        report = replay_schedule(lu8.trace, scds(lu8_tensor, model), model)
        assert report.n_moves == 0
        assert report.movement_cost == 0.0


class TestCapacityEnforcement:
    def test_valid_schedule_passes(self, lu8, lu8_tensor, mesh44, paper_capacity):
        model = CostModel(mesh44)
        schedule = gomcds(lu8_tensor, model, capacity=paper_capacity)
        replay_schedule(lu8.trace, schedule, model, capacity=paper_capacity)

    def test_overcommitted_schedule_caught(self, lu8, lu8_tensor, mesh44):
        model = CostModel(mesh44)
        # place everything on processor 0: blatantly over capacity
        schedule = Schedule.static(
            np.zeros(lu8_tensor.n_data, dtype=np.int64), lu8_tensor.windows
        )
        with pytest.raises(CapacityError):
            replay_schedule(
                lu8.trace, schedule, model, capacity=CapacityPlan.uniform(16, 8)
            )


class TestValidation:
    def test_window_span_checked(self, lu8, mesh44):
        from repro.trace import windows_by_step_count

        model = CostModel(mesh44)
        wrong = windows_by_step_count(lu8.trace.n_steps + 5, 2)
        schedule = Schedule.static(np.zeros(lu8.n_data, dtype=np.int64), wrong)
        with pytest.raises(ValueError):
            replay_schedule(lu8.trace, schedule, model)

    def test_n_data_checked(self, lu8, mesh44):
        model = CostModel(mesh44)
        schedule = Schedule.static(np.zeros(3, dtype=np.int64), lu8.windows)
        with pytest.raises(ValueError):
            replay_schedule(lu8.trace, schedule, model)
