"""ReplayCursor: window-stepping replay with snapshot/rollback fidelity."""

import numpy as np
import pytest

from repro.core import gomcds
from repro.faults import FaultPlan, NodeFault
from repro.sim import ReplayCursor, replay_schedule


@pytest.fixture
def run(drift, model44):
    tensor = drift.reference_tensor()
    schedule = gomcds(tensor, model44)
    return drift.trace, schedule, model44


class TestBitIdentity:
    def test_fault_free_matches_monolithic_replay(self, run):
        trace, schedule, model = run
        cursor = ReplayCursor(trace, schedule, model)
        report = cursor.run()
        baseline = replay_schedule(trace, schedule, model)
        assert report.to_dict() == baseline.to_dict()

    def test_fault_free_with_link_tracking(self, run):
        trace, schedule, model = run
        cursor = ReplayCursor(trace, schedule, model, track_links=True)
        report = cursor.run()
        baseline = replay_schedule(trace, schedule, model, track_links=True)
        assert report.to_dict() == baseline.to_dict()

    def test_faulted_matches_monolithic_replay(self, run):
        trace, schedule, model = run
        plan = FaultPlan(
            node_faults=(NodeFault(pid=5, start=1),), drop_rate=0.05, seed=3
        )
        cursor = ReplayCursor(trace, schedule, model, faults=plan)
        report = cursor.run()
        baseline = replay_schedule(trace, schedule, model, faults=plan)
        assert report.to_dict() == baseline.to_dict()


class TestStepping:
    def test_step_past_end_raises(self, run):
        trace, schedule, model = run
        cursor = ReplayCursor(trace, schedule, model)
        cursor.run()
        with pytest.raises(RuntimeError, match="past the last window"):
            cursor.step()

    def test_finish_before_done_raises(self, run):
        trace, schedule, model = run
        cursor = ReplayCursor(trace, schedule, model)
        cursor.step()
        with pytest.raises(RuntimeError, match="incomplete"):
            cursor.finish()

    def test_window_events_partition_the_trace(self, run):
        trace, schedule, model = run
        cursor = ReplayCursor(trace, schedule, model)
        served = np.concatenate(
            [cursor.window_events(w) for w in range(cursor.n_windows)]
        )
        assert sorted(served.tolist()) == list(range(len(trace.steps)))


class TestCheckpointing:
    def test_snapshot_restore_reproduces_digest(self, run):
        trace, schedule, model = run
        cursor = ReplayCursor(trace, schedule, model)
        cursor.step()
        cursor.step()
        ckpt = cursor.snapshot()
        assert cursor.state_digest() == ckpt.digest
        cursor.step()
        assert cursor.state_digest() != ckpt.digest
        cursor.restore(ckpt)
        assert cursor.window == ckpt.window
        assert cursor.state_digest() == ckpt.digest

    def test_restore_is_repeatable(self, run):
        trace, schedule, model = run
        cursor = ReplayCursor(trace, schedule, model)
        cursor.step()
        ckpt = curspt = cursor.snapshot()
        first = None
        for _ in range(3):
            cursor.restore(curspt)
            while not cursor.done:
                cursor.step()
            digest = cursor.state_digest()
            if first is None:
                first = digest
            assert digest == first
        assert ckpt.digest == curspt.digest

    def test_rollback_then_rerun_matches_straight_run(self, run):
        trace, schedule, model = run
        straight = ReplayCursor(trace, schedule, model).run()
        cursor = ReplayCursor(trace, schedule, model)
        cursor.step()
        ckpt = cursor.snapshot()
        cursor.step()
        cursor.restore(ckpt)
        while not cursor.done:
            cursor.step()
        assert cursor.finish().to_dict() == straight.to_dict()

    def test_checkpoint_to_dict_is_serializable(self, run):
        import json

        trace, schedule, model = run
        cursor = ReplayCursor(trace, schedule, model)
        cursor.step()
        d = cursor.snapshot().to_dict()
        assert d["kind"] == "checkpoint"
        assert json.loads(json.dumps(d)) == d


class TestRebind:
    def test_rebind_rejects_horizon_change(self, run, model44, lu8, lu8_tensor):
        trace, schedule, model = run
        other = gomcds(lu8_tensor, model44)
        cursor = ReplayCursor(trace, schedule, model)
        with pytest.raises(ValueError):
            cursor.rebind(schedule=other)

    def test_rebind_to_faulted_plan_switches_paths(self, run):
        trace, schedule, model = run
        cursor = ReplayCursor(trace, schedule, model)
        assert cursor.injector is None
        cursor.step()
        plan = FaultPlan(node_faults=(NodeFault(pid=0, start=1),))
        cursor.rebind(faults=plan)
        assert cursor.injector is not None
        report = cursor.run()
        # accounting stays closed across the mid-run path switch
        assert report.accounts_for_all_fetches()


class TestValidation:
    def test_mismatched_trace_rejected(self, run, lu8):
        _, schedule, model = run
        with pytest.raises(ValueError):
            ReplayCursor(lu8.trace, schedule, model)
