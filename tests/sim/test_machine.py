"""PIMArray machine-state tests."""

import numpy as np
import pytest

from repro.mem import CapacityError, CapacityPlan
from repro.sim import PIMArray


@pytest.fixture
def machine(mesh23):
    return PIMArray(mesh23, CapacityPlan.uniform(6, 2))


def test_load_and_lookup(machine):
    machine.load_initial(np.array([0, 1, 1, 5]))
    assert machine.location_of(0) == 0
    assert machine.location_of(2) == 1
    assert machine.memory_load().tolist() == [1, 2, 0, 0, 0, 1]


def test_load_rejects_over_capacity(machine):
    with pytest.raises(CapacityError):
        machine.load_initial(np.array([0, 0, 0]))


def test_load_rejects_bad_pids(machine):
    with pytest.raises(ValueError):
        machine.load_initial(np.array([0, 9]))


def test_relocate_updates_state(machine):
    machine.load_initial(np.array([0, 1]))
    machine.relocate(0, 0, 3)
    assert machine.location_of(0) == 3
    assert machine.memory_load()[0] == 0
    assert machine.memory_load()[3] == 1


def test_relocate_checks_source(machine):
    machine.load_initial(np.array([0, 1]))
    with pytest.raises(RuntimeError):
        machine.relocate(0, 2, 3)


def test_relocate_noop_when_same(machine):
    machine.load_initial(np.array([0, 1]))
    machine.relocate(0, 0, 0)
    assert machine.location_of(0) == 0


def test_relocate_enforces_capacity(machine):
    machine.load_initial(np.array([0, 1, 1]))
    with pytest.raises(CapacityError):
        machine.relocate(0, 0, 1)


def test_batch_swap_between_full_memories(mesh23):
    machine = PIMArray(mesh23, CapacityPlan.uniform(6, 1))
    machine.load_initial(np.array([0, 1]))
    # single relocations would overflow; the batch swap is legal
    machine.relocate_batch(np.array([0, 1]), np.array([1, 0]))
    assert machine.location_of(0) == 1
    assert machine.location_of(1) == 0


def test_batch_rejects_net_overflow(mesh23):
    machine = PIMArray(mesh23, CapacityPlan.uniform(6, 1))
    machine.load_initial(np.array([0, 1]))
    with pytest.raises(CapacityError):
        machine.relocate_batch(np.array([0]), np.array([1]))


def test_batch_rejects_duplicate_datum(machine):
    machine.load_initial(np.array([0, 1]))
    with pytest.raises(ValueError):
        machine.relocate_batch(np.array([0, 0]), np.array([2, 3]))


def test_unloaded_machine_raises(machine):
    with pytest.raises(RuntimeError):
        machine.location_of(0)
    with pytest.raises(RuntimeError):
        machine.relocate(0, 0, 1)


def test_no_capacity_plan_is_unbounded(mesh23):
    machine = PIMArray(mesh23)
    machine.load_initial(np.zeros(50, dtype=np.int64))
    assert machine.memory_load()[0] == 50


def test_capacity_topology_mismatch(mesh44):
    with pytest.raises(ValueError):
        PIMArray(mesh44, CapacityPlan.uniform(6, 2))
