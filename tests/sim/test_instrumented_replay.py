"""Instrumentation must be strictly read-only: replay results are
bit-identical with tracing on, and the recorded metrics agree with the
report's own accounting."""

import numpy as np
import pytest

from repro.core import gomcds
from repro.faults import FaultPlan, NodeFault
from repro.obs import Instrumentation
from repro.sim import replay_schedule


@pytest.fixture
def lu_schedule(lu8_tensor, model44, paper_capacity):
    return gomcds(lu8_tensor, model44, paper_capacity)


def test_fault_free_replay_bit_identical_with_tracing(
    lu8, lu_schedule, model44, paper_capacity
):
    plain = replay_schedule(
        lu8.trace, lu_schedule, model44,
        capacity=paper_capacity, track_links=True,
    )
    instr = Instrumentation.started()
    traced = replay_schedule(
        lu8.trace, lu_schedule, model44,
        capacity=paper_capacity, track_links=True, instrument=instr,
    )
    assert traced.reference_cost == plain.reference_cost
    assert traced.movement_cost == plain.movement_cost
    assert traced.link_traffic == plain.link_traffic
    assert np.array_equal(traced.per_window_cost, plain.per_window_cost)
    assert traced.to_dict() == plain.to_dict()
    # ...and the session actually recorded the replay
    names = {s.name for s in instr.tracer.spans}
    assert "sim.replay" in names
    assert "sim.window" in names


def test_faulted_replay_bit_identical_with_tracing(
    lu8, lu_schedule, model44, paper_capacity
):
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=1),))
    plain = replay_schedule(
        lu8.trace, lu_schedule, model44,
        capacity=paper_capacity, faults=plan,
    )
    instr = Instrumentation.started()
    traced = replay_schedule(
        lu8.trace, lu_schedule, model44,
        capacity=paper_capacity, faults=plan, instrument=instr,
    )
    assert traced.to_dict() == plain.to_dict()
    counters = instr.metrics.counters
    assert counters["faults.delivered"].value == plain.n_delivered
    assert counters["faults.evacuated"].value == plain.n_evacuated


def test_window_metrics_agree_with_report(lu8, lu_schedule, model44):
    instr = Instrumentation.started()
    report = replay_schedule(
        lu8.trace, lu_schedule, model44, instrument=instr,
    )
    hist = instr.metrics.histograms["sim.window_cost"]
    assert hist.count == lu_schedule.n_windows
    assert hist.total == pytest.approx(float(report.per_window_cost.sum()))
    counters = instr.metrics.counters
    assert counters["sim.fetches"].value == report.n_fetches
    assert counters["sim.moves"].value == report.n_moves
    hops = instr.metrics.histograms["sim.window_hops"]
    assert hops.count == lu_schedule.n_windows
    assert all(ts is not None for ts in hops.timestamps)


def test_replay_matches_analytic_with_tracing(lu8, lu8_tensor, model44):
    from repro.core import evaluate_schedule

    sched = gomcds(lu8_tensor, model44)
    breakdown = evaluate_schedule(sched, lu8_tensor, model44)
    report = replay_schedule(
        lu8.trace, sched, model44, instrument=Instrumentation.started()
    )
    assert report.matches(breakdown)
