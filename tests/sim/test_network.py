"""Cycle-stepped network simulation tests."""

import numpy as np
import pytest

from repro.core import CostModel, Schedule, gomcds, scds
from repro.grid import Mesh1D, Mesh2D, XYRouter
from repro.sim import (
    estimate_execution_time,
    simulate_schedule_network,
    simulate_window_traffic,
)
from repro.trace import build_reference_tensor
from repro.workloads import trace_from_counts


@pytest.fixture
def router1d():
    return XYRouter(Mesh1D(6))


class TestSingleTransfers:
    def test_empty_batch(self, router1d):
        assert simulate_window_traffic([], router1d) == 0

    def test_local_transfer_free(self, router1d):
        assert simulate_window_traffic([(2, 2, 5)], router1d) == 0

    def test_single_packet_takes_hop_count(self, router1d):
        assert simulate_window_traffic([(0, 4, 1)], router1d) == 4

    def test_volume_pipelines_on_a_path(self, router1d):
        # v packets over h hops drain in h + v - 1 cycles (wormhole-free
        # store-and-forward pipeline)
        assert simulate_window_traffic([(0, 4, 3)], router1d) == 4 + 3 - 1

    def test_disjoint_paths_run_in_parallel(self, router1d):
        cycles = simulate_window_traffic([(0, 1, 1), (4, 5, 1)], router1d)
        assert cycles == 1

    def test_shared_link_serializes(self, router1d):
        # both transfers need link (0, 1) on their first hop
        cycles = simulate_window_traffic([(0, 2, 1), (0, 3, 1)], router1d)
        # packet A: cycles 1-2; packet B waits a cycle: 2-4
        assert cycles == 4

    def test_deterministic(self, router1d):
        batch = [(0, 5, 2), (3, 1, 1), (5, 0, 2)]
        a = simulate_window_traffic(batch, router1d)
        b = simulate_window_traffic(batch, router1d)
        assert a == b


class TestBoundConsistency:
    def _instance(self, seed=101):
        rng = np.random.default_rng(seed)
        topo = Mesh2D(3, 3)
        counts = rng.integers(0, 3, size=(8, 3, 9))
        trace, windows = trace_from_counts(counts, topo)
        tensor = build_reference_tensor(trace, windows)
        return trace, tensor, CostModel(topo)

    def test_simulated_at_least_analytic_bound(self):
        """The contention bound of sim.timing is a true lower bound on the
        measured per-window drain time."""
        for seed in (101, 202, 303):
            trace, tensor, model = self._instance(seed)
            for scheduler in (scds, gomcds):
                schedule = scheduler(tensor, model)
                bound = estimate_execution_time(trace, schedule, model)
                measured = simulate_schedule_network(trace, schedule, model)
                assert np.all(
                    measured.fetch_cycles >= bound.fetch_comm_time - 1e-9
                )
                assert np.all(
                    measured.move_cycles >= bound.move_comm_time - 1e-9
                )

    def test_packets_match_remote_volume(self):
        trace, tensor, model = self._instance()
        schedule = scds(tensor, model)
        report = simulate_schedule_network(trace, schedule, model)
        # every remote reference contributes exactly its count in packets
        centers = schedule.centers[trace.data, 0]
        windows = schedule.windows.assign(trace.steps)
        expected = int(
            sum(
                c
                for p, d, c, w in zip(
                    trace.procs, trace.data, trace.counts, windows
                )
                if schedule.centers[d, w] != p
            )
        )
        assert report.total_packets == expected

    def test_static_schedule_has_no_move_cycles(self):
        trace, tensor, model = self._instance()
        report = simulate_schedule_network(trace, scds(tensor, model), model)
        assert report.move_cycles.sum() == 0

    def test_window_span_checked(self):
        from repro.trace import windows_by_step_count

        trace, tensor, model = self._instance()
        wrong = windows_by_step_count(trace.n_steps + 2, 1)
        schedule = Schedule.static(
            np.zeros(tensor.n_data, dtype=np.int64), wrong
        )
        with pytest.raises(ValueError):
            simulate_schedule_network(trace, schedule, model)
