"""ReferenceTensor unit tests."""

import numpy as np
import pytest

from repro.trace import (
    ReferenceTensor,
    TraceBuilder,
    build_reference_tensor,
    single_window,
    windows_by_step_count,
)


def small_trace():
    b = TraceBuilder(n_procs=3, n_data=2)
    b.add(0, 0, 2)
    b.add(1, 1)
    b.end_step()
    b.add(2, 0)
    b.end_step()
    b.add(2, 0)
    b.add(2, 1, 4)
    b.end_step()
    return b.build()


class TestBuild:
    def test_counts_per_window(self):
        trace = small_trace()
        windows = windows_by_step_count(trace, 1)
        tensor = build_reference_tensor(trace, windows)
        assert tensor.counts.shape == (2, 3, 3)
        assert tensor.counts[0, 0].tolist() == [2, 0, 0]
        assert tensor.counts[0, 1].tolist() == [0, 0, 1]
        assert tensor.counts[1, 2].tolist() == [0, 0, 4]

    def test_window_aggregation(self):
        trace = small_trace()
        tensor = build_reference_tensor(trace, single_window(trace))
        assert tensor.counts[0, 0].tolist() == [2, 0, 2]
        assert tensor.total_references() == trace.total_references

    def test_rejects_mismatched_windows(self):
        trace = small_trace()
        with pytest.raises(ValueError):
            build_reference_tensor(trace, windows_by_step_count(99, 10))


class TestTensorMethods:
    def make(self):
        trace = small_trace()
        return build_reference_tensor(trace, windows_by_step_count(trace, 1))

    def test_for_data_is_view(self):
        tensor = self.make()
        assert tensor.for_data(0).base is tensor.counts

    def test_total_references_per_datum(self):
        tensor = self.make()
        assert tensor.total_references(0) == 4
        assert tensor.total_references(1) == 5

    def test_priority_order_descending(self):
        tensor = self.make()
        assert tensor.data_priority_order().tolist() == [1, 0]

    def test_referenced_data(self):
        counts = np.zeros((3, 1, 2), dtype=np.int64)
        counts[1, 0, 0] = 1
        tensor = ReferenceTensor(
            counts=counts, windows=single_window(1)
        )
        assert tensor.referenced_data().tolist() == [1]

    def test_processor_reference_string(self):
        tensor = self.make()
        assert tensor.processor_reference_string(0, 0).tolist() == [0, 0]
        assert tensor.processor_reference_string(1, 2).tolist() == [2, 2, 2, 2]

    def test_regroup_coarsens(self):
        tensor = self.make()
        coarse = tensor.regroup(windows_by_step_count(3, 2))
        # windows {0,1} merge; window {2} alone (tail fold keeps [0,2)+[2,3))
        assert coarse.n_windows == 2
        assert coarse.counts[0, 0].tolist() == [2, 0, 1]
        assert coarse.counts.sum() == tensor.counts.sum()

    def test_regroup_rejects_refinement(self):
        trace = small_trace()
        coarse = build_reference_tensor(trace, single_window(trace))
        with pytest.raises(ValueError):
            coarse.regroup(windows_by_step_count(3, 1))

    def test_regroup_rejects_horizon_mismatch(self):
        tensor = self.make()
        with pytest.raises(ValueError):
            tensor.regroup(single_window(99))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReferenceTensor(
                counts=np.zeros((2, 2), dtype=np.int64),
                windows=single_window(1),
            )
        with pytest.raises(ValueError):
            ReferenceTensor(
                counts=-np.ones((1, 1, 2), dtype=np.int64),
                windows=single_window(1),
            )
