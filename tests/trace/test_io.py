"""Trace/schedule persistence tests."""

import numpy as np
import pytest

from repro.core import CostModel, gomcds
from repro.trace import (
    load_schedule,
    load_trace,
    save_schedule,
    save_trace,
    windows_by_step_count,
)


def test_trace_roundtrip(tmp_path, lu8):
    path = tmp_path / "lu8.npz"
    save_trace(path, lu8.trace, lu8.windows)
    trace, windows = load_trace(path)
    assert np.array_equal(trace.steps, lu8.trace.steps)
    assert np.array_equal(trace.procs, lu8.trace.procs)
    assert np.array_equal(trace.data, lu8.trace.data)
    assert np.array_equal(trace.counts, lu8.trace.counts)
    assert trace.n_steps == lu8.trace.n_steps
    assert trace.n_data == lu8.trace.n_data
    assert np.array_equal(windows.starts, lu8.windows.starts)


def test_trace_roundtrip_without_windows(tmp_path, lu8):
    path = tmp_path / "bare.npz"
    save_trace(path, lu8.trace)
    trace, windows = load_trace(path)
    assert windows is None
    assert trace.total_references == lu8.trace.total_references


def test_save_rejects_mismatched_windows(tmp_path, lu8):
    wrong = windows_by_step_count(lu8.trace.n_steps + 4, 2)
    with pytest.raises(ValueError):
        save_trace(tmp_path / "x.npz", lu8.trace, wrong)


def test_schedule_roundtrip(tmp_path, lu8_tensor, mesh44):
    model = CostModel(mesh44)
    schedule = gomcds(lu8_tensor, model)
    path = tmp_path / "sched.npz"
    save_schedule(path, schedule)
    loaded = load_schedule(path)
    assert np.array_equal(loaded.centers, schedule.centers)
    assert loaded.method == schedule.method
    assert np.array_equal(loaded.windows.starts, schedule.windows.starts)
    assert loaded.windows.n_steps == schedule.windows.n_steps


def test_loaded_schedule_evaluates_identically(tmp_path, lu8_tensor, mesh44):
    from repro.core import evaluate_schedule

    model = CostModel(mesh44)
    schedule = gomcds(lu8_tensor, model)
    save_schedule(tmp_path / "s.npz", schedule)
    loaded = load_schedule(tmp_path / "s.npz")
    assert (
        evaluate_schedule(loaded, lu8_tensor, model).total
        == evaluate_schedule(schedule, lu8_tensor, model).total
    )
