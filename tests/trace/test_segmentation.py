"""Automatic window-segmentation tests."""

import numpy as np
import pytest

from repro.trace import (
    TraceBuilder,
    segment_by_similarity,
    segment_dp,
    step_profiles,
)


def phased_trace(n_procs=6, phase_len=4, phases=(0, 4, 2)):
    """A trace with clear phases: all demand on one processor per phase."""
    builder = TraceBuilder(n_procs=n_procs, n_data=3)
    for proc in phases:
        for _ in range(phase_len):
            builder.add(proc, 0, 5)
            builder.add(proc, 1, 2)
            builder.end_step()
    return builder.build()


class TestStepProfiles:
    def test_shape_and_counts(self):
        trace = phased_trace()
        profiles = step_profiles(trace)
        assert profiles.shape == (12, 6)
        assert profiles[0, 0] == 7.0
        assert profiles[4, 4] == 7.0

    def test_normalization(self):
        trace = phased_trace()
        profiles = step_profiles(trace, normalize=True)
        norms = np.linalg.norm(profiles, axis=1)
        assert np.allclose(norms, 1.0)

    def test_empty_trace(self):
        trace = TraceBuilder(n_procs=3, n_data=1).build()
        assert step_profiles(trace).shape == (1, 3)


class TestSimilaritySegmentation:
    def test_finds_phase_boundaries(self):
        trace = phased_trace(phase_len=4)
        windows = segment_by_similarity(trace, threshold=0.5)
        assert windows.starts.tolist() == [0, 4, 8]

    def test_stationary_trace_single_window(self):
        trace = phased_trace(phases=(2,), phase_len=8)
        windows = segment_by_similarity(trace, threshold=0.5)
        assert windows.n_windows == 1

    def test_idle_steps_never_split(self):
        builder = TraceBuilder(n_procs=4, n_data=1)
        builder.add(0, 0, 3)
        builder.end_step()
        builder.end_step()  # idle step
        builder.add(0, 0, 3)
        builder.end_step()
        windows = segment_by_similarity(builder.build(), threshold=0.9)
        assert windows.n_windows == 1

    def test_min_window_enforced(self):
        trace = phased_trace(phase_len=1, phases=(0, 5, 0, 5, 0, 5))
        coarse = segment_by_similarity(trace, threshold=0.5, min_window=2)
        fine = segment_by_similarity(trace, threshold=0.5, min_window=1)
        assert coarse.n_windows < fine.n_windows

    def test_threshold_validation(self):
        trace = phased_trace()
        with pytest.raises(ValueError):
            segment_by_similarity(trace, threshold=1.5)
        with pytest.raises(ValueError):
            segment_by_similarity(trace, min_window=0)


class TestDPSegmentation:
    def test_recovers_exact_phases(self):
        trace = phased_trace(phase_len=5)
        windows = segment_dp(trace, 3)
        assert windows.starts.tolist() == [0, 5, 10]

    def test_k_capped_by_steps(self):
        trace = phased_trace(phase_len=1, phases=(0, 1))
        windows = segment_dp(trace, 10)
        assert windows.n_windows <= 2

    def test_single_window(self):
        trace = phased_trace()
        assert segment_dp(trace, 1).n_windows == 1

    def test_objective_never_worse_than_uniform_split(self):
        rng = np.random.default_rng(61)
        builder = TraceBuilder(n_procs=5, n_data=2)
        for _ in range(12):
            for _ in range(6):
                builder.add(int(rng.integers(0, 5)), int(rng.integers(0, 2)))
            builder.end_step()
        trace = builder.build()
        profiles = step_profiles(trace)

        def objective(windows):
            total = 0.0
            for w in range(windows.n_windows):
                lo, hi = windows.bounds(w)
                block = profiles[lo:hi]
                total += ((block - block.mean(axis=0)) ** 2).sum()
            return total

        from repro.trace import windows_by_step_count

        dp = segment_dp(trace, 4)
        uniform = windows_by_step_count(trace, 3)
        assert objective(dp) <= objective(uniform) + 1e-9

    def test_validation(self):
        trace = phased_trace()
        with pytest.raises(ValueError):
            segment_dp(trace, 0)


class TestSchedulingIntegration:
    def test_auto_windows_usable_by_schedulers(self, mesh44):
        from repro.core import CostModel, evaluate_schedule, gomcds
        from repro.trace import build_reference_tensor
        from repro.workloads import code_workload

        wl = code_workload(8, mesh44)
        windows = segment_by_similarity(wl.trace, threshold=0.6)
        tensor = build_reference_tensor(wl.trace, windows)
        model = CostModel(mesh44)
        cost = evaluate_schedule(gomcds(tensor, model), tensor, model).total
        assert cost > 0


class TestJointFeature:
    def test_joint_feature_sees_more_fft_stages(self, mesh44):
        """Early FFT stages change only *which data* each processor pairs
        (the processor marginals barely move), so the per-processor
        feature misses boundaries the joint proc-datum sketch finds."""
        from repro.workloads import fft_workload

        fft = fft_workload(256, mesh44)
        blind = segment_by_similarity(fft.trace, threshold=0.7, feature="proc")
        sighted = segment_by_similarity(
            fft.trace, threshold=0.7, feature="proc-datum"
        )
        assert sighted.n_windows > blind.n_windows
        # the first intra-block stride change (step 4) is invisible to the
        # processor marginals but visible to the joint sketch
        assert 4 not in blind.starts.tolist()
        assert 4 in sighted.starts.tolist()

    def test_auto_windows_match_natural_gomcds_cost(self, mesh44):
        from repro.core import CostModel, evaluate_schedule, gomcds
        from repro.trace import build_reference_tensor
        from repro.workloads import fft_workload

        fft = fft_workload(128, mesh44)
        model = CostModel(mesh44)
        natural = fft.reference_tensor()
        auto_windows = segment_by_similarity(fft.trace, threshold=0.7)
        auto = build_reference_tensor(fft.trace, auto_windows)
        natural_cost = evaluate_schedule(gomcds(natural, model), natural, model).total
        auto_cost = evaluate_schedule(gomcds(auto, model), auto, model).total
        # the sketch finds every boundary that matters for communication
        assert auto_cost <= natural_cost * 1.05

    def test_unknown_feature_rejected(self):
        trace = phased_trace()
        with pytest.raises(ValueError):
            step_profiles(trace, feature="bogus")
