"""Trace and TraceBuilder unit tests."""

import numpy as np
import pytest

from repro.trace import Trace, TraceBuilder, concat_traces, reverse_trace


def build_simple():
    b = TraceBuilder(n_procs=4, n_data=3)
    b.add(0, 1)
    b.add(0, 1)  # duplicate -> consolidated
    b.add(2, 0, count=3)
    b.end_step()
    b.add(1, 2)
    b.end_step()
    return b.build()


class TestTraceBuilder:
    def test_consolidates_duplicates(self):
        trace = build_simple()
        # (step0, proc0, data1) appears once with count 2
        mask = (trace.steps == 0) & (trace.procs == 0) & (trace.data == 1)
        assert mask.sum() == 1
        assert trace.counts[mask][0] == 2

    def test_total_references(self):
        assert build_simple().total_references == 2 + 3 + 1

    def test_step_tracking(self):
        b = TraceBuilder(n_procs=2, n_data=2)
        assert b.current_step == 0
        b.add(0, 0)
        assert b.end_step() == 1
        b.add(1, 1)
        trace = b.build()
        assert trace.n_steps == 2

    def test_trailing_partial_step_counts(self):
        b = TraceBuilder(n_procs=2, n_data=2)
        b.add(0, 0)  # no end_step
        assert b.build().n_steps == 1

    def test_empty_build(self):
        trace = TraceBuilder(n_procs=2, n_data=2).build()
        assert len(trace) == 0
        assert trace.n_steps == 1  # at least one step always exists

    def test_add_many(self):
        b = TraceBuilder(n_procs=2, n_data=5)
        b.add_many(1, [0, 2, 4])
        trace = b.build()
        assert sorted(trace.data.tolist()) == [0, 2, 4]
        assert set(trace.procs.tolist()) == {1}

    def test_rejects_out_of_range(self):
        b = TraceBuilder(n_procs=2, n_data=2)
        with pytest.raises(ValueError):
            b.add(2, 0)
        with pytest.raises(ValueError):
            b.add(0, 2)
        with pytest.raises(ValueError):
            b.add(0, 0, count=0)


class TestTrace:
    def test_events_materialization(self):
        events = build_simple().events()
        assert {(e.step, e.proc, e.data, e.count) for e in events} == {
            (0, 0, 1, 2),
            (0, 2, 0, 3),
            (1, 1, 2, 1),
        }

    def test_validation_rejects_bad_arrays(self):
        ok = build_simple()
        with pytest.raises(ValueError):
            Trace(
                steps=ok.steps,
                procs=ok.procs,
                data=ok.data,
                counts=ok.counts,
                n_steps=1,  # step 1 exists -> out of range
                n_data=3,
                n_procs=4,
            )
        with pytest.raises(ValueError):
            Trace(
                steps=ok.steps[::-1].copy(),  # unsorted
                procs=ok.procs,
                data=ok.data,
                counts=ok.counts,
                n_steps=2,
                n_data=3,
                n_procs=4,
            )

    def test_shifted(self):
        trace = build_simple().shifted(5)
        assert trace.steps.min() == 5
        assert trace.n_steps == 7
        with pytest.raises(ValueError):
            trace.shifted(-1)


class TestConcat:
    def test_concat_shifts_second(self):
        a, b = build_simple(), build_simple()
        combined = concat_traces(a, b)
        assert combined.n_steps == 4
        assert combined.total_references == 2 * a.total_references
        # second half starts after the first trace's horizon
        assert (combined.steps >= 2).sum() == len(b)

    def test_concat_rejects_mismatched(self):
        a = build_simple()
        other = TraceBuilder(n_procs=5, n_data=3)
        other.add(0, 0)
        with pytest.raises(ValueError):
            concat_traces(a, other.build())


class TestReverse:
    def test_reverse_mirrors_steps(self):
        trace = build_simple()
        rev = reverse_trace(trace)
        assert rev.n_steps == trace.n_steps
        # step-0 events land on the last step and vice versa
        assert set(rev.steps[rev.data == 1].tolist()) == {1}
        assert set(rev.steps[rev.data == 2].tolist()) == {0}

    def test_double_reverse_is_identity(self):
        trace = build_simple()
        twice = reverse_trace(reverse_trace(trace))
        assert np.array_equal(twice.steps, trace.steps)
        assert np.array_equal(twice.data, trace.data)
        assert np.array_equal(twice.counts, trace.counts)

    def test_reverse_preserves_reference_totals(self):
        trace = build_simple()
        assert reverse_trace(trace).total_references == trace.total_references
