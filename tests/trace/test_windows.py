"""WindowSet unit tests."""

import numpy as np
import pytest

from repro.trace import (
    WindowSet,
    single_window,
    window_per_step,
    windows_by_step_count,
    windows_from_boundaries,
)


class TestWindowSet:
    def test_bounds_and_sizes(self):
        ws = WindowSet(starts=np.array([0, 3, 5]), n_steps=9)
        assert ws.n_windows == 3
        assert ws.bounds(0) == (0, 3)
        assert ws.bounds(1) == (3, 5)
        assert ws.bounds(2) == (5, 9)
        assert ws.sizes().tolist() == [3, 2, 4]

    def test_assign(self):
        ws = WindowSet(starts=np.array([0, 3, 5]), n_steps=9)
        assert ws.assign(np.array([0, 2, 3, 4, 5, 8])).tolist() == [0, 0, 1, 1, 2, 2]

    def test_window_of_steps(self):
        ws = WindowSet(starts=np.array([0, 2]), n_steps=4)
        assert ws.window_of_steps().tolist() == [0, 0, 1, 1]

    def test_merge(self):
        ws = WindowSet(starts=np.array([0, 2, 4, 6]), n_steps=8)
        merged = ws.merge(1, 2)
        assert merged.starts.tolist() == [0, 2, 6]
        assert merged.n_steps == 8
        with pytest.raises(ValueError):
            ws.merge(2, 1)
        with pytest.raises(ValueError):
            ws.merge(0, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSet(starts=np.array([1, 2]), n_steps=4)  # must start at 0
        with pytest.raises(ValueError):
            WindowSet(starts=np.array([0, 0]), n_steps=4)  # strictly increasing
        with pytest.raises(ValueError):
            WindowSet(starts=np.array([0, 4]), n_steps=4)  # empty last window
        with pytest.raises(ValueError):
            WindowSet(starts=np.array([], dtype=np.int64), n_steps=4)


class TestConstructors:
    def test_by_step_count_exact(self):
        ws = windows_by_step_count(8, 2)
        assert ws.starts.tolist() == [0, 2, 4, 6]

    def test_by_step_count_folds_short_tail(self):
        # 9 steps at 4/window: tail of 1 (< 2) folds into the last window.
        ws = windows_by_step_count(9, 4)
        assert ws.starts.tolist() == [0, 4]
        assert ws.sizes().tolist() == [4, 5]

    def test_by_step_count_keeps_large_tail(self):
        ws = windows_by_step_count(11, 4)
        assert ws.starts.tolist() == [0, 4, 8]

    def test_by_step_count_single_window_when_short(self):
        ws = windows_by_step_count(3, 10)
        assert ws.n_windows == 1

    def test_by_step_count_rejects_bad_size(self):
        with pytest.raises(ValueError):
            windows_by_step_count(8, 0)

    def test_from_boundaries_dedup_and_zero(self):
        ws = windows_from_boundaries([3, 3, 6], 10)
        assert ws.starts.tolist() == [0, 3, 6]

    def test_from_boundaries_drops_out_of_range(self):
        ws = windows_from_boundaries([0, 5, 10, 12], 10)
        assert ws.starts.tolist() == [0, 5]

    def test_single_window(self):
        ws = single_window(7)
        assert ws.n_windows == 1
        assert ws.bounds(0) == (0, 7)

    def test_window_per_step(self):
        ws = window_per_step(4)
        assert ws.n_windows == 4
        assert ws.sizes().tolist() == [1, 1, 1, 1]

    def test_accepts_trace(self, lu8):
        ws = single_window(lu8.trace)
        assert ws.n_steps == lu8.trace.n_steps
