"""Data-reference-string (Definition 2) unit tests."""

import pytest

from repro.trace import (
    TraceBuilder,
    data_reference_string,
    per_processor_demand,
    windows_by_step_count,
    working_set_sizes,
)


def make_trace():
    b = TraceBuilder(n_procs=3, n_data=4)
    b.add(0, 1, 2)
    b.add(0, 3)
    b.add(1, 0)
    b.end_step()
    b.add(0, 1)
    b.end_step()
    return b.build()


def test_data_reference_string_expands_counts():
    trace = make_trace()
    assert data_reference_string(trace, 0) == [(0, 1), (0, 1), (0, 3), (1, 1)]
    assert data_reference_string(trace, 1) == [(0, 0)]
    assert data_reference_string(trace, 2) == []


def test_data_reference_string_rejects_bad_proc():
    with pytest.raises(ValueError):
        data_reference_string(make_trace(), 5)


def test_per_processor_demand():
    trace = make_trace()
    windows = windows_by_step_count(trace, 1)
    demand = per_processor_demand(trace, windows)
    assert demand.shape == (2, 3)
    assert demand[0].tolist() == [3, 1, 0]
    assert demand[1].tolist() == [1, 0, 0]


def test_working_set_sizes_counts_distinct_data():
    trace = make_trace()
    windows = windows_by_step_count(trace, 1)
    ws = working_set_sizes(trace, windows)
    # proc 0 touches data {1, 3} in window 0 but datum 1 twice -> 2 distinct
    assert ws[0].tolist() == [2, 1, 0]
    assert ws[1].tolist() == [1, 0, 0]


def test_working_set_merged_window():
    trace = make_trace()
    windows = windows_by_step_count(trace, 2)
    ws = working_set_sizes(trace, windows)
    # datum 1 appears in both steps but counts once in the merged window
    assert ws[0, 0] == 2
