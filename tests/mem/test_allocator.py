"""OccupancyTracker and processor-list unit tests."""

import numpy as np
import pytest

from repro.mem import CapacityError, CapacityPlan, OccupancyTracker, first_available


@pytest.fixture
def tracker():
    return OccupancyTracker(CapacityPlan.uniform(3, 2), n_windows=4)


class TestOccupancyTracker:
    def test_initially_everything_available(self, tracker):
        assert tracker.available_in_window(0).all()
        assert tracker.available_everywhere().all()

    def test_claim_single_window(self, tracker):
        tracker.claim(0, 1)
        assert tracker.occupancy[1, 0] == 1
        assert tracker.occupancy[0, 0] == 0

    def test_window_fills_up(self, tracker):
        tracker.claim(0, 2)
        tracker.claim(0, 2)
        assert not tracker.available_in_window(2)[0]
        with pytest.raises(CapacityError):
            tracker.claim(0, 2)

    def test_claim_range(self, tracker):
        tracker.claim(1, 0, 2)
        assert tracker.occupancy[:, 1].tolist() == [1, 1, 1, 0]

    def test_available_in_range_requires_all_windows(self, tracker):
        tracker.claim(2, 1)
        tracker.claim(2, 1)
        assert tracker.available_in_range(0, 0)[2]
        assert not tracker.available_in_range(0, 2)[2]

    def test_claim_path(self, tracker):
        tracker.claim_path(np.array([0, 1, 2, 0]))
        assert tracker.occupancy[0, 0] == 1
        assert tracker.occupancy[1, 1] == 1

    def test_claim_path_rejects_full_cell(self, tracker):
        tracker.claim(1, 2)
        tracker.claim(1, 2)
        with pytest.raises(CapacityError):
            tracker.claim_path(np.array([0, 0, 1, 0]))
        # failed claim must not partially commit
        assert tracker.occupancy[0, 0] == 0

    def test_claim_path_shape_checked(self, tracker):
        with pytest.raises(ValueError):
            tracker.claim_path(np.array([0, 1]))

    def test_bad_ranges(self, tracker):
        with pytest.raises(ValueError):
            tracker.claim(0, 3, 1)
        with pytest.raises(ValueError):
            tracker.available_in_range(-1, 2)

    def test_occupancy_view_readonly(self, tracker):
        with pytest.raises(ValueError):
            tracker.occupancy[0, 0] = 5

    def test_available_mask_shape(self, tracker):
        assert tracker.available_mask().shape == (4, 3)


class TestFirstAvailable:
    def test_picks_cheapest_available(self):
        cost = np.array([5.0, 1.0, 3.0])
        available = np.array([True, True, True])
        assert first_available(cost, available) == 1

    def test_skips_full_processors(self):
        cost = np.array([5.0, 1.0, 3.0])
        available = np.array([True, False, True])
        assert first_available(cost, available) == 2

    def test_tie_breaks_toward_low_pid(self):
        cost = np.array([2.0, 2.0, 2.0])
        available = np.array([True, True, True])
        assert first_available(cost, available) == 0
        available[0] = False
        assert first_available(cost, available) == 1

    def test_raises_when_nothing_free(self):
        with pytest.raises(CapacityError):
            first_available(np.array([1.0, 2.0]), np.array([False, False]))


class TestSnapshotRestore:
    def test_roundtrip(self, tracker):
        tracker.claim(0, 1)
        state = tracker.snapshot()
        tracker.claim(1, 2)
        tracker.claim(2, 0, 3)
        tracker.restore(state)
        assert tracker.occupancy[1, 0] == 1
        assert tracker.occupancy[2, 1] == 0
        assert tracker.occupancy[0, 2] == 0

    def test_snapshot_is_a_copy(self, tracker):
        state = tracker.snapshot()
        tracker.claim(0, 0)
        assert state[0, 0] == 0

    def test_restore_shape_checked(self, tracker):
        import numpy as np
        import pytest

        with pytest.raises(ValueError):
            tracker.restore(np.zeros((2, 2), dtype=np.int64))
