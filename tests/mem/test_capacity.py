"""CapacityPlan unit tests."""

import numpy as np
import pytest

from repro.mem import CapacityError, CapacityPlan


def test_uniform_plan():
    plan = CapacityPlan.uniform(4, 3)
    assert plan.n_procs == 4
    assert plan.total == 12
    assert plan.capacities.tolist() == [3, 3, 3, 3]


def test_paper_rule_matches_papers_example():
    # "with the data size of 8x8 and the processor array size of 4x4,
    # the memory size of each processor is eight"
    plan = CapacityPlan.paper_rule(n_data=64, n_procs=16, multiplier=2.0)
    assert plan.capacities.tolist() == [8] * 16


def test_paper_rule_rounds_up():
    plan = CapacityPlan.paper_rule(n_data=10, n_procs=4, multiplier=2.0)
    # minimum = ceil(10/4) = 3; doubled = 6
    assert plan.capacities[0] == 6


def test_paper_rule_fractional_multiplier():
    plan = CapacityPlan.paper_rule(n_data=64, n_procs=16, multiplier=1.5)
    assert plan.capacities[0] == 6


def test_unbounded_fits_everything():
    plan = CapacityPlan.unbounded(4, 100)
    plan.check_feasible(100)


def test_check_feasible():
    plan = CapacityPlan.uniform(2, 3)
    plan.check_feasible(6)
    with pytest.raises(CapacityError):
        plan.check_feasible(7)


def test_validation():
    with pytest.raises(ValueError):
        CapacityPlan(np.array([-1, 2]))
    with pytest.raises(ValueError):
        CapacityPlan(np.zeros((2, 2), dtype=np.int64))
    with pytest.raises(ValueError):
        CapacityPlan.uniform(0, 1)
    with pytest.raises(ValueError):
        CapacityPlan.paper_rule(0, 4)
    with pytest.raises(ValueError):
        CapacityPlan.paper_rule(4, 4, multiplier=0.5)
