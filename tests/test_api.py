"""The unified ``repro.schedule`` facade and SchedulerSpec registry."""

import dataclasses
import math

import numpy as np
import pytest

import repro
from repro import schedule
from repro.core import (
    SCHEDULER_SPECS,
    SCHEDULERS,
    SchedulerSpec,
    evaluate_schedule,
    get_scheduler,
    gomcds,
    lomcds,
    omcds,
    scds,
    scheduler_spec,
)
from repro.mem import CapacityPlan


def test_facade_is_re_exported_from_package_root():
    assert repro.schedule is schedule
    assert repro.scheduler_spec is scheduler_spec
    assert repro.SchedulerSpec is SchedulerSpec


def test_default_algorithm_is_gomcds(lu8_tensor, model44):
    assert np.array_equal(
        schedule(lu8_tensor, model44).centers,
        gomcds(lu8_tensor, model44).centers,
    )


@pytest.mark.parametrize(
    ("name", "func"),
    [("scds", scds), ("LOMCDS", lomcds), ("GoMcDs", gomcds)],
)
def test_facade_matches_direct_call(name, func, lu8_tensor, model44, lu8):
    cap = CapacityPlan.paper_rule(lu8.n_data, 16)
    via_facade = schedule(lu8_tensor, model44, algorithm=name, capacity=cap)
    direct = func(lu8_tensor, model44, capacity=cap)
    assert np.array_equal(via_facade.centers, direct.centers)


def test_facade_forwards_algorithm_kwargs(drift, model44):
    tensor = drift.reference_tensor()
    via_facade = schedule(
        tensor, model44, algorithm="omcds", hysteresis=math.inf
    )
    assert np.array_equal(
        via_facade.centers, omcds(tensor, model44, hysteresis=math.inf).centers
    )


def test_facade_accepts_spec_object(lu8_tensor, model44):
    spec = scheduler_spec("scds")
    sched = schedule(lu8_tensor, model44, algorithm=spec)
    assert sched.method == "SCDS"


def test_unknown_algorithm_raises_with_known_names(lu8_tensor, model44):
    with pytest.raises(KeyError, match="GOMCDS"):
        schedule(lu8_tensor, model44, algorithm="quantum")


def test_spec_registry_shape():
    assert set(SCHEDULER_SPECS) == {"SCDS", "LOMCDS", "GOMCDS", "OMCDS"}
    for name, spec in SCHEDULER_SPECS.items():
        assert spec.name == name
        assert SCHEDULERS[name] is spec.func
        assert spec.to_dict()["name"] == name
    assert SCHEDULER_SPECS["SCDS"].multi_center is False
    assert SCHEDULER_SPECS["GOMCDS"].movement_aware is True
    assert SCHEDULER_SPECS["OMCDS"].online is True


def test_specs_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        SCHEDULER_SPECS["GOMCDS"].name = "other"


def test_get_scheduler_returns_uniform_callable(lu8_tensor, model44):
    spec = get_scheduler("gomcds")
    assert isinstance(spec, SchedulerSpec)
    # old positional-capacity call shape still works
    sched = spec(lu8_tensor, model44, None)
    assert sched.method == "GOMCDS"


def test_cost_breakdown_result_protocol(lu8_tensor, model44):
    breakdown = evaluate_schedule(
        schedule(lu8_tensor, model44), lu8_tensor, model44
    )
    d = breakdown.to_dict()
    assert d["kind"] == "cost_breakdown"
    assert d["total"] == breakdown.total
    assert d["reference_cost"] + d["movement_cost"] == pytest.approx(d["total"])
    assert breakdown.summary().startswith("cost: total")


def test_sim_report_result_protocol(lu8, lu8_tensor, model44):
    from repro.sim import replay_schedule

    report = replay_schedule(lu8.trace, schedule(lu8_tensor, model44), model44)
    d = report.to_dict()
    assert d["kind"] == "sim_report"
    assert d["total_cost"] == report.total_cost
    assert report.summary().startswith("replay: total")


def test_lint_report_result_protocol(lu8, lu8_tensor, model44):
    from repro.lint import LintContext, run_lint

    report = run_lint(
        LintContext(schedule=schedule(lu8_tensor, model44), model=model44)
    )
    d = report.to_dict()
    assert d["kind"] == "lint_report"
    assert isinstance(report.summary(), str)


def test_results_interchangeable_in_exporters(lu8, lu8_tensor, model44):
    import json

    from repro.lint import LintContext, run_lint
    from repro.obs import Instrumentation, to_jsonl
    from repro.sim import replay_schedule

    sched = schedule(lu8_tensor, model44)
    results = [
        evaluate_schedule(sched, lu8_tensor, model44),
        replay_schedule(lu8.trace, sched, model44),
        run_lint(LintContext(schedule=sched, model=model44)),
    ]
    text = to_jsonl(Instrumentation.started(), results=results)
    kinds = [json.loads(line)["kind"] for line in text.splitlines()]
    assert kinds == ["cost_breakdown", "sim_report", "lint_report"]


# --- facade options: certify= / kernel= / kwarg validation ------------------


def test_facade_certify_flag_attaches_certificate(lu8_tensor, model44):
    sched = schedule(lu8_tensor, model44, certify=True)
    assert sched.meta["certificate"]["kind"] == "gomcds-potentials"


def test_facade_kernel_flag_is_bit_identical(lu8_tensor, model44):
    fast = schedule(lu8_tensor, model44, kernel="numpy")
    slow = schedule(lu8_tensor, model44, kernel="python")
    assert np.array_equal(fast.centers, slow.centers)


def test_facade_rejects_unsupported_kwargs(lu8_tensor, model44):
    with pytest.raises(TypeError, match="certify"):
        schedule(lu8_tensor, model44, algorithm="scds", certify=True)
    with pytest.raises(TypeError, match="hysteresis"):
        schedule(lu8_tensor, model44, algorithm="gomcds", hysteresis=2.0)


def test_facade_rejects_unknown_kernel(lu8_tensor, model44):
    with pytest.raises(ValueError, match="python"):
        schedule(lu8_tensor, model44, kernel="fortran")


def test_spec_reports_supported_kwargs():
    assert SCHEDULER_SPECS["GOMCDS"].supported_kwargs == ("certify", "kernel")
    assert SCHEDULER_SPECS["OMCDS"].supported_kwargs == ("hysteresis",)
    for name, spec in SCHEDULER_SPECS.items():
        assert spec.to_dict()["supported_kwargs"] == list(
            spec.supported_kwargs
        )


# --- deprecated entry points ------------------------------------------------


def test_direct_scheduler_calls_warn(lu8_tensor, model44):
    with pytest.warns(DeprecationWarning, match="repro.schedule"):
        scds(lu8_tensor, model44)
    with pytest.warns(DeprecationWarning, match="repro.schedule"):
        lomcds(lu8_tensor, model44)
    with pytest.warns(DeprecationWarning, match="repro.schedule"):
        gomcds(lu8_tensor, model44)


def test_get_scheduler_warns():
    with pytest.warns(DeprecationWarning, match="scheduler_spec"):
        get_scheduler("gomcds")


def test_facade_and_scheduler_spec_do_not_warn(lu8_tensor, model44):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        schedule(lu8_tensor, model44)
        scheduler_spec("GOMCDS")(lu8_tensor, model44)


def test_deprecated_wrappers_expose_the_raw_scheduler():
    assert scds.__wrapped_scheduler__ is SCHEDULERS["SCDS"]
    assert SCHEDULER_SPECS["SCDS"].func is SCHEDULERS["SCDS"]
