"""Baseline static-distribution tests."""

import numpy as np
import pytest

from repro.core import evaluate_schedule, CostModel
from repro.distrib import baseline_schedule, placement_for_shape, random_placement
from repro.workloads import row_wise_owners


def test_row_wise_matches_partition_map(mesh44):
    placement = placement_for_shape("row_wise", (8, 8), mesh44)
    assert np.array_equal(placement, row_wise_owners(8, 8, mesh44).reshape(-1))


def test_1d_universe_row_wise(mesh44):
    placement = placement_for_shape("row_wise", (32,), mesh44)
    assert len(placement) == 32
    assert placement[0] == 0 and placement[-1] == 15


def test_1d_universe_rejects_2d_schemes(mesh44):
    for scheme in ("block", "block_cyclic", "column_wise"):
        with pytest.raises(ValueError):
            placement_for_shape(scheme, (32,), mesh44)


def test_random_placement_balanced(mesh44):
    placement = random_placement((8, 8), mesh44, seed=3)
    counts = np.bincount(placement, minlength=16)
    assert counts.max() - counts.min() == 0


def test_random_placement_seeded(mesh44):
    a = random_placement((8, 8), mesh44, seed=3)
    b = random_placement((8, 8), mesh44, seed=3)
    c = random_placement((8, 8), mesh44, seed=4)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_baseline_schedule_is_static(mesh44, lu8):
    sched = baseline_schedule(lu8, "row_wise")
    assert sched.is_static()
    assert sched.n_windows == lu8.windows.n_windows
    assert sched.method == "S.F.(row_wise)"


def test_baselines_all_evaluate(mesh44, lu8, lu8_tensor):
    model = CostModel(mesh44)
    costs = {}
    for scheme in ("row_wise", "column_wise", "block", "block_cyclic", "random"):
        sched = baseline_schedule(lu8, scheme)
        costs[scheme] = evaluate_schedule(sched, lu8_tensor, model).total
    assert all(c > 0 for c in costs.values())
    # block distribution should beat row-wise for LU's 2-D locality
    assert costs["block"] != costs["row_wise"]


def test_unsupported_shape(mesh44):
    with pytest.raises(ValueError):
        placement_for_shape("row_wise", (2, 2, 2), mesh44)
