"""Degraded replay: evacuation, retries, drops, outcome accounting."""

import numpy as np
import pytest

from repro.core import gomcds
from repro.faults import (
    FaultPlan,
    LinkFault,
    NodeFault,
    RetryPolicy,
    plan_evacuation,
)
from repro.sim import replay_schedule, simulate_schedule_network


@pytest.fixture
def lu_schedule(lu8_tensor, model44, paper_capacity):
    return gomcds(lu8_tensor, model44, paper_capacity)


class TestEmptyPlanIdentity:
    def test_bit_identical_to_fault_free_replay(
        self, lu8, lu_schedule, model44, paper_capacity
    ):
        plain = replay_schedule(
            lu8.trace, lu_schedule, model44,
            capacity=paper_capacity, track_links=True,
        )
        empty = replay_schedule(
            lu8.trace, lu_schedule, model44,
            capacity=paper_capacity, track_links=True, faults=FaultPlan(),
        )
        assert empty.reference_cost == plain.reference_cost
        assert empty.movement_cost == plain.movement_cost
        assert empty.link_traffic == plain.link_traffic
        assert np.array_equal(empty.per_window_cost, plain.per_window_cost)
        assert empty.n_fetches == plain.n_fetches
        assert empty.n_delivered == empty.n_fetches
        assert empty.n_dropped == empty.n_unreachable == 0
        assert empty.evacuation_cost == empty.retry_cost == 0.0

    def test_empty_plan_network_drain_identical(
        self, lu8, lu_schedule, model44
    ):
        plain = simulate_schedule_network(lu8.trace, lu_schedule, model44)
        empty = simulate_schedule_network(
            lu8.trace, lu_schedule, model44, faults=FaultPlan()
        )
        assert np.array_equal(empty.fetch_cycles, plain.fetch_cycles)
        assert np.array_equal(empty.move_cycles, plain.move_cycles)
        assert empty.total_packets == plain.total_packets
        assert empty.n_undeliverable == 0


class TestNodeFailure:
    def test_evacuation_keeps_references_served(
        self, lu8, lu_schedule, model44, paper_capacity
    ):
        plan = FaultPlan(node_faults=(NodeFault(pid=5, start=1),))
        report = replay_schedule(
            lu8.trace, lu_schedule, model44,
            capacity=paper_capacity, faults=plan,
        )
        assert report.accounts_for_all_fetches()
        assert report.n_evacuated > 0
        assert report.n_lost == 0
        assert report.evacuation_cost > 0.0
        # references issued *by* the dead processor stay unreachable;
        # everything else must be served
        issued_by_dead = int(lu8.trace.counts[lu8.trace.procs == 5].sum())
        assert report.n_unreachable <= issued_by_dead

    def test_no_evacuation_strands_data(
        self, lu8, lu_schedule, model44, paper_capacity
    ):
        plan = FaultPlan(node_faults=(NodeFault(pid=5, start=1),))
        report = replay_schedule(
            lu8.trace, lu_schedule, model44,
            capacity=paper_capacity, faults=plan, evacuate=False,
        )
        assert report.accounts_for_all_fetches()
        assert report.n_unreachable > 0
        assert report.n_evacuated == 0

    def test_degraded_cost_includes_recovery(
        self, lu8, lu_schedule, model44, paper_capacity
    ):
        plan = FaultPlan(node_faults=(NodeFault(pid=5, start=1),))
        report = replay_schedule(
            lu8.trace, lu_schedule, model44,
            capacity=paper_capacity, faults=plan,
        )
        assert report.degraded_cost == pytest.approx(
            report.total_cost + report.evacuation_cost + report.retry_cost
        )

    def test_unreachable_charges_retry_budget(
        self, lu8, lu_schedule, model44, paper_capacity
    ):
        plan = FaultPlan(node_faults=(NodeFault(pid=5, start=0),))
        retry = RetryPolicy(deadline=4, max_retries=2, backoff=2.0)
        report = replay_schedule(
            lu8.trace, lu_schedule, model44,
            capacity=paper_capacity, faults=plan, retry=retry, evacuate=False,
        )
        assert report.n_unreachable > 0
        assert report.n_retries >= report.n_unreachable * retry.max_retries
        # 4 + 8 + 16 cycles burned per fully timed-out reference
        assert report.retry_wait_cycles == pytest.approx(
            report.n_unreachable * retry.total_timeout_cycles()
        )


class TestTransientDrops:
    def test_certain_drop_loses_all_remote_fetches(
        self, lu8, lu_schedule, model44, paper_capacity
    ):
        plan = FaultPlan(drop_rate=1.0)
        report = replay_schedule(
            lu8.trace, lu_schedule, model44,
            capacity=paper_capacity, faults=plan,
        )
        assert report.accounts_for_all_fetches()
        # local fetches never touch the wire, so they still deliver
        assert report.n_delivered == report.n_local_fetches
        assert report.n_dropped == report.n_fetches - report.n_local_fetches
        assert report.n_unreachable == 0

    def test_moderate_drop_rate_retries_then_delivers(
        self, lu8, lu_schedule, model44, paper_capacity
    ):
        plan = FaultPlan(drop_rate=0.3, seed=7)
        report = replay_schedule(
            lu8.trace, lu_schedule, model44,
            capacity=paper_capacity, faults=plan,
        )
        assert report.accounts_for_all_fetches()
        assert report.n_retries > 0
        assert report.retry_cost > 0.0
        assert report.completion_rate > 0.9

    def test_replay_is_deterministic(
        self, lu8, lu_schedule, model44, paper_capacity
    ):
        plan = FaultPlan(
            node_faults=(NodeFault(pid=9, start=2),),
            link_faults=(LinkFault(src=0, dst=1),),
            drop_rate=0.2,
            seed=13,
        )
        runs = [
            replay_schedule(
                lu8.trace, lu_schedule, model44,
                capacity=paper_capacity, faults=plan,
            )
            for _ in range(2)
        ]
        for attr in (
            "reference_cost", "movement_cost", "evacuation_cost", "retry_cost",
            "n_delivered", "n_retries", "n_dropped", "n_unreachable",
            "n_evacuated", "n_skipped_moves",
        ):
            assert getattr(runs[0], attr) == getattr(runs[1], attr), attr


class TestLinkFaults:
    def test_severed_link_detours_cost_up(
        self, lu8, lu_schedule, model44, paper_capacity
    ):
        plain = replay_schedule(
            lu8.trace, lu_schedule, model44, capacity=paper_capacity
        )
        plan = FaultPlan(
            link_faults=tuple(
                LinkFault(src=s, dst=d)
                for s, d in ((0, 1), (1, 0), (5, 6), (6, 5))
            )
        )
        report = replay_schedule(
            lu8.trace, lu_schedule, model44,
            capacity=paper_capacity, faults=plan,
        )
        assert report.accounts_for_all_fetches()
        assert report.reference_cost >= plain.reference_cost

    def test_network_sim_counts_undeliverable(
        self, lu8, lu_schedule, model44
    ):
        plan = FaultPlan(node_faults=(NodeFault(pid=5, start=0),))
        net = simulate_schedule_network(
            lu8.trace, lu_schedule, model44, faults=plan
        )
        assert net.n_undeliverable > 0


class TestEvacuationPlanner:
    def test_moves_respect_headroom(self, mesh44):
        locations = np.array([5, 5, 5, 0])
        load = np.zeros(16, dtype=np.int64)
        load[5], load[0] = 3, 1
        capacities = np.ones(16, dtype=np.int64)
        alive = np.ones(16, dtype=bool)
        alive[5] = False
        moves, lost = plan_evacuation(
            locations, load, capacities, {5}, alive, mesh44.distance_matrix()
        )
        assert not lost
        assert len(moves) == 3
        dsts = [m.dst for m in moves]
        assert len(set(dsts)) == 3  # one slot each
        assert all(alive[d] for d in dsts)

    def test_preferred_center_wins_when_alive(self, mesh44):
        locations = np.array([5])
        load = np.zeros(16, dtype=np.int64)
        load[5] = 1
        alive = np.ones(16, dtype=bool)
        alive[5] = False
        moves, _ = plan_evacuation(
            locations, load, None, {5}, alive, mesh44.distance_matrix(),
            preferred=np.array([14]),
        )
        assert moves[0].dst == 14

    def test_full_array_strands_data(self, mesh44):
        locations = np.array([5])
        load = np.ones(16, dtype=np.int64)
        capacities = np.ones(16, dtype=np.int64)
        alive = np.ones(16, dtype=bool)
        alive[5] = False
        moves, lost = plan_evacuation(
            locations, load, capacities, {5}, alive, mesh44.distance_matrix()
        )
        assert not moves and lost == [0]
