"""FaultPlan: validation, window activation, seeded sampling, drops."""

import pytest

from repro.faults import FaultConfigError, FaultPlan, LinkFault, NodeFault
from repro.grid import mesh_links


class TestValidation:
    def test_negative_pid_rejected(self):
        with pytest.raises(FaultConfigError, match="negative pid"):
            NodeFault(pid=-1)

    def test_link_self_loop_rejected(self):
        with pytest.raises(FaultConfigError, match="self-loop"):
            LinkFault(src=3, dst=3)

    def test_link_negative_pid_rejected(self):
        with pytest.raises(FaultConfigError, match="negative pid"):
            LinkFault(src=0, dst=-2)

    def test_end_before_start_rejected(self):
        with pytest.raises(FaultConfigError, match="end is exclusive"):
            NodeFault(pid=0, start=3, end=3)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultConfigError, match=">= 0"):
            NodeFault(pid=0, start=-1)

    def test_drop_rate_must_be_probability(self):
        with pytest.raises(FaultConfigError, match=r"\[0, 1\]"):
            FaultPlan(drop_rate=1.5)

    def test_validate_for_rejects_out_of_range_pid(self, mesh44):
        plan = FaultPlan(node_faults=(NodeFault(pid=16),))
        with pytest.raises(FaultConfigError, match="16 processors"):
            plan.validate_for(mesh44)

    def test_validate_for_rejects_out_of_range_link(self, mesh44):
        plan = FaultPlan(link_faults=(LinkFault(src=0, dst=99),))
        with pytest.raises(FaultConfigError, match="outside"):
            plan.validate_for(mesh44)

    def test_validate_for_rejects_late_activation(self, mesh44):
        plan = FaultPlan(node_faults=(NodeFault(pid=1, start=10),))
        with pytest.raises(FaultConfigError, match="only 3 windows"):
            plan.validate_for(mesh44, n_windows=3)

    def test_config_error_is_value_error(self):
        # the CLI maps ValueError -> exit code 2; FaultConfigError must
        # stay in that family
        assert issubclass(FaultConfigError, ValueError)


class TestActivation:
    def test_windowed_fault_heals(self):
        f = NodeFault(pid=2, start=1, end=3)
        assert [f.active_in(w) for w in range(5)] == [
            False, True, True, False, False,
        ]

    def test_permanent_fault_never_heals(self):
        f = NodeFault(pid=2, start=2)
        assert not f.active_in(1)
        assert all(f.active_in(w) for w in range(2, 50))

    def test_down_nodes_per_window(self):
        plan = FaultPlan(
            node_faults=(NodeFault(0, start=0, end=2), NodeFault(5, start=1))
        )
        assert plan.down_nodes(0) == {0}
        assert plan.down_nodes(1) == {0, 5}
        assert plan.down_nodes(2) == {5}

    def test_down_links_directed(self):
        plan = FaultPlan(link_faults=(LinkFault(src=1, dst=2),))
        assert plan.down_links(0) == {(1, 2)}
        assert (2, 1) not in plan.down_links(0)

    def test_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(node_faults=(NodeFault(0),)).is_empty
        assert not FaultPlan(drop_rate=0.1).is_empty


class TestRandomSampling:
    def test_same_seed_same_plan(self, mesh44):
        a = FaultPlan.random(mesh44, 6, node_rate=0.3, link_rate=0.1, seed=7)
        b = FaultPlan.random(mesh44, 6, node_rate=0.3, link_rate=0.1, seed=7)
        assert a == b

    def test_different_seed_different_plan(self, mesh44):
        plans = {
            FaultPlan.random(mesh44, 6, node_rate=0.5, seed=s).node_faults
            for s in range(8)
        }
        assert len(plans) > 1

    def test_min_survivors_respected(self, mesh44):
        for seed in range(10):
            plan = FaultPlan.random(
                mesh44, 4, node_rate=1.0, seed=seed, min_survivors=3
            )
            assert len(plan.node_faults) <= mesh44.n_procs - 3

    def test_sampled_plan_fits_machine(self, mesh44):
        plan = FaultPlan.random(mesh44, 5, node_rate=0.4, link_rate=0.2, seed=3)
        plan.validate_for(mesh44, n_windows=5)  # must not raise

    def test_sampled_links_are_physical(self, mesh44):
        plan = FaultPlan.random(mesh44, 5, link_rate=0.5, seed=11)
        physical = set(mesh_links(mesh44))
        assert plan.link_faults
        assert all(f.link in physical for f in plan.link_faults)

    def test_zero_rates_give_empty_plan(self, mesh44):
        assert FaultPlan.random(mesh44, 5, seed=1).is_empty


class TestDrops:
    def test_deterministic_per_coordinates(self):
        plan = FaultPlan(drop_rate=0.5, seed=42)
        decisions = [
            plan.drops_message(w, e, a)
            for w in range(4) for e in range(10) for a in range(3)
        ]
        again = [
            plan.drops_message(w, e, a)
            for w in range(4) for e in range(10) for a in range(3)
        ]
        assert decisions == again
        assert any(decisions) and not all(decisions)

    def test_rate_extremes_short_circuit(self):
        assert not FaultPlan(drop_rate=0.0).drops_message(0, 0, 0)
        assert FaultPlan(drop_rate=1.0).drops_message(0, 0, 0)

    def test_order_independence(self):
        # counter-based RNG: evaluation order cannot change a decision
        plan = FaultPlan(drop_rate=0.3, seed=5)
        forward = [plan.drops_message(0, e, 0) for e in range(50)]
        backward = [plan.drops_message(0, e, 0) for e in reversed(range(50))]
        assert forward == backward[::-1]

    def test_empirical_rate_tracks_drop_rate(self):
        plan = FaultPlan(drop_rate=0.2, seed=9)
        n = 2000
        hits = sum(plan.drops_message(0, e, 0) for e in range(n))
        assert 0.15 < hits / n < 0.25

    def test_different_plan_seeds_decorrelate(self):
        a = FaultPlan(drop_rate=0.5, seed=1)
        b = FaultPlan(drop_rate=0.5, seed=2)
        da = [a.drops_message(0, e, 0) for e in range(100)]
        db = [b.drops_message(0, e, 0) for e in range(100)]
        assert da != db


def test_plan_is_hashable_value():
    a = FaultPlan(node_faults=(NodeFault(1),), drop_rate=0.1, seed=3)
    b = FaultPlan(node_faults=(NodeFault(1),), drop_rate=0.1, seed=3)
    assert a == b and hash(a) == hash(b)


class TestMaxDownFraction:
    def test_caps_the_failing_set(self, mesh44):
        for seed in range(8):
            plan = FaultPlan.random(
                mesh44, 4, node_rate=1.0, seed=seed, max_down_fraction=0.25
            )
            assert len(plan.node_faults) <= int(0.25 * mesh44.n_procs)

    def test_default_cap_is_half_the_array(self, mesh44):
        for seed in range(8):
            plan = FaultPlan.random(mesh44, 4, node_rate=1.0, seed=seed)
            assert len(plan.node_faults) <= mesh44.n_procs // 2

    def test_composes_with_min_survivors(self, mesh44):
        plan = FaultPlan.random(
            mesh44, 4, node_rate=1.0, seed=3,
            min_survivors=14, max_down_fraction=1.0,
        )
        assert len(plan.node_faults) <= 2

    def test_out_of_range_is_a_coded_error(self, mesh44):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(FaultConfigError, match=r"\[FLT004\]"):
                FaultPlan.random(
                    mesh44, 4, node_rate=0.5, max_down_fraction=bad
                )

    def test_full_fraction_allowed(self, mesh44):
        plan = FaultPlan.random(
            mesh44, 4, node_rate=1.0, seed=1, max_down_fraction=1.0
        )
        # min_survivors=1 still keeps one node alive
        assert len(plan.node_faults) <= mesh44.n_procs - 1
