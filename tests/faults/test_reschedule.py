"""Fault-aware rescheduling: dead cells are never chosen as centers."""

import numpy as np
import pytest

from repro.core import (
    alive_window_mask,
    evaluate_schedule,
    gomcds,
    reschedule_around_faults,
    reschedule_from_window,
)
from repro.faults import FaultPlan, NodeFault
from repro.mem import CapacityError
from repro.sim import replay_schedule


def test_empty_plan_reproduces_gomcds(lu8_tensor, model44, paper_capacity):
    plain = gomcds(lu8_tensor, model44, paper_capacity)
    faulted = reschedule_around_faults(
        lu8_tensor, model44, FaultPlan(), paper_capacity
    )
    assert np.array_equal(faulted.centers, plain.centers)


def test_centers_avoid_dead_cells(lu8_tensor, model44, paper_capacity):
    plan = FaultPlan(
        node_faults=(NodeFault(pid=5, start=0), NodeFault(pid=9, start=2, end=4))
    )
    schedule = reschedule_around_faults(
        lu8_tensor, model44, plan, paper_capacity
    )
    alive = alive_window_mask(plan, lu8_tensor.n_windows, model44.n_procs)
    for w in range(lu8_tensor.n_windows):
        chosen = set(int(c) for c in schedule.centers[:, w])
        dead = set(np.nonzero(~alive[w])[0].tolist())
        assert not chosen & dead, f"window {w} placed data on dead nodes"


def test_alive_window_mask_shape_and_healing():
    plan = FaultPlan(node_faults=(NodeFault(pid=2, start=1, end=3),))
    alive = alive_window_mask(plan, n_windows=4, n_procs=6)
    assert alive.shape == (4, 6)
    assert alive[0, 2] and not alive[1, 2] and not alive[2, 2] and alive[3, 2]
    assert alive[:, [0, 1, 3, 4, 5]].all()


def test_whole_array_death_raises(lu8_tensor, model44):
    plan = FaultPlan(
        node_faults=tuple(NodeFault(pid=p, start=0) for p in range(16))
    )
    with pytest.raises(CapacityError, match="no surviving processor"):
        reschedule_around_faults(lu8_tensor, model44, plan)


def test_whole_array_death_in_middle_window_is_a_coded_diagnostic(
    lu8_tensor, model44, paper_capacity
):
    # Every processor dies in window 2 only: the reschedule must surface a
    # clear FLT004 diagnostic naming that window, not an index error from
    # the masked shortest-path machinery.
    plan = FaultPlan(
        node_faults=tuple(NodeFault(pid=p, start=2, end=3) for p in range(16))
    )
    with pytest.raises(CapacityError, match=r"\[FLT004\].*window 2") as info:
        reschedule_around_faults(lu8_tensor, model44, plan, paper_capacity)
    assert info.value.code == "FLT004"
    assert info.value.window == 2


def test_whole_array_death_is_caught_statically(lu8_tensor, model44):
    # The same contradiction is flagged by the lint rule without running
    # the scheduler at all.
    from repro.lint import LintContext, run_lint

    plan = FaultPlan(
        node_faults=tuple(NodeFault(pid=p, start=2, end=3) for p in range(16))
    )
    context = LintContext(
        faults=plan, topology=model44.topology, model=model44
    )
    report = run_lint(context, select=["FLT004"])
    assert "FLT004" in report.codes()
    assert any(d.window == 2 for d in report.diagnostics)
    assert report.exit_code == 2


def test_capacity_respected_on_survivors(lu8_tensor, model44, paper_capacity):
    plan = FaultPlan(
        node_faults=(NodeFault(pid=0, start=0), NodeFault(pid=1, start=0))
    )
    schedule = reschedule_around_faults(
        lu8_tensor, model44, plan, paper_capacity
    )
    caps = paper_capacity.capacities
    for w in range(lu8_tensor.n_windows):
        occupancy = np.bincount(
            schedule.centers[:, w], minlength=model44.n_procs
        )
        assert (occupancy <= caps).all()


def test_rescheduling_beats_naive_replay(
    lu8, lu8_tensor, model44, paper_capacity
):
    plan = FaultPlan(
        node_faults=(NodeFault(pid=5, start=0), NodeFault(pid=10, start=1))
    )
    naive = replay_schedule(
        lu8.trace,
        gomcds(lu8_tensor, model44, paper_capacity),
        model44,
        capacity=paper_capacity,
        faults=plan,
    )
    informed = replay_schedule(
        lu8.trace,
        reschedule_around_faults(lu8_tensor, model44, plan, paper_capacity),
        model44,
        capacity=paper_capacity,
        faults=plan,
    )
    assert informed.accounts_for_all_fetches()
    assert informed.completion_rate >= naive.completion_rate
    assert informed.degraded_cost <= naive.degraded_cost


def test_rescheduled_analytic_cost_is_sane(lu8_tensor, model44, paper_capacity):
    # avoiding dead nodes can only cost more than the unconstrained optimum
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=0),))
    plain = evaluate_schedule(
        gomcds(lu8_tensor, model44, paper_capacity), lu8_tensor, model44
    )
    faulted = evaluate_schedule(
        reschedule_around_faults(lu8_tensor, model44, plan, paper_capacity),
        lu8_tensor,
        model44,
    )
    assert faulted.total >= plain.total
    assert faulted.total < np.inf


def test_method_tag_and_meta(lu8_tensor, model44):
    plan = FaultPlan(node_faults=(NodeFault(pid=3, start=0),))
    schedule = reschedule_around_faults(lu8_tensor, model44, plan)
    assert schedule.method == "GOMCDS+faults"
    assert schedule.meta["n_node_faults"] == 1


# -- incremental rescheduling (online recovery's planning step) ---------------


class TestRescheduleFromWindow:
    @pytest.fixture
    def mid_fault(self, lu8_tensor, model44):
        schedule = gomcds(lu8_tensor, model44)
        w = lu8_tensor.n_windows // 2
        victim = int(schedule.centers[0, w])
        plan = FaultPlan(node_faults=(NodeFault(victim, start=w),))
        return schedule, plan, w, victim

    def test_prefix_is_preserved_verbatim(self, mid_fault, lu8_tensor, model44):
        schedule, plan, w, _ = mid_fault
        new = reschedule_from_window(
            schedule, lu8_tensor, model44, plan, from_window=w
        )
        assert np.array_equal(new.centers[:, :w], schedule.centers[:, :w])
        assert new.method == "GOMCDS+recovery"
        assert new.meta["from_window"] == w
        assert new.meta["base_method"] == schedule.method

    def test_suffix_avoids_dead_cells(self, mid_fault, lu8_tensor, model44):
        schedule, plan, w, _ = mid_fault
        new = reschedule_from_window(
            schedule, lu8_tensor, model44, plan, from_window=w
        )
        alive = alive_window_mask(plan, lu8_tensor.n_windows, model44.n_procs)
        for ww in range(w, lu8_tensor.n_windows):
            chosen = set(int(c) for c in new.centers[:, ww])
            dead = set(np.nonzero(~alive[ww])[0].tolist())
            assert not chosen & dead

    def test_mid_schedule_fault_replay_improves(
        self, mid_fault, lu8, lu8_tensor, model44
    ):
        # re-planning the suffix must not degrade the replay vs keeping
        # the stale schedule under the same mid-schedule fault
        schedule, plan, w, _ = mid_fault
        new = reschedule_from_window(
            schedule, lu8_tensor, model44, plan, from_window=w
        )
        stale = replay_schedule(lu8.trace, schedule, model44, faults=plan)
        fresh = replay_schedule(lu8.trace, new, model44, faults=plan)
        assert fresh.accounts_for_all_fetches()
        assert fresh.degraded_cost <= stale.degraded_cost

    def test_pinned_placement_changes_the_first_suffix_window(
        self, lu8_tensor, model44
    ):
        # pinning every datum onto pid 0 makes moving anywhere else cost
        # hops from pid 0, so the re-plan must charge (and may choose)
        # differently from the unpinned prefix continuation
        schedule = gomcds(lu8_tensor, model44)
        plan = FaultPlan(node_faults=(NodeFault(15, start=1),))
        pinned = np.zeros(lu8_tensor.n_data, dtype=np.int64)
        new = reschedule_from_window(
            schedule, lu8_tensor, model44, plan, from_window=1,
            placement=pinned,
        )
        default = reschedule_from_window(
            schedule, lu8_tensor, model44, plan, from_window=1
        )
        assert new.n_windows == default.n_windows
        assert not np.array_equal(new.centers, default.centers)

    def test_from_window_zero_with_initial_placement(
        self, lu8_tensor, model44
    ):
        schedule = gomcds(lu8_tensor, model44)
        plan = FaultPlan(node_faults=(NodeFault(3, start=0),))
        new = reschedule_from_window(
            schedule, lu8_tensor, model44, plan, from_window=0
        )
        assert 3 not in set(new.centers.ravel().tolist())

    def test_out_of_range_from_window_rejected(self, mid_fault, lu8_tensor, model44):
        schedule, plan, _, _ = mid_fault
        with pytest.raises(ValueError, match="from_window"):
            reschedule_from_window(
                schedule, lu8_tensor, model44, plan,
                from_window=lu8_tensor.n_windows,
            )
        with pytest.raises(ValueError, match="from_window"):
            reschedule_from_window(
                schedule, lu8_tensor, model44, plan, from_window=-1
            )

    def test_bad_placement_shape_rejected(self, mid_fault, lu8_tensor, model44):
        schedule, plan, w, _ = mid_fault
        with pytest.raises(ValueError, match="placement"):
            reschedule_from_window(
                schedule, lu8_tensor, model44, plan, from_window=w,
                placement=np.zeros(3, dtype=np.int64),
            )

    def test_dead_suffix_window_raises_flt004(self, lu8_tensor, model44):
        schedule = gomcds(lu8_tensor, model44)
        plan = FaultPlan(
            node_faults=tuple(NodeFault(pid=p, start=3, end=4) for p in range(16))
        )
        with pytest.raises(CapacityError, match=r"\[FLT004\].*window 3") as info:
            reschedule_from_window(
                schedule, lu8_tensor, model44, plan, from_window=2
            )
        assert info.value.window == 3

    def test_capacity_respected_on_suffix(
        self, lu8_tensor, model44, paper_capacity
    ):
        schedule = gomcds(lu8_tensor, model44, paper_capacity)
        plan = FaultPlan(node_faults=(NodeFault(5, start=1),))
        new = reschedule_from_window(
            schedule, lu8_tensor, model44, plan, from_window=1,
            capacity=paper_capacity,
        )
        caps = paper_capacity.capacities
        for w in range(1, lu8_tensor.n_windows):
            occupancy = np.bincount(
                new.centers[:, w], minlength=model44.n_procs
            )
            assert (occupancy <= caps).all()
