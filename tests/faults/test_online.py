"""Online recovery: detection at activation, bounded rollback, degradation."""

import numpy as np
import pytest

from repro.core import gomcds, replicated_scds
from repro.faults import (
    FaultConfigError,
    FaultDetector,
    FaultPlan,
    LinkFault,
    NodeFault,
    RecoveryController,
    RecoveryError,
    RecoveryPolicy,
    replay_with_recovery,
)
from repro.sim import replay_schedule


@pytest.fixture
def run(drift, model44):
    tensor = drift.reference_tensor()
    schedule = gomcds(tensor, model44)
    return drift.trace, schedule, model44, tensor


def mid_fault_plan(schedule):
    """Kill the busiest window-w center at w = horizon // 2."""
    w = schedule.n_windows // 2
    victim = int(schedule.centers[0, w])
    return FaultPlan(node_faults=(NodeFault(victim, start=w),)), w, victim


class TestFaultDetector:
    def test_discovers_at_activation_only(self):
        plan = FaultPlan(
            node_faults=(NodeFault(3, start=2), NodeFault(4, start=5)),
            link_faults=(LinkFault(0, 1, start=2),),
        )
        det = FaultDetector(plan)
        assert det.poll(0) == ()
        assert det.known_plan.is_empty
        newly = det.poll(2)
        assert {type(f).__name__ for f in newly} == {"NodeFault", "LinkFault"}
        assert det.known_plan.down_nodes(2) == frozenset({3})
        # already-seen faults are not re-reported
        assert det.poll(3) == ()
        assert det.poll(5) == (NodeFault(4, start=5),)
        assert det.all_discovered()

    def test_drop_rate_is_known_up_front(self):
        plan = FaultPlan(drop_rate=0.2, seed=9)
        det = FaultDetector(plan)
        known = det.known_plan
        assert known.drop_rate == 0.2 and known.seed == 9
        # seeded drop decisions agree with the ground truth exactly
        assert all(
            known.drops_message(w, e, a) == plan.drops_message(w, e, a)
            for w in range(3) for e in range(5) for a in range(2)
        )

    def test_assume_permanent_hides_healing(self):
        plan = FaultPlan(node_faults=(NodeFault(1, start=0, end=2),))
        det = FaultDetector(plan, assume_permanent=True)
        (f,) = det.poll(0)
        assert f.end is None and f.start == 0
        assert det.known_plan.down_nodes(5) == frozenset({1})


class TestRecoveryPolicy:
    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown recovery mode"):
            RecoveryPolicy(mode="yolo")

    def test_checkpoint_interval_flt007(self):
        with pytest.raises(FaultConfigError, match=r"\[FLT007\]"):
            RecoveryPolicy(checkpoint_interval=0).validate()
        with pytest.raises(FaultConfigError, match=r"\[FLT007\]"):
            RecoveryPolicy(checkpoint_interval=10).validate(n_windows=4)
        RecoveryPolicy(checkpoint_interval=4).validate(n_windows=4)

    def test_replicate_without_replicas_flt008(self):
        with pytest.raises(FaultConfigError, match=r"\[FLT008\]"):
            RecoveryPolicy(mode="replicate").validate(has_replicas=False)
        RecoveryPolicy(mode="replicate").validate(has_replicas=True)

    def test_dict_round_trip(self):
        policy = RecoveryPolicy(
            mode="replicate", checkpoint_interval=3, max_recoveries=2,
            backoff=1.5, recovery_deadline=64.0, reschedule=False,
        )
        assert RecoveryPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultConfigError, match="unknown recovery-policy"):
            RecoveryPolicy.from_dict({"modee": "strict"})


class TestFaultFreeIdentity:
    def test_bit_identical_to_monolithic_replay(self, run):
        trace, schedule, model, tensor = run
        baseline = replay_schedule(trace, schedule, model)
        rep = replay_with_recovery(
            trace, schedule, model, FaultPlan(), tensor=tensor,
            policy=RecoveryPolicy(checkpoint_interval=2),
        )
        assert rep.sim.to_dict() == baseline.to_dict()
        assert rep.n_detections == 0 and rep.n_rollbacks == 0
        assert rep.recoverable and rep.data_preserved


class TestDegradeMode:
    def test_detection_triggers_bounded_rollback(self, run):
        trace, schedule, model, tensor = run
        plan, w, victim = mid_fault_plan(schedule)
        policy = RecoveryPolicy(mode="degrade", checkpoint_interval=2)
        rep = replay_with_recovery(
            trace, schedule, model, plan, tensor=tensor, policy=policy
        )
        assert rep.n_detections == 1 and rep.n_rollbacks == 1
        assert 1 <= rep.max_rollback_depth <= policy.checkpoint_interval
        assert rep.restore_mismatches == 0
        assert rep.sim.accounts_for_all_fetches()
        (event,) = rep.events
        assert event.window == w
        assert event.rollback_to <= w
        assert event.rescheduled
        assert f"pid={victim}" in event.faults[0]

    def test_rescheduled_suffix_avoids_dead_center(self, run):
        trace, schedule, model, tensor = run
        plan, w, victim = mid_fault_plan(schedule)
        controller = RecoveryController(
            trace, schedule, model, plan, tensor=tensor,
            policy=RecoveryPolicy(mode="degrade", checkpoint_interval=2),
        )
        controller.run()
        final = controller.schedule
        assert final.method == "GOMCDS+recovery"
        assert victim not in set(final.centers[:, w:].ravel().tolist())

    def test_wasted_cost_and_windows_accounted(self, run):
        trace, schedule, model, tensor = run
        plan, _, _ = mid_fault_plan(schedule)
        rep = replay_with_recovery(
            trace, schedule, model, plan, tensor=tensor,
            policy=RecoveryPolicy(mode="degrade", checkpoint_interval=2),
        )
        assert rep.windows_replayed >= rep.n_rollbacks
        assert rep.wasted_cost >= 0.0
        assert rep.to_dict()["windows_replayed"] == rep.windows_replayed

    def test_retry_deadline_escalates(self, run):
        trace, schedule, model, tensor = run
        plan = FaultPlan(
            node_faults=(NodeFault(1, start=1), NodeFault(2, start=3)),
        )
        rep = replay_with_recovery(
            trace, schedule, model, plan, tensor=tensor,
            policy=RecoveryPolicy(
                mode="degrade", checkpoint_interval=2, backoff=2.0
            ),
        )
        deadlines = [e.retry_deadline for e in rep.events]
        assert len(deadlines) == 2
        assert deadlines[1] > deadlines[0]

    def test_budget_exhaustion_finishes_against_ground_truth(self, run):
        trace, schedule, model, tensor = run
        plan = FaultPlan(
            node_faults=(NodeFault(1, start=1), NodeFault(2, start=3)),
        )
        rep = replay_with_recovery(
            trace, schedule, model, plan, tensor=tensor,
            policy=RecoveryPolicy(
                mode="degrade", checkpoint_interval=2, max_recoveries=1
            ),
        )
        assert rep.budget_exhausted
        assert not rep.recoverable
        assert rep.n_rollbacks == 1  # second detection spent no rollback
        assert rep.sim.accounts_for_all_fetches()


class TestReplicateMode:
    def test_no_datum_instances_lost(self, run, model44):
        trace, schedule, model, tensor = run
        plan, _, _ = mid_fault_plan(schedule)
        replicas = replicated_scds(tensor, model44, k=2)
        rep = replay_with_recovery(
            trace, schedule, model, plan, tensor=tensor, replicas=replicas,
            policy=RecoveryPolicy(mode="replicate", checkpoint_interval=2),
        )
        assert rep.recoverable
        assert rep.sim.n_lost == 0
        assert rep.sim.accounts_for_all_fetches()

    def test_replica_serves_fetches_stuck_on_a_dead_center(self, run, model44):
        # with evacuation and rescheduling both off, data on the dead node
        # stay there, so alive requesters can only be served from replicas
        trace, schedule, model, tensor = run
        w = schedule.n_windows // 2
        # fail the node datum 0 *resides on* entering window w
        victim = int(schedule.centers[0, w - 1])
        plan = FaultPlan(node_faults=(NodeFault(victim, start=w),))
        replicas = replicated_scds(tensor, model44, k=2)
        rep = replay_with_recovery(
            trace, schedule, model, plan, tensor=tensor, replicas=replicas,
            evacuate=False,
            policy=RecoveryPolicy(
                mode="replicate", checkpoint_interval=2, reschedule=False
            ),
        )
        degrade = replay_with_recovery(
            trace, schedule, model, plan, tensor=tensor, evacuate=False,
            policy=RecoveryPolicy(
                mode="degrade", checkpoint_interval=2, reschedule=False
            ),
        )
        assert rep.n_replica_served > 0
        assert rep.sim.n_unreachable < degrade.sim.n_unreachable
        assert rep.sim.accounts_for_all_fetches()

    def test_requires_replicas(self, run):
        trace, schedule, model, tensor = run
        with pytest.raises(FaultConfigError, match=r"\[FLT008\]"):
            replay_with_recovery(
                trace, schedule, model, FaultPlan(), tensor=tensor,
                policy=RecoveryPolicy(mode="replicate"),
            )


class TestStrictMode:
    def test_budget_exhaustion_raises(self, run):
        trace, schedule, model, tensor = run
        plan, _, _ = mid_fault_plan(schedule)
        with pytest.raises(RecoveryError, match="budget") as err:
            replay_with_recovery(
                trace, schedule, model, plan, tensor=tensor,
                policy=RecoveryPolicy(
                    mode="strict", checkpoint_interval=2, max_recoveries=0
                ),
            )
        assert err.value.report is not None

    def test_unreachable_raises(self, run):
        trace, schedule, model, tensor = run
        plan, w, victim = mid_fault_plan(schedule)
        # rescheduling off: the dead requester's own fetches are
        # unreachable no matter what, so strict must fail fast
        with pytest.raises(RecoveryError, match="unreachable|stranded"):
            replay_with_recovery(
                trace, schedule, model, plan, tensor=tensor,
                policy=RecoveryPolicy(
                    mode="strict", checkpoint_interval=2, reschedule=False
                ),
            )

    def test_clean_run_passes(self, run):
        trace, schedule, model, tensor = run
        rep = replay_with_recovery(
            trace, schedule, model, FaultPlan(), tensor=tensor,
            policy=RecoveryPolicy(mode="strict", checkpoint_interval=2),
        )
        assert rep.data_preserved


class TestConstruction:
    def test_reschedule_requires_tensor(self, run):
        trace, schedule, model, _ = run
        with pytest.raises(FaultConfigError, match="reference tensor"):
            RecoveryController(trace, schedule, model, FaultPlan())

    def test_report_round_trips_through_json(self, run):
        import json

        trace, schedule, model, tensor = run
        plan, _, _ = mid_fault_plan(schedule)
        rep = replay_with_recovery(
            trace, schedule, model, plan, tensor=tensor,
            policy=RecoveryPolicy(mode="degrade", checkpoint_interval=2),
        )
        d = rep.to_dict()
        assert d["kind"] == "recovery_report"
        assert json.loads(json.dumps(d)) == d
        assert "summary" not in d  # summary() is a rendering, not a field
        assert rep.summary().startswith("recovery[degrade]")
