"""FaultAwareRouter: verbatim x-y, detours, unreachability reporting."""

import pytest

from repro.grid import (
    FaultAwareRouter,
    Mesh1D,
    Mesh2D,
    XYRouter,
    mesh_links,
    structural_neighbors,
)


def _assert_valid_path(topology, router, path):
    for a, b in zip(path[:-1], path[1:]):
        assert b in structural_neighbors(topology, a)
        assert (a, b) not in router.dead_links
    for node in path:
        assert node not in router.dead_nodes


class TestStructure:
    def test_neighbors_match_mesh_adjacency(self, mesh44):
        assert structural_neighbors(mesh44, 0) == [1, 4]
        assert structural_neighbors(mesh44, 5) == [1, 4, 6, 9]

    def test_neighbors_wrap_on_torus(self, torus44):
        assert 3 in structural_neighbors(torus44, 0)
        assert 12 in structural_neighbors(torus44, 0)

    def test_mesh_links_count(self):
        # interior 2x2 mesh: 4 undirected edges -> 8 directed links
        assert len(mesh_links(Mesh2D(2, 2))) == 8

    def test_links_are_symmetric_on_mesh(self, mesh44):
        links = set(mesh_links(mesh44))
        assert all((b, a) in links for a, b in links)


class TestRouting:
    def test_no_faults_is_verbatim_xy(self, mesh44):
        router = FaultAwareRouter(mesh44)
        xy = XYRouter(mesh44)
        for src in mesh44.iter_pids():
            for dst in mesh44.iter_pids():
                assert router.route(src, dst) == xy.route(src, dst)

    def test_untouched_xy_path_survives_faults_verbatim(self, mesh44):
        # node 15 is nowhere near the 0 -> 3 top-row route
        router = FaultAwareRouter(mesh44, dead_nodes={15})
        assert router.route(0, 3) == XYRouter(mesh44).route(0, 3)
        assert router.hop_count(0, 3) == mesh44.distance(0, 3)

    def test_detour_around_dead_node(self, mesh44):
        # x-y route 0 -> 3 passes 1, 2; kill 1 and the detour must leave
        # the top row but still arrive
        router = FaultAwareRouter(mesh44, dead_nodes={1})
        path = router.route(0, 3)
        assert path is not None
        assert path[0] == 0 and path[-1] == 3
        _assert_valid_path(mesh44, router, path)
        assert router.hop_count(0, 3) > mesh44.distance(0, 3)

    def test_directed_link_fault_forces_detour_one_way(self, mesh44):
        router = FaultAwareRouter(mesh44, dead_links={(0, 1)})
        out = router.route(0, 1)
        back = router.route(1, 0)
        _assert_valid_path(mesh44, router, out)
        assert router.hop_count(0, 1) > 1  # detoured
        assert back == [1, 0]  # reverse direction still direct

    def test_dead_endpoint_is_unreachable(self, mesh44):
        router = FaultAwareRouter(mesh44, dead_nodes={5})
        assert router.route(5, 0) is None
        assert router.route(0, 5) is None
        assert not router.reachable(0, 5)

    def test_partition_reported_not_raised(self):
        # cutting node 2 splits a 1-D line in two
        line = Mesh1D(5)
        router = FaultAwareRouter(line, dead_nodes={2})
        assert router.route(0, 4) is None
        pairs = [(0, 4), (4, 0), (0, 1), (3, 4)]
        assert router.unreachable_pairs(pairs) == [(0, 4), (4, 0)]

    def test_detour_is_shortest_surviving(self, mesh44):
        # 0 -> 2 with node 1 dead: best detour drops a row, 4 hops
        router = FaultAwareRouter(mesh44, dead_nodes={1})
        assert router.hop_count(0, 2) == 4

    def test_self_route(self, mesh44):
        router = FaultAwareRouter(mesh44, dead_nodes={9})
        assert router.route(3, 3) == [3]
        assert router.hop_count(3, 3) == 0

    def test_torus_wrap_detour(self, torus44):
        router = FaultAwareRouter(torus44, dead_nodes={1})
        path = router.route(0, 2)
        _assert_valid_path(torus44, router, path)
        assert router.hop_count(0, 2) == torus44.distance(0, 2)  # wrap: 0->3->2

    def test_route_caching_is_stable(self, mesh44):
        router = FaultAwareRouter(mesh44, dead_nodes={1})
        assert router.route(0, 3) is router.route(0, 3)

    def test_links_helper(self, mesh44):
        router = FaultAwareRouter(mesh44)
        assert router.links(0, 2) == [(0, 1), (1, 2)]
        assert FaultAwareRouter(mesh44, dead_nodes={2}).links(0, 2) is None

    def test_rejects_unknown_topology(self):
        with pytest.raises(TypeError, match="mesh/torus"):
            FaultAwareRouter(object())

    def test_rejects_out_of_range_dead_node(self, mesh44):
        with pytest.raises(ValueError):
            FaultAwareRouter(mesh44, dead_nodes={99})
