"""Flight recorder: bounded ring, watermarks, dumps, global hookup."""

import json

import pytest

from repro.obs import FlightRecorder, flight_recorder, record_event
from repro.obs.recorder import DEFAULT_CAPACITY, DUMP_ENV_VAR, dump_on_error


def test_record_stamps_seq_time_and_kind():
    ring = FlightRecorder()
    event = ring.record("solve.start", algorithm="GOMCDS")
    assert event["seq"] == 0
    assert event["kind"] == "solve.start"
    assert event["algorithm"] == "GOMCDS"
    assert event["t_unix_us"] > 0
    assert ring.record("solve.end")["seq"] == 1


def test_ring_is_bounded_and_counts_drops():
    ring = FlightRecorder(capacity=3)
    for i in range(5):
        ring.record("tick", i=i)
    assert len(ring) == 3
    assert ring.dropped == 2
    assert [e["i"] for e in ring.events()] == [2, 3, 4]
    # seq keeps climbing even after eviction
    assert ring.next_seq == 5


def test_events_since_slices_one_tasks_events():
    ring = FlightRecorder()
    ring.record("before")
    watermark = ring.next_seq
    ring.record("during", n=1)
    ring.record("during", n=2)
    kinds = [e["kind"] for e in ring.events_since(watermark)]
    assert kinds == ["during", "during"]
    assert ring.events_since(ring.next_seq) == []


def test_append_adopts_and_restamps_seq():
    ring = FlightRecorder()
    ring.record("local")
    ring.append({"seq": 99, "kind": "remote", "worker": 1})
    events = ring.events()
    assert [e["seq"] for e in events] == [0, 1]
    assert events[1]["kind"] == "remote"
    assert events[1]["worker"] == 1


def test_tail_returns_most_recent_first_in_order():
    ring = FlightRecorder()
    for i in range(5):
        ring.record("tick", i=i)
    assert [e["i"] for e in ring.tail(2)] == [3, 4]
    assert ring.tail(0) == []
    assert len(ring.tail(100)) == 5


def test_to_jsonl_records_are_typed_events():
    ring = FlightRecorder()
    ring.record("cache.hit", key="abc")
    records = [json.loads(line) for line in ring.to_jsonl().splitlines()]
    assert records == [
        {
            "type": "event",
            "seq": 0,
            "t_unix_us": records[0]["t_unix_us"],
            "kind": "cache.hit",
            "key": "abc",
        }
    ]


def test_dump_to_path_and_file_and_stderr(tmp_path, capsys):
    ring = FlightRecorder()
    ring.record("tick")
    path = tmp_path / "flight.jsonl"
    text = ring.dump(path)
    assert path.read_text() == text + "\n"
    with (tmp_path / "second.jsonl").open("w") as fh:
        ring.dump(fh)
    ring.dump()  # stderr fallback
    assert "tick" in capsys.readouterr().err


def test_dump_empty_ring_writes_nothing(tmp_path):
    path = tmp_path / "flight.jsonl"
    assert FlightRecorder().dump(path) == ""
    assert not path.exists()


def test_clear_resets_events_and_drops():
    ring = FlightRecorder(capacity=1)
    ring.record("a")
    ring.record("b")
    ring.clear()
    assert len(ring) == 0
    assert ring.dropped == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="capacity"):
        FlightRecorder(capacity=0)


def test_record_event_lands_on_the_global_ring():
    ring = flight_recorder()
    watermark = ring.next_seq
    record_event("test.global", marker=True)
    (event,) = ring.events_since(watermark)
    assert event["kind"] == "test.global"
    assert event["marker"] is True
    assert ring.capacity == DEFAULT_CAPACITY


def test_dump_on_error_records_and_writes_when_env_set(
    tmp_path, monkeypatch
):
    path = tmp_path / "crash.jsonl"
    monkeypatch.setenv(DUMP_ENV_VAR, str(path))
    dump_on_error("test failure context")
    records = [json.loads(line) for line in path.read_text().splitlines()]
    error = records[-1]
    assert error["kind"] == "error"
    assert error["context"] == "test failure context"


def test_dump_on_error_without_env_keeps_ring_in_memory(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.delenv(DUMP_ENV_VAR, raising=False)
    watermark = flight_recorder().next_seq
    dump_on_error("quiet failure")
    # the error event is recorded but nothing is printed or written
    (event,) = flight_recorder().events_since(watermark)
    assert event["kind"] == "error"
    assert capsys.readouterr().err == ""


def test_env_capacity_sizes_the_lazy_global_ring(monkeypatch):
    import repro.obs.recorder as recorder

    monkeypatch.setenv(recorder.CAPACITY_ENV_VAR, "7")
    monkeypatch.setattr(recorder, "_FLIGHT", None)
    ring = flight_recorder()
    assert ring.capacity == 7
    # created once; later env changes do not resize the live ring
    monkeypatch.setenv(recorder.CAPACITY_ENV_VAR, "9")
    assert flight_recorder() is ring


@pytest.mark.parametrize("raw", ["0", "-3", "huge", "2.5", ""])
def test_env_capacity_rejects_bad_overrides(monkeypatch, raw):
    import repro.obs.recorder as recorder

    monkeypatch.setenv(recorder.CAPACITY_ENV_VAR, raw)
    monkeypatch.setattr(recorder, "_FLIGHT", None)
    with pytest.raises(ValueError, match=r"\[OBS003\]"):
        flight_recorder()
    # the global stays unset, so a fixed env heals the process
    monkeypatch.setenv(recorder.CAPACITY_ENV_VAR, "5")
    assert flight_recorder().capacity == 5


def test_constructor_rejects_nonpositive_with_coded_error():
    with pytest.raises(ValueError, match=r"\[OBS003\]"):
        FlightRecorder(capacity=-1)


def test_provenance_solves_flight_record():
    from repro.obs import Instrumentation
    from repro.obs.provenance import ProvenanceStore, record_decisions
    import numpy as np

    class Model:
        distances = np.zeros((2, 2))
        volumes = None

    ring = flight_recorder()
    watermark = ring.next_seq
    obs = Instrumentation.started(provenance=True)
    assert isinstance(obs.provenance, ProvenanceStore)
    costs = np.zeros((1, 1, 2))
    record_decisions(
        obs,
        costs=costs,
        centers=np.zeros((1, 1), dtype=np.int64),
        model=Model(),
        method="SCDS",
    )
    kinds = [e["kind"] for e in ring.events_since(watermark)]
    assert kinds == ["provenance.solve"]
