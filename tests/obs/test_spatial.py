"""Spatial telemetry unit tests: recorder, trace analytics, diagnostics."""

import numpy as np
import pytest

from repro.diagnostics import OBS001, OBS002
from repro.grid import Mesh2D, Torus2D, mesh_links
from repro.obs import (
    NULL_SPATIAL_STORE,
    Instrumentation,
    NOOP,
    SpatialRecorder,
    SpatialStore,
    analyze_spatial,
    gini_coefficient,
)


class TestGini:
    def test_uniform_load_is_zero(self):
        assert gini_coefficient([3.0, 3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_concentrated_load_approaches_one(self):
        loads = [0.0] * 99 + [100.0]
        assert gini_coefficient(loads) == pytest.approx(0.99)

    def test_empty_and_zero_vectors_are_even(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_order_invariant(self):
        assert gini_coefficient([1, 5, 2]) == gini_coefficient([5, 1, 2])


@pytest.fixture
def recorder(mesh44):
    return SpatialRecorder(mesh44, n_windows=3, label="test")


class TestRecorder:
    def test_links_are_the_structural_wires(self, recorder, mesh44):
        assert recorder.links == mesh_links(mesh44)
        # 4x4 mesh: 2 * (3*4 + 3*4) directed wires
        assert len(recorder.links) == 48

    def test_torus_counts_wrap_wires(self):
        rec = SpatialRecorder(Torus2D(4, 4), n_windows=1, label="t")
        assert len(rec.links) == 64  # every node has degree 4

    def test_record_accumulates_links_and_endpoints(self, recorder):
        links = [(0, 1), (1, 2)]  # a route 0 -> 2
        recorder.record(0, links, 2.0)
        recorder.record(0, [(1, 2)], 1.0)
        trace = recorder.finish()
        assert trace.window_links[0] == {(0, 1): 2.0, (1, 2): 3.0}
        assert trace.send[0, 0] == 2.0 and trace.send[0, 1] == 1.0
        assert trace.recv[0, 2] == 3.0

    def test_empty_route_is_a_noop(self, recorder):
        recorder.record(0, [], 5.0)
        assert recorder.window_links[0] == {}

    def test_close_window_snapshots_storage(self, recorder):
        locations = np.array([0, 0, 5, 5, 5])
        volumes = np.array([1.0, 2.0, 1.0, 1.0, 1.0])
        recorder.close_window(1, 42.0, locations, volumes)
        trace = recorder.finish()
        assert trace.window_ts[1] == 42.0
        assert trace.storage[1, 0] == 3.0
        assert trace.storage[1, 5] == 3.0
        assert trace.storage[1].sum() == volumes.sum()


def make_trace(volumes_by_window, topology=None):
    topology = topology or Mesh2D(4, 4)
    rec = SpatialRecorder(topology, len(volumes_by_window), label="t")
    for w, charges in enumerate(volumes_by_window):
        for links, volume in charges:
            rec.record(w, links, volume)
        rec.close_window(w, float(w), np.zeros(1, dtype=int), np.zeros(1))
    return rec.finish()


class TestTraceAnalytics:
    def test_totals_and_extremes(self):
        trace = make_trace(
            [
                [([(0, 1)], 4.0)],
                [([(0, 1), (1, 2)], 1.0)],
            ]
        )
        assert trace.link_totals() == {(0, 1): 5.0, (1, 2): 1.0}
        assert trace.total_link_traffic == 6.0
        assert trace.max_link_load == 5.0
        assert trace.mean_link_load == pytest.approx(6.0 / 48)

    def test_top_links_ranked_and_tie_broken(self):
        trace = make_trace(
            [[([(0, 1)], 2.0), ([(1, 2)], 2.0), ([(2, 3)], 9.0)]]
        )
        assert trace.top_links(2) == [((2, 3), 9.0), ((0, 1), 2.0)]

    def test_hotspot_drift_pinned_vs_moving(self):
        pinned = make_trace(
            [[([(0, 1)], 3.0)], [([(0, 1)], 3.0)], [([(0, 1)], 3.0)]]
        )
        assert pinned.hotspot_drift() == 0.0
        moving = make_trace(
            [[([(0, 1)], 3.0)], [([(1, 2)], 3.0)], [([(2, 3)], 3.0)]]
        )
        assert moving.hotspot_drift() == 1.0

    def test_drift_skips_empty_windows(self):
        trace = make_trace([[([(0, 1)], 1.0)], [], [([(0, 1)], 1.0)]])
        assert trace.hotspot_drift() == 0.0

    def test_gini_counts_idle_wires(self):
        trace = make_trace([[([(0, 1)], 10.0)]])
        # one loaded wire out of 48 is heavily unequal
        assert trace.gini() > 0.9

    def test_to_dict_uses_coordinate_link_keys(self):
        trace = make_trace([[([(0, 1)], 2.0)]])
        d = trace.to_dict()
        assert d["kind"] == "spatial_trace"
        assert d["link_totals"] == {"0,0->0,1": 2.0}
        assert d["window_links"][0] == {"0,0->0,1": 2.0}
        assert len(d["send"]) == trace.n_windows

    def test_summary_handles_no_traffic(self):
        trace = make_trace([[]])
        assert "no link traffic" in trace.summary()


class TestAnalyzeSpatial:
    def test_hot_link_fires_obs001_with_source_processor(self):
        trace = make_trace([[([(5, 6)], 40.0), ([(0, 1)], 1.0)]])
        report = analyze_spatial(trace, hotspot_factor=4.0)
        hot = [d for d in report.diagnostics if d.code == OBS001]
        assert hot and hot[0].processor == 5
        assert "1,1->1,2" in hot[0].message

    def test_balanced_traffic_is_clean(self, mesh44):
        charges = [([link], 1.0) for link in mesh_links(mesh44)]
        report = analyze_spatial(make_trace([charges]))
        assert report.diagnostics == []
        assert report.exit_code == 0
        assert report.gini == pytest.approx(0.0)

    def test_imbalance_fires_obs002(self):
        report = analyze_spatial(
            make_trace([[([(0, 1)], 10.0)]]), gini_threshold=0.6
        )
        assert any(d.code == OBS002 for d in report.diagnostics)
        assert report.exit_code == 1  # warnings only

    def test_report_serializes_with_thresholds(self):
        report = analyze_spatial(make_trace([[([(0, 1)], 1.0)]]), top_k=1)
        d = report.to_dict()
        assert d["kind"] == "spatial_report"
        assert d["thresholds"] == {
            "hotspot_factor": 4.0,
            "gini_threshold": 0.6,
        }
        assert d["top_links"] == [{"link": "0,0->0,1", "volume": 1.0}]

    def test_render_lists_hot_links_and_diagnostics(self):
        report = analyze_spatial(make_trace([[([(0, 1)], 10.0)]]))
        text = report.render()
        assert "hot link 0,0->0,1" in text
        assert "OBS002" in text


class TestStores:
    def test_started_spatial_opt_in(self):
        assert Instrumentation.started().spatial.recording is False
        assert Instrumentation.started(spatial=True).spatial.recording is True

    def test_store_collects(self):
        store = SpatialStore(recording=True)
        store.add(make_trace([[]]))
        assert len(store) == 1

    def test_noop_carries_null_store(self):
        assert NOOP.spatial is NULL_SPATIAL_STORE
        assert NOOP.spatial.recording is False
        NOOP.spatial.add(make_trace([[]]))  # swallowed
        assert len(NOOP.spatial) == 0
