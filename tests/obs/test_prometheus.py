"""Prometheus exposition output: grammar, types, quantiles, buckets."""

import re

import pytest

from repro.obs import Instrumentation, NOOP, to_prometheus, write_export
from repro.obs.export import PROMETHEUS_QUANTILES

#: One exposition sample line: name, optional {labels}, value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9.e+-]+)$"
)
COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def assert_valid_exposition(text: str) -> None:
    """Every line is a well-formed comment or sample line."""
    for line in text.splitlines():
        assert COMMENT_RE.match(line) or SAMPLE_RE.match(line), line


def session():
    instr = Instrumentation.started()
    instr.count("engine.cache.hits", 3)
    instr.gauge("engine.pool.workers", 2)
    for v in (1.0, 2.0, 3.0, 10.0):
        instr.observe("engine.request_us", v)
    return instr


def test_output_is_grammar_valid():
    assert_valid_exposition(to_prometheus(session()))


def test_counters_become_total_with_type_lines():
    text = to_prometheus(session())
    assert "# TYPE repro_engine_cache_hits_total counter" in text
    assert "repro_engine_cache_hits_total 3" in text
    assert "# HELP repro_engine_cache_hits_total" in text


def test_gauges_map_verbatim():
    text = to_prometheus(session())
    assert "# TYPE repro_engine_pool_workers gauge" in text
    assert "repro_engine_pool_workers 2" in text


def test_histograms_default_to_exact_quantile_summaries():
    text = to_prometheus(session())
    assert "# TYPE repro_engine_request_us summary" in text
    # nearest-rank on [1, 2, 3, 10]
    assert 'repro_engine_request_us{quantile="0.5"} 2' in text
    assert 'repro_engine_request_us{quantile="0.99"} 10' in text
    assert "repro_engine_request_us_sum 16" in text
    assert "repro_engine_request_us_count 4" in text
    assert len(PROMETHEUS_QUANTILES) == 4


def test_bucket_boundaries_switch_to_histogram_type():
    text = to_prometheus(session(), buckets=(2.0, 5.0))
    assert "# TYPE repro_engine_request_us histogram" in text
    assert 'repro_engine_request_us_bucket{le="2"} 2' in text
    assert 'repro_engine_request_us_bucket{le="5"} 3' in text
    assert 'repro_engine_request_us_bucket{le="+Inf"} 4' in text
    assert_valid_exposition(text)


def test_per_metric_bucket_mapping():
    instr = session()
    instr.observe("other.metric", 1.0)
    text = to_prometheus(instr, buckets={"engine.request_us": (5.0,)})
    assert 'repro_engine_request_us_bucket{le="5"} 3' in text
    # unmapped histogram stays a summary
    assert "# TYPE repro_other_metric summary" in text


def test_names_are_sanitized():
    instr = Instrumentation.started()
    instr.count("weird metric-name.v2!")
    text = to_prometheus(instr)
    assert "repro_weird_metric_name_v2__total 1" in text
    assert_valid_exposition(text)


@pytest.mark.parametrize("prefix,expected", [
    ("", "engine_cache_hits_total"),
    ("pim", "pim_engine_cache_hits_total"),
])
def test_prefix_is_configurable(prefix, expected):
    text = to_prometheus(session(), prefix=prefix)
    assert expected in text


def test_empty_and_noop_sessions_export_empty():
    assert to_prometheus(Instrumentation.started()) == ""
    assert to_prometheus(NOOP) == ""


def test_write_export_integration(tmp_path):
    path = tmp_path / "metrics.prom"
    text = write_export(session(), "prometheus", path)
    # exactly one trailing newline on disk — what a scraper expects
    assert path.read_text() == text + "\n"
    assert not text.endswith("\n")


def test_results_are_ignored_not_rejected():
    class FakeResult:
        def to_dict(self):
            return {}

        def summary(self):
            return ""

    text = to_prometheus(session(), results=[FakeResult()])
    assert "repro_engine_cache_hits_total 3" in text
