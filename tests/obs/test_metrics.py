"""Metrics registry unit tests."""

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


def test_counter_accumulates():
    c = Counter("hits")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert c.to_dict() == {"kind": "counter", "name": "hits", "value": 3.5}


def test_gauge_is_last_value_wins():
    g = Gauge("size")
    g.set(4)
    g.set(9)
    assert g.value == 9.0
    assert g.to_dict()["value"] == 9.0


def test_histogram_statistics():
    h = Histogram("lat")
    for v in (1, 2, 3, 4, 10):
        h.observe(v)
    assert h.count == 5
    assert h.total == 20.0
    assert h.mean == 4.0
    assert h.percentile(50) == 3
    assert h.percentile(100) == 10
    assert h.percentile(0) == 1
    d = h.to_dict()
    assert d["min"] == 1.0
    assert d["max"] == 10.0
    assert d["p95"] == 10


def test_empty_histogram_is_safe():
    h = Histogram("empty")
    assert h.count == 0
    assert h.mean == 0.0
    assert h.percentile(95) == 0.0
    assert "max" not in h.to_dict()


def test_histogram_timed_samples_keep_only_stamped_points():
    h = Histogram("hops")
    h.observe(5.0, ts=10.0)
    h.observe(7.0)  # no timestamp: stats only
    h.observe(3.0, ts=30.0)
    assert h.timed_samples() == [(10.0, 5.0), (30.0, 3.0)]
    assert h.count == 3


def test_registry_get_or_create_is_stable():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    assert len(reg) == 3
    kinds = [rec["kind"] for rec in reg.to_dicts()]
    assert kinds == ["counter", "gauge", "histogram"]


def test_null_registry_swallows_everything():
    reg = NullMetricsRegistry()
    reg.counter("x").inc(100)
    reg.gauge("y").set(5)
    reg.histogram("z").observe(1.0, ts=2.0)
    assert len(reg) == 0
    assert reg.to_dicts() == []
    # shared singletons, no per-call allocation
    assert reg.counter("x") is reg.counter("other")


def test_histogram_percentile_summaries():
    h = Histogram("lat")
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    d = h.to_dict()
    assert d["p50"] == 50.0
    assert d["p90"] == 90.0
    assert d["p95"] == 95.0
    assert d["p99"] == 99.0
    assert d["max"] == 100.0


def test_single_sample_percentiles_collapse():
    h = Histogram("one")
    h.observe(7.0)
    d = h.to_dict()
    assert d["p50"] == d["p90"] == d["p99"] == d["max"] == 7.0
