"""Instrumentation handle, active-session and resolve() tests."""

from repro.obs import NOOP, Instrumentation, active, instrumented, resolve


def test_noop_is_disabled_and_records_nothing():
    assert NOOP.enabled is False
    with NOOP.span("phase", k=1):
        NOOP.count("c")
        NOOP.gauge("g", 1.0)
        NOOP.observe("h", 2.0)
    assert len(NOOP.tracer) == 0
    assert len(NOOP.metrics) == 0


def test_started_session_records():
    instr = Instrumentation.started()
    assert instr.enabled
    with instr.span("phase"):
        instr.count("c", 2)
        instr.observe("h", 4.0)
    assert [s.name for s in instr.tracer.spans] == ["phase"]
    assert instr.metrics.counters["c"].value == 2.0
    # observe() stamps the tracer clock on the sample
    (ts, value), = instr.metrics.histograms["h"].timed_samples()
    assert value == 4.0
    assert ts > 0.0


def test_resolve_prefers_explicit_argument():
    mine = Instrumentation.started()
    assert resolve(mine) is mine
    assert resolve(None) is NOOP  # nothing active


def test_instrumented_installs_and_restores_active():
    assert active() is NOOP
    with instrumented() as session:
        assert active() is session
        assert resolve(None) is session
        # nesting restores the outer session, not NOOP
        inner = Instrumentation.started()
        with instrumented(inner):
            assert active() is inner
        assert active() is session
    assert active() is NOOP


def test_instrumented_restores_on_exception():
    try:
        with instrumented():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert active() is NOOP


def test_instrumented_nesting_resolves_to_inner_session():
    # regression guard for the pool inline path: a solve running inside
    # instrumented(inner) while an outer session is active must record
    # into the inner session, and the outer must come back on exit
    outer = Instrumentation.started()
    inner = Instrumentation.started()
    with instrumented(outer):
        with instrumented(inner):
            resolve(None).count("nested.counter", 1)
            with resolve(None).span("nested.phase"):
                pass
        assert active() is outer
        resolve(None).count("outer.counter", 1)
    assert inner.metrics.counters["nested.counter"].value == 1.0
    assert [s.name for s in inner.tracer.spans] == ["nested.phase"]
    assert "nested.counter" not in outer.metrics.counters
    assert outer.metrics.counters["outer.counter"].value == 1.0
    assert active() is NOOP


def test_instrumented_nesting_restores_outer_on_inner_exception():
    outer = Instrumentation.started()
    with instrumented(outer):
        try:
            with instrumented(Instrumentation.started()):
                raise RuntimeError("inner boom")
        except RuntimeError:
            pass
        assert active() is outer
    assert active() is NOOP


def test_nested_sessions_keep_separate_provenance_stores():
    from repro.obs import NULL_PROVENANCE_STORE

    assert NOOP.provenance is NULL_PROVENANCE_STORE
    outer = Instrumentation.started(provenance=True)
    inner = Instrumentation.started()  # recording, provenance off
    with instrumented(outer):
        assert resolve(None).provenance.recording is True
        with instrumented(inner):
            assert resolve(None).provenance.recording is False
            assert resolve(None).provenance is not outer.provenance
        assert resolve(None).provenance is outer.provenance
