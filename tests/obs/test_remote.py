"""Cross-process telemetry: snapshots pickle cleanly and merge faithfully."""

import os
import pickle

from repro.obs import (
    NOOP,
    FlightRecorder,
    Instrumentation,
    TelemetrySnapshot,
    chrome_trace,
    merge_snapshot,
    snapshot,
)


def worker_session():
    """A session shaped like what a pool worker records for one solve."""
    instr = Instrumentation.started()
    with instr.span("engine.request", algorithm="GOMCDS"):
        with instr.span("scheduler.gomcds"):
            instr.count("engine.cache.misses")
            instr.count("gomcds.relocations", 4)
        instr.gauge("gomcds.dp_cells", 640)
        instr.observe("sim.window_hops", 7.0)
    return instr


def test_snapshot_is_picklable_and_flat():
    snap = snapshot(worker_session(), label="bench1", events=())
    clone = pickle.loads(pickle.dumps(snap))
    assert clone == snap
    assert clone.pid == os.getpid()
    assert clone.label == "bench1"
    assert clone.n_spans == 2
    names = [s[0] for s in clone.spans]
    assert names == ["engine.request", "scheduler.gomcds"]
    assert dict(clone.counters)["gomcds.relocations"] == 4.0
    assert clone.to_dict()["n_spans"] == 2


def test_merge_attaches_worker_attribution():
    parent = Instrumentation.started()
    snap = snapshot(worker_session(), events=())
    merged = merge_snapshot(parent, snap, worker_id=3)
    assert merged == 2
    for span in parent.tracer.spans:
        assert span.attrs["worker"] == 3
        assert span.attrs["worker_pid"] == snap.pid
    # worker-local nesting depth survives the merge
    assert [s.depth for s in parent.tracer.spans] == [0, 1]


def test_merge_accumulates_counters_and_histograms():
    parent = Instrumentation.started()
    parent.count("engine.cache.misses", 2)
    snap = snapshot(worker_session(), events=())
    merge_snapshot(parent, snap)
    merge_snapshot(parent, snap)
    assert parent.metrics.counters["engine.cache.misses"].value == 4.0
    assert parent.metrics.gauges["gomcds.dp_cells"].value == 640.0
    hist = parent.metrics.histograms["sim.window_hops"]
    assert hist.samples == [7.0, 7.0]


def test_merge_shifts_worker_spans_onto_parent_clock():
    parent = Instrumentation.started()
    worker = worker_session()  # started after the parent -> offset > 0
    merge_snapshot(parent, snapshot(worker, events=()))
    outer = parent.tracer.spans[0]
    # the worker session started strictly after the parent session, so
    # its t0 maps to a positive offset on the parent timeline
    assert outer.start_us >= 0.0


def test_merge_clamps_negative_offsets():
    worker = worker_session()
    parent = Instrumentation.started()  # started *after* the worker
    raw_start = worker.tracer.spans[0].start_us
    merge_snapshot(parent, snapshot(worker, events=()))
    assert parent.tracer.spans[0].start_us == raw_start


def test_merge_into_noop_is_dropped():
    snap = snapshot(worker_session(), events=())
    assert merge_snapshot(NOOP, snap) == 0
    assert NOOP.tracer.spans == []


def test_merge_adopts_events_with_attribution():
    parent = Instrumentation.started()
    ring = FlightRecorder()
    snap = snapshot(
        worker_session(),
        events=[{"seq": 7, "kind": "cache.miss", "key": "abc"}],
    )
    merge_snapshot(parent, snap, worker_id=2, recorder=ring)
    (event,) = ring.events()
    assert event["kind"] == "cache.miss"
    assert event["worker"] == 2
    assert event["worker_pid"] == snap.pid
    assert event["seq"] == 0  # re-stamped locally


def test_merged_spans_render_as_worker_lanes():
    parent = Instrumentation.started()
    with parent.span("engine.batch"):
        pass
    snap = snapshot(worker_session(), events=())
    merge_snapshot(parent, snap, worker_id=1)
    trace = chrome_trace(parent)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    lanes = {e["name"]: e["tid"] for e in spans}
    assert lanes["engine.batch"] == 0
    assert lanes["engine.request"] == lanes["scheduler.gomcds"] == 1
    names = [
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert "main" in names
    assert f"worker 1 (pid {snap.pid})" in names


def test_snapshot_defaults_to_global_ring_events():
    from repro.obs import flight_recorder, record_event

    watermark = flight_recorder().next_seq
    record_event("test.remote", tag="x")
    snap = snapshot(Instrumentation.started())
    tags = [e.get("tag") for e in snap.events if e["kind"] == "test.remote"]
    assert "x" in tags
    # explicit slice keeps only this task's events
    sliced = snapshot(
        Instrumentation.started(),
        events=flight_recorder().events_since(watermark),
    )
    assert all(e["seq"] >= watermark for e in sliced.events)


def test_empty_snapshot_merges_cleanly():
    parent = Instrumentation.started()
    empty = TelemetrySnapshot(pid=123, anchor_unix_us=0.0)
    assert merge_snapshot(parent, empty) == 0
    assert parent.tracer.spans == []
