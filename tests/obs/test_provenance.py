"""Decision provenance: logs, attribution bit-identity, stores, export."""

import json
import pickle

import numpy as np
import pytest

from repro import schedule
from repro.core import CostModel, evaluate_schedule
from repro.core.reschedule import reschedule_around_faults, reschedule_from_window
from repro.engine import ScheduleRequest, schedule_many
from repro.faults import FaultPlan, NodeFault
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.obs import (
    ACTION_NAMES,
    NOOP,
    DecisionLog,
    Instrumentation,
    NullProvenanceStore,
    ProvenanceStore,
    render_summary,
    to_jsonl,
)
from repro.verify import interpret_schedule
from repro.workloads import benchmark as make_benchmark

TOPO = Mesh2D(2, 4)
ALGORITHMS = ("SCDS", "LOMCDS", "GOMCDS")


def instance(bench=1, size=8, seed=1998):
    workload = make_benchmark(bench, size, TOPO, seed=seed)
    return workload.reference_tensor(), CostModel(workload.topology)


def solve_logged(tensor, model, algorithm, capacity=None, kernel="numpy"):
    instr = Instrumentation.started(provenance=True)
    sched = schedule(
        tensor,
        model,
        algorithm=algorithm,
        capacity=capacity,
        kernel=kernel,
        instrument=instr,
    )
    assert len(instr.provenance) == 1
    return sched, instr.provenance.logs[0]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", ("numpy", "python"))
@pytest.mark.parametrize("constrained", (False, True))
def test_attribution_reconstructs_breakdown_bit_identically(
    algorithm, kernel, constrained
):
    tensor, model = instance()
    capacity = (
        CapacityPlan.paper_rule(tensor.n_data, TOPO.n_procs)
        if constrained
        else None
    )
    sched, log = solve_logged(tensor, model, algorithm, capacity, kernel)
    truth = evaluate_schedule(sched, tensor, model)
    claimed = log.attribution()
    # exact float equality: same arrays, same reduction order, same bits
    assert claimed.reference_cost == truth.reference_cost
    assert claimed.movement_cost == truth.movement_cost
    assert claimed.total == truth.total
    assert np.array_equal(log.centers, sched.centers)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_provenance_is_observational(algorithm):
    tensor, model = instance(bench=2)
    capacity = CapacityPlan.paper_rule(tensor.n_data, TOPO.n_procs)
    dark = schedule(tensor, model, algorithm=algorithm, capacity=capacity)
    lit, _ = solve_logged(tensor, model, algorithm, capacity)
    assert np.array_equal(dark.centers, lit.centers)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_kernel_logs_bit_identical(algorithm):
    tensor, model = instance(bench=3)
    capacity = CapacityPlan.paper_rule(tensor.n_data, TOPO.n_procs)
    _, fast = solve_logged(tensor, model, algorithm, capacity, "numpy")
    _, slow = solve_logged(tensor, model, algorithm, capacity, "python")
    for name in (
        "centers", "actions", "ref_costs", "move_hops", "volumes",
        "n_candidates", "runner_up", "runner_up_delta", "tie", "forced",
    ):
        assert np.array_equal(
            getattr(fast, name), getattr(slow, name)
        ), f"{algorithm}: {name} diverged between kernels"


def test_live_ranges_match_abstract_interpreter():
    tensor, model = instance()
    sched, log = solve_logged(tensor, model, "GOMCDS")
    prediction, diags = interpret_schedule(sched, tensor, model)
    assert not diags
    assert log.live_ranges() == prediction.live_ranges


def test_reschedulers_record_attribution_exactly():
    tensor, model = instance()
    capacity = CapacityPlan.paper_rule(tensor.n_data, TOPO.n_procs)
    plan = FaultPlan(node_faults=(NodeFault(pid=5, start=2),))

    instr = Instrumentation.started(provenance=True)
    around = reschedule_around_faults(
        tensor, model, plan, capacity, instrument=instr
    )
    base = schedule(tensor, model, capacity=capacity)
    suffix = reschedule_from_window(
        base, tensor, model, plan, from_window=2,
        capacity=capacity, instrument=instr,
    )
    assert [log.method for log in instr.provenance.logs] == [
        "GOMCDS+faults", "GOMCDS+recovery",
    ]
    for sched, log in zip((around, suffix), instr.provenance.logs):
        claimed = log.attribution()
        truth = evaluate_schedule(sched, tensor, model)
        assert claimed.total == truth.total
        assert claimed.reference_cost == truth.reference_cost
        assert claimed.movement_cost == truth.movement_cost


def test_actions_and_views_are_consistent():
    tensor, model = instance(bench=2)
    capacity = CapacityPlan.paper_rule(tensor.n_data, TOPO.n_procs)
    _, log = solve_logged(tensor, model, "LOMCDS", capacity)
    counts = log.action_counts()
    assert set(counts) == set(ACTION_NAMES)
    assert sum(counts.values()) == log.n_data * log.n_windows
    # window 0 is always a placement (possibly forced into a detour)
    assert counts["place"] + counts["detour"] >= log.n_data
    cell = log.decision(0, 0)
    assert cell["type"] == "decision"
    assert cell["action"] in ACTION_NAMES
    assert cell["move_cost"] == 0.0  # nothing moves into window 0
    segments = log.timeline(0)
    assert segments[0]["first_window"] == 0
    assert segments[-1]["last_window"] == log.n_windows - 1
    records = list(log.to_records(data=[0], windows=[0, 1]))
    assert records[0]["type"] == "provenance"
    assert len(records) == 1 + 2


def test_decision_log_pickles():
    tensor, model = instance()
    _, log = solve_logged(tensor, model, "GOMCDS")
    clone = pickle.loads(pickle.dumps(log))
    assert isinstance(clone, DecisionLog)
    assert np.array_equal(clone.centers, log.centers)
    assert clone.attribution() == log.attribution()


def test_stores_gate_recording():
    null = NullProvenanceStore()
    null.add(object())
    assert len(null) == 0 and null.recording is False
    assert NOOP.provenance.recording is False
    off = Instrumentation.started()  # recording session, provenance off
    assert off.provenance.recording is False
    tensor, model = instance()
    schedule(tensor, model, instrument=off)
    assert len(off.provenance) == 0
    store = ProvenanceStore(recording=True)
    assert store.recording and len(store) == 0


def test_exporters_surface_provenance():
    tensor, model = instance()
    instr = Instrumentation.started(provenance=True)
    schedule(tensor, model, algorithm="GOMCDS", instrument=instr)
    text = render_summary(instr)
    assert "Decision provenance:" in text
    assert "GOMCDS" in text
    records = [json.loads(line) for line in to_jsonl(instr).splitlines()]
    headers = [r for r in records if r["type"] == "provenance"]
    assert len(headers) == 1
    assert headers[0]["attributed_total"] == pytest.approx(
        headers[0]["attributed_reference_cost"]
        + headers[0]["attributed_movement_cost"]
    )


def test_schedule_many_inline_labels_logs():
    tensor, model = instance()
    instr = Instrumentation.started(provenance=True)
    requests = [
        ScheduleRequest(tensor, model, algorithm="gomcds", label="first"),
        ScheduleRequest(tensor, model, algorithm="scds", label="second"),
    ]
    results = schedule_many(requests, instrument=instr)
    assert len(results) == 2
    labels = {log.label for log in instr.provenance.logs}
    assert labels == {"first", "second"}


def test_schedule_many_pool_harvests_decisions():
    tensor, model = instance()
    instr = Instrumentation.started(provenance=True)
    requests = [
        ScheduleRequest(tensor, model, algorithm="gomcds", label="pooled-a"),
        ScheduleRequest(tensor, model, algorithm="lomcds", label="pooled-b"),
    ]
    results = schedule_many(requests, workers=2, instrument=instr)
    assert len(results) == 2
    labels = {log.label for log in instr.provenance.logs}
    assert labels == {"pooled-a", "pooled-b"}
    for log, request in zip(
        sorted(instr.provenance.logs, key=lambda lg: lg.label), requests
    ):
        truth = evaluate_schedule(
            results[requests.index(request)], tensor, model
        )
        assert log.attribution().total == truth.total
