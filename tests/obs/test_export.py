"""Exporter tests: summary, JSON-lines and Chrome trace-event output."""

import json

import numpy as np
import pytest

from repro.obs import (
    EXPORT_FORMATS,
    Instrumentation,
    NOOP,
    chrome_trace,
    render_chrome,
    render_summary,
    to_jsonl,
    write_export,
)


class FakeResult:
    """Minimal object implementing the unified result protocol."""

    def to_dict(self):
        return {"kind": "fake", "total": np.float64(7.0)}

    def summary(self):
        return "fake: total 7"


def session():
    instr = Instrumentation.started()
    with instr.span("outer", workload="lu"):
        with instr.span("inner"):
            instr.count("events", 3)
        instr.gauge("size", 16)
        instr.observe("hops", 5.0)
        instr.observe("hops", 9.0)
    return instr


def test_render_summary_contains_spans_metrics_results():
    text = render_summary(session(), results=[FakeResult()])
    assert "outer" in text and "inner" in text
    assert "workload=lu" in text
    assert "events (counter): 3" in text
    assert "hops (histogram)" in text
    assert "fake: total 7" in text


def test_render_summary_empty_session():
    assert "no spans" in render_summary(Instrumentation.started())


def test_jsonl_lines_are_valid_and_typed():
    text = to_jsonl(session(), results=[FakeResult()])
    records = [json.loads(line) for line in text.splitlines()]
    types = {rec["type"] for rec in records}
    assert {"span", "counter", "gauge", "histogram", "result"} <= types
    result = next(r for r in records if r["type"] == "result")
    assert result["total"] == 7.0  # numpy scalar sanitized
    assert result["summary"] == "fake: total 7"
    span = next(r for r in records if r["type"] == "span")
    assert {"name", "start_us", "duration_us", "depth", "attrs"} <= set(span)


def test_chrome_trace_structure():
    trace = chrome_trace(session(), results=[FakeResult()])
    # round-trips through JSON
    trace = json.loads(json.dumps(trace))
    events = trace["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "C", "i"} <= phases
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"outer", "inner"}
    for e in spans:
        assert e["ts"] >= 0 and e["dur"] >= 0
    counters = [e for e in events if e["ph"] == "C"]
    assert [e["args"]["value"] for e in counters] == [5.0, 9.0]
    assert trace["otherData"]["counters"]["events"] == 3.0
    assert trace["otherData"]["gauges"]["size"] == 16.0


def test_render_chrome_is_parseable_json():
    assert json.loads(render_chrome(session()))["displayTimeUnit"] == "ms"


def test_write_export_to_file(tmp_path):
    path = tmp_path / "out.jsonl"
    text = write_export(session(), "jsonl", path)
    assert path.read_text() == text + "\n"


def test_write_export_unknown_format_raises():
    with pytest.raises(ValueError, match="unknown export format"):
        write_export(session(), "xml", None)
    assert set(EXPORT_FORMATS) == {"summary", "jsonl", "chrome", "prometheus"}


def test_noop_session_exports_cleanly():
    # NOOP records nothing but still exports without error
    assert json.loads(render_chrome(NOOP))["traceEvents"][0]["ph"] == "M"
    assert to_jsonl(NOOP) == ""


def spatial_session():
    """A session holding one hand-built spatial trace."""
    from repro.grid import Mesh2D
    from repro.obs import SpatialRecorder

    instr = Instrumentation.started(spatial=True)
    rec = SpatialRecorder(Mesh2D(2, 2), n_windows=2, label="demo")
    rec.record(0, [(0, 1)], 4.0)
    rec.record(1, [(0, 2), (2, 3)], 2.0)
    rec.close_window(0, 10.0, np.array([0, 1]), np.ones(2))
    rec.close_window(1, 20.0, np.array([1, 1]), np.ones(2))
    instr.spatial.add(rec.finish())
    return instr


def test_summary_renders_spatial_section():
    text = render_summary(spatial_session())
    assert "Spatial telemetry:" in text
    assert "spatial[demo]" in text
    assert "processor traffic (send+recv):" in text
    assert "peak storage:" in text
    assert "link load:" in text
    assert "congestion[demo]" in text


def test_jsonl_emits_spatial_records_with_analytics():
    text = to_jsonl(spatial_session())
    records = [json.loads(line) for line in text.splitlines()]
    (spatial,) = [r for r in records if r["type"] == "spatial"]
    assert spatial["label"] == "demo"
    assert spatial["link_totals"] == {
        "0,0->0,1": 4.0, "0,0->1,0": 2.0, "1,0->1,1": 2.0,
    }
    assert spatial["analytics"]["kind"] == "spatial_report"
    assert spatial["analytics"]["max_link_load"] == 4.0


def test_chrome_trace_emits_per_link_counter_series():
    trace = json.loads(render_chrome(spatial_session()))
    spatial = [
        e for e in trace["traceEvents"] if e["cat"] == "repro.spatial"
    ]
    # 3 loaded links x 2 windows
    assert len(spatial) == 6
    assert all(e["ph"] == "C" for e in spatial)
    series = {e["name"] for e in spatial}
    assert "link 0,0->0,1 [demo]" in series
    by_ts = sorted(
        (e["ts"], e["args"]["volume"])
        for e in spatial
        if e["name"] == "link 0,0->0,1 [demo]"
    )
    assert by_ts == [(10.0, 4.0), (20.0, 0.0)]
    assert "spatial_links_not_exported" not in trace["otherData"]


def test_chrome_trace_caps_link_series():
    from repro.grid import Mesh2D
    from repro.obs import SpatialRecorder
    from repro.obs.export import CHROME_LINK_SERIES_CAP

    instr = Instrumentation.started(spatial=True)
    rec = SpatialRecorder(Mesh2D(4, 4), n_windows=1, label="big")
    for link in rec.links:  # load all 48 wires
        rec.record(0, [link], 1.0)
    rec.close_window(0, 1.0, np.zeros(1, dtype=int), np.zeros(1))
    instr.spatial.add(rec.finish())
    trace = chrome_trace(instr)
    spatial = [
        e for e in trace["traceEvents"] if e["cat"] == "repro.spatial"
    ]
    assert len(spatial) == CHROME_LINK_SERIES_CAP
    assert trace["otherData"]["spatial_links_not_exported"] == (
        48 - CHROME_LINK_SERIES_CAP
    )


def _worker_session(order):
    """A session whose worker spans arrive in the given (wid, pid) order."""
    instr = Instrumentation.started()
    with instr.span("main.phase"):
        pass
    for wid, pid in order:
        with instr.span("engine.request", worker=wid, worker_pid=pid):
            pass
    return instr


def test_chrome_trace_worker_lanes_are_deterministic():
    # same workers, different harvest arrival order -> identical lanes
    arrival_a = [(2, 222), (1, 111), (3, 333)]
    arrival_b = [(3, 333), (1, 111), (2, 222)]

    def lane_map(instr):
        events = chrome_trace(instr)["traceEvents"]
        lanes = {}
        for e in events:
            if e["ph"] == "X" and "worker" in e["args"]:
                lanes[e["args"]["worker"]] = e["tid"]
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        return lanes, names

    lanes_a, names_a = lane_map(_worker_session(arrival_a))
    lanes_b, names_b = lane_map(_worker_session(arrival_b))
    assert lanes_a == lanes_b == {1: 1, 2: 2, 3: 3}
    assert names_a == names_b
    assert names_a[1] == "worker 1 (pid 111)"
    # the main lane stays tid 0
    main = next(
        e
        for e in chrome_trace(_worker_session(arrival_a))["traceEvents"]
        if e["ph"] == "X" and e["name"] == "main.phase"
    )
    assert main["tid"] == 0


def test_summary_and_jsonl_surface_decision_logs():
    from repro import schedule
    from repro.core import CostModel
    from repro.grid import Mesh2D
    from repro.workloads import benchmark as make_benchmark

    workload = make_benchmark(1, 8, Mesh2D(2, 4), seed=1998)
    tensor = workload.reference_tensor()
    instr = Instrumentation.started(provenance=True)
    schedule(tensor, CostModel(workload.topology), instrument=instr)
    assert "Decision provenance:" in render_summary(instr)
    records = [json.loads(line) for line in to_jsonl(instr).splitlines()]
    (header,) = [r for r in records if r["type"] == "provenance"]
    assert header["method"] == "GOMCDS"
    assert header["n_data"] == tensor.n_data
