"""Exporter tests: summary, JSON-lines and Chrome trace-event output."""

import json

import numpy as np
import pytest

from repro.obs import (
    EXPORT_FORMATS,
    Instrumentation,
    NOOP,
    chrome_trace,
    render_chrome,
    render_summary,
    to_jsonl,
    write_export,
)


class FakeResult:
    """Minimal object implementing the unified result protocol."""

    def to_dict(self):
        return {"kind": "fake", "total": np.float64(7.0)}

    def summary(self):
        return "fake: total 7"


def session():
    instr = Instrumentation.started()
    with instr.span("outer", workload="lu"):
        with instr.span("inner"):
            instr.count("events", 3)
        instr.gauge("size", 16)
        instr.observe("hops", 5.0)
        instr.observe("hops", 9.0)
    return instr


def test_render_summary_contains_spans_metrics_results():
    text = render_summary(session(), results=[FakeResult()])
    assert "outer" in text and "inner" in text
    assert "workload=lu" in text
    assert "events (counter): 3" in text
    assert "hops (histogram)" in text
    assert "fake: total 7" in text


def test_render_summary_empty_session():
    assert "no spans" in render_summary(Instrumentation.started())


def test_jsonl_lines_are_valid_and_typed():
    text = to_jsonl(session(), results=[FakeResult()])
    records = [json.loads(line) for line in text.splitlines()]
    types = {rec["type"] for rec in records}
    assert {"span", "counter", "gauge", "histogram", "result"} <= types
    result = next(r for r in records if r["type"] == "result")
    assert result["total"] == 7.0  # numpy scalar sanitized
    assert result["summary"] == "fake: total 7"
    span = next(r for r in records if r["type"] == "span")
    assert {"name", "start_us", "duration_us", "depth", "attrs"} <= set(span)


def test_chrome_trace_structure():
    trace = chrome_trace(session(), results=[FakeResult()])
    # round-trips through JSON
    trace = json.loads(json.dumps(trace))
    events = trace["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "C", "i"} <= phases
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"outer", "inner"}
    for e in spans:
        assert e["ts"] >= 0 and e["dur"] >= 0
    counters = [e for e in events if e["ph"] == "C"]
    assert [e["args"]["value"] for e in counters] == [5.0, 9.0]
    assert trace["otherData"]["counters"]["events"] == 3.0
    assert trace["otherData"]["gauges"]["size"] == 16.0


def test_render_chrome_is_parseable_json():
    assert json.loads(render_chrome(session()))["displayTimeUnit"] == "ms"


def test_write_export_to_file(tmp_path):
    path = tmp_path / "out.jsonl"
    text = write_export(session(), "jsonl", path)
    assert path.read_text() == text + "\n"


def test_write_export_unknown_format_raises():
    with pytest.raises(ValueError, match="unknown export format"):
        write_export(session(), "xml", None)
    assert set(EXPORT_FORMATS) == {"summary", "jsonl", "chrome"}


def test_noop_session_exports_cleanly():
    # NOOP records nothing but still exports without error
    assert json.loads(render_chrome(NOOP))["traceEvents"][0]["ph"] == "M"
    assert to_jsonl(NOOP) == ""
