"""Span tracer unit tests."""

import pytest

from repro.obs import NULL_SPAN, NullTracer, Tracer


def test_spans_record_in_preorder_with_depth():
    t = Tracer()
    with t.span("outer", key="v"):
        with t.span("inner"):
            pass
        with t.span("sibling"):
            pass
    names = [(s.name, s.depth) for s in t.spans]
    assert names == [("outer", 0), ("inner", 1), ("sibling", 1)]
    assert len(t) == 3


def test_durations_are_positive_and_nested():
    t = Tracer()
    with t.span("outer") as outer:
        with t.span("inner") as inner:
            pass
    assert outer.duration_us >= inner.duration_us >= 0.0
    assert inner.start_us >= outer.start_us


def test_set_attaches_attributes_mid_span():
    t = Tracer()
    with t.span("phase", a=1) as span:
        span.set(b=2, a=3)
    assert span.attrs == {"a": 3, "b": 2}
    d = span.to_dict()
    assert d["name"] == "phase"
    assert d["attrs"] == {"a": 3, "b": 2}
    assert d["depth"] == 0


def test_exception_marks_span_as_error():
    t = Tracer()
    with pytest.raises(RuntimeError):
        with t.span("doomed"):
            raise RuntimeError("boom")
    assert t.spans[0].attrs["error"] is True
    assert t.depth == 0  # stack unwound


def test_mis_nested_exit_does_not_corrupt_stack():
    t = Tracer()
    outer = t.span("outer")
    inner = t.span("inner")
    outer.__enter__()
    inner.__enter__()
    # exit outer first: inner is popped along the way
    outer.__exit__(None, None, None)
    assert t.depth == 0
    inner.__exit__(None, None, None)
    assert t.depth == 0


def test_now_us_is_monotonic():
    t = Tracer()
    a = t.now_us()
    b = t.now_us()
    assert b >= a >= 0.0


def test_null_tracer_records_nothing():
    t = NullTracer()
    span = t.span("anything", k=1)
    assert span is NULL_SPAN
    with span as s:
        assert s.set(x=1) is s
    assert len(t) == 0
    assert t.spans == []
    assert t.now_us() == 0.0
