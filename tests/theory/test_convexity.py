"""Separable-convexity checks of the cost model (basis of Lemma 1 / Thm 2)."""

import numpy as np
import pytest

from repro.core import CostModel
from repro.grid import Mesh1D, Torus2D
from repro.theory import (
    is_convex_sequence,
    is_separable_convex,
    separable_components,
)


class TestConvexSequence:
    def test_convex_accepted(self):
        assert is_convex_sequence(np.array([3, 1, 0, 1, 3]))
        assert is_convex_sequence(np.array([0, 0, 0]))
        assert is_convex_sequence(np.array([5.0]))

    def test_concave_rejected(self):
        assert not is_convex_sequence(np.array([0, 3, 0]))


class TestCostRowsAreSeparableConvex:
    def test_1d_random(self):
        rng = np.random.default_rng(91)
        topo = Mesh1D(9)
        model = CostModel(topo)
        for _ in range(50):
            counts = rng.integers(0, 6, size=9)
            row = model.placement_costs(counts)[0]
            assert is_separable_convex(row, topo)

    def test_2d_random(self, mesh44):
        rng = np.random.default_rng(93)
        model = CostModel(mesh44)
        for _ in range(50):
            counts = rng.integers(0, 6, size=16)
            row = model.placement_costs(counts)[0]
            assert is_separable_convex(row, mesh44)

    def test_decomposition_exact(self, mesh44):
        model = CostModel(mesh44)
        counts = np.zeros(16)
        counts[mesh44.pid(1, 2)] = 3
        counts[mesh44.pid(3, 0)] = 1
        row = model.placement_costs(counts)[0]
        f, g, residual = separable_components(row, mesh44)
        assert residual == 0.0
        grid = row.reshape(4, 4)
        assert np.allclose(grid, f[:, None] + g[None, :])

    def test_torus_rows_are_not_separable_convex(self):
        """The wrap-around metric breaks convexity — which is why the
        paper's monotonicity theorems are stated for meshes, not tori."""
        topo = Torus2D(5, 5)
        model = CostModel(topo)
        counts = np.zeros(25)
        counts[0] = 1
        row = model.placement_costs(counts)[0]
        # the first grid row of the torus metric is 0,1,2,2,1: not convex
        assert not is_convex_sequence(row.reshape(5, 5)[0])

    def test_non_mesh_rejected(self):
        with pytest.raises(TypeError):
            is_separable_convex(np.zeros(4), object())
