"""Theorem 3 checks: pairwise grouping cannot help at unit volume."""

import numpy as np

from repro.core import CostModel
from repro.grid import Mesh1D
from repro.theory import (
    grouped_cost,
    separate_cost,
    theorem3_gap,
    theorem3_gap_heavy_move,
    theorem3_holds,
)


def rows(counts0, counts1, topo):
    model = CostModel(topo)
    return (
        model.placement_costs(np.asarray(counts0))[0],
        model.placement_costs(np.asarray(counts1))[0],
    )


class TestTheorem3:
    def test_disjoint_loci_tie(self):
        topo = Mesh1D(5)
        costs0, costs1 = rows([1, 0, 0, 0, 0], [0, 0, 0, 0, 1], topo)
        # separate: 0 + 0 + 4 move; grouped: min |c| + |c-4| = 4: exact tie
        assert separate_cost(costs0, costs1, topo) == 4.0
        assert grouped_cost(costs0, costs1) == 4.0
        assert theorem3_gap(costs0, costs1, topo) == 0.0

    def test_heavy_first_window(self):
        topo = Mesh1D(5)
        costs0, costs1 = rows([5, 0, 0, 0, 0], [0, 0, 0, 0, 1], topo)
        assert theorem3_holds(costs0, costs1, topo)

    def test_random_1d(self):
        rng = np.random.default_rng(31)
        topo = Mesh1D(8)
        for _ in range(150):
            counts0 = rng.integers(0, 5, size=8)
            counts1 = rng.integers(0, 5, size=8)
            if counts0.sum() == 0 or counts1.sum() == 0:
                continue
            costs0, costs1 = rows(counts0, counts1, topo)
            assert theorem3_holds(costs0, costs1, topo)

    def test_random_2d(self, mesh44):
        rng = np.random.default_rng(37)
        for _ in range(150):
            counts0 = rng.integers(0, 4, size=16)
            counts1 = rng.integers(0, 4, size=16)
            if counts0.sum() == 0 or counts1.sum() == 0:
                continue
            costs0, costs1 = rows(counts0, counts1, mesh44)
            assert theorem3_holds(costs0, costs1, mesh44)

    def test_gap_scales_with_uniform_volume(self):
        topo = Mesh1D(6)
        costs0, costs1 = rows([3, 0, 0, 1, 0, 0], [0, 0, 0, 0, 2, 1], topo)
        g1 = theorem3_gap(costs0, costs1, topo, volume=1.0)
        g5 = theorem3_gap(costs0, costs1, topo, volume=5.0)
        assert g5 == 5.0 * g1


class TestHeavyMoveRegime:
    def test_grouping_wins_when_moves_ship_bulk(self):
        """With relocation paying a large volume, grouping strictly helps —
        the regime motivating Algorithm 3's multi-window grouping."""
        topo = Mesh1D(5)
        costs0, costs1 = rows([1, 0, 0, 0, 0], [0, 0, 0, 0, 1], topo)
        gap = theorem3_gap_heavy_move(costs0, costs1, topo, move_volume=10.0)
        assert gap < 0  # grouped (4) < separate (0 + 0 + 40)

    def test_unit_move_volume_recovers_theorem(self):
        topo = Mesh1D(5)
        costs0, costs1 = rows([2, 1, 0, 0, 0], [0, 0, 0, 1, 2], topo)
        assert theorem3_gap_heavy_move(costs0, costs1, topo, move_volume=1.0) >= 0
