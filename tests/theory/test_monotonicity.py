"""Lemma 1 / Theorem 2 checks on crafted and random instances."""

import numpy as np
import pytest

from repro.core import CostModel
from repro.grid import Mesh1D
from repro.theory import (
    closest_center_pair,
    is_strictly_increasing,
    lemma1_holds,
    lemma1_instance,
    local_optimal_centers,
    theorem2_holds,
    theorem2_instance,
)


def cost_row_1d(counts):
    """Unit-volume placement costs on a line from a reference-count row."""
    n = len(counts)
    model = CostModel(Mesh1D(n))
    return model.placement_costs(np.asarray(counts))[0]


class TestHelpers:
    def test_local_optimal_centers_with_ties(self):
        row = np.array([3.0, 1.0, 1.0, 5.0])
        assert local_optimal_centers(row).tolist() == [1, 2]

    def test_closest_pair_picks_nearest(self):
        topo = Mesh1D(6)
        costs0 = cost_row_1d([0, 5, 0, 0, 0, 0])  # optimum {1}
        costs1 = cost_row_1d([0, 0, 0, 0, 5, 0])  # optimum {4}
        assert closest_center_pair(costs0, costs1, topo) == (1, 4)

    def test_closest_pair_uses_plateau_edge(self):
        topo = Mesh1D(6)
        # refs at 0 and 2 -> optimum plateau {0, 1, 2}
        costs0 = cost_row_1d([1, 0, 1, 0, 0, 0])
        costs1 = cost_row_1d([0, 0, 0, 0, 0, 5])
        p1, p2 = closest_center_pair(costs0, costs1, topo)
        assert (p1, p2) == (2, 5)  # nearest edge of the plateau

    def test_is_strictly_increasing(self):
        assert is_strictly_increasing(np.array([1, 2, 5]))
        assert not is_strictly_increasing(np.array([1, 1, 2]))
        assert is_strictly_increasing(np.array([7]))


class TestLemma1:
    def test_crafted_instance(self):
        costs0 = cost_row_1d([4, 1, 0, 0, 0, 0])
        costs1 = cost_row_1d([0, 0, 0, 0, 0, 3])
        topo = Mesh1D(6)
        p1, p2 = closest_center_pair(costs0, costs1, topo)
        assert lemma1_holds(costs0, p1, p2)

    def test_trivial_when_centers_coincide(self):
        costs0 = cost_row_1d([0, 3, 0])
        assert lemma1_holds(costs0, 1, 1)

    def test_random_instances(self):
        rng = np.random.default_rng(23)
        topo = Mesh1D(9)
        for _ in range(100):
            counts0 = rng.integers(0, 5, size=9)
            counts1 = rng.integers(0, 5, size=9)
            if counts0.sum() == 0 or counts1.sum() == 0:
                continue
            costs0 = cost_row_1d(counts0)
            costs1 = cost_row_1d(counts1)
            assert lemma1_instance(costs0, costs1, topo)

    def test_violated_away_from_closest_pair(self):
        # the strictness is specifically about the *closest* pair: walking
        # from the far edge of a plateau the profile is initially flat
        costs0 = cost_row_1d([1, 0, 1, 0, 0, 0])  # plateau {0,1,2}
        assert not lemma1_holds(costs0, 0, 5)


class TestTheorem2:
    def test_crafted_instance(self, mesh44):
        model = CostModel(mesh44)
        counts0 = np.zeros(16)
        counts0[mesh44.pid(0, 0)] = 4
        counts1 = np.zeros(16)
        counts1[mesh44.pid(3, 3)] = 4
        costs0 = model.placement_costs(counts0)[0]
        costs1 = model.placement_costs(counts1)[0]
        assert theorem2_instance(costs0, costs1, mesh44)

    def test_random_instances(self, mesh44):
        rng = np.random.default_rng(29)
        model = CostModel(mesh44)
        for _ in range(100):
            counts0 = rng.integers(0, 4, size=16)
            counts1 = rng.integers(0, 4, size=16)
            if counts0.sum() == 0 or counts1.sum() == 0:
                continue
            costs0 = model.placement_costs(counts0)[0]
            costs1 = model.placement_costs(counts1)[0]
            assert theorem2_instance(costs0, costs1, mesh44)

    def test_rejects_non_mesh(self):
        with pytest.raises(TypeError):
            theorem2_holds(np.zeros(8), 0, 1, Mesh1D(8))

    def test_detects_violation_on_noncost_profile(self, mesh44):
        # an arbitrary (non-convex) profile should fail the check, proving
        # the checker is not vacuous
        fake = np.zeros(16)
        fake[mesh44.pid(1, 1)] = -5  # a dip off the straight path
        assert not theorem2_holds(
            fake, mesh44.pid(0, 0), mesh44.pid(3, 3), mesh44
        )
