"""Scheduler/replay timing harness + no-op instrumentation overhead gate.

Run as a script (CI's perf-smoke job does)::

    python benchmarks/bench_profile.py --out BENCH_smoke.json \
        --size 8 --max-overhead-pct 5 \
        --batch-telemetry --max-telemetry-overhead-pct 75 \
        --batch-trace-out batch_trace.json --batch-prom-out batch.prom

Thin CLI over :func:`repro.analysis.regression.run_bench_suite`, which
times SCDS/LOMCDS/GOMCDS scheduling and the hop-level replay on each
paper benchmark and measures the cost of the *disabled* observability
probes that ``replay_schedule`` executes per window.  The gate compares
the probe *median* against the replay *median* — medians absorb the one
slow repeat a noisy CI machine produces — and the script exits non-zero
when the ratio exceeds ``--max-overhead-pct``, keeping the "dark by
default" promise honest.  ``--batch-telemetry`` applies the same
median-based discipline to the *enabled* path: a ``workers=2`` batch is
timed dark and under full cross-process span harvesting, the overhead
is gated by ``--max-telemetry-overhead-pct``, and the harvested session
can be written out as a merged Chrome trace (``--batch-trace-out``) and
a Prometheus exposition dump (``--batch-prom-out``) for CI artifacts.
The tracked baseline at the repo root (``BENCH_schedulers.json``) is
produced by this same script at the pinned config and diffed by
``repro bench-compare``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.regression import run_bench_suite


def _write_batch_artifacts(
    trace_out: Path | None,
    prom_out: Path | None,
    mesh: tuple[int, int],
    size: int,
    benchmarks: tuple[int, ...],
    seed: int,
    workers: int = 2,
) -> None:
    """One harvested ``workers=2`` batch, exported for CI artifacts."""
    from repro.core import CostModel
    from repro.engine import ScheduleRequest, schedule_many
    from repro.grid import Mesh2D
    from repro.mem import CapacityPlan
    from repro.obs import Instrumentation, render_chrome, to_prometheus
    from repro.workloads import benchmark as make_benchmark

    topology = Mesh2D(*mesh)
    model = CostModel(topology)
    requests = []
    for bench in benchmarks:
        workload = make_benchmark(bench, size, topology, seed=seed)
        capacity = CapacityPlan.paper_rule(workload.n_data, topology.n_procs)
        requests.append(
            ScheduleRequest(
                workload.reference_tensor(), model, capacity=capacity,
                algorithm="gomcds", label=f"bench{bench}",
            )
        )
    instr = Instrumentation.started()
    schedule_many(requests, workers=workers, kernel="numpy", instrument=instr)
    if trace_out is not None:
        trace_out.write_text(render_chrome(instr) + "\n")
        print(f"wrote merged chrome trace to {trace_out}")
    if prom_out is not None:
        prom_out.write_text(to_prometheus(instr) + "\n")
        print(f"wrote prometheus dump to {prom_out}")


def run(
    out: Path,
    mesh: tuple[int, int] = (4, 4),
    size: int = 16,
    benchmarks: tuple[int, ...] = (1, 2, 3, 4, 5),
    repeats: int = 3,
    seed: int = 1998,
    max_overhead_pct: float | None = None,
    include_batch: bool = False,
    batch_telemetry: bool = False,
    max_telemetry_overhead_pct: float | None = None,
    batch_trace_out: Path | None = None,
    batch_prom_out: Path | None = None,
) -> int:
    report = run_bench_suite(
        mesh=mesh, size=size, benchmarks=benchmarks, repeats=repeats,
        seed=seed, include_batch=include_batch,
        include_batch_telemetry=batch_telemetry,
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    if include_batch:
        batch = report["batch_gomcds"]
        print(
            f"batched GOMCDS suite: sequential scalar "
            f"{batch['sequential_python_median_s']:.4f}s vs batched numpy "
            f"{batch['batch_numpy_median_s']:.4f}s "
            f"({batch['speedup']:.1f}x speedup)"
        )
    failed = False
    if batch_telemetry:
        tele = report["batch_telemetry"]
        print(
            f"batch telemetry overhead (workers={tele['workers']}, medians): "
            f"{tele['overhead_pct']:.1f}% "
            f"({tele['dark_median_s'] * 1e3:.1f} ms dark / "
            f"{tele['traced_median_s'] * 1e3:.1f} ms harvested)"
        )
        if not tele["bit_identical"]:
            print(
                "FAIL: telemetry changed the schedules — the bit-identity "
                "contract is broken",
                file=sys.stderr,
            )
            failed = True
        if (
            max_telemetry_overhead_pct is not None
            and tele["overhead_pct"] > max_telemetry_overhead_pct
        ):
            print(
                f"FAIL: telemetry overhead {tele['overhead_pct']:.1f}% "
                f"exceeds budget {max_telemetry_overhead_pct:g}%",
                file=sys.stderr,
            )
            failed = True
        _write_batch_artifacts(
            batch_trace_out, batch_prom_out, mesh, size, benchmarks, seed
        )
    overhead = report["noop_overhead"]
    print(
        f"no-op instrumentation overhead on replay (medians): "
        f"{overhead['overhead_pct']:.3f}% "
        f"({overhead['probe_s'] * 1e3:.3f} ms probes / "
        f"{overhead['replay_s'] * 1e3:.1f} ms replay)"
    )
    if max_overhead_pct is not None and overhead["overhead_pct"] > max_overhead_pct:
        print(
            f"FAIL: overhead {overhead['overhead_pct']:.3f}% exceeds budget "
            f"{max_overhead_pct:g}%",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_schedulers.json")
    )
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument("--size", type=int, default=16)
    parser.add_argument(
        "--benchmarks", type=int, nargs="+", default=[1, 2, 3, 4, 5]
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--max-overhead-pct", type=float, default=None,
        help="exit 1 if the no-op probe overhead exceeds this percentage",
    )
    parser.add_argument(
        "--include-batch", action="store_true",
        help="record the batched-vs-sequential GOMCDS engine speedup "
        "in a batch_gomcds block",
    )
    parser.add_argument(
        "--batch-telemetry", action="store_true",
        help="measure worker-span harvesting overhead on a workers=2 "
        "batch (batch_telemetry block) and verify bit-identity",
    )
    parser.add_argument(
        "--max-telemetry-overhead-pct", type=float, default=None,
        help="exit 1 if telemetry-on overhead exceeds this percentage "
        "(median over median; needs --batch-telemetry)",
    )
    parser.add_argument(
        "--batch-trace-out", type=Path, default=None, metavar="PATH",
        help="write the harvested batch session as a merged Chrome trace "
        "(needs --batch-telemetry)",
    )
    parser.add_argument(
        "--batch-prom-out", type=Path, default=None, metavar="PATH",
        help="write the harvested batch metrics in Prometheus exposition "
        "format (needs --batch-telemetry)",
    )
    args = parser.parse_args(argv)
    return run(
        out=args.out,
        mesh=tuple(args.mesh),
        size=args.size,
        benchmarks=tuple(args.benchmarks),
        repeats=args.repeats,
        seed=args.seed,
        max_overhead_pct=args.max_overhead_pct,
        include_batch=args.include_batch,
        batch_telemetry=args.batch_telemetry,
        max_telemetry_overhead_pct=args.max_telemetry_overhead_pct,
        batch_trace_out=args.batch_trace_out,
        batch_prom_out=args.batch_prom_out,
    )


if __name__ == "__main__":
    raise SystemExit(main())
