"""Scheduler/replay timing harness + no-op instrumentation overhead gate.

Run as a script (CI's perf-smoke job does)::

    python benchmarks/bench_profile.py --out BENCH_smoke.json \
        --size 8 --max-overhead-pct 5

Thin CLI over :func:`repro.analysis.regression.run_bench_suite`, which
times SCDS/LOMCDS/GOMCDS scheduling and the hop-level replay on each
paper benchmark and measures the cost of the *disabled* observability
probes that ``replay_schedule`` executes per window.  The gate compares
the probe *median* against the replay *median* — medians absorb the one
slow repeat a noisy CI machine produces — and the script exits non-zero
when the ratio exceeds ``--max-overhead-pct``, keeping the "dark by
default" promise honest.  The tracked baseline at the repo root
(``BENCH_schedulers.json``) is produced by this same script at the
pinned config and diffed by ``repro bench-compare``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.regression import run_bench_suite


def run(
    out: Path,
    mesh: tuple[int, int] = (4, 4),
    size: int = 16,
    benchmarks: tuple[int, ...] = (1, 2, 3, 4, 5),
    repeats: int = 3,
    seed: int = 1998,
    max_overhead_pct: float | None = None,
    include_batch: bool = False,
) -> int:
    report = run_bench_suite(
        mesh=mesh, size=size, benchmarks=benchmarks, repeats=repeats,
        seed=seed, include_batch=include_batch,
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    if include_batch:
        batch = report["batch_gomcds"]
        print(
            f"batched GOMCDS suite: sequential scalar "
            f"{batch['sequential_python_median_s']:.4f}s vs batched numpy "
            f"{batch['batch_numpy_median_s']:.4f}s "
            f"({batch['speedup']:.1f}x speedup)"
        )
    overhead = report["noop_overhead"]
    print(
        f"no-op instrumentation overhead on replay (medians): "
        f"{overhead['overhead_pct']:.3f}% "
        f"({overhead['probe_s'] * 1e3:.3f} ms probes / "
        f"{overhead['replay_s'] * 1e3:.1f} ms replay)"
    )
    if max_overhead_pct is not None and overhead["overhead_pct"] > max_overhead_pct:
        print(
            f"FAIL: overhead {overhead['overhead_pct']:.3f}% exceeds budget "
            f"{max_overhead_pct:g}%",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_schedulers.json")
    )
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument("--size", type=int, default=16)
    parser.add_argument(
        "--benchmarks", type=int, nargs="+", default=[1, 2, 3, 4, 5]
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--max-overhead-pct", type=float, default=None,
        help="exit 1 if the no-op probe overhead exceeds this percentage",
    )
    parser.add_argument(
        "--include-batch", action="store_true",
        help="record the batched-vs-sequential GOMCDS engine speedup "
        "in a batch_gomcds block",
    )
    args = parser.parse_args(argv)
    return run(
        out=args.out,
        mesh=tuple(args.mesh),
        size=args.size,
        benchmarks=tuple(args.benchmarks),
        repeats=args.repeats,
        seed=args.seed,
        max_overhead_pct=args.max_overhead_pct,
        include_batch=args.include_batch,
    )


if __name__ == "__main__":
    raise SystemExit(main())
