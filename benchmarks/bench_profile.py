"""Scheduler/replay timing harness + no-op instrumentation overhead gate.

Run as a script (CI's perf-smoke job does)::

    python benchmarks/bench_profile.py --out BENCH_schedulers.json \
        --size 8 --max-overhead-pct 5

Times SCDS/LOMCDS/GOMCDS scheduling and the hop-level replay on each
paper benchmark, and measures the cost of the *disabled* observability
probes that ``replay_schedule`` executes per window (a no-op span plus
the ``enabled`` guard and end-of-run counters).  The probe cost divided
by the replay wall time is the overhead the no-op default imposes on
``bench_sim_replay``-style runs; the script exits non-zero when it
exceeds ``--max-overhead-pct``, keeping the "dark by default" promise
honest.  Results land in a JSON report (``BENCH_schedulers.json``)
tracked at the repo root so the timing trajectory is diffable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

from repro.core import CostModel, evaluate_schedule, scheduler_spec
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.obs import NOOP, Instrumentation
from repro.sim import replay_schedule
from repro.workloads import BENCHMARK_NAMES, benchmark as make_benchmark

SCHEDULERS = ("SCDS", "LOMCDS", "GOMCDS")

#: The per-window probe pattern replay_schedule executes when disabled:
#: one span context plus the ``enabled`` guard.
_END_COUNTERS = (
    "sim.fetches",
    "sim.local_fetches",
    "sim.moves",
    "sim.movement_volume",
)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _noop_probe_seconds(n_windows: int, repeats: int) -> float:
    """Wall time of the disabled probes a replay of ``n_windows`` runs."""

    def probes():
        obs = NOOP
        with obs.span("sim.replay", n_windows=n_windows, faults=False):
            for w in range(n_windows):
                with obs.span("sim.window", window=w) as span:
                    if obs.enabled:  # pragma: no cover - disabled by design
                        span.set(window=w)
            for name in _END_COUNTERS:
                obs.count(name, 0.0)

    return _best_of(probes, repeats)


def run(
    out: Path,
    mesh: tuple[int, int] = (4, 4),
    size: int = 16,
    benchmarks: tuple[int, ...] = (1, 2, 3, 4, 5),
    repeats: int = 3,
    seed: int = 1998,
    max_overhead_pct: float | None = None,
) -> int:
    topology = Mesh2D(*mesh)
    model = CostModel(topology)
    results = []
    replay_times = []
    probe_times = []
    for bench in benchmarks:
        workload = make_benchmark(bench, size, topology, seed=seed)
        tensor = workload.reference_tensor()
        capacity = CapacityPlan.paper_rule(workload.n_data, topology.n_procs)
        row = {
            "benchmark": bench,
            "name": BENCHMARK_NAMES[bench],
            "n_data": workload.n_data,
            "n_windows": tensor.n_windows,
        }
        last = None
        for name in SCHEDULERS:
            spec = scheduler_spec(name)
            last = spec(tensor, model, capacity)  # warm
            row[f"{name.lower()}_s"] = _best_of(
                lambda spec=spec, t=tensor, c=capacity: spec(t, model, c),
                repeats,
            )
            row[f"{name.lower()}_cost"] = evaluate_schedule(
                last, tensor, model
            ).total
        replay_s = _best_of(
            lambda w=workload, s=last, c=capacity: replay_schedule(
                w.trace, s, model, capacity=c
            ),
            repeats,
        )
        traced_s = _best_of(
            lambda w=workload, s=last, c=capacity: replay_schedule(
                w.trace, s, model, capacity=c,
                instrument=Instrumentation.started(),
            ),
            repeats,
        )
        probe_s = _noop_probe_seconds(tensor.n_windows, repeats)
        row["replay_s"] = replay_s
        row["replay_traced_s"] = traced_s
        row["noop_probe_s"] = probe_s
        row["noop_overhead_pct"] = 100.0 * probe_s / replay_s
        results.append(row)
        replay_times.append(replay_s)
        probe_times.append(probe_s)

    overhead_pct = 100.0 * sum(probe_times) / sum(replay_times)
    report = {
        "config": {
            "mesh": list(mesh),
            "size": size,
            "benchmarks": list(benchmarks),
            "repeats": repeats,
            "seed": seed,
            "schedulers": list(SCHEDULERS),
        },
        "results": results,
        "noop_overhead": {
            "replay_s": sum(replay_times),
            "probe_s": sum(probe_times),
            "overhead_pct": overhead_pct,
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    print(
        f"no-op instrumentation overhead on replay: {overhead_pct:.3f}% "
        f"({sum(probe_times) * 1e3:.3f} ms probes / "
        f"{sum(replay_times) * 1e3:.1f} ms replay)"
    )
    if max_overhead_pct is not None and overhead_pct > max_overhead_pct:
        print(
            f"FAIL: overhead {overhead_pct:.3f}% exceeds budget "
            f"{max_overhead_pct:g}%",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_schedulers.json")
    )
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument("--size", type=int, default=16)
    parser.add_argument(
        "--benchmarks", type=int, nargs="+", default=[1, 2, 3, 4, 5]
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--max-overhead-pct", type=float, default=None,
        help="exit 1 if the no-op probe overhead exceeds this percentage",
    )
    args = parser.parse_args(argv)
    return run(
        out=args.out,
        mesh=tuple(args.mesh),
        size=args.size,
        benchmarks=tuple(args.benchmarks),
        repeats=args.repeats,
        seed=args.seed,
        max_overhead_pct=args.max_overhead_pct,
    )


if __name__ == "__main__":
    raise SystemExit(main())
