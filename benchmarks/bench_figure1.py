"""Regenerate & time the Figure 1 / §3.3 worked example.

The OCR of the paper lost the original reference counts; the instance is
a faithful reconstruction (see DESIGN.md) with the same structure — a
4x4 array, four execution windows, and reference loci that jump across
the array — and the same qualitative outcome: the three schedulers pick
different centers with ``GOMCDS < LOMCDS < SCDS`` total cost.
"""

from repro import schedule
from repro.analysis import figure1_instance, run_figure1


def bench_figure1_walkthrough(benchmark):
    result = benchmark(run_figure1)
    print()
    print("Figure 1 / section 3.3 worked example (reconstructed counts)")
    print(f"  SCDS   center {result.scds_center}, cost {result.scds_cost:.0f}")
    print(f"  LOMCDS centers {result.lomcds_centers}, cost {result.lomcds_cost:.0f}")
    print(f"  GOMCDS centers {result.gomcds_centers}, cost {result.gomcds_cost:.0f}")
    assert result.gomcds_cost < result.lomcds_cost < result.scds_cost


def bench_figure1_cost_graph(benchmark):
    """Time Algorithm 2 (the cost-graph shortest path) on the example."""
    tensor, model, _topo = figure1_instance()
    benchmark(schedule, tensor, model, algorithm="gomcds")
