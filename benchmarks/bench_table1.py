"""Regenerate & time Table 1: communication cost before grouping.

``bench_table1_full`` reproduces the entire table (all five benchmarks at
8x8/16x16/32x32 on the 4x4 array, memory = 2x minimum) and prints it in
the paper's layout; the per-scheduler benches time each algorithm on each
row's instance.
"""

import pytest

from repro import schedule
from repro.analysis import render_table, run_table1
from repro.core import evaluate_schedule

from conftest import PAPER_BENCHMARKS, PAPER_SIZES

SCHEDULER_NAMES = ("SCDS", "LOMCDS", "GOMCDS")


def bench_table1_full(benchmark):
    """Time one full regeneration of Table 1 and print it."""
    table = benchmark.pedantic(
        run_table1,
        kwargs={"sizes": PAPER_SIZES, "benchmarks": PAPER_BENCHMARKS},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(table))
    # the paper's qualitative shape must hold at full size
    assert table.best_scheduler() == "GOMCDS"
    assert table.average_improvement("LOMCDS") > table.average_improvement("SCDS")
    assert table.average_improvement("GOMCDS") > 20.0


@pytest.mark.parametrize("bench_id", PAPER_BENCHMARKS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def bench_scheduler_on_row(benchmark, instances, name, bench_id):
    """Time one scheduler on one 16x16 table row (capacity-constrained)."""
    inst = instances(bench_id, 16)

    def run():
        return schedule(
            inst.tensor, inst.model, algorithm=name, capacity=inst.capacity
        )

    schedule = benchmark(run)
    cost = evaluate_schedule(schedule, inst.tensor, inst.model).total
    assert cost <= inst.sf_cost * 1.2  # sanity: never catastrophically bad


@pytest.mark.parametrize("n", PAPER_SIZES)
def bench_gomcds_scaling(benchmark, instances, n):
    """GOMCDS runtime vs data size on benchmark 3 (the heaviest mix)."""
    inst = instances(3, n)

    def run():
        return schedule(
            inst.tensor, inst.model, algorithm="gomcds", capacity=inst.capacity
        )

    schedule = benchmark(run)
    assert schedule.n_data == n * n
