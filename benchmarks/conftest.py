"""Shared benchmark fixtures.

Each bench module regenerates one table/figure of the paper (or one
DESIGN.md ablation).  Instances are built once per session; the rendered
tables are printed so that ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's output alongside the timing numbers.
"""

from __future__ import annotations

import pytest

from repro.core import CostModel
from repro.distrib import baseline_schedule
from repro.core import evaluate_schedule
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.workloads import benchmark as make_benchmark

PAPER_MESH = (4, 4)
PAPER_SIZES = (8, 16, 32)
PAPER_BENCHMARKS = (1, 2, 3, 4, 5)


class Instance:
    """One benchmark row's inputs, built lazily and cached."""

    def __init__(self, bench: int, n: int, mesh=PAPER_MESH, seed: int = 1998):
        self.bench = bench
        self.n = n
        self.topology = Mesh2D(*mesh)
        self.workload = make_benchmark(bench, n, self.topology, seed=seed)
        self.tensor = self.workload.reference_tensor()
        self.model = CostModel(self.topology)
        self.capacity = CapacityPlan.paper_rule(
            self.workload.n_data, self.topology.n_procs
        )
        self.sf_cost = evaluate_schedule(
            baseline_schedule(self.workload, "row_wise"), self.tensor, self.model
        ).total


@pytest.fixture(scope="session")
def instances():
    cache: dict[tuple[int, int], Instance] = {}

    def get(bench: int, n: int) -> Instance:
        key = (bench, n)
        if key not in cache:
            cache[key] = Instance(bench, n)
        return cache[key]

    return get
