"""Replay-simulator benches: cross-check + congestion extension.

The paper's metric is analytic hop x volume; these benches replay the
Table 1 schedules hop-by-hop on the machine model, assert exact agreement
with the analytic evaluator, and report the per-link congestion figures
the paper's metric abstracts away.
"""

import pytest

from repro import schedule
from repro.core import evaluate_schedule
from repro.distrib import baseline_schedule
from repro.sim import replay_schedule


@pytest.mark.parametrize("bench_id", [1, 3, 5])
def bench_replay_agreement(benchmark, instances, bench_id):
    """Time a full hop-level replay of the GOMCDS schedule (16x16)."""
    inst = instances(bench_id, 16)
    sched = schedule(inst.tensor, inst.model, algorithm="gomcds", capacity=inst.capacity)
    analytic = evaluate_schedule(sched, inst.tensor, inst.model)

    def run():
        return replay_schedule(
            inst.workload.trace, sched, inst.model, capacity=inst.capacity
        )

    report = benchmark(run)
    assert report.matches(analytic)


def bench_replay_with_link_tracking(benchmark, instances):
    """Link-tracked replay (slower) + congestion comparison vs S.F."""
    inst = instances(5, 16)
    sched = schedule(inst.tensor, inst.model, algorithm="gomcds", capacity=inst.capacity)

    def run():
        return replay_schedule(
            inst.workload.trace, sched, inst.model, track_links=True
        )

    report = benchmark(run)
    sf = replay_schedule(
        inst.workload.trace,
        baseline_schedule(inst.workload, "row_wise"),
        inst.model,
        track_links=True,
    )
    print()
    print("Congestion extension (benchmark 5, 16x16):")
    print(
        f"  S.F.  : total traffic {sf.total_link_traffic:.0f}, "
        f"max link load {sf.max_link_load:.0f}"
    )
    print(
        f"  GOMCDS: total traffic {report.total_link_traffic:.0f}, "
        f"max link load {report.max_link_load:.0f}"
    )
    # optimizing total hops also relieves the hottest link here
    assert report.max_link_load <= sf.max_link_load
