"""Fault-tolerance benches: degradation sweeps and recovery overhead.

Sweeps node-failure rates over the paper's benchmark 1 and reports how
replayed cost and completion rate degrade, what evacuation costs, and
what fault-aware rescheduling (:func:`repro.core.reschedule_around_faults`)
buys back.  Run with ``pytest benchmarks/bench_faults.py --benchmark-only -s``.
"""

import pytest

from repro.analysis import fault_sweep
from repro import schedule
from repro.core import reschedule_around_faults
from repro.faults import FaultPlan
from repro.sim import replay_schedule


def _render(rows):
    keys = list(rows[0].keys())
    fmt = lambda v: f"{v:.1f}" if isinstance(v, float) else str(v)  # noqa: E731
    widths = {k: max(len(k), *(len(fmt(r[k])) for r in rows)) for k in keys}
    lines = ["  ".join(f"{k:>{widths[k]}}" for k in keys)]
    for r in rows:
        lines.append("  ".join(f"{fmt(r[k]):>{widths[k]}}" for k in keys))
    return "\n".join(lines)


def bench_fault_sweep(benchmark, instances):
    """Time the full failure-rate sweep; print the degradation table."""
    rows = benchmark(
        fault_sweep,
        node_rates=(0.0, 0.1, 0.2, 0.3),
        drop_rate=0.02,
        bench=1,
        size=16,
    )
    print()
    print("Fault sweep (benchmark 1, 16x16, GOMCDS, evacuation on):")
    print(_render(rows))
    # rate 0.0 must reproduce the fault-free path: everything delivered
    assert rows[0]["unreachable"] == 0 and rows[0]["dropped"] == 0
    assert rows[0]["completion_pct"] == 100.0


def bench_fault_replay_overhead(benchmark, instances):
    """Overhead of the degraded replay loop vs the vectorized exact path."""
    inst = instances(1, 16)
    sched = schedule(inst.tensor, inst.model, algorithm="gomcds", capacity=inst.capacity)
    plan = FaultPlan.random(
        inst.topology, inst.tensor.n_windows, node_rate=0.2, seed=3
    )

    def run():
        return replay_schedule(
            inst.workload.trace,
            sched,
            inst.model,
            capacity=inst.capacity,
            faults=plan,
        )

    report = benchmark(run)
    assert report.accounts_for_all_fetches()


@pytest.mark.parametrize("node_rate", [0.1, 0.3])
def bench_reschedule_around_faults(benchmark, instances, node_rate):
    """Time the fault-aware rescheduling pass; assert it helps the replay."""
    inst = instances(1, 16)
    plan = FaultPlan.random(
        inst.topology, inst.tensor.n_windows, node_rate=node_rate, seed=3
    )
    sched = benchmark(
        reschedule_around_faults, inst.tensor, inst.model, plan, inst.capacity
    )
    degraded = replay_schedule(
        inst.workload.trace, sched, inst.model,
        capacity=inst.capacity, faults=plan,
    )
    naive = replay_schedule(
        inst.workload.trace,
        schedule(inst.tensor, inst.model, algorithm="gomcds", capacity=inst.capacity),
        inst.model,
        capacity=inst.capacity,
        faults=plan,
    )
    print()
    print(
        f"node rate {node_rate}: rescheduled degraded cost "
        f"{degraded.degraded_cost:.0f} vs naive {naive.degraded_cost:.0f}, "
        f"completion {100 * degraded.completion_rate:.1f}% vs "
        f"{100 * naive.completion_rate:.1f}%"
    )
    assert degraded.completion_rate >= naive.completion_rate
