"""Scheduler runtime scaling: data size, array size, window count.

Pure performance benches (no table regeneration): how each algorithm's
wall time grows along the three problem axes.  GOMCDS is O(D·W·m²) —
vectorized across data when unconstrained — so the array-size axis is
its steepest; SCDS is one matmul + argmin and should stay near-flat.
"""

import pytest

from repro.core import CostModel, gomcds, grouped_schedule, lomcds, scds
from repro.grid import Mesh2D
from repro.trace import build_reference_tensor, windows_by_step_count
from repro.workloads import benchmark as make_benchmark


def _instance(n=16, mesh=(4, 4), bench=5, spw=None):
    topo = Mesh2D(*mesh)
    wl = make_benchmark(bench, n, topo)
    windows = (
        wl.windows
        if spw is None
        else windows_by_step_count(wl.trace, spw)
    )
    tensor = build_reference_tensor(wl.trace, windows)
    return tensor, CostModel(topo)


@pytest.mark.parametrize("n", [8, 16, 32])
@pytest.mark.parametrize("name,fn", [("SCDS", scds), ("LOMCDS", lomcds), ("GOMCDS", gomcds)])
def bench_scaling_data_size(benchmark, name, fn, n):
    """Runtime vs datum count (n^2 data) on benchmark 5, unconstrained."""
    tensor, model = _instance(n=n)
    benchmark(fn, tensor, model)


@pytest.mark.parametrize("mesh", [(2, 2), (4, 4), (8, 8)])
def bench_scaling_array_size(benchmark, mesh):
    """GOMCDS runtime vs processor count (m^2 DP transitions)."""
    tensor, model = _instance(n=16, mesh=mesh)
    benchmark(gomcds, tensor, model)


@pytest.mark.parametrize("spw", [1, 4, 16])
def bench_scaling_window_count(benchmark, spw):
    """GOMCDS runtime vs window count (DP depth)."""
    tensor, model = _instance(n=16, spw=spw)
    benchmark(gomcds, tensor, model)


def bench_grouping_scaling(benchmark):
    """Algorithm 3 on the finest windows (worst case for the greedy loop)."""
    tensor, model = _instance(n=16, spw=1)
    benchmark(grouped_schedule, tensor, model)
