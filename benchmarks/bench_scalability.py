"""Scheduler runtime scaling: data size, array size, window count.

Pure performance benches (no table regeneration): how each algorithm's
wall time grows along the three problem axes.  GOMCDS is O(D·W·m²) —
vectorized across data when unconstrained — so the array-size axis is
its steepest; SCDS is one matmul + argmin and should stay near-flat.

The batch benches time the engine itself: one ``schedule_many`` fan-out
of the GOMCDS suite (vectorized numpy kernels, shared solve cache)
against the sequential scalar-kernel baseline — the two produce
bit-identical schedules, so the ratio is pure engine speedup.

Run as a script to gate that speedup in CI::

    python benchmarks/bench_scalability.py --size 8 --min-speedup 3
"""

import pytest

from repro import ScheduleRequest, schedule, schedule_many
from repro.core import CostModel, grouped_schedule
from repro.grid import Mesh2D
from repro.mem import CapacityPlan
from repro.trace import build_reference_tensor, windows_by_step_count
from repro.workloads import benchmark as make_benchmark

SCHEDULER_NAMES = ("SCDS", "LOMCDS", "GOMCDS")


def _instance(n=16, mesh=(4, 4), bench=5, spw=None):
    topo = Mesh2D(*mesh)
    wl = make_benchmark(bench, n, topo)
    windows = (
        wl.windows
        if spw is None
        else windows_by_step_count(wl.trace, spw)
    )
    tensor = build_reference_tensor(wl.trace, windows)
    return tensor, CostModel(topo)


def _suite_requests(n=16, mesh=(4, 4), benchmarks=(1, 2, 3, 4, 5)):
    """One capacity-constrained GOMCDS request per paper benchmark."""
    topo = Mesh2D(*mesh)
    model = CostModel(topo)
    requests = []
    for bench in benchmarks:
        wl = make_benchmark(bench, n, topo)
        tensor = build_reference_tensor(wl.trace, wl.windows)
        capacity = CapacityPlan.paper_rule(wl.n_data, topo.n_procs)
        requests.append(
            ScheduleRequest(
                tensor, model, capacity=capacity, algorithm="gomcds",
                label=f"bench{bench}",
            )
        )
    return requests, model


@pytest.mark.parametrize("n", [8, 16, 32])
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def bench_scaling_data_size(benchmark, name, n):
    """Runtime vs datum count (n^2 data) on benchmark 5, unconstrained."""
    tensor, model = _instance(n=n)
    benchmark(schedule, tensor, model, algorithm=name)


@pytest.mark.parametrize("mesh", [(2, 2), (4, 4), (8, 8)])
def bench_scaling_array_size(benchmark, mesh):
    """GOMCDS runtime vs processor count (m^2 DP transitions)."""
    tensor, model = _instance(n=16, mesh=mesh)
    benchmark(schedule, tensor, model, algorithm="gomcds")


@pytest.mark.parametrize("spw", [1, 4, 16])
def bench_scaling_window_count(benchmark, spw):
    """GOMCDS runtime vs window count (DP depth)."""
    tensor, model = _instance(n=16, spw=spw)
    benchmark(schedule, tensor, model, algorithm="gomcds")


def bench_grouping_scaling(benchmark):
    """Algorithm 3 on the finest windows (worst case for the greedy loop)."""
    tensor, model = _instance(n=16, spw=1)
    benchmark(grouped_schedule, tensor, model)


def bench_batch_gomcds_suite(benchmark):
    """The batched numpy GOMCDS suite (the engine's fast path)."""
    requests, _ = _suite_requests(n=8)
    benchmark(schedule_many, requests, workers=1, kernel="numpy")


def bench_sequential_scalar_suite(benchmark):
    """The same suite, sequential scalar kernels (the reference path)."""
    requests, model = _suite_requests(n=8)

    def run():
        return [
            schedule(
                r.tensor, model, algorithm="gomcds", capacity=r.capacity,
                kernel="python",
            )
            for r in requests
        ]

    benchmark(run)


def main(argv=None):
    """CI gate: batched numpy suite must beat sequential scalar by
    ``--min-speedup``x (exit 1 when it does not)."""
    import argparse
    from statistics import median
    from time import perf_counter

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=8, help="matrix size n")
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument(
        "--benchmarks", type=int, nargs="+", default=[1, 2, 3, 4, 5]
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="fail unless batched/sequential speedup reaches this factor",
    )
    args = parser.parse_args(argv)

    requests, model = _suite_requests(
        n=args.size, mesh=tuple(args.mesh), benchmarks=tuple(args.benchmarks)
    )

    def timed(fn):
        fn()  # warm
        times = []
        for _ in range(args.repeats):
            t0 = perf_counter()
            fn()
            times.append(perf_counter() - t0)
        return median(times)

    def sequential():
        return [
            schedule(
                r.tensor, model, algorithm="gomcds", capacity=r.capacity,
                kernel="python",
            )
            for r in requests
        ]

    def batched():
        return schedule_many(requests, workers=1, kernel="numpy")

    seq_s = timed(sequential)
    batch_s = timed(batched)
    speedup = seq_s / batch_s if batch_s > 0 else float("inf")
    print(
        f"batched GOMCDS suite ({len(requests)} requests, size "
        f"{args.size}): sequential scalar {seq_s:.4f}s, batched numpy "
        f"{batch_s:.4f}s, speedup {speedup:.1f}x "
        f"(gate: {args.min_speedup:g}x)"
    )
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below {args.min_speedup:g}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
