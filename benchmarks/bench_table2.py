"""Regenerate & time Table 2: communication cost after window grouping."""

import pytest

from repro.analysis import render_table, run_table1, run_table2
from repro.core import evaluate_schedule, grouped_schedule

from conftest import PAPER_BENCHMARKS, PAPER_SIZES


def bench_table2_full(benchmark):
    """Time one full regeneration of Table 2 and print it."""
    table = benchmark.pedantic(
        run_table2,
        kwargs={"sizes": PAPER_SIZES, "benchmarks": PAPER_BENCHMARKS},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(table))
    assert table.average_improvement("GOMCDS") > 20.0
    # "the performance is further improved by applying the grouping
    # algorithm": grouped LOMCDS beats ungrouped LOMCDS on average
    before = run_table1(sizes=PAPER_SIZES, benchmarks=PAPER_BENCHMARKS)
    assert table.average_improvement("LOMCDS") >= before.average_improvement(
        "LOMCDS"
    )


@pytest.mark.parametrize("bench_id", PAPER_BENCHMARKS)
def bench_grouping_on_row(benchmark, instances, bench_id):
    """Time Algorithm 3 + placement on one 16x16 row."""
    inst = instances(bench_id, 16)

    def run():
        return grouped_schedule(
            inst.tensor, inst.model, inst.capacity, center_method="local"
        )

    schedule = benchmark(run)
    cost = evaluate_schedule(schedule, inst.tensor, inst.model).total
    assert cost < inst.sf_cost * 1.2


@pytest.mark.parametrize("strategy", ["greedy", "optimal"])
def bench_grouping_strategy(benchmark, instances, strategy):
    """Greedy Algorithm 3 vs the DP-optimal grouping (extension)."""
    inst = instances(5, 16)

    def run():
        return grouped_schedule(inst.tensor, inst.model, strategy=strategy)

    schedule = benchmark(run)
    assert schedule.n_windows == inst.tensor.n_windows
