"""DESIGN.md ablations A-D: window size, array size, memory, grouping.

Each bench regenerates one ablation sweep and prints its rows, so the
bench harness is a one-stop regeneration of everything in EXPERIMENTS.md
beyond the paper's own tables.
"""

import pytest

from repro.analysis import (
    ablation_array_size,
    ablation_grouping_strategy,
    ablation_memory_pressure,
    ablation_window_size,
)


def _print_rows(title, rows):
    print()
    print(title)
    for row in rows:
        print("  " + "  ".join(f"{k}={v:.0f}" if isinstance(v, float) else f"{k}={v}" for k, v in row.items()))


def bench_ablation_window_size(benchmark):
    """Ablation A: scheduling quality vs window granularity (LU 16x16)."""
    rows = benchmark.pedantic(
        ablation_window_size,
        kwargs={"bench": 1, "n": 16, "steps_per_window": (1, 2, 4, 8, 16, 30)},
        rounds=1,
        iterations=1,
    )
    _print_rows("Ablation A: window size (benchmark 1, 16x16)", rows)
    gomcds_costs = [r["GOMCDS"] for r in rows]
    # finer windows monotonically help the optimal scheduler
    assert gomcds_costs == sorted(gomcds_costs)


def bench_ablation_array_size(benchmark):
    """Ablation B: improvement over S.F. as the array scales."""
    rows = benchmark.pedantic(
        ablation_array_size,
        kwargs={"bench": 1, "n": 16},
        rounds=1,
        iterations=1,
    )
    _print_rows("Ablation B: array size (benchmark 1, 16x16)", rows)
    assert all(r["GOMCDS"] <= r["sf"] for r in rows)


def bench_ablation_memory_pressure(benchmark):
    """Ablation C: how tight memories erode the schedulers' advantage."""
    rows = benchmark.pedantic(
        ablation_memory_pressure,
        kwargs={"bench": 5, "n": 16},
        rounds=1,
        iterations=1,
    )
    _print_rows("Ablation C: memory pressure (benchmark 5, 16x16)", rows)
    # at 1x the minimum every slot is forced; at 4x GOMCDS must be at
    # least as good
    assert rows[-1]["GOMCDS"] <= rows[0]["GOMCDS"]


@pytest.mark.parametrize("bench_id", [1, 5])
def bench_ablation_grouping(benchmark, bench_id):
    """Ablation D: greedy Algorithm 3 vs DP-optimal grouping vs GOMCDS."""
    out = benchmark.pedantic(
        ablation_grouping_strategy,
        kwargs={"bench": bench_id, "n": 16},
        rounds=1,
        iterations=1,
    )
    print()
    print(f"Ablation D: grouping strategies (benchmark {bench_id}, 16x16)")
    for key, value in out.items():
        print(f"  {key}: {value}")
    assert out["GOMCDS bound"] <= out["optimal grouping"] <= out["greedy grouping"]
