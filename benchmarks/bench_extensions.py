"""Extension benches: ablations E-G and the execution-time estimator.

These go beyond the paper's tables (see DESIGN.md): the iteration-
partition sweep, the online-vs-offline lookahead gap, read replication
against the one-copy rule, and the makespan estimate that exposes what
the paper's hop x volume metric hides.
"""


import pytest

from repro.analysis import (
    ablation_online_lookahead,
    ablation_partition_schemes,
    ablation_refinement,
    ablation_replication,
    ablation_static_optimality,
    ablation_window_segmentation,
    render_table,
    run_extended_table,
)
from repro import schedule
from repro.core import refine_schedule, replicated_scds
from repro.sim import estimate_execution_time


def bench_ablation_partition(benchmark):
    """Ablation E: iteration-partition scheme sweep (benchmark 1, 16x16)."""
    rows = benchmark.pedantic(
        ablation_partition_schemes, kwargs={"bench": 1, "n": 16}, rounds=1, iterations=1
    )
    print()
    print("Ablation E: iteration partitions (benchmark 1, 16x16)")
    for row in rows:
        print(
            f"  {row['scheme']:<14} S.F. {row['sf']:>7.0f}  "
            f"GOMCDS {row['GOMCDS']:>7.0f} ({row['GOMCDS_pct']:.1f}%)"
        )
    assert all(row["GOMCDS"] <= row["sf"] for row in rows)


def bench_ablation_online(benchmark):
    """Ablation F: the price of no lookahead (benchmark 5, 16x16)."""
    rows = benchmark.pedantic(
        ablation_online_lookahead, kwargs={"bench": 5, "n": 16}, rounds=1, iterations=1
    )
    print()
    print("Ablation F: online OMCDS vs offline (benchmark 5, 16x16)")
    for row in rows:
        print(
            f"  hysteresis {row['hysteresis']!s:<8} cost {row['OMCDS']:>7.0f}"
            f"  x{row['vs GOMCDS']:.2f} of GOMCDS, {row['moves']} moves"
        )
    offline = [r for r in rows if r["hysteresis"] == "offline"][0]["OMCDS"]
    tuned = min(r["OMCDS"] for r in rows if isinstance(r["hysteresis"], float))
    assert offline <= tuned <= 3 * offline  # constant-competitive in practice


def bench_ablation_replication(benchmark):
    """Ablation G: k replicas vs the one-copy rule (benchmark 5, 16x16)."""
    rows = benchmark.pedantic(
        ablation_replication, kwargs={"bench": 5, "n": 16}, rounds=1, iterations=1
    )
    print()
    print("Ablation G: read replication (benchmark 5, 16x16, capacity 2x)")
    for row in rows:
        print(
            f"  k={row['k']}  cost {row['replicated cost']:>7.0f}  "
            f"copies {row['total copies']}  "
            f"(GOMCDS 1-copy moving: {row['GOMCDS (1 copy, moving)']:.0f})"
        )
    assert rows[1]["replicated cost"] < rows[0]["replicated cost"]


def bench_ablation_refinement(benchmark):
    """Ablation H: swap-based local search on constrained schedules."""
    rows = benchmark.pedantic(
        ablation_refinement, kwargs={"bench": 5, "n": 16}, rounds=1, iterations=1
    )
    print()
    print("Ablation H: refinement of capacity-constrained GOMCDS (b5, 16x16)")
    for row in rows:
        print(
            f"  cap x{row['multiplier']}: {row['greedy GOMCDS']:.0f} -> "
            f"{row['refined']:.0f} ({row['swaps']} swaps, "
            f"floor {row['unconstrained floor']:.0f})"
        )
    assert all(r["refined"] <= r["greedy GOMCDS"] for r in rows)


def bench_ablation_segmentation(benchmark):
    """Ablation I: window-boundary strategies (benchmark 5, 16x16)."""
    rows = benchmark.pedantic(
        ablation_window_segmentation, kwargs={"bench": 5, "n": 16}, rounds=1, iterations=1
    )
    print()
    print("Ablation I: window segmentation strategies (benchmark 5, 16x16)")
    for row in rows:
        print(
            f"  {row['strategy']:<16} {row['n_windows']:>3} windows  "
            f"GOMCDS {row['GOMCDS']:.0f}"
        )
    assert all(row["GOMCDS"] > 0 for row in rows)


def bench_ablation_static_optimality(benchmark):
    """Ablation J: greedy SCDS vs assignment-optimal static placement."""
    rows = benchmark.pedantic(
        ablation_static_optimality, kwargs={"bench": 1, "n": 16}, rounds=1, iterations=1
    )
    print()
    print("Ablation J: static optimality gap (benchmark 1, 16x16)")
    for row in rows:
        print(
            f"  cap x{row['multiplier']}: greedy {row['greedy SCDS']:.0f} vs "
            f"optimal {row['optimal static']:.0f} (gap {row['gap %']:.1f}%)"
        )
    assert all(r["greedy SCDS"] >= r["optimal static"] - 1e-9 for r in rows)


def bench_extended_suite(benchmark):
    """Extended kernels (FFT / SOR / Floyd / bitonic): full table."""
    table = benchmark.pedantic(run_extended_table, rounds=1, iterations=1)
    print()
    print(render_table(table))
    for row in table.rows:
        assert row.result_for("GOMCDS").cost <= row.sf_cost


def bench_refine_runtime(benchmark, instances):
    """Refinement pass throughput on a tight-memory 16x16 instance."""
    from repro.mem import CapacityPlan

    inst = instances(5, 16)
    tight = CapacityPlan.paper_rule(inst.workload.n_data, 16, multiplier=1.0)
    sched = schedule(inst.tensor, inst.model, algorithm="gomcds", capacity=tight)

    def run():
        return refine_schedule(sched, inst.tensor, inst.model, tight)

    result = benchmark(run)
    assert result.final_cost <= result.initial_cost


@pytest.mark.parametrize("name", ["SCDS", "GOMCDS"])
def bench_makespan_estimate(benchmark, instances, name):
    """Time the makespan estimator on 16x16 benchmark 5 schedules."""
    inst = instances(5, 16)
    sched = schedule(inst.tensor, inst.model, algorithm=name, capacity=inst.capacity)

    def run():
        return estimate_execution_time(inst.workload.trace, sched, inst.model)

    report = benchmark(run)
    print(
        f"\n  {name}: estimated makespan {report.total:.0f} "
        f"(comm fraction {report.comm_fraction:.2f})"
    )
    assert report.total > 0


def bench_omcds_runtime(benchmark, instances):
    """Online scheduler throughput on the heaviest instance (32x32 mix)."""
    inst = instances(3, 32)

    def run():
        return schedule(inst.tensor, inst.model, algorithm="omcds", capacity=inst.capacity)

    sched = benchmark(run)
    assert sched.n_data == 1024


def bench_replication_runtime(benchmark, instances):
    """k-median placement throughput at k=3 on 32x32 benchmark 5."""
    inst = instances(5, 32)

    def run():
        return replicated_scds(inst.tensor, inst.model, k=3, capacity=inst.capacity)

    placement = benchmark(run)
    assert placement.n_data == 1024


def bench_network_simulation(benchmark, instances):
    """Cycle-stepped drain of benchmark 5's GOMCDS traffic (16x16)."""
    from repro.sim import estimate_execution_time, simulate_schedule_network

    inst = instances(5, 16)
    sched = schedule(inst.tensor, inst.model, algorithm="gomcds", capacity=inst.capacity)

    def run():
        return simulate_schedule_network(inst.workload.trace, sched, inst.model)

    report = benchmark(run)
    bound = estimate_execution_time(inst.workload.trace, sched, inst.model)
    print(
        f"\n  measured drain {report.total_cycles:.0f} cycles vs analytic "
        f"link bound {bound.fetch_comm_time.sum() + bound.move_comm_time.sum():.0f}"
    )
    assert report.total_cycles >= bound.fetch_comm_time.sum()


def bench_seed_sensitivity(benchmark):
    """Robustness: one table row across five CODE seeds."""
    from repro.analysis import seed_sensitivity

    rows = benchmark.pedantic(seed_sensitivity, rounds=1, iterations=1)
    print()
    print("Seed sensitivity (benchmark 5, 16x16, 5 seeds)")
    for row in rows:
        print(
            f"  {row['scheduler']:<8} {row['mean %']:.1f}% +- {row['std %']:.2f} "
            f"(range {row['min %']:.1f}-{row['max %']:.1f})"
        )
    by = {r["scheduler"]: r for r in rows}
    assert by["GOMCDS"]["min %"] > by["SCDS"]["max %"]


def bench_ablation_movement_budget(benchmark):
    """Ablation K: cost vs per-datum relocation budget (benchmark 5)."""
    from repro.analysis import ablation_movement_budget

    rows = benchmark.pedantic(
        ablation_movement_budget, kwargs={"bench": 5, "n": 16}, rounds=1, iterations=1
    )
    print()
    print("Ablation K: movement-budget frontier (benchmark 5, 16x16)")
    for row in rows:
        print(
            f"  B={row['budget']}: total {row['total']:.0f} "
            f"(refs {row['reference']:.0f} + moves {row['movement']:.0f}, "
            f"{row['moves']} relocations)"
        )
    totals = [r["total"] for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(totals, totals[1:]))
