"""Cached distance-matrix access and distance utilities.

Distance matrices are the single hottest input of every scheduler: the
placement-cost tensor of each datum is ``R_d @ Dist``.  Topologies are
frozen dataclasses (hashable), so we memoize one immutable ``(n, n)``
matrix per topology instance and hand out read-only views.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .topology import Topology

__all__ = ["cached_distance_matrix", "pairwise_distances", "eccentricity"]


@lru_cache(maxsize=64)
def _distance_matrix_for(topology: Topology) -> np.ndarray:
    matrix = topology.distance_matrix()
    matrix.setflags(write=False)
    return matrix


def cached_distance_matrix(topology: Topology) -> np.ndarray:
    """Read-only ``(n, n)`` int64 hop-distance matrix for ``topology``.

    The matrix is computed once per topology and shared; callers must not
    mutate it (it is marked non-writeable).
    """
    return _distance_matrix_for(topology)


def pairwise_distances(
    topology: Topology, sources: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Element-wise distances between parallel pid arrays.

    ``sources`` and ``targets`` must broadcast against each other; the
    result has the broadcast shape.
    """
    dist = cached_distance_matrix(topology)
    return dist[np.asarray(sources), np.asarray(targets)]


def eccentricity(topology: Topology, pid: int) -> int:
    """Maximum distance from ``pid`` to any processor in the array."""
    return int(cached_distance_matrix(topology)[pid].max())
