"""Dimension-ordered (x-y) routing on mesh topologies.

The paper's machine model routes every message with x-y routing: a message
first travels along the x axis (columns) to the destination column, then
along the y axis (rows).  The analytic cost model only needs the hop
*count* (Manhattan distance), but the replay simulator (``repro.sim``)
routes hop-by-hop to account per-link traffic, so we materialize the
actual paths here.

Links are directed and identified as ``(from_pid, to_pid)`` tuples between
adjacent processors.
"""

from __future__ import annotations

from dataclasses import dataclass

from .extended_topologies import Mesh3D, WeightedMesh2D
from .topology import Mesh1D, Mesh2D, Topology, Torus2D

__all__ = ["Link", "XYRouter", "link_key", "parse_link_key"]

Link = tuple[int, int]
"""A directed mesh link ``(from_pid, to_pid)`` between adjacent processors."""


def _unravel(pid: int, shape: tuple[int, ...]) -> tuple[int, ...]:
    coords = []
    for extent in reversed(shape):
        coords.append(pid % extent)
        pid //= extent
    return tuple(reversed(coords))


def _ravel(coords: tuple[int, ...], shape: tuple[int, ...]) -> int:
    pid = 0
    for c, extent in zip(coords, shape):
        if not 0 <= c < extent:
            raise ValueError(f"coordinate {coords} outside grid {shape}")
        pid = pid * extent + c
    return pid


def link_key(link: Link, shape: tuple[int, ...] | None = None) -> str:
    """Stable string form of a directed link, used for JSON serialization.

    With a grid ``shape`` the endpoints render as row-major coordinates
    (``"0,1->0,2"`` on a 2-D mesh, matching the paper's ``(r, c)``
    notation); without one they fall back to flat pids (``"1->2"``).
    """
    src, dst = int(link[0]), int(link[1])
    if shape is None:
        return f"{src}->{dst}"
    a = ",".join(str(c) for c in _unravel(src, shape))
    b = ",".join(str(c) for c in _unravel(dst, shape))
    return f"{a}->{b}"


def parse_link_key(key: str, shape: tuple[int, ...] | None = None) -> Link:
    """Inverse of :func:`link_key`: ``"0,1->0,2"`` back to ``(pid, pid)``."""
    try:
        a, b = key.split("->")
        ends = []
        for part in (a, b):
            coords = tuple(int(c) for c in part.split(","))
            if len(coords) == 1 and shape is None:
                ends.append(coords[0])
            else:
                if shape is None:
                    raise ValueError
                ends.append(_ravel(coords, shape))
    except ValueError:
        raise ValueError(f"malformed link key {key!r}") from None
    return (ends[0], ends[1])


def _step_toward(coord: int, target: int, extent: int, wrap: bool) -> int:
    """Next coordinate moving one hop from ``coord`` toward ``target``."""
    if coord == target:
        return coord
    if not wrap:
        return coord + 1 if target > coord else coord - 1
    forward = (target - coord) % extent
    backward = (coord - target) % extent
    if forward <= backward:
        return (coord + 1) % extent
    return (coord - 1) % extent


@dataclass(frozen=True)
class XYRouter:
    """Deterministic dimension-ordered router for 1-D/2-D meshes and tori.

    For a 2-D mesh the route from ``(r1, c1)`` to ``(r2, c2)`` first fixes
    the column (x axis) and then the row (y axis), matching the paper's
    x-y routing; ties on a torus break toward the forward direction.
    """

    topology: Topology

    def __post_init__(self) -> None:
        if not isinstance(
            self.topology, (Mesh1D, Mesh2D, Torus2D, Mesh3D, WeightedMesh2D)
        ):
            raise TypeError(
                f"XYRouter supports mesh/torus topologies, got {self.topology!r}"
            )

    @property
    def _wraps(self) -> bool:
        return isinstance(self.topology, Torus2D)

    def route(self, src: int, dst: int) -> list[int]:
        """Processor pids visited from ``src`` to ``dst``, inclusive.

        The length of the returned path is ``distance(src, dst) + 1``.
        """
        topo = self.topology
        topo._check_pid(src)
        topo._check_pid(dst)
        path = [src]
        coords = list(topo.coords(src))
        target = topo.coords(dst)
        # x axis (the last coordinate: column) first, then y (row).
        for axis in reversed(range(len(coords))):
            extent = topo.shape[axis]
            while coords[axis] != target[axis]:
                coords[axis] = _step_toward(
                    coords[axis], target[axis], extent, self._wraps
                )
                path.append(topo.pid(*coords))
        return path

    def links(self, src: int, dst: int) -> list[Link]:
        """Directed links traversed from ``src`` to ``dst`` (may be empty)."""
        path = self.route(src, dst)
        return list(zip(path[:-1], path[1:]))

    def hop_count(self, src: int, dst: int) -> int:
        """Number of physical hops of the x-y route.

        Equals the metric distance on unit-weight topologies; on a
        :class:`~repro.grid.WeightedMesh2D` the metric additionally
        weights each hop by its axis cost.
        """
        return len(self.route(src, dst)) - 1
