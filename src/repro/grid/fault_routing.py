"""Fault-aware routing: detoured x-y on a partially failed mesh.

The plain :class:`~repro.grid.routing.XYRouter` assumes every node and
wire is alive.  :class:`FaultAwareRouter` wraps the same topologies with a
set of dead nodes and dead *directed* links:

* when the dimension-ordered x-y route is untouched by any fault, it is
  returned verbatim (so the hop count equals the metric distance — the
  invariant the property tests pin down);
* otherwise the router falls back to a breadth-first search over the
  surviving mesh, yielding a shortest detour in surviving-hop count;
* when no surviving route exists the router *reports* the pair as
  unreachable (``None``) instead of raising deep inside a replay loop.

Routes are cached per ``(src, dst)`` — a router instance is bound to one
fault epoch (one window's structural-fault state), so caching is safe.
"""

from __future__ import annotations

from collections import deque

from .extended_topologies import Mesh3D, WeightedMesh2D
from .routing import Link, XYRouter
from .topology import Mesh1D, Mesh2D, Topology, Torus2D

__all__ = ["FaultAwareRouter", "mesh_links", "structural_neighbors"]

_SUPPORTED = (Mesh1D, Mesh2D, Torus2D, Mesh3D, WeightedMesh2D)


def structural_neighbors(topology: Topology, pid: int) -> list[int]:
    """Physically adjacent pids of ``pid``: one step along each axis.

    Unlike :meth:`Topology.neighbors` this is derived from the grid
    *structure* (coordinates), not the metric, so it stays correct on
    weighted meshes where an adjacent hop may cost more than 1.
    """
    coords = topology.coords(pid)
    wraps = isinstance(topology, Torus2D)
    out = []
    for axis, extent in enumerate(topology.shape):
        if extent < 2:
            continue
        for delta in (-1, 1):
            c = coords[axis] + delta
            if wraps:
                c %= extent
            elif not 0 <= c < extent:
                continue
            neighbor = list(coords)
            neighbor[axis] = c
            q = topology.pid(*neighbor)
            if q != pid:
                out.append(q)
    # wrap-around on extent-2 tori makes +1 and -1 coincide
    return sorted(set(out))


def mesh_links(topology: Topology) -> list[Link]:
    """All directed physical links of the mesh, sorted."""
    links = []
    for pid in topology.iter_pids():
        for q in structural_neighbors(topology, pid):
            links.append((pid, q))
    return sorted(links)


class FaultAwareRouter:
    """Routes messages around dead nodes and severed directed links.

    Parameters
    ----------
    topology:
        Any mesh/torus supported by :class:`XYRouter`.
    dead_nodes:
        Pids that neither forward nor originate/sink traffic.
    dead_links:
        Directed ``(from_pid, to_pid)`` wires that cannot be traversed
        (the opposite direction may still be alive).
    """

    def __init__(
        self,
        topology: Topology,
        dead_nodes=(),
        dead_links=(),
    ) -> None:
        if not isinstance(topology, _SUPPORTED):
            raise TypeError(
                f"FaultAwareRouter supports mesh/torus topologies, got {topology!r}"
            )
        self.topology = topology
        self.dead_nodes = frozenset(int(p) for p in dead_nodes)
        self.dead_links = frozenset((int(a), int(b)) for a, b in dead_links)
        for pid in self.dead_nodes:
            topology._check_pid(pid)
        for a, b in self.dead_links:
            topology._check_pid(a)
            topology._check_pid(b)
        self._xy = XYRouter(topology)
        self._route_cache: dict[tuple[int, int], list[int] | None] = {}

    @property
    def has_faults(self) -> bool:
        return bool(self.dead_nodes or self.dead_links)

    # -- routing ---------------------------------------------------------------

    def route(self, src: int, dst: int) -> list[int] | None:
        """Pids visited from ``src`` to ``dst`` on the surviving mesh.

        Returns ``None`` when the pair is unreachable (either endpoint is
        dead, or faults partition the mesh between them).
        """
        key = (src, dst)
        if key not in self._route_cache:
            self._route_cache[key] = self._compute_route(src, dst)
        return self._route_cache[key]

    def _compute_route(self, src: int, dst: int) -> list[int] | None:
        topo = self.topology
        topo._check_pid(src)
        topo._check_pid(dst)
        if src in self.dead_nodes or dst in self.dead_nodes:
            return None
        if src == dst:
            return [src]
        xy = self._xy.route(src, dst)
        if not self.has_faults or self._path_survives(xy):
            return xy
        return self._bfs(src, dst)

    def _path_survives(self, path: list[int]) -> bool:
        for node in path[1:-1]:
            if node in self.dead_nodes:
                return False
        for link in zip(path[:-1], path[1:]):
            if link in self.dead_links:
                return False
        return True

    def _bfs(self, src: int, dst: int) -> list[int] | None:
        """Shortest surviving path by hop count (deterministic order)."""
        parent: dict[int, int] = {src: src}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            if node == dst:
                break
            for q in structural_neighbors(self.topology, node):
                if q in parent or q in self.dead_nodes:
                    continue
                if (node, q) in self.dead_links:
                    continue
                parent[q] = node
                frontier.append(q)
        if dst not in parent:
            return None
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    # -- derived queries -------------------------------------------------------

    def links(self, src: int, dst: int) -> list[Link] | None:
        """Directed links traversed, or ``None`` when unreachable."""
        path = self.route(src, dst)
        if path is None:
            return None
        return list(zip(path[:-1], path[1:]))

    def hop_count(self, src: int, dst: int) -> int | None:
        """Surviving-route hop count, or ``None`` when unreachable."""
        path = self.route(src, dst)
        if path is None:
            return None
        return len(path) - 1

    def reachable(self, src: int, dst: int) -> bool:
        return self.route(src, dst) is not None

    def unreachable_pairs(self, pairs) -> list[tuple[int, int]]:
        """The subset of ``(src, dst)`` pairs with no surviving route."""
        return [(s, d) for s, d in pairs if not self.reachable(s, d)]
