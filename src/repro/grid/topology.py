"""Processor-array topologies for the PIM machine model.

The paper assumes a 2-D grid of PIM nodes ("the processor array forms a
2-dimensional grid, where each processor has its own local memory") with
unit distance between adjacent processors.  This module provides that mesh,
plus a 1-D mesh (used by Lemma 1 of the paper) and a 2-D torus (an
extension for ablations).

Processors are identified two ways:

* a flat integer **pid** in ``range(n_procs)`` (row-major), used by all
  vectorized kernels, and
* a coordinate tuple ``(row, col)`` (``(x,)`` for 1-D), used in examples
  and reports to mirror the paper's ``processor (r, c)`` notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Topology", "Mesh1D", "Mesh2D", "Torus2D"]


class Topology:
    """Abstract base for processor-array topologies.

    Subclasses must define :attr:`shape` and :meth:`distance_matrix`.
    Everything else (pid/coordinate conversion, iteration, neighbor
    queries) is derived.
    """

    #: grid extents, e.g. ``(rows, cols)`` for a 2-D mesh.
    shape: tuple[int, ...]

    @property
    def n_procs(self) -> int:
        """Total number of processors in the array."""
        n = 1
        for extent in self.shape:
            n *= extent
        return n

    def __len__(self) -> int:
        return self.n_procs

    # -- pid <-> coordinates ------------------------------------------------

    def coords(self, pid: int) -> tuple[int, ...]:
        """Coordinates of processor ``pid`` (row-major unraveling)."""
        self._check_pid(pid)
        return tuple(int(c) for c in np.unravel_index(pid, self.shape))

    def pid(self, *coords: int) -> int:
        """Flat processor id for grid coordinates (row-major)."""
        if len(coords) != len(self.shape):
            raise ValueError(
                f"expected {len(self.shape)} coordinates, got {len(coords)}"
            )
        for c, extent in zip(coords, self.shape):
            if not 0 <= c < extent:
                raise ValueError(f"coordinate {coords} outside grid {self.shape}")
        return int(np.ravel_multi_index(coords, self.shape))

    def all_coords(self) -> np.ndarray:
        """``(n_procs, ndim)`` integer array: row ``p`` = coords of pid ``p``."""
        idx = np.indices(self.shape).reshape(len(self.shape), -1).T
        return np.ascontiguousarray(idx)

    def iter_pids(self) -> Iterator[int]:
        return iter(range(self.n_procs))

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n_procs:
            raise ValueError(f"pid {pid} outside array of {self.n_procs} processors")

    # -- metric --------------------------------------------------------------

    def distance_matrix(self) -> np.ndarray:
        """``(n, n)`` int64 matrix of pairwise hop distances."""
        raise NotImplementedError

    def distance(self, a: int, b: int) -> int:
        """Hop distance between processors ``a`` and ``b``."""
        self._check_pid(a)
        self._check_pid(b)
        return int(self.distance_matrix()[a, b])

    def neighbors(self, pid: int) -> list[int]:
        """Processors at distance exactly one from ``pid``, ascending."""
        dist = self.distance_matrix()[pid]
        return [int(q) for q in np.nonzero(dist == 1)[0]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(e) for e in self.shape)
        return f"{type(self).__name__}({dims})"


def _validate_extents(*extents: int) -> None:
    for e in extents:
        if int(e) != e or e < 1:
            raise ValueError(f"grid extents must be positive integers, got {extents}")


@dataclass(frozen=True, repr=False)
class Mesh1D(Topology):
    """Linear processor array; the platform of the paper's Lemma 1."""

    n: int

    def __post_init__(self) -> None:
        _validate_extents(self.n)

    @property
    def shape(self) -> tuple[int, ...]:  # type: ignore[override]
        return (self.n,)

    def distance_matrix(self) -> np.ndarray:
        ids = np.arange(self.n)
        return np.abs(ids[:, None] - ids[None, :]).astype(np.int64)


@dataclass(frozen=True, repr=False)
class Mesh2D(Topology):
    """2-D mesh with Manhattan (x-y routing) distance — the paper's machine.

    The distance between processors ``(r1, c1)`` and ``(r2, c2)`` is
    ``|r1 - r2| + |c1 - c2|``: the hop count of a dimension-ordered route.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        _validate_extents(self.rows, self.cols)

    @property
    def shape(self) -> tuple[int, ...]:  # type: ignore[override]
        return (self.rows, self.cols)

    def distance_matrix(self) -> np.ndarray:
        coords = self.all_coords()
        diff = np.abs(coords[:, None, :] - coords[None, :, :])
        return diff.sum(axis=2).astype(np.int64)


@dataclass(frozen=True, repr=False)
class Torus2D(Topology):
    """2-D torus (wrap-around mesh); extension used in ablation studies.

    Per-dimension distance is ``min(d, extent - d)``.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        _validate_extents(self.rows, self.cols)

    @property
    def shape(self) -> tuple[int, ...]:  # type: ignore[override]
        return (self.rows, self.cols)

    def distance_matrix(self) -> np.ndarray:
        coords = self.all_coords()
        diff = np.abs(coords[:, None, :] - coords[None, :, :])
        extents = np.array(self.shape)
        wrapped = np.minimum(diff, extents[None, None, :] - diff)
        return wrapped.sum(axis=2).astype(np.int64)
