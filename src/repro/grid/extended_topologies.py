"""Extended topologies: 3-D meshes and heterogeneous-link 2-D meshes.

Beyond the paper's planar grid:

* :class:`Mesh3D` — a stacked-die PIM array (layers x rows x cols) with
  dimension-ordered routing; the natural shape of later PIM proposals
  where DRAM dies stack above logic.
* :class:`WeightedMesh2D` — a planar mesh whose horizontal and vertical
  links have different per-hop costs (e.g. wide row buses vs. narrow
  column wires).  The *metric* is weighted Manhattan distance; the
  *adjacency* (and the x-y router's paths) are the ordinary mesh links.
  All schedulers consume only the distance matrix, so they transparently
  optimize for the asymmetric wires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .topology import Topology, _validate_extents

__all__ = ["Mesh3D", "WeightedMesh2D"]


@dataclass(frozen=True, repr=False)
class Mesh3D(Topology):
    """3-D mesh (layers x rows x cols) with Manhattan distance."""

    layers: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        _validate_extents(self.layers, self.rows, self.cols)

    @property
    def shape(self) -> tuple[int, ...]:  # type: ignore[override]
        return (self.layers, self.rows, self.cols)

    def distance_matrix(self) -> np.ndarray:
        coords = self.all_coords()
        diff = np.abs(coords[:, None, :] - coords[None, :, :])
        return diff.sum(axis=2).astype(np.int64)


@dataclass(frozen=True, repr=False)
class WeightedMesh2D(Topology):
    """2-D mesh with per-axis link weights.

    ``dist((r1,c1),(r2,c2)) = row_weight*|r1-r2| + col_weight*|c1-c2|``.
    Weights must be positive integers so distances stay integral and
    zero-distance still implies identity.  :meth:`neighbors` returns the
    physically adjacent processors (one hop on either axis) regardless of
    weights.
    """

    rows: int
    cols: int
    row_weight: int = 1
    col_weight: int = 1

    def __post_init__(self) -> None:
        _validate_extents(self.rows, self.cols)
        for w in (self.row_weight, self.col_weight):
            if int(w) != w or w < 1:
                raise ValueError("link weights must be positive integers")

    @property
    def shape(self) -> tuple[int, ...]:  # type: ignore[override]
        return (self.rows, self.cols)

    def distance_matrix(self) -> np.ndarray:
        coords = self.all_coords()
        diff = np.abs(coords[:, None, :] - coords[None, :, :])
        weights = np.array([self.row_weight, self.col_weight])
        return (diff * weights[None, None, :]).sum(axis=2).astype(np.int64)

    def neighbors(self, pid: int) -> list[int]:  # type: ignore[override]
        coords = self.all_coords()
        diff = np.abs(coords - coords[pid][None, :])
        adjacent = diff.sum(axis=1) == 1
        return [int(q) for q in np.nonzero(adjacent)[0]]
