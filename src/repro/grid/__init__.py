"""Machine substrate: PIM processor-array topologies, metrics, routing."""

from .distance import cached_distance_matrix, eccentricity, pairwise_distances
from .extended_topologies import Mesh3D, WeightedMesh2D
from .fault_routing import FaultAwareRouter, mesh_links, structural_neighbors
from .routing import Link, XYRouter, link_key, parse_link_key
from .topology import Mesh1D, Mesh2D, Topology, Torus2D

__all__ = [
    "Topology",
    "Mesh1D",
    "Mesh2D",
    "Torus2D",
    "Mesh3D",
    "WeightedMesh2D",
    "XYRouter",
    "FaultAwareRouter",
    "mesh_links",
    "structural_neighbors",
    "Link",
    "link_key",
    "parse_link_key",
    "cached_distance_matrix",
    "pairwise_distances",
    "eccentricity",
]
