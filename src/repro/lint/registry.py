"""The rule registry: stable codes bound to check functions.

A :class:`Rule` is a pure function from a :class:`~repro.lint.context.
LintContext` to an iterable of :class:`~repro.diagnostics.Diagnostic`
records, plus the metadata the engine and the SARIF renderer need: the
stable code, a short title, the default severity and the set of context
artifacts the check requires.  Rules register themselves at import time
via the :func:`rule` decorator; :data:`RULES` is the single source of
truth consumed by the engine, the CLI's ``--select/--ignore`` handling
and ``docs/lint.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..diagnostics import Diagnostic, Severity

__all__ = ["Rule", "RULES", "rule", "resolve_codes"]


@dataclass(frozen=True)
class Rule:
    """A registered static check with a stable diagnostic code."""

    code: str
    title: str
    severity: Severity
    requires: frozenset[str]
    check: Callable[..., Iterable[Diagnostic]]
    description: str = ""

    def applicable(self, context) -> bool:
        """True when every artifact the rule needs is present."""
        return all(getattr(context, name) is not None for name in self.requires)


#: code -> Rule, in registration (i.e. documentation) order.
RULES: dict[str, Rule] = {}


def rule(
    code: str,
    title: str,
    severity: Severity = Severity.ERROR,
    requires: Iterable[str] = (),
):
    """Register the decorated check function under ``code``."""

    def decorate(fn: Callable[..., Iterable[Diagnostic]]):
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(
            code=code,
            title=title,
            severity=severity,
            requires=frozenset(requires),
            check=fn,
            description=(fn.__doc__ or "").strip().split("\n")[0],
        )
        return fn

    return decorate


def resolve_codes(codes: Iterable[str]) -> list[str]:
    """Expand code prefixes (``SCH``, ``FLT``) and validate full codes."""
    out: list[str] = []
    for raw in codes:
        token = raw.strip().upper()
        if token in RULES:
            out.append(token)
            continue
        matches = [c for c in RULES if c.startswith(token)]
        if not matches:
            known = ", ".join(RULES)
            raise ValueError(f"unknown rule code {raw!r}; known codes: {known}")
        out.extend(matches)
    return out
