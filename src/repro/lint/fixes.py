"""Safe auto-fixes for a subset of lint findings (``repro lint --fix``).

A fix is *safe* when it cannot change what a correct run computes: it may
only remove configuration that provably never takes effect (a fault
activating beyond the horizon), clamp a tunable into its documented legal
range (a checkpoint interval), or simplify a degenerate-but-legal shape
(an execution window holding no references).  Anything whose repair
requires a judgement call — a schedule placing data on a dead node, a
capacity overflow — stays a diagnostic for a human.

``apply_fixes`` mutates the :class:`~repro.lint.context.LintContext` in
place and returns a record per change; the CLI renders those as a
unified-diff-style preview (``--diff``) or writes the repaired artifacts
back to their source files (``--fix``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..diagnostics import FLT002, FLT007, TRC003, Diagnostic
from ..faults import FaultPlan
from ..trace import WindowSet
from .context import LintContext

__all__ = ["Fix", "FixOutcome", "FIXABLE_CODES", "apply_fixes", "render_diff"]


@dataclass(frozen=True)
class Fix:
    """One applied repair: which rule, what changed, and how.

    ``before``/``after`` are short human renderings of the touched part
    of the artifact, consumed by the ``--diff`` preview.
    """

    code: str
    artifact: str
    description: str
    before: str
    after: str


@dataclass
class FixOutcome:
    """Everything one ``apply_fixes`` pass changed."""

    fixes: list[Fix] = field(default_factory=list)
    #: context attribute names that now hold repaired artifacts
    modified: set[str] = field(default_factory=set)

    @property
    def n_fixed(self) -> int:
        return len(self.fixes)


def _fix_horizon_faults(
    context: LintContext, diagnostics: list[Diagnostic]
) -> list[Fix]:
    """FLT002: drop faults that activate beyond the window horizon.

    Such faults provably never take effect — every replay and reschedule
    indexes the plan only by windows in ``[0, n_windows)`` — so removing
    them is behavior-preserving.
    """
    horizon = context.n_windows
    if context.faults is None or horizon is None:
        return []
    plan = context.faults
    keep_nodes = tuple(f for f in plan.node_faults if f.start < horizon)
    keep_links = tuple(f for f in plan.link_faults if f.start < horizon)
    dropped = [
        f
        for f in (*plan.node_faults, *plan.link_faults)
        if f.start >= horizon
    ]
    if not dropped:
        return []
    context.faults = FaultPlan(
        node_faults=keep_nodes,
        link_faults=keep_links,
        drop_rate=plan.drop_rate,
        seed=plan.seed,
    )
    return [
        Fix(
            code=FLT002,
            artifact="faults",
            description=(
                f"dropped {len(dropped)} fault(s) activating at or beyond "
                f"the {horizon}-window horizon"
            ),
            before="\n".join(str(f) for f in dropped),
            after="(removed: can never take effect)",
        )
    ]


def _fix_checkpoint_interval(
    context: LintContext, diagnostics: list[Diagnostic]
) -> list[Fix]:
    """FLT007: clamp the recovery checkpoint interval into ``[1, horizon]``.

    The legal range is exactly what :meth:`RecoveryPolicy
    .config_violations` enforces; clamping to the nearest bound is the
    minimal change that satisfies it.
    """
    policy = context.recovery
    if policy is None:
        return []
    interval = policy.checkpoint_interval
    horizon = context.n_windows
    clamped = max(1, interval)
    if horizon is not None:
        clamped = min(clamped, horizon)
    if clamped == interval:
        return []
    context.recovery = dataclasses.replace(
        policy, checkpoint_interval=clamped
    )
    return [
        Fix(
            code=FLT007,
            artifact="recovery",
            description="clamped the checkpoint interval into its legal range",
            before=f"checkpoint_interval: {interval}",
            after=f"checkpoint_interval: {clamped}",
        )
    ]


def _fix_empty_windows(
    context: LintContext, diagnostics: list[Diagnostic]
) -> list[Fix]:
    """TRC003: merge windows holding no references into a neighbor.

    Dropping an empty window removes its (unused) scheduling column: no
    fetch is served there, and any relocation it staged is subsumed by
    the direct move into the next kept window, so cost can only stay or
    shrink.  Skipped when a fault plan is present — fault activation is
    indexed by window, and renumbering under it is not a safe rewrite.
    """
    trace, windows = context.trace, context.windows
    if trace is None or windows is None:
        return []
    if windows.n_steps != trace.n_steps:
        return []  # TRC002 territory; merging would renumber garbage
    if context.faults is not None and (
        context.faults.node_faults or context.faults.link_faults
    ):
        return []
    populated = np.zeros(windows.n_windows, dtype=bool)
    populated[np.unique(windows.assign(trace.steps))] = True
    if populated.all() or not populated.any():
        return []  # nothing to merge / degenerate empty trace
    keep = populated.copy()
    starts = windows.starts[keep]
    starts[0] = 0  # an empty leading window folds into its successor
    context.windows = WindowSet(starts=starts, n_steps=windows.n_steps)
    fixes = [
        Fix(
            code=TRC003,
            artifact="windows",
            description=(
                f"merged {int((~populated).sum())} empty window(s) into "
                "their neighbors"
            ),
            before=f"windows: {windows.n_windows} "
            f"(empty: {[int(w) for w in np.nonzero(~populated)[0]]})",
            after=f"windows: {context.windows.n_windows}",
        )
    ]
    schedule = context.schedule
    if schedule is not None and schedule.n_windows == windows.n_windows:
        meta = {
            k: v for k, v in schedule.meta.items() if k != "certificate"
        }  # column surgery invalidates any attached optimality proof
        context.schedule = dataclasses.replace(
            schedule,
            centers=schedule.centers[:, keep],
            windows=context.windows,
            meta=meta,
        )
        fixes.append(
            Fix(
                code=TRC003,
                artifact="schedule",
                description="dropped the schedule columns of the merged windows",
                before=f"centers: {schedule.centers.shape}",
                after=f"centers: {context.schedule.centers.shape}",
            )
        )
    context._tensor = None  # windows changed; rebuild on demand
    return fixes


#: code -> fixer; iteration order is application order (horizon cleanup
#: first, so the empty-window fixer sees the final fault plan).
FIXERS: dict[str, Callable[[LintContext, list[Diagnostic]], list[Fix]]] = {
    FLT002: _fix_horizon_faults,
    FLT007: _fix_checkpoint_interval,
    TRC003: _fix_empty_windows,
}

FIXABLE_CODES = tuple(FIXERS)


def apply_fixes(
    context: LintContext,
    diagnostics: Iterable[Diagnostic],
    select: Iterable[str] | None = None,
) -> FixOutcome:
    """Apply every registered fixer whose rule produced a finding.

    ``select`` restricts to a subset of :data:`FIXABLE_CODES`.  The
    context is mutated in place; re-run the lint afterwards to confirm
    the findings cleared.
    """
    by_code: dict[str, list[Diagnostic]] = {}
    for diag in diagnostics:
        by_code.setdefault(diag.code, []).append(diag)
    enabled = set(FIXABLE_CODES if select is None else select)
    outcome = FixOutcome()
    for code, fixer in FIXERS.items():
        if code not in enabled or code not in by_code:
            continue
        fixes = fixer(context, by_code[code])
        outcome.fixes.extend(fixes)
        outcome.modified.update(fix.artifact for fix in fixes)
    return outcome


def render_diff(outcome: FixOutcome) -> str:
    """Unified-diff-style preview of what ``--fix`` would change."""
    if not outcome.fixes:
        return "no applicable fixes"
    lines: list[str] = []
    for fix in outcome.fixes:
        lines.append(f"--- {fix.artifact} [{fix.code}] {fix.description}")
        lines.extend(f"- {line}" for line in fix.before.splitlines())
        lines.extend(f"+ {line}" for line in fix.after.splitlines())
    return "\n".join(lines)
