"""CST0xx: cost-accounting consistency checks.

The repo computes a schedule's cost two independent ways: the vectorized
analytic evaluator (:func:`repro.core.evaluate_schedule`) and the paper's
Algorithm-2 cost-graph formulation (:mod:`repro.core.costgraph`), whose
edge weights spell out the same objective term by term.  CST001 walks
the schedule's own center path through the literal cost graph and
demands the accumulated edge weight equal the evaluator's answer — a
static differential test of the whole cost stack.  CST002 cross-checks
any cost the *producer* recorded in ``schedule.meta`` against the
evaluator, catching archives whose centers were edited after the fact.
"""

from __future__ import annotations

import numpy as np

from ..diagnostics import CST001, CST002, Diagnostic, Severity
from .registry import rule

__all__ = []

#: Above this many (datum, window, proc^2) graph cells, CST001 checks a
#: deterministic sample of data instead of all of them.
_MAX_EXHAUSTIVE_CELLS = 2_000_000
_SAMPLE = 128
_TOL = 1e-6

#: meta keys a producer may use to record the expected total cost.
_META_COST_KEYS = ("cost", "expected_cost", "total_cost")


def _graph_path_cost(window_costs, move_costs, centers) -> float:
    """Edge-weight sum of the schedule's path through the Algorithm-2 DAG.

    Follows the cost-graph construction literally (source edge carries
    window 0's reference cost; each transition edge carries movement plus
    the next window's reference cost) without materializing the graph.
    """
    total = float(window_costs[0, centers[0]])
    for w in range(1, len(centers)):
        total += float(move_costs[centers[w - 1], centers[w]])
        total += float(window_costs[w, centers[w]])
    return total


@rule(
    CST001,
    "evaluator/cost-graph mismatch",
    severity=Severity.ERROR,
    requires=("schedule", "trace", "model"),
)
def check_costgraph_agreement(context):
    """The analytic evaluator disagrees with the cost-graph formulation."""
    from ..core.evaluate import per_datum_costs

    tensor = context.tensor
    if tensor is None:
        return
    schedule = context.schedule
    model = context.model
    if schedule.n_data != tensor.n_data or schedule.n_windows != tensor.n_windows:
        return  # SCH004 owns the mismatch
    if schedule.centers.size and schedule.centers.max() >= model.n_procs:
        return  # SCH001 owns out-of-range centers
    ref, move = per_datum_costs(schedule, tensor, model)
    analytic = ref + move

    n_data, n_windows = schedule.n_data, schedule.n_windows
    cells = n_data * n_windows * model.n_procs**2
    data_ids = np.arange(n_data)
    if cells > _MAX_EXHAUSTIVE_CELLS:
        rng = np.random.default_rng(0)
        data_ids = np.sort(rng.choice(n_data, size=min(_SAMPLE, n_data), replace=False))

    costs = model.all_placement_costs(tensor)
    for d in data_ids:
        d = int(d)
        graph_cost = _graph_path_cost(
            costs[d], model.movement_cost_matrix(d), schedule.centers[d]
        )
        if abs(graph_cost - analytic[d]) > _TOL * max(1.0, abs(graph_cost)):
            yield Diagnostic(
                code=CST001,
                severity=Severity.ERROR,
                message=(
                    f"evaluate_schedule charges {analytic[d]:g} but the "
                    f"cost-graph path sums to {graph_cost:g}"
                ),
                datum=d,
                hint="the evaluator and Algorithm 2 disagree — one of the "
                "cost paths is corrupted",
            )


@rule(
    CST002,
    "meta-recorded cost mismatch",
    severity=Severity.WARNING,
    requires=("schedule", "trace", "model"),
)
def check_meta_cost(context):
    """A cost recorded by the producer disagrees with re-evaluation."""
    from ..core.evaluate import evaluate_schedule

    schedule = context.schedule
    recorded = None
    for key in _META_COST_KEYS:
        if key in schedule.meta:
            recorded = float(schedule.meta[key])
            break
    if recorded is None:
        return
    tensor = context.tensor
    if tensor is None:
        return
    if schedule.n_data != tensor.n_data or schedule.n_windows != tensor.n_windows:
        return
    if schedule.centers.size and schedule.centers.max() >= context.model.n_procs:
        return
    actual = evaluate_schedule(schedule, tensor, context.model).total
    if abs(actual - recorded) > _TOL * max(1.0, abs(actual)):
        yield Diagnostic(
            code=CST002,
            severity=Severity.WARNING,
            message=(
                f"schedule meta records cost {recorded:g} but re-evaluation "
                f"gives {actual:g}"
            ),
            hint="the archive's centers were modified after the cost was "
            "recorded",
        )
