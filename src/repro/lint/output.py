"""Renderers for lint reports: human text, machine JSON, and SARIF 2.1.0.

The SARIF output follows the static-analysis interchange shape GitHub
code scanning and most SARIF viewers consume: one run, one tool driver
carrying the rule catalogue, one result per diagnostic with the finding's
coordinates encoded as a logical location (schedules have no file/line;
``datum/3/window/2`` is the natural address space here).

The document builder (:func:`sarif_document`) and the stable result
fingerprint (:func:`result_fingerprint`) are shared with the certifier's
renderers (:mod:`repro.verify.output`), so every tool in the repo emits
one SARIF dialect.
"""

from __future__ import annotations

import hashlib
import json

from ..diagnostics import Diagnostic, Severity
from .engine import LintReport
from .registry import RULES

__all__ = [
    "render_human",
    "render_json",
    "render_sarif",
    "sarif_document",
    "result_fingerprint",
    "SARIF_SCHEMA_URI",
]

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def result_fingerprint(diag: Diagnostic) -> str:
    """Stable fingerprint of a diagnostic for SARIF ``partialFingerprints``.

    Derived only from the code, the logical location and the message, so
    re-running the same analysis yields byte-identical fingerprints and
    CI annotation UIs deduplicate findings across runs instead of piling
    up copies.
    """
    basis = "|".join((diag.code, diag.location, diag.message))
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:32]


def sarif_document(
    tool_name: str,
    information_uri: str,
    rules: list[dict],
    diagnostics: list[Diagnostic],
) -> dict:
    """One-run SARIF 2.1.0 document over coded diagnostics."""
    results = [
        {
            "ruleId": diag.code,
            "level": _SARIF_LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": diag.location,
                            "kind": "member",
                        }
                    ]
                }
            ],
            "partialFingerprints": {
                "reproDiagnostic/v1": result_fingerprint(diag)
            },
        }
        for diag in diagnostics
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": information_uri,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_human(report: LintReport) -> str:
    """Multi-line, stable-order human rendering with a summary footer."""
    lines = [d.render() for d in report.diagnostics]
    if not report.diagnostics:
        lines.append("clean: no diagnostics")
    lines.append(
        f"{report.n_errors} error(s), {report.n_warnings} warning(s), "
        f"{report.n_infos} info(s) — "
        f"{len(report.rules_run)} rule(s) run, "
        f"{len(report.rules_skipped)} skipped for missing inputs"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable JSON: diagnostics, rule coverage and the gate."""
    # same payload as LintReport.to_dict() (the unified result protocol),
    # minus the "kind" discriminator this renderer predates
    payload = {k: v for k, v in report.to_dict().items() if k != "kind"}
    return json.dumps(payload, indent=2)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 document for code-scanning UIs and archival."""
    rules = [
        {
            "id": rule.code,
            "name": rule.title,
            "shortDescription": {"text": rule.description or rule.title},
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
        }
        for rule in RULES.values()
    ]
    document = sarif_document(
        "repro-lint",
        "https://example.invalid/repro/docs/lint.md",
        rules,
        report.diagnostics,
    )
    return json.dumps(document, indent=2)
