"""Renderers for lint reports: human text, machine JSON, and SARIF 2.1.0.

The SARIF output follows the static-analysis interchange shape GitHub
code scanning and most SARIF viewers consume: one run, one tool driver
carrying the rule catalogue, one result per diagnostic with the finding's
coordinates encoded as a logical location (schedules have no file/line;
``datum/3/window/2`` is the natural address space here).
"""

from __future__ import annotations

import json

from ..diagnostics import Severity
from .engine import LintReport
from .registry import RULES

__all__ = ["render_human", "render_json", "render_sarif", "SARIF_SCHEMA_URI"]

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_human(report: LintReport) -> str:
    """Multi-line, stable-order human rendering with a summary footer."""
    lines = [d.render() for d in report.diagnostics]
    if not report.diagnostics:
        lines.append("clean: no diagnostics")
    lines.append(
        f"{report.n_errors} error(s), {report.n_warnings} warning(s), "
        f"{report.n_infos} info(s) — "
        f"{len(report.rules_run)} rule(s) run, "
        f"{len(report.rules_skipped)} skipped for missing inputs"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable JSON: diagnostics, rule coverage and the gate."""
    # same payload as LintReport.to_dict() (the unified result protocol),
    # minus the "kind" discriminator this renderer predates
    payload = {k: v for k, v in report.to_dict().items() if k != "kind"}
    return json.dumps(payload, indent=2)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 document for code-scanning UIs and archival."""
    rules = [
        {
            "id": rule.code,
            "name": rule.title,
            "shortDescription": {"text": rule.description or rule.title},
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
        }
        for rule in RULES.values()
    ]
    results = [
        {
            "ruleId": diag.code,
            "level": _SARIF_LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": diag.location,
                            "kind": "member",
                        }
                    ]
                }
            ],
        }
        for diag in report.diagnostics
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro/docs/lint.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
