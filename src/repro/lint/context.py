"""The artifact bundle a lint run analyzes.

A :class:`LintContext` carries whichever of the core artifacts the caller
has — schedule, trace, window set, fault plan, topology, capacity — and
derives the rest lazily (the reference tensor from trace + windows, the
cost model from the topology).  Rules declare which artifacts they need;
the engine skips rules whose inputs are absent, so the same registry
lints a bare fault plan, a schedule file, or a fully instantiated named
workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.cost import CostModel
from ..core.schedule import Schedule
from ..faults import FaultPlan
from ..grid import Topology
from ..mem import CapacityPlan
from ..trace import ReferenceTensor, Trace, WindowSet, build_reference_tensor

__all__ = ["LintContext"]


@dataclass
class LintContext:
    """Everything a lint run may inspect; any field may be ``None``."""

    schedule: Schedule | None = None
    trace: Trace | None = None
    windows: WindowSet | None = None
    topology: Topology | None = None
    capacity: CapacityPlan | None = None
    faults: FaultPlan | None = None
    model: CostModel | None = None
    #: online-recovery policy (``repro.faults.RecoveryPolicy``) under lint
    recovery: object | None = None
    #: replica placement (``repro.core.ReplicatedPlacement``) if the run
    #: carries one; ``None`` means "no replicas" for FLT008
    replicas: object | None = None
    _tensor: ReferenceTensor | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.windows is None and self.schedule is not None:
            self.windows = self.schedule.windows
        if self.model is None and self.topology is not None:
            self.model = CostModel(self.topology)
        if self.topology is None and self.model is not None:
            self.topology = self.model.topology

    @property
    def n_windows(self) -> int | None:
        """Window horizon, from whichever artifact defines it."""
        if self.windows is not None:
            return self.windows.n_windows
        if self.schedule is not None:
            return self.schedule.n_windows
        return None

    @property
    def n_data(self) -> int | None:
        """Datum-universe size, from whichever artifact defines it."""
        if self.schedule is not None:
            return self.schedule.n_data
        if self.trace is not None:
            return self.trace.n_data
        return None

    @property
    def tensor(self) -> ReferenceTensor | None:
        """The ``R[d, w, p]`` tensor, built on demand from trace+windows.

        Building requires the trace and a window set spanning it; rules
        that need the tensor are skipped otherwise.
        """
        if self._tensor is None and self.trace is not None:
            windows = self.windows
            if windows is not None and windows.n_steps == self.trace.n_steps:
                self._tensor = build_reference_tensor(self.trace, windows)
        return self._tensor
