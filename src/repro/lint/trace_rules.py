"""TRC0xx: static checks on traces and window segmentations.

The constructors of :class:`~repro.trace.Trace` and
:class:`~repro.trace.WindowSet` already reject malformed values at build
time; these rules re-verify the same invariants on *loaded or foreign*
artifacts and report every violation (a constructor stops at the first),
plus degenerate-but-legal shapes worth surfacing (TRC003).
"""

from __future__ import annotations

import numpy as np

from ..diagnostics import TRC001, TRC002, TRC003, Diagnostic, Severity
from .registry import rule

__all__ = []


@rule(TRC001, "malformed trace events", severity=Severity.ERROR, requires=("trace",))
def check_trace_events(context):
    """Trace event arrays are out of range, unsorted or non-positive."""
    trace = context.trace
    if len(trace.steps) == 0:
        return
    checks = (
        (trace.steps, trace.n_steps, "step"),
        (trace.procs, trace.n_procs, "processor"),
        (trace.data, trace.n_data, "datum"),
    )
    for values, bound, what in checks:
        bad = np.nonzero((values < 0) | (values >= bound))[0]
        for i in bad[:16]:
            yield Diagnostic(
                code=TRC001,
                severity=Severity.ERROR,
                message=(
                    f"event {int(i)} names {what} {int(values[i])}, outside "
                    f"[0, {bound})"
                ),
            )
    bad_counts = np.nonzero(trace.counts <= 0)[0]
    for i in bad_counts[:16]:
        yield Diagnostic(
            code=TRC001,
            severity=Severity.ERROR,
            message=f"event {int(i)} has non-positive count {int(trace.counts[i])}",
        )
    if np.any(np.diff(trace.steps) < 0):
        yield Diagnostic(
            code=TRC001,
            severity=Severity.ERROR,
            message="trace events are not sorted by step",
            hint="re-sort the event arrays by their step column",
        )


@rule(TRC002, "malformed window set", severity=Severity.ERROR, requires=("windows",))
def check_windows(context):
    """Window starts fail to partition ``[0, n_steps)`` or span the trace."""
    windows = context.windows
    starts = windows.starts
    if len(starts) == 0 or starts[0] != 0:
        yield Diagnostic(
            code=TRC002,
            severity=Severity.ERROR,
            message="first window must start at step 0",
        )
    diffs = np.diff(starts)
    for i in np.nonzero(diffs <= 0)[0][:16]:
        yield Diagnostic(
            code=TRC002,
            severity=Severity.ERROR,
            message=(
                f"window starts must be strictly increasing: start[{int(i) + 1}]="
                f"{int(starts[i + 1])} does not follow start[{int(i)}]="
                f"{int(starts[i])}"
            ),
            window=int(i),
        )
    if len(starts) and starts[-1] >= windows.n_steps:
        yield Diagnostic(
            code=TRC002,
            severity=Severity.ERROR,
            message=(
                f"last window starts at step {int(starts[-1])} but the "
                f"horizon has only {windows.n_steps} steps"
            ),
            window=windows.n_windows - 1,
        )
    if context.trace is not None and windows.n_steps != context.trace.n_steps:
        yield Diagnostic(
            code=TRC002,
            severity=Severity.ERROR,
            message=(
                f"window set spans {windows.n_steps} steps but the trace "
                f"has {context.trace.n_steps}"
            ),
        )


@rule(
    TRC003,
    "empty execution window",
    severity=Severity.INFO,
    requires=("trace", "windows"),
)
def check_empty_windows(context):
    """A window holds no reference events (degenerate segmentation)."""
    trace, windows = context.trace, context.windows
    if windows.n_steps != trace.n_steps:
        return  # TRC002 owns the mismatch; indices would be meaningless
    populated = np.zeros(windows.n_windows, dtype=bool)
    populated[np.unique(windows.assign(trace.steps))] = True
    for w in np.nonzero(~populated)[0]:
        yield Diagnostic(
            code=TRC003,
            severity=Severity.INFO,
            message="window holds no reference events",
            window=int(w),
            hint="merge it into a neighbor to shrink the scheduling problem",
        )
