"""SCH0xx: static checks on :class:`~repro.core.Schedule` objects.

These are the declarative invariants of the paper's Definition 3 model:
every datum has exactly one *valid* center per window (SCH001), no
processor's memory ever holds more items than its capacity (SCH002), the
movement accounting matches the center transitions (SCH003), and the
schedule structurally fits its companion artifacts (SCH004).  The replay
machine enforces SCH001/SCH002 dynamically via
:class:`~repro.sim.ResidencyError` / :class:`~repro.mem.CapacityError`
with the same codes; these rules prove them before any simulation runs.
"""

from __future__ import annotations

import numpy as np

from ..diagnostics import SCH001, SCH002, SCH003, SCH004, Diagnostic, Severity
from .registry import rule

__all__ = ["occupancy_overflows"]


def occupancy_overflows(
    centers: np.ndarray, capacities: np.ndarray
) -> list[tuple[int, int, int]]:
    """All per-window capacity violations as ``(window, processor, load)``.

    Shared by the SCH002 rule and the dynamic capacity checks' reporting;
    centers outside the capacity vector are ignored here (SCH001 owns
    them).
    """
    n_procs = len(capacities)
    n_windows = centers.shape[1]
    occupancy = np.zeros((n_windows, n_procs), dtype=np.int64)
    valid = (centers >= 0) & (centers < n_procs)
    for w in range(n_windows):
        column = centers[valid[:, w], w]
        np.add.at(occupancy[w], column, 1)
    out = []
    for w, p in zip(*np.nonzero(occupancy > capacities[None, :])):
        out.append((int(w), int(p), int(occupancy[w, p])))
    return out


@rule(
    SCH001,
    "residency violation",
    severity=Severity.ERROR,
    requires=("schedule", "topology"),
)
def check_residency(context):
    """A center names a processor outside the array (Definition 3)."""
    centers = context.schedule.centers
    n_procs = context.topology.n_procs
    bad = (centers < 0) | (centers >= n_procs)
    for d, w in zip(*np.nonzero(bad)):
        yield Diagnostic(
            code=SCH001,
            severity=Severity.ERROR,
            message=(
                f"center {int(centers[d, w])} is not a processor of the "
                f"{n_procs}-node array"
            ),
            datum=int(d),
            window=int(w),
            hint=f"centers must lie in [0, {n_procs})",
        )


@rule(
    SCH002,
    "capacity overflow",
    severity=Severity.ERROR,
    requires=("schedule", "capacity"),
)
def check_capacity(context):
    """A window assigns a processor more residents than its memory holds."""
    capacity = context.capacity
    schedule = context.schedule
    if schedule.n_data > capacity.total:
        yield Diagnostic(
            code=SCH002,
            severity=Severity.ERROR,
            message=(
                f"{schedule.n_data} data items cannot fit into total "
                f"capacity {capacity.total}"
            ),
            hint="raise per-processor capacity or shrink the datum universe",
        )
    for w, p, load in occupancy_overflows(schedule.centers, capacity.capacities):
        yield Diagnostic(
            code=SCH002,
            severity=Severity.ERROR,
            message=(
                f"memory of processor {p} over capacity: "
                f"{load} > {int(capacity.capacities[p])}"
            ),
            window=w,
            processor=p,
            hint="re-run the scheduler with this capacity plan installed",
        )


@rule(SCH003, "movement inconsistency", severity=Severity.ERROR, requires=("schedule",))
def check_movements(context):
    """The movement list disagrees with the center-transition matrix."""
    schedule = context.schedule
    centers = schedule.centers
    expected = set()
    if schedule.n_windows >= 2:
        moved = centers[:, 1:] != centers[:, :-1]
        for d, b in zip(*np.nonzero(moved)):
            expected.add(
                (int(d), int(b) + 1, int(centers[d, b]), int(centers[d, b + 1]))
            )
    reported = set(schedule.movements())
    for d, w, src, dst in sorted(reported - expected):
        yield Diagnostic(
            code=SCH003,
            severity=Severity.ERROR,
            message=(
                f"movement list claims a {src} -> {dst} relocation that the "
                "center matrix does not perform"
            ),
            datum=d,
            window=w,
        )
    for d, w, src, dst in sorted(expected - reported):
        yield Diagnostic(
            code=SCH003,
            severity=Severity.ERROR,
            message=(
                f"center matrix moves the datum {src} -> {dst} but the "
                "movement list omits it"
            ),
            datum=d,
            window=w,
        )
    n_claimed = schedule.n_movements()
    if n_claimed != len(expected):
        yield Diagnostic(
            code=SCH003,
            severity=Severity.ERROR,
            message=(
                f"n_movements() reports {n_claimed} relocations; the center "
                f"matrix performs {len(expected)}"
            ),
        )
    budget = schedule.meta.get("max_moves")
    if budget is not None and len(expected) > int(budget):
        yield Diagnostic(
            code=SCH003,
            severity=Severity.ERROR,
            message=(
                f"schedule performs {len(expected)} relocations but was "
                f"produced under a movement budget of {int(budget)}"
            ),
            hint="the producing scheduler violated its own budget contract",
        )


@rule(SCH004, "artifact mismatch", severity=Severity.ERROR, requires=("schedule",))
def check_shapes(context):
    """The schedule does not fit its trace, topology or capacity plan."""
    schedule = context.schedule
    if context.trace is not None:
        trace = context.trace
        if schedule.windows.n_steps != trace.n_steps:
            yield Diagnostic(
                code=SCH004,
                severity=Severity.ERROR,
                message=(
                    f"schedule windows span {schedule.windows.n_steps} steps "
                    f"but the trace has {trace.n_steps}"
                ),
            )
        if schedule.n_data != trace.n_data:
            yield Diagnostic(
                code=SCH004,
                severity=Severity.ERROR,
                message=(
                    f"schedule places {schedule.n_data} data but the trace "
                    f"addresses {trace.n_data}"
                ),
            )
    if (
        context.capacity is not None
        and context.topology is not None
        and context.capacity.n_procs != context.topology.n_procs
    ):
        yield Diagnostic(
            code=SCH004,
            severity=Severity.ERROR,
            message=(
                f"capacity plan covers {context.capacity.n_procs} "
                f"processors but the array has {context.topology.n_procs}"
            ),
        )
    if context.windows is not None and context.windows is not schedule.windows:
        same = (
            context.windows.n_steps == schedule.windows.n_steps
            and np.array_equal(context.windows.starts, schedule.windows.starts)
        )
        if not same:
            yield Diagnostic(
                code=SCH004,
                severity=Severity.ERROR,
                message="schedule was built on a different window segmentation "
                "than the one supplied",
            )
