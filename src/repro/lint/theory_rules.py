"""THY0xx: theory-backed schedule quality warnings (paper §4).

The paper's Lemma 1 / Theorem 2 show a window's placement cost is
separable convex in the center coordinates, increasing strictly
monotonically away from the local-optimum set.  Two consequences are
statically checkable:

* **THY001** — if replacing one center by a neighbor-in-cost processor
  lowers ``reference + movement`` cost (capacity permitting), the
  schedule is provably improvable: an optimal path never leaves a
  one-step improvement on the table.  This is a *warning*, not an error
  — such schedules are valid, just demonstrably suboptimal.
* **THY002** — a cost row that is not separable convex cannot come from
  a Manhattan metric with positive volumes; it indicates a corrupted
  cost model or reference tensor and voids the §4 guarantees.
"""

from __future__ import annotations

import numpy as np

from ..diagnostics import THY001, THY002, Diagnostic, Severity
from ..grid import Mesh1D, Mesh2D
from .registry import rule

__all__ = []

_TOL = 1e-9
#: cap on separable-convexity spot checks per run (rows are independent).
_THY002_SAMPLE = 64


@rule(
    THY001,
    "one-step improvable center",
    severity=Severity.WARNING,
    requires=("schedule", "trace", "model"),
)
def check_one_step_optimality(context):
    """Moving one center strictly lowers total cost — schedule improvable."""
    tensor = context.tensor
    if tensor is None:
        return
    schedule, model = context.schedule, context.model
    if schedule.n_data != tensor.n_data or schedule.n_windows != tensor.n_windows:
        return  # SCH004 owns the mismatch
    centers = schedule.centers
    if centers.size == 0 or centers.max() >= model.n_procs:
        return  # SCH001 owns out-of-range centers

    n_data, n_windows = schedule.n_data, schedule.n_windows
    costs = model.all_placement_costs(tensor)  # (D, W, m)
    dist = model.distances.astype(np.float64)
    vols = (
        np.ones(n_data)
        if model.volumes is None
        else np.asarray(model.volumes, dtype=np.float64)
    )

    headroom = None
    if context.capacity is not None and context.capacity.n_procs == model.n_procs:
        occupancy = schedule.occupancy(model.n_procs)  # (W, m)
        headroom = context.capacity.capacities[None, :] - occupancy

    d_idx = np.arange(n_data)
    for w in range(n_windows):
        current = centers[:, w]
        # delta[d, p]: total-cost change of re-centering datum d to p in w
        delta = costs[:, w, :] - costs[d_idx, w, current][:, None]
        if w > 0:
            prev = centers[:, w - 1]
            delta += vols[:, None] * (dist[prev] - dist[prev, current][:, None])
        if w < n_windows - 1:
            nxt = centers[:, w + 1]
            delta += vols[:, None] * (dist[:, nxt].T - dist[current, nxt][:, None])
        if headroom is not None:
            # an "improvement" into a full memory is not realizable
            delta = np.where(headroom[w][None, :] > 0, delta, np.inf)
            delta[d_idx, current] = 0.0
        best = delta.min(axis=1)
        for d in np.nonzero(best < -_TOL)[0]:
            p = int(delta[d].argmin())
            yield Diagnostic(
                code=THY001,
                severity=Severity.WARNING,
                message=(
                    f"re-centering to processor {p} saves {-best[d]:g} cost; "
                    "the §4 monotonicity argument shows an optimal path "
                    "never strands a center like this"
                ),
                datum=int(d),
                window=w,
                processor=int(centers[d, w]),
                hint="run GOMCDS (or refine_schedule) to close the gap",
            )


@rule(
    THY002,
    "non-convex cost row",
    severity=Severity.WARNING,
    requires=("trace", "model"),
)
def check_separable_convexity(context):
    """A placement-cost row violates the Lemma 1 convexity precondition."""
    from ..theory.convexity import is_separable_convex

    topology = context.topology
    if not isinstance(topology, (Mesh1D, Mesh2D)):
        return  # the lemma is stated for 1-D/2-D meshes only
    tensor = context.tensor
    if tensor is None:
        return
    costs = context.model.all_placement_costs(tensor)  # (D, W, m)
    n_data, n_windows = costs.shape[0], costs.shape[1]
    rows = [(d, w) for d in range(n_data) for w in range(n_windows)]
    if len(rows) > _THY002_SAMPLE:
        rng = np.random.default_rng(0)
        picks = rng.choice(len(rows), size=_THY002_SAMPLE, replace=False)
        rows = [rows[int(i)] for i in picks]
    for d, w in rows:
        if not is_separable_convex(costs[d, w], topology):
            yield Diagnostic(
                code=THY002,
                severity=Severity.WARNING,
                message=(
                    "placement-cost row is not separable convex; the cost "
                    "model or reference tensor is corrupted and the §4 "
                    "monotonicity guarantees do not apply"
                ),
                datum=int(d),
                window=int(w),
            )
