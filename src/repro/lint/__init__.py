"""Static analysis of schedules, traces and fault plans (``repro lint``).

The paper's correctness surface is declarative — single-copy residency,
per-window capacity, x-y cost consistency — so it can be *proved* from
the ``Schedule``/``WindowSet``/``FaultPlan`` objects alone, before any
simulation runs.  This package is that pre-flight pass: a registry of
coded rules (``SCH``/``TRC``/``FLT``/``CST``/``THY`` families, catalogued
in ``docs/lint.md``), an engine with per-rule enable/disable and severity
overrides, and renderers for human, JSON and SARIF 2.1.0 output.  The
dynamic enforcement sites raise errors carrying the same codes, so a
violation reads identically whether caught statically or mid-replay.
"""

from ..diagnostics import ALL_CODES, Diagnostic, Severity
from .context import LintContext
from .engine import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    LintReport,
    dedupe_diagnostics,
    run_lint,
)
from .fixes import FIXABLE_CODES, Fix, FixOutcome, apply_fixes, render_diff
from .loaders import load_context, workload_context
from .output import (
    SARIF_SCHEMA_URI,
    render_human,
    render_json,
    render_sarif,
    result_fingerprint,
    sarif_document,
)
from .registry import RULES, Rule, resolve_codes
from .schedule_rules import occupancy_overflows

__all__ = [
    "Diagnostic",
    "Severity",
    "ALL_CODES",
    "LintContext",
    "LintReport",
    "run_lint",
    "RULES",
    "Rule",
    "resolve_codes",
    "render_human",
    "render_json",
    "render_sarif",
    "SARIF_SCHEMA_URI",
    "load_context",
    "workload_context",
    "occupancy_overflows",
    "dedupe_diagnostics",
    "result_fingerprint",
    "sarif_document",
    "Fix",
    "FixOutcome",
    "FIXABLE_CODES",
    "apply_fixes",
    "render_diff",
    "EXIT_CLEAN",
    "EXIT_WARNINGS",
    "EXIT_ERRORS",
]
