"""The lint engine: run registered rules over a context, gate on severity.

``run_lint`` executes every applicable rule (per-rule enable/disable via
``select``/``ignore``, severity overrides via ``severities``) and folds
the findings into a :class:`LintReport` whose ``exit_code`` implements
the CLI contract: 0 clean, 1 warnings only, 2 errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..diagnostics import Diagnostic, Severity
from ..obs import Instrumentation, resolve
from ..schema import SCHEMA_VERSION, check_schema
from .context import LintContext
from .registry import RULES, resolve_codes

# Importing the rule modules populates the registry.
from . import schedule_rules  # noqa: F401
from . import trace_rules  # noqa: F401
from . import fault_rules  # noqa: F401
from . import cost_rules  # noqa: F401
from . import theory_rules  # noqa: F401

__all__ = [
    "LintReport",
    "run_lint",
    "dedupe_diagnostics",
    "EXIT_CLEAN",
    "EXIT_WARNINGS",
    "EXIT_ERRORS",
    "MAX_DIAGNOSTICS_PER_RULE",
]

EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_ERRORS = 2

#: A pathological artifact can violate one rule everywhere; keep reports
#: readable by truncating per rule and noting the suppression.
MAX_DIAGNOSTICS_PER_RULE = 100


def dedupe_diagnostics(
    diagnostics: Iterable[Diagnostic],
) -> list[Diagnostic]:
    """Drop exact repeats, keeping first occurrences in order.

    Identical findings arise when several loaders surface the same
    artifact error (a trace archive failing both its trace and windows
    checks the same way) or when loader failures are merged with rule
    findings that re-derive them.  Diagnostics are frozen dataclasses,
    so identity is plain equality of all fields.
    """
    seen: set[tuple] = set()
    unique: list[Diagnostic] = []
    for diag in diagnostics:
        key = (
            diag.code,
            diag.severity,
            diag.message,
            diag.datum,
            diag.window,
            diag.processor,
        )
        if key in seen:
            continue
        seen.add(key)
        unique.append(diag)
    return unique


@dataclass
class LintReport:
    """Outcome of one lint run: findings plus which rules actually ran."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)
    rules_skipped: list[str] = field(default_factory=list)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def prepend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Merge loader/context failures ahead of the rule findings,
        dropping any finding a rule already re-derived identically."""
        self.diagnostics = dedupe_diagnostics(
            [*diagnostics, *self.diagnostics]
        )

    @property
    def n_errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def n_infos(self) -> int:
        return self.count(Severity.INFO)

    @property
    def exit_code(self) -> int:
        """The CLI gate: 0 clean, 1 warnings only, 2 any error."""
        if self.n_errors:
            return EXIT_ERRORS
        if self.n_warnings:
            return EXIT_WARNINGS
        return EXIT_CLEAN

    def codes(self) -> set[str]:
        """Distinct diagnostic codes present in the findings."""
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    # -- unified result protocol (shared with CostBreakdown / SimReport) -----

    def to_dict(self) -> dict:
        """Serializable record (``kind`` discriminates result types).

        Same payload the ``json`` renderer emits, so the observability
        exporters and the lint CLI agree on the machine-readable shape.
        """
        return {
            "kind": "lint_report",
            "version": 1,
            "schema_version": SCHEMA_VERSION,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "rules_run": list(self.rules_run),
            "rules_skipped": list(self.rules_skipped),
            "summary": {
                "errors": self.n_errors,
                "warnings": self.n_warnings,
                "infos": self.n_infos,
                "exit_code": self.exit_code,
            },
        }

    @staticmethod
    def from_dict(payload: dict) -> "LintReport":
        """Inverse of :meth:`to_dict` (with schema-version checking).

        Counts and the exit code are recomputed from the diagnostics,
        not trusted from the serialized summary block.
        """
        check_schema(payload, "lint_report")
        return LintReport(
            diagnostics=[
                Diagnostic.from_dict(d) for d in payload.get("diagnostics", [])
            ],
            rules_run=[str(c) for c in payload.get("rules_run", [])],
            rules_skipped=[str(c) for c in payload.get("rules_skipped", [])],
        )

    def summary(self) -> str:
        """One-line human summary, consumed by the observability exporters."""
        return (
            f"lint: {self.n_errors} error(s), {self.n_warnings} warning(s), "
            f"{self.n_infos} info(s) — {len(self.rules_run)} rule(s) run, "
            f"{len(self.rules_skipped)} skipped"
        )


def run_lint(
    context: LintContext,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    severities: Mapping[str, Severity] | None = None,
    instrument: Instrumentation | None = None,
) -> LintReport:
    """Run every applicable rule over ``context``.

    Parameters
    ----------
    context:
        The artifact bundle to analyze.
    select:
        When given, run only these codes (prefixes like ``SCH`` expand).
    ignore:
        Codes (or prefixes) to disable.
    severities:
        Per-code severity overrides, e.g. ``{"THY001": Severity.ERROR}``
        to turn the optimality warning into a gating error.
    instrument:
        Optional :class:`~repro.obs.Instrumentation`; per-rule timings
        land in the ``lint.rule_us`` histogram and one span per rule.
    """
    obs = resolve(instrument)
    enabled = set(resolve_codes(select)) if select is not None else set(RULES)
    if ignore is not None:
        enabled -= set(resolve_codes(ignore))
    overrides = {
        code: sev for code, sev in (severities or {}).items()
    }
    for code in overrides:
        if code not in RULES:
            resolve_codes([code])  # raises with the known-code list

    report = LintReport()
    with obs.span("lint.run", n_rules=len(enabled)):
        for code, rule in RULES.items():
            if code not in enabled:
                continue
            if not rule.applicable(context):
                report.rules_skipped.append(code)
                continue
            report.rules_run.append(code)
            severity = overrides.get(code)
            produced = 0
            with obs.span("lint.rule", code=code) as rule_span:
                for diag in rule.check(context):
                    produced += 1
                    if produced > MAX_DIAGNOSTICS_PER_RULE:
                        continue
                    if severity is not None and diag.severity != severity:
                        diag = Diagnostic(
                            code=diag.code,
                            severity=severity,
                            message=diag.message,
                            datum=diag.datum,
                            window=diag.window,
                            processor=diag.processor,
                            hint=diag.hint,
                        )
                    report.diagnostics.append(diag)
                rule_span.set(findings=produced)
            if obs.enabled:
                obs.observe("lint.rule_us", rule_span.duration_us)
            if produced > MAX_DIAGNOSTICS_PER_RULE:
                report.diagnostics.append(
                    Diagnostic(
                        code=code,
                        severity=Severity.INFO,
                        message=(
                            f"{produced - MAX_DIAGNOSTICS_PER_RULE} further "
                            f"{code} diagnostics suppressed "
                            f"(showing first {MAX_DIAGNOSTICS_PER_RULE})"
                        ),
                    )
                )
        obs.count("lint.diagnostics.error", report.n_errors)
        obs.count("lint.diagnostics.warning", report.n_warnings)
        obs.count("lint.diagnostics.info", report.n_infos)
    return report
