"""FLT0xx: static contradictions inside and around a fault plan.

A fault plan can be wrong three ways: it can fail to fit the machine
(FLT001/FLT002, shared with :meth:`repro.faults.FaultPlan.validate_for`),
it can be physically meaningless (FLT003: a link fault naming a wire that
does not exist), or it can be *jointly* inconsistent with the other
artifacts — killing every processor of some window (FLT004), leaving the
survivors too small to hold the data so evacuation must strand items
(FLT005), or contradicting a schedule that still places data on nodes
the plan takes down (FLT006).
"""

from __future__ import annotations

import numpy as np

from ..diagnostics import (
    FLT001,
    FLT002,
    FLT003,
    FLT004,
    FLT005,
    FLT006,
    FLT007,
    FLT008,
    Diagnostic,
    Severity,
)
from ..grid import structural_neighbors
from .registry import rule

__all__ = []


def _horizon(context) -> int:
    """Window horizon to sweep: the schedule's, else past the last fault."""
    if context.n_windows is not None:
        return context.n_windows
    starts = [f.start for f in context.faults.node_faults]
    starts += [f.start for f in context.faults.link_faults]
    return (max(starts) + 1) if starts else 1


@rule(
    FLT001,
    "fault outside the array",
    severity=Severity.ERROR,
    requires=("faults", "topology"),
)
def check_plan_fits_machine(context):
    """A node/link fault names a processor the array does not have."""
    for diag in context.faults.config_violations(context.topology):
        if diag.code == FLT001:
            yield diag


@rule(
    FLT002,
    "fault outside the horizon",
    severity=Severity.ERROR,
    requires=("faults",),
)
def check_plan_fits_horizon(context):
    """A fault activates at a window the schedule never reaches."""
    if context.n_windows is None:
        return
    for diag in context.faults.config_violations(None, context.n_windows):
        if diag.code == FLT002:
            yield diag


@rule(
    FLT003,
    "non-adjacent link fault",
    severity=Severity.ERROR,
    requires=("faults", "topology"),
)
def check_link_adjacency(context):
    """A link fault severs a wire between processors that share no wire."""
    topology = context.topology
    n = topology.n_procs
    for f in context.faults.link_faults:
        if f.src >= n or f.dst >= n:
            continue  # FLT001 owns out-of-range pids
        if f.dst not in structural_neighbors(topology, f.src):
            yield Diagnostic(
                code=FLT003,
                severity=Severity.ERROR,
                message=(
                    f"link fault {f.src} -> {f.dst} names a non-adjacent "
                    f"pair; the mesh has no such wire"
                ),
                processor=f.src,
                hint="list each wire of the multi-hop route as its own fault",
            )


@rule(
    FLT004,
    "whole-array death",
    severity=Severity.ERROR,
    requires=("faults", "topology"),
)
def check_survivors_exist(context):
    """Some window has no surviving processor at all."""
    topology = context.topology
    all_pids = frozenset(range(topology.n_procs))
    for w in range(_horizon(context)):
        if context.faults.down_nodes(w) >= all_pids:
            yield Diagnostic(
                code=FLT004,
                severity=Severity.ERROR,
                message=(
                    f"window {w} has no surviving processor; the fault plan "
                    "kills the whole array"
                ),
                window=w,
                hint="keep at least one node alive (see FaultPlan.random's "
                "min_survivors)",
            )


@rule(
    FLT005,
    "insufficient surviving capacity",
    severity=Severity.ERROR,
    requires=("faults", "topology", "capacity"),
)
def check_surviving_capacity(context):
    """The survivors' memories cannot hold the data; evacuation must strand."""
    n_data = context.n_data
    if n_data is None:
        return
    capacities = context.capacity.capacities
    if len(capacities) != context.topology.n_procs:
        return  # SCH004 owns the shape mismatch
    for w in range(_horizon(context)):
        down = [p for p in context.faults.down_nodes(w) if p < len(capacities)]
        alive_total = int(capacities.sum()) - int(capacities[down].sum())
        if n_data > alive_total:
            yield Diagnostic(
                code=FLT005,
                severity=Severity.ERROR,
                message=(
                    f"{n_data} data items cannot fit into the {alive_total} "
                    f"slots surviving window {w}'s node faults"
                ),
                window=w,
                hint="evacuation will strand data; shrink the plan or add "
                "memory headroom",
            )


@rule(
    FLT006,
    "schedule contradicts the fault plan",
    severity=Severity.ERROR,
    requires=("faults", "schedule"),
)
def check_schedule_avoids_dead_nodes(context):
    """The schedule stores a datum on a node that is down in that window."""
    schedule = context.schedule
    centers = schedule.centers
    for w in range(schedule.n_windows):
        down = context.faults.down_nodes(w)
        if not down:
            continue
        dead_mask = np.isin(centers[:, w], list(down))
        for d in np.nonzero(dead_mask)[0]:
            yield Diagnostic(
                code=FLT006,
                severity=Severity.ERROR,
                message=(
                    f"scheduled center {int(centers[d, w])} is down during "
                    "this window; the replay would have to evacuate"
                ),
                datum=int(d),
                window=w,
                processor=int(centers[d, w]),
                hint="recompute the schedule with reschedule_around_faults",
            )


@rule(
    FLT007,
    "checkpoint interval out of range",
    severity=Severity.ERROR,
    requires=("recovery",),
)
def check_checkpoint_interval(context):
    """The recovery policy's checkpoint cadence misfits the horizon.

    Delegates to :meth:`RecoveryPolicy.config_violations`, the same
    generator the :class:`~repro.faults.RecoveryController` runs at
    construction, so lint and runtime report identical messages.
    """
    for diag in context.recovery.config_violations(n_windows=context.n_windows):
        if diag.code == FLT007:
            yield diag


@rule(
    FLT008,
    "replicate mode without replicas",
    severity=Severity.ERROR,
    requires=("recovery",),
)
def check_replicate_has_replicas(context):
    """Recovery mode ``replicate`` with no replica placement to fall back on."""
    for diag in context.recovery.config_violations(
        has_replicas=context.replicas is not None
    ):
        if diag.code == FLT008:
            yield diag
