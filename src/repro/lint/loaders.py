"""Build lint contexts from artifact files or named workloads.

Loading is itself part of linting: a corrupt archive must come back as a
coded diagnostic (exit 2), not a traceback.  ``load_context`` therefore
converts loader exceptions into :class:`~repro.diagnostics.Diagnostic`
records, recovering the code embedded in the error message when the
raising site supplied one (the ``[TRC001]``-style prefixes written by
:mod:`repro.trace.io` and :mod:`repro.faults.plan`).
"""

from __future__ import annotations

import re

from ..diagnostics import FLT001, SCH004, TRC001, Diagnostic, Severity
from ..faults import FaultConfigError, FaultPlan
from ..grid import Topology
from ..mem import CapacityPlan
from ..trace import load_schedule, load_trace
from .context import LintContext

__all__ = ["load_context", "workload_context"]

_CODE_RE = re.compile(r"\[([A-Z]{3}\d{3})\]")


def _as_diagnostic(exc: Exception, fallback_code: str) -> Diagnostic:
    """Wrap a loader failure, preferring the code the raiser embedded."""
    text = str(exc)
    match = _CODE_RE.search(text)
    code = match.group(1) if match else fallback_code
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        message=_CODE_RE.sub("", text).replace("  ", " ").strip(),
    )


def load_context(
    schedule_path=None,
    trace_path=None,
    faults_path=None,
    topology: Topology | None = None,
    capacity: CapacityPlan | None = None,
) -> tuple[LintContext, list[Diagnostic]]:
    """Load artifacts from disk into a context, collecting load failures.

    Returns the (possibly partial) context plus the diagnostics for every
    artifact that failed to load; callers fold the latter into the lint
    report so a truncated archive gates CI exactly like a bad schedule.
    """
    failures: list[Diagnostic] = []
    schedule = trace = windows = faults = None

    if trace_path is not None:
        try:
            trace, windows = load_trace(trace_path)
        except ValueError as exc:
            failures.append(_as_diagnostic(exc, TRC001))
    if schedule_path is not None:
        try:
            schedule = load_schedule(schedule_path)
        except ValueError as exc:
            failures.append(_as_diagnostic(exc, SCH004))
    if faults_path is not None:
        try:
            faults = FaultPlan.load_json(faults_path)
        except (FaultConfigError, OSError) as exc:
            failures.append(_as_diagnostic(exc, FLT001))

    context = LintContext(
        schedule=schedule,
        trace=trace,
        windows=windows,
        topology=topology,
        capacity=capacity,
        faults=faults,
    )
    return context, failures


def workload_context(
    bench: int,
    size: int,
    topology: Topology,
    scheduler: str = "GOMCDS",
    seed: int = 1998,
    capacity_multiplier: float = 2.0,
    faults: FaultPlan | None = None,
) -> LintContext:
    """Generate a named paper workload, schedule it, and wrap it for lint.

    This is the CI gating path: every bundled benchmark scheduled by the
    production scheduler must lint clean.
    """
    from ..core import CostModel, scheduler_spec
    from ..workloads import benchmark

    workload = benchmark(bench, size, topology, seed=seed)
    tensor = workload.reference_tensor()
    model = CostModel(topology)
    capacity = CapacityPlan.paper_rule(
        workload.n_data, topology.n_procs, multiplier=capacity_multiplier
    )
    schedule = scheduler_spec(scheduler)(tensor, model, capacity)
    return LintContext(
        schedule=schedule,
        trace=workload.trace,
        windows=workload.windows,
        topology=topology,
        capacity=capacity,
        faults=faults,
        model=model,
    )
