"""Per-processor memory capacity model.

"To be realistic, we assume each processor in the processor array can
hold a limited number of data" (paper, §3.1).  The paper's experiments
set each processor's memory to *twice* the minimum it would need under a
perfectly balanced distribution — e.g. 8×8 data on a 4×4 array gives a
capacity of eight items per processor.  :func:`CapacityPlan.paper_rule`
reproduces that sizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..diagnostics import SCH002, code_message, coord_suffix

__all__ = ["CapacityError", "CapacityPlan"]


class CapacityError(RuntimeError):
    """Raised when data cannot be placed without violating capacities.

    Messages carry the stable diagnostic code of the violated invariant
    (``SCH002`` for capacity overflows; see ``docs/lint.md``) plus the
    offending ``(datum, window, processor)`` coordinates where known, so
    a dynamic failure reads exactly like the static lint finding.
    """

    def __init__(
        self,
        message: str,
        datum: int | None = None,
        window: int | None = None,
        processor: int | None = None,
        code: str = SCH002,
    ) -> None:
        super().__init__(
            code_message(code, message) + coord_suffix(datum, window, processor)
        )
        self.code = code
        self.datum = datum
        self.window = window
        self.processor = processor


@dataclass(frozen=True)
class CapacityPlan:
    """Number of data items each processor's local memory can hold."""

    capacities: np.ndarray

    def __post_init__(self) -> None:
        caps = np.asarray(self.capacities, dtype=np.int64)
        object.__setattr__(self, "capacities", caps)
        if caps.ndim != 1 or len(caps) == 0:
            raise ValueError("capacities must be a non-empty 1-D vector")
        if caps.min() < 0:
            raise ValueError("capacities must be non-negative")

    @property
    def n_procs(self) -> int:
        return len(self.capacities)

    @property
    def total(self) -> int:
        return int(self.capacities.sum())

    def check_feasible(self, n_data: int) -> None:
        """Raise :class:`CapacityError` unless ``n_data`` items can fit."""
        if n_data > self.total:
            raise CapacityError(
                f"{n_data} data items cannot fit into total capacity {self.total}"
            )

    @staticmethod
    def uniform(n_procs: int, capacity: int) -> "CapacityPlan":
        """Every processor holds at most ``capacity`` items."""
        if n_procs < 1:
            raise ValueError("n_procs must be positive")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        return CapacityPlan(np.full(n_procs, capacity, dtype=np.int64))

    @staticmethod
    def unbounded(n_procs: int, n_data: int) -> "CapacityPlan":
        """Effectively infinite memory: every processor can hold all data."""
        return CapacityPlan.uniform(n_procs, max(int(n_data), 1))

    @staticmethod
    def paper_rule(n_data: int, n_procs: int, multiplier: float = 2.0) -> "CapacityPlan":
        """The experiments' sizing: ``multiplier``× the balanced minimum.

        The minimum per-processor memory for ``n_data`` items on
        ``n_procs`` processors is ``ceil(n_data / n_procs)``; the paper's
        tables use ``multiplier = 2`` ("the memory size of processor is
        twice more than the minimum memory size it requires").
        """
        if n_data < 1 or n_procs < 1:
            raise ValueError("n_data and n_procs must be positive")
        if multiplier < 1.0:
            raise ValueError("multiplier below 1 cannot fit the data at all")
        minimum = ceil(n_data / n_procs)
        return CapacityPlan.uniform(n_procs, int(ceil(minimum * multiplier)))
