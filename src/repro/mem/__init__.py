"""Memory substrate: capacities and the processor-list allocator."""

from .allocator import OccupancyTracker, first_available
from .capacity import CapacityError, CapacityPlan

__all__ = ["CapacityPlan", "CapacityError", "OccupancyTracker", "first_available"]
