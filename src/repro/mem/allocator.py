"""Per-window occupancy tracking: the paper's "processor list" mechanism.

When the center chosen for a datum is already full, Algorithm 1 walks the
datum's processor list — all processors sorted by ascending cost — and
takes the *first available* one.  For multiple-center schedules the same
rule applies per window, and a datum placed in window ``w`` consumes one
slot of its center for the duration of that window.

:class:`OccupancyTracker` maintains the ``(n_windows, n_procs)`` slot
counts and answers availability queries for single windows, window ranges
(grouped windows) and all windows at once (static placement).
"""

from __future__ import annotations

import numpy as np

from .capacity import CapacityError, CapacityPlan

__all__ = ["OccupancyTracker", "first_available"]


class OccupancyTracker:
    """Mutable per-window slot accounting against a :class:`CapacityPlan`."""

    def __init__(self, plan: CapacityPlan, n_windows: int) -> None:
        if n_windows < 1:
            raise ValueError("n_windows must be positive")
        self.plan = plan
        self.n_windows = n_windows
        self._occupancy = np.zeros((n_windows, plan.n_procs), dtype=np.int64)

    @property
    def n_procs(self) -> int:
        return self.plan.n_procs

    @property
    def occupancy(self) -> np.ndarray:
        """Read-only view of the current ``(n_windows, n_procs)`` counts."""
        view = self._occupancy.view()
        view.setflags(write=False)
        return view

    def snapshot(self) -> np.ndarray:
        """Copy of the current occupancy, for transactional assignment."""
        return self._occupancy.copy()

    def restore(self, state: np.ndarray) -> None:
        """Roll occupancy back to a previously taken :meth:`snapshot`."""
        if state.shape != self._occupancy.shape:
            raise ValueError("snapshot shape does not match this tracker")
        self._occupancy = state.copy()

    def available_in_window(self, w: int) -> np.ndarray:
        """Boolean mask of processors with a free slot in window ``w``."""
        return self._occupancy[w] < self.plan.capacities

    def available_in_range(self, first: int, last: int) -> np.ndarray:
        """Processors with a free slot in *every* window of ``first..last``
        (inclusive) — the availability rule for a grouped window."""
        if not 0 <= first <= last < self.n_windows:
            raise ValueError(f"bad window range [{first}, {last}]")
        occ = self._occupancy[first : last + 1]
        return (occ < self.plan.capacities[None, :]).all(axis=0)

    def available_everywhere(self) -> np.ndarray:
        """Processors free in all windows (for static placement)."""
        return self.available_in_range(0, self.n_windows - 1)

    def available_mask(self) -> np.ndarray:
        """Full ``(n_windows, n_procs)`` availability mask."""
        return self._occupancy < self.plan.capacities[None, :]

    def claim(self, proc: int, first: int, last: int | None = None) -> None:
        """Consume one slot at ``proc`` for windows ``first..last``.

        Raises :class:`CapacityError` if any window is already full.
        """
        last = first if last is None else last
        if not 0 <= first <= last < self.n_windows:
            raise ValueError(f"bad window range [{first}, {last}]")
        if not self.available_in_range(first, last)[proc]:
            raise CapacityError(
                f"processor {proc} has no free slot in windows {first}..{last}",
                window=first,
                processor=proc,
            )
        self._occupancy[first : last + 1, proc] += 1

    def claim_path(self, centers: np.ndarray) -> None:
        """Consume one slot per window along a per-window center path."""
        centers = np.asarray(centers)
        if centers.shape != (self.n_windows,):
            raise ValueError("path must assign one center per window")
        mask = self.available_mask()
        rows = np.arange(self.n_windows)
        if not mask[rows, centers].all():
            bad = int(rows[~mask[rows, centers]][0])
            raise CapacityError(
                f"processor {int(centers[bad])} full in window {bad}",
                window=bad,
                processor=int(centers[bad]),
            )
        np.add.at(self._occupancy, (rows, centers), 1)


def first_available(cost_row: np.ndarray, available: np.ndarray) -> int:
    """The paper's processor-list scan.

    Sort processors by ascending cost (stable: ties break toward the
    lowest pid, keeping every scheduler deterministic) and return the
    first with a free slot.
    """
    ranked = np.argsort(cost_row, kind="stable")
    free = available[ranked]
    if not free.any():
        raise CapacityError("no processor has a free slot for this datum")
    return int(ranked[np.argmax(free)])
