"""Batch fan-out: solve many scheduling requests as one operation.

``schedule_many`` is the throughput face of the :func:`repro.schedule`
facade.  It takes a list of :class:`ScheduleRequest` descriptions and
returns one schedule per request, in request order, with three
optimizations stacked underneath:

* **dedup** — requests that canonicalize to the same content address
  (:func:`repro.engine.cache.solve_key`) are solved once;
* **cache** — an optional shared :class:`~repro.engine.cache.SolveCache`
  answers repeats across batches (and across processes, via its disk
  store) without running a solver;
* **fan-out** — remaining unique solves dispatch over a process pool
  when ``workers > 1``.

Result ordering is deterministic and *independent of worker count*:
outputs are keyed by content address and re-assembled in request order,
so ``workers=8`` returns exactly what ``workers=1`` returns.  Worker
processes solve with a no-op instrumentation handle (handles do not
cross process boundaries); the parent records one ``engine.request``
span per unique solve plus batch-level counters.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Mapping, Sequence

from ..core import Schedule, scheduler_spec
from ..obs import Instrumentation, resolve
from .cache import SolveCache, solve_key

__all__ = ["ScheduleRequest", "schedule_many"]


@dataclass(frozen=True)
class ScheduleRequest:
    """One unit of batch work: a problem plus how to solve it.

    ``options`` holds algorithm-specific keywords exactly as
    :func:`repro.schedule` accepts them (``certify``, ``kernel``,
    ``hysteresis``); ``label`` is free-form and only used for spans and
    human-readable output — it does not participate in the cache key.
    """

    tensor: object
    model: object
    capacity: object = None
    algorithm: str = "gomcds"
    options: Mapping = field(default_factory=dict)
    label: str | None = None

    def solve_key(self) -> str:
        """Content address of this request (see :mod:`repro.engine.cache`)."""
        return solve_key(
            self.tensor,
            self.model,
            self.capacity,
            self.algorithm,
            dict(self.options),
        )


def _effective_options(request: ScheduleRequest, kernel: str | None) -> dict:
    """Request options with the batch-level kernel default applied.

    A kernel named by the request itself wins; the batch default only
    fills the gap, and only for algorithms that accept one.
    """
    options = dict(request.options)
    if kernel is not None and "kernel" not in options:
        spec = scheduler_spec(request.algorithm)
        if "kernel" in spec.supported_kwargs:
            options["kernel"] = kernel
    return options


def _solve_one(request: ScheduleRequest, kernel: str | None):
    """Solve a single request; runs in worker processes (no-op obs)."""
    from ..api import schedule

    start = perf_counter()
    solved = schedule(
        request.tensor,
        request.model,
        algorithm=request.algorithm,
        capacity=request.capacity,
        **_effective_options(request, kernel),
    )
    return solved, perf_counter() - start


def schedule_many(
    requests: Sequence[ScheduleRequest],
    *,
    workers: int = 1,
    cache: SolveCache | None = None,
    kernel: str | None = None,
    instrument: Instrumentation | None = None,
) -> list[Schedule]:
    """Solve every request, in order, with dedup + cache + fan-out.

    Parameters
    ----------
    requests:
        The batch; duplicates (same content address) are solved once.
    workers:
        Process-pool width for the unique cache misses.  ``1`` (the
        default) solves inline; any value returns identical results.
    cache:
        Optional shared :class:`SolveCache`.  When given, results are
        the cache's deep-frozen copies (read-only arrays) and repeats
        across calls are answered without solving.
    kernel:
        Batch-wide default solver kernel, overridable per request via
        ``options["kernel"]``.
    instrument:
        Parent-side instrumentation; counters land under ``engine.*``.

    Returns
    -------
    ``list[Schedule]`` aligned with ``requests``.
    """
    obs = resolve(instrument)
    requests = list(requests)
    for i, request in enumerate(requests):
        if not isinstance(request, ScheduleRequest):
            raise TypeError(
                f"requests[{i}] is {type(request).__name__}, expected "
                "ScheduleRequest"
            )
    if workers < 1:
        raise ValueError("workers must be positive")
    if not requests:
        return []

    with obs.span(
        "engine.batch",
        n_requests=len(requests),
        workers=workers,
        cached=cache is not None,
    ):
        keys = [request.solve_key() for request in requests]
        solved: dict[str, Schedule] = {}
        pending: list[tuple[str, ScheduleRequest]] = []
        pending_keys: set[str] = set()
        for key, request in zip(keys, requests):
            if key in solved or key in pending_keys:
                continue
            hit = cache.get(key, instrument=obs) if cache is not None else None
            if hit is not None:
                solved[key] = hit
            else:
                pending.append((key, request))
                pending_keys.add(key)
        obs.count("engine.batch.requests", len(requests))
        obs.count(
            "engine.batch.dedup_hits",
            len(requests) - len(solved) - len(pending),
        )

        if workers == 1 or len(pending) <= 1:
            outcomes = []
            for key, request in pending:
                with obs.span(
                    "engine.request",
                    algorithm=request.algorithm,
                    label=request.label,
                ):
                    outcomes.append(_solve_one(request, kernel))
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_solve_one, request, kernel)
                    for _, request in pending
                ]
                outcomes = [future.result() for future in futures]

        for (key, request), (schedule_result, elapsed) in zip(
            pending, outcomes
        ):
            obs.observe("engine.request_us", elapsed * 1e6)
            if cache is not None:
                schedule_result = cache.put(
                    key, schedule_result, instrument=obs
                )
            solved[key] = schedule_result
        obs.count("engine.batch.solved", len(pending))
    return [solved[key] for key in keys]
