"""Batch fan-out: solve many scheduling requests as one operation.

``schedule_many`` is the throughput face of the :func:`repro.schedule`
facade.  It takes a list of :class:`ScheduleRequest` descriptions and
returns one schedule per request, in request order, with three
optimizations stacked underneath:

* **dedup** — requests that canonicalize to the same content address
  (:func:`repro.engine.cache.solve_key`) are solved once;
* **cache** — an optional shared :class:`~repro.engine.cache.SolveCache`
  answers repeats across batches (and across processes, via its disk
  store) without running a solver;
* **fan-out** — remaining unique solves dispatch over a process pool
  when ``workers > 1``.

Result ordering is deterministic and *independent of worker count*:
outputs are keyed by content address and re-assembled in request order,
so ``workers=8`` returns exactly what ``workers=1`` returns.

Telemetry is harvested across the process boundary: when the parent
runs under a recording :class:`~repro.obs.Instrumentation`, each pool
worker solves with its *own* recording session, flattens it into a
picklable :class:`~repro.obs.TelemetrySnapshot` (spans, counters,
histograms, flight-recorder events) returned alongside the result, and
the parent merges every snapshot back with per-worker ``worker``/
``worker_pid`` attribution — one unified timeline, whole-batch
``engine.cache.*`` counters.  Telemetry never changes schedules: the
worker session is observational and the cache key excludes
``instrument`` by construction.  The inline ``workers=1`` path records
the same ``engine.*`` counter set, so summaries are comparable across
worker counts.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Mapping, Sequence

from ..core import Schedule, scheduler_spec
from ..obs import (
    Instrumentation,
    flight_recorder,
    merge_snapshot,
    record_event,
    resolve,
    snapshot,
)
from ..obs.recorder import dump_on_error
from .cache import SolveCache, solve_key

__all__ = ["ScheduleRequest", "schedule_many"]


@dataclass(frozen=True)
class ScheduleRequest:
    """One unit of batch work: a problem plus how to solve it.

    ``options`` holds algorithm-specific keywords exactly as
    :func:`repro.schedule` accepts them (``certify``, ``kernel``,
    ``hysteresis``); ``label`` is free-form and only used for spans and
    human-readable output — it does not participate in the cache key.
    """

    tensor: object
    model: object
    capacity: object = None
    algorithm: str = "gomcds"
    options: Mapping = field(default_factory=dict)
    label: str | None = None

    def solve_key(self) -> str:
        """Content address of this request (see :mod:`repro.engine.cache`)."""
        return solve_key(
            self.tensor,
            self.model,
            self.capacity,
            self.algorithm,
            dict(self.options),
        )


def _effective_options(request: ScheduleRequest, kernel: str | None) -> dict:
    """Request options with the batch-level kernel default applied.

    A kernel named by the request itself wins; the batch default only
    fills the gap, and only for algorithms that accept one.
    """
    options = dict(request.options)
    if kernel is not None and "kernel" not in options:
        spec = scheduler_spec(request.algorithm)
        if "kernel" in spec.supported_kwargs:
            options["kernel"] = kernel
    return options


def _worker_init() -> None:
    """Pool-worker initializer: keep worker stderr quiet.

    Workers import and solve through the facade; the deprecation
    warnings aimed at *users* of the legacy direct-call surface must
    not leak from worker processes to the parent's stderr once per
    task, so they are filtered out for the worker's lifetime.
    """
    warnings.filterwarnings(
        "ignore",
        message=r"calling \w+\(\) directly is deprecated",
        category=DeprecationWarning,
    )


def _solve_one(
    request: ScheduleRequest,
    kernel: str | None,
    instrument: Instrumentation | None = None,
):
    """Solve a single request under ``instrument`` (None = no-op)."""
    from ..api import schedule

    start = perf_counter()
    solved = schedule(
        request.tensor,
        request.model,
        algorithm=request.algorithm,
        capacity=request.capacity,
        instrument=instrument,
        **_effective_options(request, kernel),
    )
    return solved, perf_counter() - start


def _label_decisions(store, request: ScheduleRequest, start: int = 0) -> None:
    """Stamp the request label onto decision logs it produced."""
    for log in store.logs[start:]:
        if log.label is None:
            log.label = request.label


def _solve_in_worker(
    request: ScheduleRequest,
    kernel: str | None,
    collect: bool,
    provenance: bool = False,
):
    """Pool-worker entry: solve, optionally harvesting telemetry.

    With ``collect`` the solve runs under a fresh recording session —
    solver phase spans, counters, decision logs (when the parent session
    records provenance) and the worker's flight-recorder events for
    *this task* are flattened into a snapshot and shipped home with the
    result.  Handles never cross the boundary; snapshots do.
    """
    if not collect:
        solved, elapsed = _solve_one(request, kernel)
        return solved, elapsed, None
    instr = Instrumentation.started(provenance=provenance)
    ring = flight_recorder()
    watermark = ring.next_seq
    record_event(
        "solve.start", algorithm=request.algorithm, label=request.label
    )
    with instr.span(
        "engine.request", algorithm=request.algorithm, label=request.label
    ):
        solved, elapsed = _solve_one(request, kernel, instrument=instr)
    record_event(
        "solve.end",
        algorithm=request.algorithm,
        label=request.label,
        elapsed_us=elapsed * 1e6,
    )
    _label_decisions(instr.provenance, request)
    snap = snapshot(
        instr, label=request.label, events=ring.events_since(watermark)
    )
    return solved, elapsed, snap


def schedule_many(
    requests: Sequence[ScheduleRequest],
    *,
    workers: int = 1,
    cache: SolveCache | None = None,
    kernel: str | None = None,
    instrument: Instrumentation | None = None,
) -> list[Schedule]:
    """Solve every request, in order, with dedup + cache + fan-out.

    Parameters
    ----------
    requests:
        The batch; duplicates (same content address) are solved once.
    workers:
        Process-pool width for the unique cache misses.  ``1`` (the
        default) solves inline; any value returns identical results.
    cache:
        Optional shared :class:`SolveCache`.  When given, results are
        the cache's deep-frozen copies (read-only arrays) and repeats
        across calls are answered without solving.
    kernel:
        Batch-wide default solver kernel, overridable per request via
        ``options["kernel"]``.
    instrument:
        Parent-side instrumentation; counters land under ``engine.*``
        and, when recording, worker telemetry is harvested and merged
        with per-worker attribution (``docs/observability.md``).

    Returns
    -------
    ``list[Schedule]`` aligned with ``requests``.
    """
    obs = resolve(instrument)
    requests = list(requests)
    for i, request in enumerate(requests):
        if not isinstance(request, ScheduleRequest):
            raise TypeError(
                f"requests[{i}] is {type(request).__name__}, expected "
                "ScheduleRequest"
            )
    if workers < 1:
        raise ValueError("workers must be positive")
    if not requests:
        return []

    with obs.span(
        "engine.batch",
        n_requests=len(requests),
        workers=workers,
        cached=cache is not None,
    ):
        record_event(
            "batch.start", n_requests=len(requests), workers=workers
        )
        keys = [request.solve_key() for request in requests]
        solved: dict[str, Schedule] = {}
        pending: list[tuple[str, ScheduleRequest]] = []
        pending_keys: set[str] = set()
        for key, request in zip(keys, requests):
            if key in solved or key in pending_keys:
                continue
            hit = cache.get(key, instrument=obs) if cache is not None else None
            if hit is not None:
                solved[key] = hit
            else:
                pending.append((key, request))
                pending_keys.add(key)
        # the same counter set is recorded on the inline and pooled
        # paths, so summaries are comparable across worker counts
        obs.count("engine.batch.requests", len(requests))
        obs.count(
            "engine.batch.dedup_hits",
            len(requests) - len(solved) - len(pending),
        )
        obs.count("engine.pool.requests", len(pending))
        obs.count("engine.pool.dedup_hits", len(requests) - len(pending))
        obs.gauge("engine.pool.workers", 1 if len(pending) <= 1 else workers)
        obs.gauge("engine.pool.queue_depth", len(pending))

        try:
            outcomes = _run_pending(pending, workers, kernel, obs)
        except Exception:
            dump_on_error(
                f"schedule_many({len(requests)} requests, workers={workers})"
            )
            raise

        for (key, request), (schedule_result, elapsed) in zip(
            pending, outcomes
        ):
            obs.observe("engine.request_us", elapsed * 1e6)
            if cache is not None:
                schedule_result = cache.put(
                    key, schedule_result, instrument=obs
                )
            solved[key] = schedule_result
        obs.count("engine.batch.solved", len(pending))
        record_event(
            "batch.end", n_requests=len(requests), solved=len(pending)
        )
    return [solved[key] for key in keys]


def _run_pending(pending, workers, kernel, obs):
    """Execute the unique solves; returns ``(schedule, elapsed)`` pairs.

    Inline (``workers=1`` or a single pending solve) records straight
    into the parent session — same spans, same counters as a worker
    would produce.  The pooled path harvests one
    :class:`~repro.obs.TelemetrySnapshot` per solve and merges it with
    a stable per-worker lane id (first-seen order of worker pids).
    """
    if workers == 1 or len(pending) <= 1:
        outcomes = []
        for key, request in pending:
            record_event(
                "solve.start", algorithm=request.algorithm, label=request.label
            )
            logged = len(obs.provenance)
            with obs.span(
                "engine.request",
                algorithm=request.algorithm,
                label=request.label,
            ):
                solved, elapsed = _solve_one(request, kernel, instrument=obs)
            record_event(
                "solve.end",
                algorithm=request.algorithm,
                label=request.label,
                elapsed_us=elapsed * 1e6,
            )
            _label_decisions(obs.provenance, request, start=logged)
            outcomes.append((solved, elapsed))
        return outcomes

    collect = obs.enabled
    provenance = obs.provenance.recording
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_init
    ) as pool:
        futures = [
            pool.submit(_solve_in_worker, request, kernel, collect, provenance)
            for _, request in pending
        ]
        results = [future.result() for future in futures]
    lanes: dict[int, int] = {}  # worker pid -> stable worker id
    outcomes = []
    for solved, elapsed, snap in results:
        if snap is not None:
            worker_id = lanes.setdefault(snap.pid, len(lanes) + 1)
            merge_snapshot(obs, snap, worker_id=worker_id)
        outcomes.append((solved, elapsed))
    return outcomes
