"""Content-addressed solve cache: hash the problem, reuse the schedule.

Two solve requests that describe the *same mathematical problem* — same
reference counts, same windowing, same cost metric and volumes, same
capacity plan, same algorithm and options — produce the same schedule,
so the second one need not run the solver at all.  :func:`solve_key`
canonicalizes a request into a sha256 content address:

* array inputs are digested from their canonical bytes (C-contiguous
  int64/float64), so two tensors that are *equal* but live in different
  memory orders or integer dtypes hash alike;
* the cost model is digested through its realized distance matrix, not
  the topology object, so two topology classes inducing the same metric
  share entries;
* algorithm names are case-folded and options are JSON-canonicalized
  (sorted keys).  The ``kernel`` option is *excluded* from the key: the
  kernels are bit-identical by contract (property-tested), so a python
  solve may be answered from a numpy one and vice versa.  ``instrument``
  never participates.

:class:`SolveCache` fronts an in-memory LRU with an optional on-disk
store (one pickle per key, written atomically).  Cached schedules are
deep-frozen — center and certificate arrays are read-only — so a hit
can be shared between callers without defensive copies.  Hit/miss/
eviction counters flow through the ``obs`` metrics registry under
``engine.cache.*``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..core import Schedule
from ..obs import Instrumentation, record_event, resolve

__all__ = ["SolveCache", "solve_key", "deep_freeze", "CACHE_KEY_VERSION"]

#: Bump when the key derivation changes so stale disk entries can never
#: be confused with current ones.
CACHE_KEY_VERSION = 1

#: Options that never change the solved schedule and are therefore left
#: out of the content address.
_NON_SEMANTIC_OPTIONS = frozenset({"kernel", "instrument"})


def _array_bytes(array: np.ndarray, dtype) -> bytes:
    """Canonical bytes: C-contiguous in the given dtype."""
    return np.ascontiguousarray(array, dtype=dtype).tobytes()


def _digest_tensor(hasher, tensor) -> None:
    hasher.update(b"tensor")
    hasher.update(repr(tensor.counts.shape).encode())
    hasher.update(_array_bytes(tensor.counts, np.int64))
    hasher.update(b"windows")
    hasher.update(_array_bytes(tensor.windows.starts, np.int64))
    hasher.update(str(int(tensor.windows.n_steps)).encode())


def _digest_model(hasher, model) -> None:
    hasher.update(b"distances")
    hasher.update(repr(model.distances.shape).encode())
    hasher.update(_array_bytes(model.distances, np.int64))
    hasher.update(b"volumes")
    if model.volumes is None:
        hasher.update(b"unit")
    else:
        hasher.update(_array_bytes(np.asarray(model.volumes), np.float64))


def _digest_capacity(hasher, capacity) -> None:
    hasher.update(b"capacity")
    if capacity is None:
        hasher.update(b"none")
    else:
        hasher.update(_array_bytes(capacity.capacities, np.int64))


def solve_key(
    tensor,
    model,
    capacity=None,
    algorithm: str = "gomcds",
    options: dict | None = None,
) -> str:
    """Sha256 content address of one solve request (hex digest).

    Raises ``TypeError`` when an option value is not JSON-serializable —
    an option the key cannot see must not silently alias cache entries.
    """
    hasher = hashlib.sha256()
    hasher.update(f"repro-solve-v{CACHE_KEY_VERSION}".encode())
    _digest_tensor(hasher, tensor)
    _digest_model(hasher, model)
    _digest_capacity(hasher, capacity)
    name = algorithm if isinstance(algorithm, str) else algorithm.name
    hasher.update(b"algorithm")
    hasher.update(name.upper().encode())
    semantic = {
        k: v
        for k, v in (options or {}).items()
        if k not in _NON_SEMANTIC_OPTIONS
    }
    try:
        canonical = json.dumps(semantic, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"solve options are not content-addressable: {exc}"
        ) from exc
    hasher.update(b"options")
    hasher.update(canonical.encode())
    return hasher.hexdigest()


def _frozen_array(value: np.ndarray) -> np.ndarray:
    out = np.array(value, copy=True)
    out.setflags(write=False)
    return out


def _freeze_value(value):
    if isinstance(value, np.ndarray):
        return _frozen_array(value)
    if isinstance(value, dict):
        return {k: _freeze_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    return value


def deep_freeze(schedule: Schedule) -> Schedule:
    """Read-only copy of a schedule, certificates included.

    The centers array and every array nested in ``meta`` (certificate
    potentials, masks, …) come back with ``writeable=False``, so cache
    hits can be handed to many callers without aliasing hazards.
    """
    return Schedule(
        centers=_frozen_array(schedule.centers),
        windows=schedule.windows,
        method=schedule.method,
        meta=_freeze_value(schedule.meta),
    )


class SolveCache:
    """LRU of solved schedules keyed by content address.

    Parameters
    ----------
    maxsize:
        In-memory entry cap; least-recently-used entries are evicted
        (they remain on disk when a disk store is configured).
    disk_dir:
        Optional directory for a persistent second level — one pickle
        per key, written atomically so a crashed writer never leaves a
        truncated entry behind.  Unreadable files are treated as misses.
    """

    def __init__(self, maxsize: int = 256, disk_dir: str | Path | None = None):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[str, Schedule] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def _disk_path(self, key: str) -> Path:
        return self.disk_dir / f"{key}.pkl"

    def get(
        self, key: str, *, instrument: Instrumentation | None = None
    ) -> Schedule | None:
        """Frozen schedule for ``key``, or ``None`` on a miss."""
        obs = resolve(instrument)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            obs.count("engine.cache.hits")
            record_event("cache.hit", key=key[:12])
            return entry
        if self.disk_dir is not None:
            path = self._disk_path(key)
            try:
                with path.open("rb") as fh:
                    schedule = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError, ValueError):
                schedule = None
            if isinstance(schedule, Schedule):
                frozen = deep_freeze(schedule)
                self._remember(key, frozen, instrument=obs)
                self.hits += 1
                self.disk_hits += 1
                obs.count("engine.cache.hits")
                obs.count("engine.cache.disk_hits")
                record_event("cache.hit", key=key[:12], disk=True)
                return frozen
        self.misses += 1
        obs.count("engine.cache.misses")
        record_event("cache.miss", key=key[:12])
        return None

    def put(
        self,
        key: str,
        schedule: Schedule,
        *,
        instrument: Instrumentation | None = None,
    ) -> Schedule:
        """Store ``schedule`` under ``key``; returns the frozen copy."""
        obs = resolve(instrument)
        frozen = deep_freeze(schedule)
        self._remember(key, frozen, instrument=obs)
        if self.disk_dir is not None:
            path = self._disk_path(key)
            fd, tmp = tempfile.mkstemp(
                dir=self.disk_dir, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(frozen, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except OSError:
                # A read-only or full disk store degrades to memory-only.
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        obs.count("engine.cache.puts")
        record_event("cache.put", key=key[:12])
        return frozen

    def _remember(
        self,
        key: str,
        schedule: Schedule,
        instrument: Instrumentation | None = None,
    ) -> None:
        obs = resolve(instrument)
        self._entries[key] = schedule
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            obs.count("engine.cache.evictions")
            record_event("cache.evict", key=evicted[:12])
        obs.gauge("engine.cache.entries", len(self._entries))

    def stats(self) -> dict:
        """Counter snapshot (also exported via ``engine.cache.*``)."""
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "disk": str(self.disk_dir) if self.disk_dir is not None else None,
        }

    def clear(self) -> None:
        """Drop every in-memory entry (disk entries are kept)."""
        self._entries.clear()
