"""The batch solving engine: vectorized kernels, cache, and fan-out.

This package is the throughput layer over :func:`repro.schedule`:

* kernels live in :mod:`repro.core.kernels` (``kernel="numpy"`` |
  ``"python"``, bit-identical by contract);
* :mod:`repro.engine.cache` content-addresses solve requests so equal
  problems are solved once (in memory, optionally on disk);
* :mod:`repro.engine.pool` fans batches out over a process pool with
  deterministic, worker-count-independent result ordering.

See ``docs/performance.md`` for the full story.
"""

from .cache import CACHE_KEY_VERSION, SolveCache, deep_freeze, solve_key
from .pool import ScheduleRequest, schedule_many

__all__ = [
    "CACHE_KEY_VERSION",
    "SolveCache",
    "deep_freeze",
    "solve_key",
    "ScheduleRequest",
    "schedule_many",
]
