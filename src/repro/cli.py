"""Command-line entry point: regenerate the paper's tables and ablations.

Usage::

    python -m repro table1 [--sizes 8 16 32] [--mesh 4 4] [--fast]
    python -m repro table2
    python -m repro figure1
    python -m repro ablation-window | ablation-array | ablation-memory \
        | ablation-grouping
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    ablation_array_size,
    ablation_grouping_strategy,
    ablation_memory_pressure,
    ablation_movement_budget,
    ablation_online_lookahead,
    ablation_partition_schemes,
    ablation_refinement,
    ablation_static_optimality,
    ablation_window_segmentation,
    ablation_replication,
    ablation_window_size,
    render_table,
    run_extended_table,
    run_figure1,
    seed_sensitivity,
    run_table1,
    run_table2,
)

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[8, 16, 32],
        help="matrix sizes n (data universes n x n)",
    )
    parser.add_argument(
        "--benchmarks", type=int, nargs="+", default=[1, 2, 3, 4, 5],
        help="paper benchmark ids to run (1-5)",
    )
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS"),
        help="processor array shape",
    )
    parser.add_argument(
        "--capacity-multiplier", type=float, default=2.0,
        help="per-processor memory as a multiple of the balanced minimum",
    )
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--fast", action="store_true",
        help="small sizes only (8, 16) for a quick run",
    )


def _render_rows(rows: list[dict]) -> str:
    if not rows:
        return "(no rows)"
    keys = list(rows[0].keys())
    widths = {
        k: max(len(str(k)), *(len(_fmt(r[k])) for r in rows)) for k in keys
    }
    header = "  ".join(f"{k:>{widths[k]}}" for k in keys)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append("  ".join(f"{_fmt(r[k]):>{widths[k]}}" for k in keys))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-pim",
        description="Regenerate the evaluation of 'Optimizing Data Scheduling "
        "on Processor-In-Memory Arrays' (IPPS 1998).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "table2"):
        _add_common(sub.add_parser(name, help=f"regenerate {name}"))
    sub.add_parser("figure1", help="the section 3.3 worked example")
    sub.add_parser("extended", help="extended kernel suite (FFT/SOR/Floyd/bitonic)")
    sub.add_parser("ablation-window", help="window-size sweep (DESIGN.md A)")
    sub.add_parser("ablation-array", help="array-size sweep (DESIGN.md B)")
    sub.add_parser("ablation-memory", help="memory-pressure sweep (DESIGN.md C)")
    sub.add_parser("ablation-grouping", help="grouping strategies (DESIGN.md D)")
    sub.add_parser("ablation-partition", help="iteration-partition sweep (E)")
    sub.add_parser("ablation-online", help="online vs offline scheduling (F)")
    sub.add_parser("ablation-replication", help="k-replica placement (G)")
    sub.add_parser("ablation-refine", help="local-search refinement (H)")
    sub.add_parser("ablation-segmentation", help="window boundary strategies (I)")
    sub.add_parser("ablation-static", help="greedy vs optimal static placement (J)")
    sub.add_parser("seeds", help="seed sensitivity of the improvements")
    sub.add_parser("ablation-budget", help="movement-budget Pareto frontier (K)")
    args = parser.parse_args(argv)

    if args.command in ("table1", "table2"):
        sizes = tuple(args.sizes if not args.fast else [8, 16])
        runner = run_table1 if args.command == "table1" else run_table2
        table = runner(
            sizes=sizes,
            benchmarks=tuple(args.benchmarks),
            mesh=tuple(args.mesh),
            capacity_multiplier=args.capacity_multiplier,
            seed=args.seed,
        )
        print(render_table(table))
    elif args.command == "extended":
        print(render_table(run_extended_table()))
    elif args.command == "figure1":
        result = run_figure1()
        print("Figure 1 / section 3.3 worked example (reconstructed counts)")
        print(f"  SCDS   center {result.scds_center}, cost {result.scds_cost:.0f}")
        print(
            f"  LOMCDS centers {result.lomcds_centers}, cost {result.lomcds_cost:.0f}"
        )
        print(
            f"  GOMCDS centers {result.gomcds_centers}, cost {result.gomcds_cost:.0f}"
        )
    elif args.command == "ablation-window":
        print(_render_rows(ablation_window_size()))
    elif args.command == "ablation-array":
        print(_render_rows(ablation_array_size()))
    elif args.command == "ablation-memory":
        print(_render_rows(ablation_memory_pressure()))
    elif args.command == "ablation-grouping":
        result = ablation_grouping_strategy()
        for key, value in result.items():
            print(f"  {key}: {_fmt(value)}")
    elif args.command == "ablation-partition":
        print(_render_rows(ablation_partition_schemes()))
    elif args.command == "ablation-online":
        print(_render_rows(ablation_online_lookahead()))
    elif args.command == "ablation-replication":
        print(_render_rows(ablation_replication()))
    elif args.command == "ablation-refine":
        print(_render_rows(ablation_refinement()))
    elif args.command == "ablation-segmentation":
        print(_render_rows(ablation_window_segmentation()))
    elif args.command == "ablation-static":
        print(_render_rows(ablation_static_optimality()))
    elif args.command == "seeds":
        print(_render_rows(seed_sensitivity()))
    elif args.command == "ablation-budget":
        print(_render_rows(ablation_movement_budget()))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
