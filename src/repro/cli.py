"""Command-line entry point: regenerate the paper's tables and ablations.

Usage::

    python -m repro table1 [--sizes 8 16 32] [--mesh 4 4] [--fast]
    python -m repro table2
    python -m repro figure1
    python -m repro ablation-window | ablation-array | ablation-memory \
        | ablation-grouping
    python -m repro faults [--node-rate 0.2] [--fail-node 5] [--sweep]
    python -m repro lint [--bench 1 --size 8 | --schedule s.npz] \
        [--trace t.npz] [--faults plan.json] [--format human|json|sarif] \
        [--fix | --diff]
    python -m repro certify [--bench 1 --size 8 | --schedule s.npz \
        --trace t.npz] [--faults plan.json] [--format human|json|sarif]
    python -m repro profile [--workload suite|lu|fft|...] [--spatial] \
        [--format summary|jsonl|chrome|prometheus] [--output trace.json]
    python -m repro batch [--workers 4] [--telemetry batch.jsonl]
    python -m repro tail telemetry.jsonl [-n 20] [--kind cache.]
    python -m repro heatmap [--bench 1 --size 16] [--scheduler GOMCDS]
    python -m repro bench-compare [--baseline BENCH_schedulers.json] \
        [--time-tolerance-pct 50] [--format human|json]
    python -m repro explain [--bench 1 --size 16] [--scheduler GOMCDS] \
        [--datum D] [--window W] [--fail-node P] [--format human|json|jsonl] \
        [--diff A.jsonl B.jsonl] [--max-overhead-pct 5]

Every subcommand additionally accepts ``--metrics PATH``: the run is
executed under a recording instrumentation session and the collected
spans/metrics are written to ``PATH`` as JSON-lines
(``docs/observability.md``).

Exit codes are deterministic: ``0`` on success, ``2`` on a configuration
error (bad arguments, a fault plan that does not fit the machine, an
infeasible capacity), ``3`` when a fault replay leaves references
unreachable or data stranded (degradation exceeded what recovery could
absorb).  ``lint``, ``heatmap`` and ``bench-compare`` follow the linter
convention instead: ``0`` clean, ``1`` warnings only, ``2`` errors (see
``docs/lint.md`` / ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    fault_sweep,
    run_fault_replay,
)
from .analysis import (
    ablation_array_size,
    ablation_grouping_strategy,
    ablation_memory_pressure,
    ablation_movement_budget,
    ablation_online_lookahead,
    ablation_partition_schemes,
    ablation_refinement,
    ablation_static_optimality,
    ablation_window_segmentation,
    ablation_replication,
    ablation_window_size,
    render_table,
    run_extended_table,
    run_figure1,
    seed_sensitivity,
    run_table1,
    run_table2,
)
from .faults import FaultPlan, NodeFault, RetryPolicy
from .mem import CapacityError

__all__ = ["main", "EXIT_OK", "EXIT_CONFIG_ERROR", "EXIT_UNREACHABLE_DATA"]

EXIT_OK = 0
EXIT_CONFIG_ERROR = 2
EXIT_UNREACHABLE_DATA = 3


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[8, 16, 32],
        help="matrix sizes n (data universes n x n)",
    )
    parser.add_argument(
        "--benchmarks", type=int, nargs="+", default=[1, 2, 3, 4, 5],
        help="paper benchmark ids to run (1-5)",
    )
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS"),
        help="processor array shape",
    )
    parser.add_argument(
        "--capacity-multiplier", type=float, default=2.0,
        help="per-processor memory as a multiple of the balanced minimum",
    )
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--fast", action="store_true",
        help="small sizes only (8, 16) for a quick run",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the batched solves (docs/performance.md)",
    )


def _render_rows(rows: list[dict]) -> str:
    if not rows:
        return "(no rows)"
    keys = list(rows[0].keys())
    widths = {
        k: max(len(str(k)), *(len(_fmt(r[k])) for r in rows)) for k in keys
    }
    header = "  ".join(f"{k:>{widths[k]}}" for k in keys)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append("  ".join(f"{_fmt(r[k]):>{widths[k]}}" for k in keys))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-pim",
        description="Regenerate the evaluation of 'Optimizing Data Scheduling "
        "on Processor-In-Memory Arrays' (IPPS 1998).",
    )
    # every subcommand accepts --metrics PATH (docs/observability.md)
    metrics_parent = argparse.ArgumentParser(add_help=False)
    metrics_parent.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="record spans/metrics for this run and write them to PATH "
        "as JSON-lines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, **kwargs):
        return sub.add_parser(name, parents=[metrics_parent], **kwargs)

    for name in ("table1", "table2"):
        _add_common(add_parser(name, help=f"regenerate {name}"))
    add_parser("figure1", help="the section 3.3 worked example")
    add_parser("extended", help="extended kernel suite (FFT/SOR/Floyd/bitonic)")
    add_parser("ablation-window", help="window-size sweep (DESIGN.md A)")
    add_parser("ablation-array", help="array-size sweep (DESIGN.md B)")
    add_parser("ablation-memory", help="memory-pressure sweep (DESIGN.md C)")
    add_parser("ablation-grouping", help="grouping strategies (DESIGN.md D)")
    add_parser("ablation-partition", help="iteration-partition sweep (E)")
    add_parser("ablation-online", help="online vs offline scheduling (F)")
    add_parser("ablation-replication", help="k-replica placement (G)")
    add_parser("ablation-refine", help="local-search refinement (H)")
    add_parser("ablation-segmentation", help="window boundary strategies (I)")
    add_parser("ablation-static", help="greedy vs optimal static placement (J)")
    add_parser("seeds", help="seed sensitivity of the improvements")
    add_parser("ablation-budget", help="movement-budget Pareto frontier (K)")
    _add_batch_parser(add_parser)
    _add_tail_parser(add_parser)
    _add_faults_parser(add_parser)
    _add_chaos_parser(add_parser)
    _add_lint_parser(add_parser)
    _add_certify_parser(add_parser)
    _add_profile_parser(add_parser)
    _add_heatmap_parser(add_parser)
    _add_bench_compare_parser(add_parser)
    _add_explain_parser(add_parser)
    args = parser.parse_args(argv)

    try:
        if getattr(args, "metrics", None):
            from .obs import Instrumentation, instrumented, write_export

            instr = Instrumentation.started()
            with instrumented(instr):
                code = _dispatch(args)
            write_export(instr, "jsonl", args.metrics)
            return code
        return _dispatch(args)
    except (CapacityError, ValueError) as exc:
        # FaultConfigError subclasses ValueError; CapacityError covers
        # infeasible memory/fault configurations.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG_ERROR


def _add_batch_parser(add_parser) -> None:
    parser = add_parser(
        "batch",
        help="solve a benchmark suite through the batch engine: "
        "content-addressed dedup, shared solve cache, optional worker "
        "fan-out (docs/performance.md)",
    )
    parser.add_argument(
        "--benchmarks", type=int, nargs="+", default=[1, 2, 3, 4, 5],
        help="paper benchmark ids to solve (1-5)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[16],
        help="matrix sizes n (data universes n x n)",
    )
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS"),
        help="processor array shape",
    )
    parser.add_argument(
        "--schedulers", nargs="+", default=["SCDS", "LOMCDS", "GOMCDS"],
        metavar="NAME", help="algorithms to solve each instance with",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the fan-out (1 = in-process)",
    )
    parser.add_argument(
        "--kernel", choices=("numpy", "python"), default=None,
        help="DP kernel for schedulers that support one "
        "(default: the vectorized numpy kernels)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persist solved schedules to this directory; later runs "
        "with identical inputs hit the disk cache",
    )
    parser.add_argument(
        "--capacity-multiplier", type=float, default=2.0,
        help="paper-rule capacity sizing",
    )
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write the merged batch telemetry (spans from every worker, "
        "whole-batch metrics, flight-recorder events) to PATH as "
        "JSON-lines; render it with 'repro tail'",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        dest="fmt", help="report format",
    )


def _run_batch(args) -> int:
    import json
    from time import perf_counter

    from .core import CostModel, evaluate_schedule
    from .engine import ScheduleRequest, SolveCache, schedule_many
    from .grid import Mesh2D
    from .mem import CapacityPlan
    from .obs import Instrumentation, active, flight_recorder, to_jsonl
    from .workloads import BENCHMARK_NAMES, benchmark as make_benchmark

    topology = Mesh2D(*args.mesh)
    model = CostModel(topology)
    requests = []
    meta = []
    for size in args.sizes:
        for bench in args.benchmarks:
            workload = make_benchmark(bench, size, topology, seed=args.seed)
            tensor = workload.reference_tensor()
            capacity = CapacityPlan.paper_rule(
                workload.n_data, topology.n_procs, args.capacity_multiplier
            )
            for name in args.schedulers:
                requests.append(
                    ScheduleRequest(
                        tensor, model, capacity=capacity,
                        algorithm=name.upper(),
                        label=f"bench{bench}:{size}x{size}:{name.upper()}",
                    )
                )
                meta.append((bench, size, name.upper(), tensor))
    cache = SolveCache(disk_dir=args.cache_dir)
    # the batch CLI always records: the merged registry is the source of
    # the cache summary, and --telemetry exports the whole session
    instr = active() if active().enabled else Instrumentation.started()
    t0 = perf_counter()
    schedules = schedule_many(
        requests, workers=args.workers, cache=cache, kernel=args.kernel,
        instrument=instr,
    )
    elapsed = perf_counter() - t0
    rows = [
        {
            "benchmark": BENCHMARK_NAMES[bench],
            "size": f"{size}x{size}",
            "scheduler": name,
            "cost": evaluate_schedule(sched, tensor, model).total,
            "moves": int(sched.n_movements()),
        }
        for (bench, size, name, tensor), sched in zip(meta, schedules)
    ]
    stats = cache.stats()
    counters = {
        name: counter.value
        for name, counter in instr.metrics.counters.items()
    }
    hits = counters.get("engine.cache.hits", 0.0)
    misses = counters.get("engine.cache.misses", 0.0)
    looked_up = hits + misses
    hit_rate = 100.0 * hits / looked_up if looked_up else 0.0
    dedup_saves = counters.get("engine.batch.dedup_hits", 0.0)
    if args.telemetry:
        from pathlib import Path

        session = to_jsonl(instr)
        events = flight_recorder().to_jsonl()
        payload = "\n".join(part for part in (session, events) if part)
        Path(args.telemetry).write_text(payload + "\n")
    if args.fmt == "json":
        print(
            json.dumps(
                {
                    "kind": "batch_report",
                    "n_requests": len(requests),
                    "workers": args.workers,
                    "kernel": args.kernel or "numpy",
                    "elapsed_s": elapsed,
                    "rows": rows,
                    "cache": stats,
                    "metrics": counters,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(_render_rows(rows))
        print(
            f"{len(requests)} request(s) in {elapsed:.3f}s "
            f"(workers={args.workers}, kernel={args.kernel or 'numpy'})"
        )
        print(
            f"cache: {hits:g} hit(s), {misses:g} miss(es), "
            f"{hit_rate:.1f}% hit rate, {dedup_saves:g} dedup save(s), "
            f"{stats['entries']} entries"
        )
    if args.telemetry:
        print(f"wrote telemetry to {args.telemetry}")
    return EXIT_OK


def _add_tail_parser(add_parser) -> None:
    parser = add_parser(
        "tail",
        help="render the last N events of a JSON-lines telemetry file "
        "(batch --telemetry, --metrics, or a flight-recorder dump); "
        "docs/observability.md",
    )
    parser.add_argument(
        "path", metavar="PATH", help="JSON-lines telemetry file to read"
    )
    parser.add_argument(
        "-n", "--events", type=int, default=20, dest="n",
        help="number of trailing events to show",
    )
    parser.add_argument(
        "--kind", default=None, metavar="PREFIX",
        help="only events whose kind starts with this prefix "
        "(e.g. cache. / solve. / recovery.)",
    )
    parser.add_argument(
        "--all", action="store_true", dest="all_records",
        help="tail every record type (spans, metrics, results), not "
        "just flight-recorder events",
    )
    parser.add_argument(
        "--format", choices=("human", "jsonl"), default="human",
        dest="fmt", help="output format",
    )


def _render_event_line(record: dict) -> str:
    from datetime import datetime, timezone

    ts = record.get("t_unix_us")
    if ts is not None:
        stamp = datetime.fromtimestamp(
            ts / 1e6, tz=timezone.utc
        ).strftime("%H:%M:%S.%f")[:-3]
    else:
        stamp = "--:--:--.---"
    kind = record.get("kind") or record.get("name") or record.get("type", "?")
    hidden = {"t_unix_us", "kind", "type", "seq", "name"}
    fields = " ".join(
        f"{key}={_fmt(value)}"
        for key, value in record.items()
        if key not in hidden and value is not None
    )
    seq = record.get("seq")
    prefix = f"[{seq:>4}]" if seq is not None else "[   -]"
    return f"{prefix} {stamp} {kind}" + (f"  {fields}" if fields else "")


def _run_tail(args) -> int:
    import json
    from pathlib import Path

    try:
        lines = Path(args.path).read_text().splitlines()
    except OSError as exc:
        raise ValueError(f"cannot read telemetry file {args.path}: {exc}") from exc
    records = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{args.path}:{lineno}: not JSON-lines telemetry ({exc})"
            ) from exc
    events = [r for r in records if r.get("type") == "event"]
    pool = records if args.all_records or not events else events
    if args.kind is not None:
        pool = [r for r in pool if str(r.get("kind", "")).startswith(args.kind)]
    tail = pool[-args.n:] if args.n > 0 else []
    if args.fmt == "jsonl":
        for record in tail:
            print(json.dumps(record, sort_keys=True))
    else:
        for record in tail:
            print(_render_event_line(record))
        print(
            f"({len(tail)} of {len(pool)} matching record(s), "
            f"{len(records)} total in {args.path})"
        )
    return EXIT_OK


def _add_faults_parser(add_parser) -> None:
    parser = add_parser(
        "faults",
        help="fault-injection replay: degradation under node/link/message "
        "failures (docs/fault-model.md)",
    )
    parser.add_argument("--bench", type=int, default=1, help="paper benchmark id")
    parser.add_argument("--size", type=int, default=8, help="matrix size n")
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument("--scheduler", default="GOMCDS")
    parser.add_argument("--seed", type=int, default=1998, help="workload seed")
    parser.add_argument(
        "--fault-seed", type=int, default=0, help="seed for sampled fault plans"
    )
    parser.add_argument(
        "--node-rate", type=float, default=0.0,
        help="probability each node fails (sampled plan)",
    )
    parser.add_argument(
        "--link-rate", type=float, default=0.0,
        help="probability each directed link is severed (sampled plan)",
    )
    parser.add_argument(
        "--drop-rate", type=float, default=0.0,
        help="per-attempt transient message-drop probability",
    )
    parser.add_argument(
        "--fail-node", type=int, action="append", default=[], metavar="PID",
        help="explicitly fail a processor (repeatable)",
    )
    parser.add_argument(
        "--fail-window", type=int, default=0,
        help="window at which --fail-node processors go down",
    )
    parser.add_argument(
        "--retries", type=int, default=3, help="retry budget per reference"
    )
    parser.add_argument(
        "--deadline", type=int, default=8, help="timeout cycles per attempt"
    )
    parser.add_argument(
        "--reschedule", action="store_true",
        help="recompute centers around the faults before replaying",
    )
    parser.add_argument(
        "--no-evacuate", action="store_true",
        help="disable data evacuation on node failure",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="sweep node-failure rates instead of a single replay",
    )


def _add_chaos_parser(add_parser) -> None:
    parser = add_parser(
        "chaos",
        help="chaos campaign: seeded fault storms against the online-"
        "recovery invariants (docs/fault-model.md); exits 0 clean / 3 on "
        "an invariant violation",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="campaign seed (storms derive "
        "from it deterministically)",
    )
    parser.add_argument(
        "--scenarios", type=int, default=10, help="number of fault storms "
        "(scenario 0 is always the fault-free control)",
    )
    parser.add_argument("--bench", type=int, default=1, help="paper benchmark id")
    parser.add_argument("--size", type=int, default=8, help="matrix size n")
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument("--scheduler", default="GOMCDS")
    parser.add_argument(
        "--checkpoint-interval", type=int, default=2,
        help="snapshot cadence (also the rollback-depth bound)",
    )
    parser.add_argument(
        "--max-node-rate", type=float, default=0.3,
        help="upper bound of the sampled per-node failure probability",
    )
    parser.add_argument(
        "--max-drop-rate", type=float, default=0.1,
        help="upper bound of the sampled transient-drop probability",
    )
    parser.add_argument(
        "--workload-seed", type=int, default=1998, help="workload seed"
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        dest="fmt", help="report format",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the report to a file (the chosen format) as well",
    )


def _run_chaos(args) -> int:
    import json

    from .analysis import run_chaos_campaign

    report = run_chaos_campaign(
        seed=args.seed,
        n_scenarios=args.scenarios,
        bench=args.bench,
        size=args.size,
        mesh=tuple(args.mesh),
        scheduler=args.scheduler,
        checkpoint_interval=args.checkpoint_interval,
        max_node_rate=args.max_node_rate,
        max_drop_rate=args.max_drop_rate,
        workload_seed=args.workload_seed,
    )
    text = (
        json.dumps(report.to_dict(), indent=2)
        if args.fmt == "json"
        else report.render()
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
            if args.output.endswith(".json")
            else text + "\n"
        )
    print(text)
    if not report.ok:
        print(
            f"error: {len(report.violations)} recovery-invariant "
            "violation(s); rerun with --seed "
            f"{args.seed} to reproduce", file=sys.stderr,
        )
    return report.exit_code


def _add_lint_parser(add_parser) -> None:
    parser = add_parser(
        "lint",
        help="static schedule/trace/fault-plan verifier with coded "
        "diagnostics (docs/lint.md); exits 0 clean / 1 warnings / 2 errors",
    )
    parser.add_argument(
        "--schedule", metavar="PATH", help=".npz schedule archive to lint"
    )
    parser.add_argument(
        "--trace", metavar="PATH", help=".npz trace archive (may carry windows)"
    )
    parser.add_argument(
        "--faults", metavar="PATH", help="fault-plan JSON to lint against"
    )
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS"),
        help="processor array the artifacts target",
    )
    parser.add_argument(
        "--bench", type=int, default=None,
        help="lint a named paper workload (1-5) instead of files",
    )
    parser.add_argument("--size", type=int, default=8, help="matrix size n")
    parser.add_argument("--scheduler", default="GOMCDS")
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--capacity", type=int, default=None,
        help="uniform per-processor capacity to lint against",
    )
    parser.add_argument(
        "--capacity-multiplier", type=float, default=2.0,
        help="paper-rule capacity sizing for --bench runs",
    )
    parser.add_argument(
        "--no-capacity", action="store_true",
        help="skip all capacity rules (unbounded memories)",
    )
    parser.add_argument(
        "--windows", type=int, default=None,
        help="window horizon when linting a bare fault plan",
    )
    parser.add_argument(
        "--recovery-mode", choices=("strict", "degrade", "replicate"),
        default=None,
        help="lint an online-recovery policy with this degradation mode "
        "(enables the FLT007/FLT008 rules)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=4,
        help="checkpoint cadence of the linted recovery policy (windows)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        dest="fmt", help="report format",
    )
    parser.add_argument(
        "--select", nargs="+", metavar="CODE", default=None,
        help="run only these codes (prefixes like SCH expand)",
    )
    parser.add_argument(
        "--ignore", nargs="+", metavar="CODE", default=None,
        help="disable these codes (prefixes expand)",
    )
    parser.add_argument(
        "--severity", action="append", default=[], metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. THY001=error (repeatable)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply the safe auto-fixes (see docs/lint.md), write repaired "
        "file artifacts back, and re-lint",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="preview what --fix would change without writing anything",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the report to a file instead of stdout",
    )


def _add_certify_parser(add_parser) -> None:
    parser = add_parser(
        "certify",
        help="static schedule certifier: abstract interpretation, optimality "
        "certificates and a static-vs-dynamic differential gate "
        "(docs/certify.md); exits 0 clean / 1 warnings / 2 static errors / "
        "3 divergence",
    )
    parser.add_argument(
        "--bench", type=int, default=None,
        help="certify a named paper workload (1-5), scheduling it with a "
        "certificate-emitting run",
    )
    parser.add_argument("--size", type=int, default=8, help="matrix size n")
    parser.add_argument("--scheduler", default="GOMCDS")
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument(
        "--capacity-multiplier", type=float, default=2.0,
        help="paper-rule capacity sizing for --bench runs",
    )
    parser.add_argument(
        "--schedule", metavar="PATH",
        help=".npz schedule archive to certify instead of --bench "
        "(certificates are in-memory only, so file mode certifies "
        "everything except optimality)",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help=".npz trace archive giving the ground truth for --schedule",
    )
    parser.add_argument(
        "--faults", metavar="PATH", default=None,
        help="fault-plan JSON: certify the degraded execution against it",
    )
    parser.add_argument(
        "--fail-node", type=int, action="append", default=[], metavar="PID",
        help="explicitly fail a processor (repeatable)",
    )
    parser.add_argument(
        "--fail-window", type=int, default=0,
        help="window at which --fail-node processors go down",
    )
    parser.add_argument(
        "--link-budget", type=float, default=None,
        help="per-link volume budget; VER003 fires above it",
    )
    parser.add_argument(
        "--hotspot-factor", type=float, default=None,
        help="VER003 fires for links loaded this many times the mean",
    )
    parser.add_argument(
        "--require-certificate", action="store_true",
        help="treat a missing optimality certificate as an error (VER005)",
    )
    parser.add_argument(
        "--no-differential", action="store_true",
        help="skip the replay comparison (purely static certification)",
    )
    parser.add_argument(
        "--no-theory", action="store_true",
        help="skip the VER011 separable-convexity cross-check",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        dest="fmt", help="report format",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the report to a file instead of stdout",
    )


def _run_certify(args) -> int:
    from .grid import Mesh2D
    from .verify import (
        certify_schedule,
        certify_workload,
        render_certify_human,
        render_certify_json,
        render_certify_sarif,
    )

    topology = Mesh2D(*args.mesh)
    faults = None
    if args.faults is not None:
        faults = FaultPlan.load_json(args.faults)
    if args.fail_node:
        explicit = tuple(
            NodeFault(pid=pid, start=args.fail_window) for pid in args.fail_node
        )
        faults = FaultPlan(
            node_faults=(faults.node_faults if faults else ()) + explicit,
            link_faults=faults.link_faults if faults else (),
            drop_rate=faults.drop_rate if faults else 0.0,
            seed=faults.seed if faults else 0,
        )
    if faults is not None:
        faults.validate_for(topology)

    common = dict(
        link_budget=args.link_budget,
        hotspot_factor=args.hotspot_factor,
        require_certificate=args.require_certificate,
        differential=not args.no_differential,
        check_theory=not args.no_theory,
    )
    if args.bench is not None:
        report = certify_workload(
            args.bench,
            args.size,
            topology,
            scheduler=args.scheduler,
            seed=args.seed,
            capacity_multiplier=args.capacity_multiplier,
            faults=faults,
            **common,
        )
    elif args.schedule is not None:
        if args.trace is None:
            raise ValueError(
                "--schedule needs --trace for the differential ground truth"
            )
        from .core import CostModel
        from .trace import load_schedule, load_trace

        schedule = load_schedule(args.schedule)
        trace, _ = load_trace(args.trace)
        report = certify_schedule(
            schedule,
            trace,
            CostModel(topology),
            faults=faults,
            label=str(args.schedule),
            **common,
        )
    else:
        raise ValueError("certify needs --bench or --schedule/--trace")

    renderer = {
        "human": render_certify_human,
        "json": render_certify_json,
        "sarif": render_certify_sarif,
    }[args.fmt]
    text = renderer(report)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        print(report.summary())
    else:
        print(text)
    return report.exit_code


def _add_profile_parser(add_parser) -> None:
    parser = add_parser(
        "profile",
        help="instrumented scheduling + replay: span trace, per-window "
        "metrics and cost results (docs/observability.md)",
    )
    parser.add_argument(
        "--workload", default="suite",
        help="'suite' or a paper kernel name (lu/matsq/code+rev/...) "
        "profiles the paper benchmarks; an extended kernel "
        "(fft/sor/floyd/bitonic) profiles that single workload",
    )
    parser.add_argument(
        "--benchmarks", type=int, nargs="+", default=[1, 2, 3, 4, 5],
        help="paper benchmark ids profiled in suite mode (1-5)",
    )
    parser.add_argument("--size", type=int, default=16, help="matrix size n")
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument(
        "--scheduler", nargs="+", default=None, metavar="NAME",
        help="schedulers to profile (default: SCDS LOMCDS GOMCDS); the "
        "last one is replayed hop-by-hop",
    )
    parser.add_argument(
        "--capacity-multiplier", type=float, default=2.0,
        help="paper-rule capacity sizing",
    )
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--no-replay", action="store_true",
        help="skip the hop-level replay (schedulers only)",
    )
    parser.add_argument(
        "--spatial", action="store_true",
        help="record per-link/per-processor spatial telemetry during "
        "replays (heatmaps + congestion analytics in the export)",
    )
    parser.add_argument(
        "--format",
        choices=("summary", "jsonl", "chrome", "prometheus"),
        default="summary",
        dest="fmt", help="export format (chrome = trace-event JSON for "
        "chrome://tracing / Perfetto; prometheus = exposition text)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the export to a file instead of stdout",
    )


def _add_heatmap_parser(add_parser) -> None:
    parser = add_parser(
        "heatmap",
        help="spatial telemetry of one replayed schedule: processor/link "
        "ASCII heatmaps + congestion diagnostics (docs/observability.md); "
        "exits 0 clean / 1 warnings / 2 errors",
    )
    parser.add_argument("--bench", type=int, default=1, help="paper benchmark id")
    parser.add_argument("--size", type=int, default=16, help="matrix size n")
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument("--scheduler", default="GOMCDS")
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--capacity-multiplier", type=float, default=2.0,
        help="paper-rule capacity sizing",
    )
    parser.add_argument(
        "--top-k", type=int, default=5, help="hot links listed in the report"
    )
    parser.add_argument(
        "--hotspot-factor", type=float, default=4.0,
        help="OBS001 fires for links loaded this many times the mean",
    )
    parser.add_argument(
        "--gini-threshold", type=float, default=0.6,
        help="OBS002 fires when link-load gini exceeds this",
    )


def _add_bench_compare_parser(add_parser) -> None:
    parser = add_parser(
        "bench-compare",
        help="regression sentinel: diff a fresh bench run against the "
        "tracked baseline (costs exact, timings within tolerance); "
        "exits 0 clean / 1 warnings / 2 errors",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default="BENCH_schedulers.json",
        help="tracked baseline report (benchmarks/bench_profile.py output)",
    )
    parser.add_argument(
        "--fresh", metavar="PATH", default=None,
        help="pre-recorded fresh report; omitted = re-run the suite now "
        "at the baseline's config",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats for the fresh run (default: baseline's)",
    )
    parser.add_argument(
        "--time-tolerance-pct", type=float, default=50.0,
        help="REG002 fires when a timing exceeds baseline by more than "
        "this percentage (and the absolute floor)",
    )
    parser.add_argument(
        "--min-time-delta", type=float, default=0.05, metavar="SECONDS",
        help="absolute slowdown floor below which timings never regress",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        dest="fmt", help="report format",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the report to a file instead of stdout",
    )


def _add_explain_parser(add_parser) -> None:
    parser = add_parser(
        "explain",
        help="decision provenance for one solve: per-window decision "
        "tables, per-datum timelines, counterfactual deltas and exact "
        "cost attribution (docs/explain.md); exits 3 when the log "
        "diverges from the schedule (VER012)",
    )
    parser.add_argument("--bench", type=int, default=1, help="paper benchmark id")
    parser.add_argument("--size", type=int, default=16, help="matrix size n")
    parser.add_argument(
        "--mesh", type=int, nargs=2, default=[4, 4], metavar=("ROWS", "COLS")
    )
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument(
        "--scheduler", default="GOMCDS", metavar="NAME",
        help="scheduler to explain (SCDS/LOMCDS/GOMCDS)",
    )
    parser.add_argument(
        "--kernel", choices=("numpy", "python"), default="numpy",
        help="solver kernel; the python oracle doubles as a provenance oracle",
    )
    parser.add_argument(
        "--capacity-multiplier", type=float, default=2.0,
        help="paper-rule capacity sizing",
    )
    parser.add_argument(
        "--fail-node", type=int, default=None, metavar="PID",
        help="explain the fault-aware reschedule with this processor down",
    )
    parser.add_argument(
        "--fail-window", type=int, default=0, metavar="W",
        help="window the --fail-node failure starts in",
    )
    parser.add_argument(
        "--datum", type=int, default=None, metavar="D",
        help="narrow to one datum's placement timeline",
    )
    parser.add_argument(
        "--window", type=int, default=None, metavar="W",
        help="narrow to one window's decision table",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows per window table in the full human rendering",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "jsonl"), default="human",
        dest="fmt", help="jsonl streams every decision record",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the rendering to a file instead of stdout",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="print the audit verdict even in machine formats (the audit "
        "itself always runs; divergence always exits 3)",
    )
    parser.add_argument(
        "--diff", nargs=2, metavar=("A", "B"), default=None,
        help="compare two 'explain --format jsonl' exports decision by "
        "decision (e.g. fault-free vs faulted reschedule)",
    )
    parser.add_argument(
        "--max-overhead-pct", type=float, default=None, metavar="PCT",
        help="instead of explaining, gate the dark-path cost of the "
        "provenance plumbing: median recording-but-provenance-off solve "
        "must be within PCT%% of the dark median",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats for --max-overhead-pct",
    )


def _run_explain(args) -> int:
    from .analysis import (
        diff_explain_records,
        explain_records,
        explain_workload,
        load_explain_records,
        measure_overhead,
        render_explain_diff,
        render_explain_human,
    )

    if args.diff is not None:
        diff = diff_explain_records(
            load_explain_records(args.diff[0]),
            load_explain_records(args.diff[1]),
        )
        if args.fmt == "human":
            text = render_explain_diff(diff, top=args.top)
        else:
            import json as _json

            text = _json.dumps(diff, sort_keys=True)
        _write_or_print(text, args.output)
        return EXIT_OK

    if args.max_overhead_pct is not None:
        report = measure_overhead(
            bench=args.bench,
            size=args.size,
            mesh=tuple(args.mesh),
            seed=args.seed,
            scheduler=args.scheduler.upper(),
            repeats=args.repeats,
        )
        for key, value in report.items():
            print(f"  {key}: {_fmt(value)}")
        if report["overhead_pct"] > args.max_overhead_pct:
            print(
                f"error: dark-path overhead {report['overhead_pct']:.1f}% "
                f"exceeds the {args.max_overhead_pct:g}% budget",
                file=sys.stderr,
            )
            return EXIT_CONFIG_ERROR
        return EXIT_OK

    result = explain_workload(
        bench=args.bench,
        size=args.size,
        mesh=tuple(args.mesh),
        seed=args.seed,
        scheduler=args.scheduler.upper(),
        kernel=args.kernel,
        capacity_multiplier=args.capacity_multiplier,
        fail_node=args.fail_node,
        fail_window=args.fail_window,
    )
    data = None if args.datum is None else [args.datum]
    windows = None if args.window is None else [args.window]
    if args.fmt == "human":
        text = render_explain_human(
            result, datum=args.datum, window=args.window, top=args.top
        )
    else:
        import json as _json

        records = list(explain_records(result, data=data, windows=windows))
        if args.fmt == "json":
            text = _json.dumps(records, sort_keys=True, indent=2)
        else:
            text = "\n".join(_json.dumps(rec, sort_keys=True) for rec in records)
    _write_or_print(text, args.output)
    diverged = bool(result.diagnostics) or not result.attribution_exact
    if args.check or diverged:
        verdict = "DIVERGED" if diverged else "exact"
        stream = sys.stderr if diverged else sys.stdout
        print(
            f"provenance audit: attribution {verdict} "
            f"(attributed {result.log.attribution().total:g}, "
            f"evaluated {result.breakdown.total:g}, "
            f"{len(result.diagnostics)} diagnostic(s))",
            file=stream,
        )
        for diag in result.diagnostics:
            print(f"  {diag.render()}", file=sys.stderr)
    return EXIT_UNREACHABLE_DATA if diverged else EXIT_OK


def _write_or_print(text: str, output: str | None) -> None:
    if output:
        from pathlib import Path

        Path(output).write_text(text + "\n")
        print(f"wrote {output}")
    else:
        print(text)


def _run_profile(args) -> int:
    from .analysis import PROFILE_SCHEDULERS, profile_suite
    from .obs import write_export

    schedulers = tuple(
        s.upper() for s in (args.scheduler or PROFILE_SCHEDULERS)
    )
    result = profile_suite(
        workload=args.workload,
        benchmarks=tuple(args.benchmarks),
        size=args.size,
        mesh=tuple(args.mesh),
        schedulers=schedulers,
        capacity_multiplier=args.capacity_multiplier,
        seed=args.seed,
        replay=not args.no_replay,
        spatial=args.spatial,
    )
    text = write_export(
        result.instrument, args.fmt, args.output, results=result.results
    )
    if args.output:
        print(f"wrote {args.fmt} export to {args.output}")
        if args.fmt != "summary":
            print(_render_rows(result.rows))
    else:
        print(text)
    return EXIT_OK


def _run_heatmap(args) -> int:
    from .analysis import render_heatmap, render_link_heatmap
    from .api import schedule
    from .core import CostModel
    from .grid import Mesh2D
    from .mem import CapacityPlan
    from .obs import Instrumentation, analyze_spatial
    from .sim import replay_schedule
    from .workloads import benchmark as make_benchmark

    topology = Mesh2D(*args.mesh)
    workload = make_benchmark(args.bench, args.size, topology, seed=args.seed)
    tensor = workload.reference_tensor()
    model = CostModel(topology)
    capacity = CapacityPlan.paper_rule(
        workload.n_data, topology.n_procs, args.capacity_multiplier
    )
    sched = schedule(
        tensor, model, algorithm=args.scheduler.upper(), capacity=capacity
    )
    instr = Instrumentation.started(spatial=True)
    replay_schedule(
        workload.trace, sched, model, capacity=capacity, instrument=instr
    )
    trace = instr.spatial.traces[-1]
    report = analyze_spatial(
        trace,
        hotspot_factor=args.hotspot_factor,
        gini_threshold=args.gini_threshold,
        top_k=args.top_k,
    )
    print(
        f"Spatial telemetry (benchmark {args.bench}, {args.size}x{args.size}, "
        f"{args.mesh[0]}x{args.mesh[1]} array, scheduler {sched.method})"
    )
    print(trace.summary())
    traffic = trace.per_proc_send() + trace.per_proc_recv()
    print(render_heatmap(traffic, topology, title="processor traffic (send+recv):"))
    print(
        render_heatmap(
            trace.per_proc_peak_storage(), topology, title="peak storage:"
        )
    )
    print(render_link_heatmap(trace.link_totals(), topology, title="link load:"))
    print(report.render())
    return report.exit_code


def _run_bench_compare(args) -> int:
    import json

    from .analysis import (
        compare_bench_reports,
        load_bench_report,
        run_bench_suite,
    )

    baseline = load_bench_report(args.baseline)
    if args.fresh is not None:
        fresh = load_bench_report(args.fresh)
        fresh_label = str(args.fresh)
    else:
        cfg = baseline["config"]
        fresh = run_bench_suite(
            mesh=tuple(cfg["mesh"]),
            size=cfg["size"],
            benchmarks=tuple(cfg["benchmarks"]),
            repeats=args.repeats if args.repeats is not None else cfg["repeats"],
            seed=cfg["seed"],
        )
        fresh_label = "fresh run"
    comparison = compare_bench_reports(
        baseline,
        fresh,
        time_tolerance_pct=args.time_tolerance_pct,
        min_time_delta_s=args.min_time_delta,
        baseline_label=str(args.baseline),
        fresh_label=fresh_label,
    )
    text = (
        comparison.render()
        if args.fmt == "human"
        else json.dumps(comparison.to_dict(), indent=2, sort_keys=True)
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        print(comparison.summary())
    else:
        print(text)
    return comparison.exit_code


def _run_lint(args) -> int:
    from .diagnostics import Severity
    from .grid import Mesh2D
    from .lint import (
        load_context,
        render_human,
        render_json,
        render_sarif,
        run_lint,
        workload_context,
    )
    from .mem import CapacityPlan
    from .trace import window_per_step

    topology = Mesh2D(*args.mesh)
    capacity = (
        None
        if args.capacity is None
        else CapacityPlan.uniform(topology.n_procs, args.capacity)
    )
    file_context, failures = load_context(
        schedule_path=args.schedule,
        trace_path=args.trace,
        faults_path=args.faults,
        topology=topology,
        capacity=capacity,
    )
    if args.bench is not None:
        context = workload_context(
            args.bench,
            args.size,
            topology,
            scheduler=args.scheduler,
            seed=args.seed,
            capacity_multiplier=args.capacity_multiplier,
            faults=file_context.faults,
        )
        # file artifacts override the generated ones, so a schedule
        # archive can be linted against a named workload's trace
        if file_context.schedule is not None:
            context.schedule = file_context.schedule
        if file_context.trace is not None:
            context.trace = file_context.trace
            context.windows = file_context.windows or context.windows
        if capacity is not None:
            context.capacity = capacity
    else:
        context = file_context
        if context.windows is None and args.windows is not None:
            context.windows = window_per_step(args.windows)
    if args.no_capacity:
        context.capacity = None
    if args.recovery_mode is not None:
        from .faults import RecoveryPolicy

        context.recovery = RecoveryPolicy(
            mode=args.recovery_mode,
            checkpoint_interval=args.checkpoint_interval,
        )

    severities = {}
    for override in args.severity:
        code, _, level = override.partition("=")
        if not level:
            raise ValueError(
                f"--severity expects CODE=LEVEL, got {override!r}"
            )
        severities[code.strip().upper()] = Severity.parse(level)

    report = run_lint(
        context, select=args.select, ignore=args.ignore, severities=severities
    )
    report.prepend(failures)

    if args.fix or args.diff:
        from .lint import apply_fixes, render_diff

        outcome = apply_fixes(context, report.diagnostics)
        if args.diff:
            print(render_diff(outcome))
            return report.exit_code
        if outcome.n_fixed:
            for fix in outcome.fixes:
                print(f"fixed [{fix.code}] {fix.artifact}: {fix.description}")
            _write_fixed_artifacts(args, context, outcome.modified)
            # re-lint the repaired context so the report reflects reality
            report = run_lint(
                context,
                select=args.select,
                ignore=args.ignore,
                severities=severities,
            )
            report.prepend(failures)
        else:
            print("no applicable fixes")

    renderer = {
        "human": render_human,
        "json": render_json,
        "sarif": render_sarif,
    }[args.fmt]
    text = renderer(report)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
    else:
        print(text)
    return report.exit_code


def _write_fixed_artifacts(args, context, modified: set[str]) -> None:
    """Persist repaired artifacts back to the files they were loaded from.

    Only file-backed artifacts can round-trip; generated ones (a --bench
    schedule, a --recovery-mode policy) are repaired in memory only.
    """
    from .trace import save_schedule, save_trace

    if "faults" in modified and args.faults:
        context.faults.save_json(args.faults)
        print(f"wrote repaired fault plan to {args.faults}")
    if ("windows" in modified or "trace" in modified) and args.trace:
        save_trace(args.trace, context.trace, context.windows)
        print(f"wrote repaired trace/windows to {args.trace}")
    if (
        ("schedule" in modified or "windows" in modified)
        and args.schedule
        and context.schedule is not None
    ):
        save_schedule(args.schedule, context.schedule)
        print(f"wrote repaired schedule to {args.schedule}")


def _run_faults(args) -> int:
    mesh = tuple(args.mesh)
    if args.sweep:
        rows = fault_sweep(
            link_rate=args.link_rate,
            drop_rate=args.drop_rate,
            bench=args.bench,
            size=args.size,
            mesh=mesh,
            scheduler=args.scheduler,
            reschedule=args.reschedule,
            fault_seed=args.fault_seed,
            seed=args.seed,
        )
        print("Fault sweep (node-failure rate vs cost/completion)")
        # rates like 0.05 must not collapse to "0.1" under the table's
        # one-decimal float formatting
        for row in rows:
            row["node_rate"] = f"{row['node_rate']:g}"
        print(_render_rows(rows))
        worst = min(rows, key=lambda r: r["completion_pct"])
        if worst["unreachable"] > 0:
            print(
                f"warning: {worst['unreachable']} references unreachable at "
                f"node rate {worst['node_rate']}", file=sys.stderr,
            )
            return EXIT_UNREACHABLE_DATA
        return EXIT_OK

    from .grid import Mesh2D
    from .workloads import benchmark as make_benchmark

    topology = Mesh2D(*mesh)
    n_windows = make_benchmark(
        args.bench, args.size, topology, seed=args.seed
    ).reference_tensor().n_windows
    explicit = tuple(
        NodeFault(pid=pid, start=args.fail_window) for pid in args.fail_node
    )
    sampled = FaultPlan.random(
        topology,
        n_windows=n_windows,
        node_rate=args.node_rate,
        link_rate=args.link_rate,
        drop_rate=args.drop_rate,
        seed=args.fault_seed,
    )
    plan = FaultPlan(
        node_faults=sampled.node_faults + explicit,
        link_faults=sampled.link_faults,
        drop_rate=args.drop_rate,
        seed=args.fault_seed,
    )
    plan.validate_for(topology)
    row = run_fault_replay(
        plan,
        bench=args.bench,
        size=args.size,
        mesh=mesh,
        scheduler=args.scheduler,
        reschedule=args.reschedule,
        retry=RetryPolicy(deadline=args.deadline, max_retries=args.retries),
        evacuate=not args.no_evacuate,
        seed=args.seed,
    )
    print(
        f"Fault replay (benchmark {args.bench}, {args.size}x{args.size}, "
        f"{mesh[0]}x{mesh[1]} array, scheduler {row['scheduler']})"
    )
    print(f"  node faults: {len(plan.node_faults)}, link faults: "
          f"{len(plan.link_faults)}, drop rate: {plan.drop_rate}")
    for key in (
        "analytic_cost", "replayed_cost", "degraded_cost", "evacuation_cost",
        "retry_cost", "delivered", "retried", "dropped", "unreachable",
        "evacuated", "lost", "skipped_moves", "completion_pct",
    ):
        print(f"  {key}: {_fmt(row[key])}")
    if row["unreachable"] > 0 or row["lost"] > 0:
        print(
            f"warning: {row['unreachable']} unreachable references, "
            f"{row['lost']} stranded data", file=sys.stderr,
        )
        return EXIT_UNREACHABLE_DATA
    return EXIT_OK


def _dispatch(args) -> int:
    if args.command == "batch":
        return _run_batch(args)
    if args.command == "tail":
        return _run_tail(args)
    if args.command == "faults":
        return _run_faults(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "certify":
        return _run_certify(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "heatmap":
        return _run_heatmap(args)
    if args.command == "bench-compare":
        return _run_bench_compare(args)
    if args.command == "explain":
        return _run_explain(args)
    if args.command in ("table1", "table2"):
        sizes = tuple(args.sizes if not args.fast else [8, 16])
        runner = run_table1 if args.command == "table1" else run_table2
        table = runner(
            sizes=sizes,
            benchmarks=tuple(args.benchmarks),
            mesh=tuple(args.mesh),
            capacity_multiplier=args.capacity_multiplier,
            seed=args.seed,
            workers=args.workers,
        )
        print(render_table(table))
    elif args.command == "extended":
        print(render_table(run_extended_table()))
    elif args.command == "figure1":
        result = run_figure1()
        print("Figure 1 / section 3.3 worked example (reconstructed counts)")
        print(f"  SCDS   center {result.scds_center}, cost {result.scds_cost:.0f}")
        print(
            f"  LOMCDS centers {result.lomcds_centers}, cost {result.lomcds_cost:.0f}"
        )
        print(
            f"  GOMCDS centers {result.gomcds_centers}, cost {result.gomcds_cost:.0f}"
        )
    elif args.command == "ablation-window":
        print(_render_rows(ablation_window_size()))
    elif args.command == "ablation-array":
        print(_render_rows(ablation_array_size()))
    elif args.command == "ablation-memory":
        print(_render_rows(ablation_memory_pressure()))
    elif args.command == "ablation-grouping":
        result = ablation_grouping_strategy()
        for key, value in result.items():
            print(f"  {key}: {_fmt(value)}")
    elif args.command == "ablation-partition":
        print(_render_rows(ablation_partition_schemes()))
    elif args.command == "ablation-online":
        print(_render_rows(ablation_online_lookahead()))
    elif args.command == "ablation-replication":
        print(_render_rows(ablation_replication()))
    elif args.command == "ablation-refine":
        print(_render_rows(ablation_refinement()))
    elif args.command == "ablation-segmentation":
        print(_render_rows(ablation_window_segmentation()))
    elif args.command == "ablation-static":
        print(_render_rows(ablation_static_optimality()))
    elif args.command == "seeds":
        print(_render_rows(seed_sensitivity()))
    elif args.command == "ablation-budget":
        print(_render_rows(ablation_movement_budget()))
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
