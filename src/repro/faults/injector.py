"""Binding a :class:`FaultPlan` to a machine: per-window fault views.

A :class:`FaultInjector` composes a plan with a concrete topology and
window horizon and answers the queries the replay/network simulators ask
in their hot loops — which nodes are down *this* window, which nodes
*just* died (triggering evacuation), and a fault-aware router for the
window's structural-fault epoch.  Routers are cached per epoch, so a
plan whose faults never change costs one router for the whole replay.

:class:`RetryPolicy` holds the timeout/retry semantics of degraded
fetches: an attempt to reach a failed center times out after ``deadline``
cycles and is retried with exponential backoff up to ``max_retries``
times before the reference is abandoned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid import FaultAwareRouter, Topology
from ..obs import Instrumentation, resolve
from .plan import FaultConfigError, FaultPlan

__all__ = ["RetryPolicy", "FaultInjector"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry semantics for fetches in a degraded array.

    Attributes
    ----------
    deadline:
        Cycles a fetch attempt waits before it is declared timed out.
    max_retries:
        Re-attempts after the first try (so a reference is attempted at
        most ``max_retries + 1`` times).
    backoff:
        Exponential backoff base: attempt ``a`` waits
        ``deadline * backoff**a`` cycles before giving up.
    """

    deadline: int = 8
    max_retries: int = 3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.deadline < 1:
            raise FaultConfigError("retry deadline must be at least one cycle")
        if self.max_retries < 0:
            raise FaultConfigError("max_retries must be non-negative")
        if self.backoff < 1.0:
            raise FaultConfigError("backoff base must be >= 1")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def wait_cycles(self, attempt: int) -> float:
        """Cycles spent before abandoning attempt ``attempt`` (0-based)."""
        return float(self.deadline) * self.backoff**attempt

    def total_timeout_cycles(self) -> float:
        """Cycles burned when every attempt of a reference times out."""
        return sum(self.wait_cycles(a) for a in range(self.max_attempts))


class FaultInjector:
    """Per-window view of a fault plan over a concrete machine."""

    def __init__(
        self,
        plan: FaultPlan,
        topology: Topology,
        n_windows: int | None = None,
        instrument: Instrumentation | None = None,
    ) -> None:
        plan.validate_for(topology, n_windows)
        self.plan = plan
        self.topology = topology
        self.n_windows = n_windows
        self._obs = resolve(instrument)
        self._router_cache: dict[tuple, FaultAwareRouter] = {}

    # -- structural state ------------------------------------------------------

    def down_nodes(self, window: int) -> frozenset[int]:
        return self.plan.down_nodes(window)

    def down_links(self, window: int):
        return self.plan.down_links(window)

    def newly_down(self, window: int) -> frozenset[int]:
        """Nodes down in ``window`` that were alive in the previous one.

        For window 0 this is every node down from the start — their
        residents must be evacuated before execution begins.
        """
        down = self.plan.down_nodes(window)
        if window == 0:
            return down
        return down - self.plan.down_nodes(window - 1)

    def alive_mask(self, window: int) -> np.ndarray:
        """Boolean ``(n_procs,)`` mask of surviving processors."""
        alive = np.ones(self.topology.n_procs, dtype=bool)
        down = list(self.plan.down_nodes(window))
        if down:
            alive[down] = False
        return alive

    def router(self, window: int) -> FaultAwareRouter:
        """Fault-aware router for the window's structural-fault epoch."""
        epoch = self.plan.fault_epoch(window)
        if epoch not in self._router_cache:
            self._obs.count("faults.router_cache_miss")
            with self._obs.span("faults.build_router", window=window):
                self._router_cache[epoch] = FaultAwareRouter(
                    self.topology, dead_nodes=epoch[0], dead_links=epoch[1]
                )
        else:
            self._obs.count("faults.router_cache_hit")
        return self._router_cache[epoch]

    def recovery_router(self, window: int, source: int) -> FaultAwareRouter:
        """Router for evacuation traffic *originating at a dead node*.

        A failed processor's memory stays addressable through its mesh
        port during recovery, so evacuation routes treat the source as
        alive while every other fault stays in force.
        """
        down, links = self.plan.fault_epoch(window)
        key = (down - {source}, links, source)
        if key not in self._router_cache:
            self._router_cache[key] = FaultAwareRouter(
                self.topology, dead_nodes=down - {source}, dead_links=links
            )
        return self._router_cache[key]

    # -- transient drops -------------------------------------------------------

    def drops(self, window: int, event: int, attempt: int) -> bool:
        return self.plan.drops_message(window, event, attempt)
