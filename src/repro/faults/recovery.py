"""Data evacuation: relocating a failed node's residents.

When a processor dies, every datum resident in its local memory must be
moved to a surviving node or its references become unreachable.  The
policy here is the natural one for the paper's cost model: each victim
datum goes to its *scheduled* center for the upcoming window when that
center is alive and has a free slot, and otherwise to the nearest
surviving node (by metric distance from the failed node, ties toward the
lowest pid) with capacity headroom.

The planner is a pure function over explicit state so the capacity
invariant — an evacuation never overfills any surviving memory — can be
property-tested in isolation from the replay driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Relocation", "plan_evacuation"]


@dataclass(frozen=True)
class Relocation:
    """One recovery move: ``datum`` from ``src`` (dead) to ``dst`` (alive)."""

    datum: int
    src: int
    dst: int


def plan_evacuation(
    locations: np.ndarray,
    load: np.ndarray,
    capacities: np.ndarray | None,
    failed: frozenset[int] | set[int],
    alive: np.ndarray,
    distances: np.ndarray,
    preferred: np.ndarray | None = None,
) -> tuple[list[Relocation], list[int]]:
    """Plan the evacuation of every datum resident on a failed node.

    Parameters
    ----------
    locations:
        ``(n_data,)`` current per-datum pid vector.
    load:
        ``(n_procs,)`` current per-node resident counts.
    capacities:
        ``(n_procs,)`` memory capacities, or ``None`` for unbounded.
    failed:
        Pids of the nodes whose residents must leave.
    alive:
        ``(n_procs,)`` boolean mask of surviving processors.
    distances:
        ``(n_procs, n_procs)`` metric used to pick the nearest refuge.
    preferred:
        Optional ``(n_data,)`` pid vector of scheduled centers for the
        upcoming window; a victim is sent there first when possible.

    Returns
    -------
    ``(moves, lost)`` — the relocations to perform, in ascending datum
    order, and the data ids stranded because no surviving node has a free
    slot.  Applying ``moves`` never exceeds any capacity.
    """
    locations = np.asarray(locations)
    headroom = (
        np.full(len(load), np.iinfo(np.int64).max, dtype=np.int64)
        if capacities is None
        else np.asarray(capacities, dtype=np.int64) - np.asarray(load)
    )
    alive = np.asarray(alive, dtype=bool)
    moves: list[Relocation] = []
    lost: list[int] = []
    failed = set(int(p) for p in failed)
    if not failed:
        return moves, lost

    victims = [d for d in range(len(locations)) if int(locations[d]) in failed]
    for d in victims:
        src = int(locations[d])
        dst = None
        if preferred is not None:
            target = int(preferred[d])
            if alive[target] and headroom[target] > 0:
                dst = target
        if dst is None:
            # nearest surviving node with a free slot; ties -> lowest pid
            order = np.argsort(distances[src], kind="stable")
            for q in order:
                q = int(q)
                if alive[q] and headroom[q] > 0:
                    dst = q
                    break
        if dst is None:
            lost.append(d)
            continue
        headroom[dst] -= 1
        moves.append(Relocation(datum=d, src=src, dst=dst))
    return moves, lost
