"""Online fault recovery: detect at activation, roll back, re-plan, resume.

The offline fault pipeline (:func:`~repro.sim.replay_schedule` with a
:class:`FaultPlan`, :func:`~repro.core.reschedule_around_faults`) assumes
every failure is declared before execution starts.  This module drops
that assumption: faults are *discovered* only when they activate, through
a :class:`FaultDetector` view that hides the plan's future epochs, and a
:class:`RecoveryController` keeps the run alive by

1. replaying the schedule window by window on a checkpointing
   :class:`~repro.sim.ReplayCursor`, snapshotting the simulator state
   every ``checkpoint_interval`` windows;
2. polling the detector after each window — a window executed under a
   stale fault view has *wrong* accounting (it fetched from a node that
   was silently dead), so on detection the controller rolls back to the
   last checkpoint (bounded rollback: never deeper than the interval);
3. re-planning the suffix with
   :func:`~repro.core.reschedule_from_window`, pinned to the checkpoint's
   residency, against the degraded topology known so far;
4. resuming with an escalated retry deadline (exponential backoff capped
   by ``recovery_deadline``) and a bounded recovery budget
   (``max_recoveries``; when exhausted, the controller stops rolling back
   and finishes the run against the full ground-truth plan).

What happens to references the degraded array still cannot serve is the
policy's **degradation mode**:

``strict``
    fail fast — the first unreachable reference or stranded datum raises
    :class:`RecoveryError` (so does a failed re-plan or an exhausted
    recovery budget);
``degrade``
    drop with accounting — unreachable references and stranded data are
    recorded in the :class:`~repro.sim.SimReport` buckets (and mirrored
    in the recovery report), execution continues;
``replicate``
    fall back to replicas — unreachable fetches are served from the
    nearest alive replica site of a static
    :class:`~repro.core.ReplicatedPlacement`, and stranded victims are
    promoted onto a surviving replica site instead of being lost.

Everything here is deterministic: the detector is a pure view over the
(seeded) plan, checkpoints carry content digests, and a restore is
verified against the digest it came from.  ``repro.analysis.chaos``
stress-tests these guarantees under randomized fault storms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..diagnostics import (
    FLT007,
    FLT008,
    Diagnostic,
    Severity,
    code_message,
)
from ..mem import CapacityError
from ..obs import Instrumentation, record_event, resolve
from ..schema import SCHEMA_VERSION, check_schema
from .injector import RetryPolicy
from .plan import FaultConfigError, FaultPlan, LinkFault, NodeFault

__all__ = [
    "FaultDetector",
    "RecoveryPolicy",
    "RecoveryError",
    "RecoveryEvent",
    "RecoveryReport",
    "RecoveryController",
    "replay_with_recovery",
    "RECOVERY_MODES",
]

RECOVERY_MODES = ("strict", "degrade", "replicate")


class RecoveryError(RuntimeError):
    """Online recovery could not uphold the policy's guarantees.

    Raised only in ``strict`` mode (fail fast) — the other modes turn the
    same conditions into report accounting.  Carries the partial
    :class:`RecoveryReport` accumulated before the failure when one
    exists.
    """

    def __init__(self, message: str, report: "RecoveryReport | None" = None):
        super().__init__(message)
        self.report = report


class FaultDetector:
    """Activation-time view of a ground-truth :class:`FaultPlan`.

    The controller never sees the full plan: it sees ``known_plan``, the
    faults *discovered so far* plus the plan's transient drop rate (a
    channel property, observable from the first lost message, hence known
    up front — and required so an online replay of a drops-only plan is
    bit-identical to the offline one).  :meth:`poll` discovers structural
    faults in the window they first activate; with ``assume_permanent``
    the discovered view conservatively ignores the plan's healing times
    (``end=None``), which is what a real detector — unable to see the
    future — would report.
    """

    def __init__(self, plan: FaultPlan, assume_permanent: bool = False) -> None:
        self.plan = plan
        self.assume_permanent = assume_permanent
        self._known_nodes: list[NodeFault] = []
        self._known_links: list[LinkFault] = []
        self._seen: set = set()

    def poll(self, window: int) -> tuple:
        """Structural faults newly active in ``window``; updates the view."""
        newly = []
        for f in (*self.plan.node_faults, *self.plan.link_faults):
            if f in self._seen or not f.active_in(window):
                continue
            self._seen.add(f)
            known = f
            if self.assume_permanent and f.end is not None:
                # replace() on the frozen dataclass keeps pid/src/dst/start
                kwargs = {"start": f.start, "end": None}
                if isinstance(f, NodeFault):
                    known = NodeFault(pid=f.pid, **kwargs)
                else:
                    known = LinkFault(src=f.src, dst=f.dst, **kwargs)
            if isinstance(known, NodeFault):
                self._known_nodes.append(known)
            else:
                self._known_links.append(known)
            newly.append(known)
        return tuple(newly)

    @property
    def known_plan(self) -> FaultPlan:
        """The fault plan as currently discovered (drops always included)."""
        return FaultPlan(
            node_faults=tuple(self._known_nodes),
            link_faults=tuple(self._known_links),
            drop_rate=self.plan.drop_rate,
            seed=self.plan.seed,
        )

    @property
    def n_discovered(self) -> int:
        return len(self._seen)

    def all_discovered(self) -> bool:
        """Every structural fault of the ground truth has been observed."""
        return self.n_discovered == len(self.plan.node_faults) + len(
            self.plan.link_faults
        )


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a run detects, rewinds and degrades — the recovery contract.

    Attributes
    ----------
    mode:
        Degradation mode: ``strict`` | ``degrade`` | ``replicate``.
    checkpoint_interval:
        Windows between snapshots; also the bound on rollback depth.
        Static lint checks it as rule ``FLT007``.
    max_recoveries:
        Rollback budget; when spent, the controller stops rewinding and
        finishes against the ground-truth plan (``strict`` raises).
    backoff:
        Multiplier applied to the retry deadline after each recovery
        (escalation: a repeatedly-failing array earns more patience).
    recovery_deadline:
        Upper bound (cycles) on the escalated retry deadline.
    reschedule:
        Whether a detection triggers an incremental re-plan of the
        suffix (:func:`~repro.core.reschedule_from_window`); disable to
        measure the value of rescheduling in isolation.
    """

    mode: str = "degrade"
    checkpoint_interval: int = 4
    max_recoveries: int = 8
    backoff: float = 2.0
    recovery_deadline: float = 256.0
    reschedule: bool = True

    def __post_init__(self) -> None:
        if self.mode not in RECOVERY_MODES:
            raise FaultConfigError(
                f"unknown recovery mode {self.mode!r}; expected one of "
                f"{', '.join(RECOVERY_MODES)}"
            )
        if self.max_recoveries < 0:
            raise FaultConfigError("max_recoveries must be non-negative")
        if self.backoff < 1.0:
            raise FaultConfigError("recovery backoff base must be >= 1")
        if self.recovery_deadline < 1.0:
            raise FaultConfigError("recovery_deadline must be >= 1 cycle")

    # -- validation (shared with repro.lint's FLT007/FLT008 rules) -----------

    def config_violations(
        self,
        n_windows: int | None = None,
        has_replicas: bool | None = None,
    ):
        """Every way the policy misfits the run, as coded diagnostics.

        Mirrors :meth:`FaultPlan.config_violations`: the static lint
        rules and the dynamic :meth:`validate` gate share this generator,
        so both paths emit identical ``FLT007``/``FLT008`` messages.
        Bounds passed as ``None`` skip their half of the checks.
        """
        if self.checkpoint_interval < 1:
            yield Diagnostic(
                code=FLT007,
                severity=Severity.ERROR,
                message=(
                    f"checkpoint interval must be at least 1 window, got "
                    f"{self.checkpoint_interval}"
                ),
                hint="an interval of 1 checkpoints before every window",
            )
        elif n_windows is not None and self.checkpoint_interval > n_windows:
            yield Diagnostic(
                code=FLT007,
                severity=Severity.ERROR,
                message=(
                    f"checkpoint interval {self.checkpoint_interval} exceeds "
                    f"the schedule's {n_windows}-window horizon, so only the "
                    "initial state is ever snapshotted"
                ),
                window=n_windows - 1,
                hint="use an interval no larger than the window count",
            )
        if self.mode == "replicate" and has_replicas is False:
            yield Diagnostic(
                code=FLT008,
                severity=Severity.ERROR,
                message=(
                    "recovery mode 'replicate' requested but the run carries "
                    "no replica placement to fall back on"
                ),
                hint=(
                    "provide a ReplicatedPlacement (e.g. replicated_scds) or "
                    "use mode 'degrade'"
                ),
            )

    def validate(
        self,
        n_windows: int | None = None,
        has_replicas: bool | None = None,
    ) -> None:
        """Raise a coded :class:`FaultConfigError` on the first violation."""
        for diag in self.config_violations(n_windows, has_replicas):
            raise FaultConfigError(code_message(diag.code, diag.message))

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "checkpoint_interval": self.checkpoint_interval,
            "max_recoveries": self.max_recoveries,
            "backoff": self.backoff,
            "recovery_deadline": self.recovery_deadline,
            "reschedule": self.reschedule,
        }

    @staticmethod
    def from_dict(payload: dict) -> "RecoveryPolicy":
        if not isinstance(payload, dict):
            raise FaultConfigError(
                f"a recovery policy must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        unknown = set(payload) - {
            "mode",
            "checkpoint_interval",
            "max_recoveries",
            "backoff",
            "recovery_deadline",
            "reschedule",
        }
        if unknown:
            raise FaultConfigError(
                f"unknown recovery-policy field(s): {', '.join(sorted(unknown))}"
            )
        try:
            return RecoveryPolicy(
                mode=str(payload.get("mode", "degrade")),
                checkpoint_interval=int(payload.get("checkpoint_interval", 4)),
                max_recoveries=int(payload.get("max_recoveries", 8)),
                backoff=float(payload.get("backoff", 2.0)),
                recovery_deadline=float(payload.get("recovery_deadline", 256.0)),
                reschedule=bool(payload.get("reschedule", True)),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, FaultConfigError):
                raise
            raise FaultConfigError(f"malformed recovery policy: {exc}") from exc


@dataclass(frozen=True)
class RecoveryEvent:
    """One detection → rollback → resume cycle, as the controller saw it."""

    window: int  #: window whose execution surfaced the fault(s)
    faults: tuple[str, ...]  #: human renderings of the discovered faults
    rollback_to: int  #: checkpoint window the run rewound to
    rollback_depth: int  #: windows of work discarded (<= checkpoint interval)
    rescheduled: bool  #: whether the suffix was re-planned
    wasted_cost: float  #: traffic cost of the discarded windows
    retry_deadline: int  #: escalated retry deadline after this recovery

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "faults": list(self.faults),
            "rollback_to": self.rollback_to,
            "rollback_depth": self.rollback_depth,
            "rescheduled": self.rescheduled,
            "wasted_cost": self.wasted_cost,
            "retry_deadline": self.retry_deadline,
        }

    @staticmethod
    def from_dict(payload: dict) -> "RecoveryEvent":
        return RecoveryEvent(
            window=int(payload["window"]),
            faults=tuple(str(f) for f in payload.get("faults", [])),
            rollback_to=int(payload["rollback_to"]),
            rollback_depth=int(payload["rollback_depth"]),
            rescheduled=bool(payload["rescheduled"]),
            wasted_cost=float(payload["wasted_cost"]),
            retry_deadline=int(payload["retry_deadline"]),
        )


@dataclass
class RecoveryReport:
    """What an online-recovery run did, on top of the replay's own report.

    ``sim`` is the final :class:`~repro.sim.SimReport` of the surviving
    timeline (rolled-back windows are *not* in it — their cost is
    accounted here as ``wasted_cost``).
    """

    sim: object  # SimReport; untyped to keep this module import-light
    mode: str
    checkpoint_interval: int
    events: list[RecoveryEvent] = field(default_factory=list)
    n_detections: int = 0
    n_rollbacks: int = 0
    windows_replayed: int = 0
    max_rollback_depth: int = 0
    wasted_cost: float = 0.0
    n_replica_served: int = 0
    n_replica_promoted: int = 0
    n_degraded_refs: int = 0
    n_degraded_lost: int = 0
    reschedule_failures: int = 0
    restore_mismatches: int = 0
    budget_exhausted: bool = False
    recovery_latency_s: float = 0.0

    @property
    def recoverable(self) -> bool:
        """The controller upheld its own machinery end to end."""
        return (
            self.reschedule_failures == 0
            and self.restore_mismatches == 0
            and not self.budget_exhausted
        )

    @property
    def data_preserved(self) -> bool:
        """No reference went unserved and no datum instance was lost."""
        return (
            self.sim.n_unreachable == 0
            and self.sim.n_lost == 0
            and self.sim.n_dropped == 0
        )

    def to_dict(self) -> dict:
        return {
            "kind": "recovery_report",
            "schema_version": SCHEMA_VERSION,
            "mode": self.mode,
            "checkpoint_interval": self.checkpoint_interval,
            "n_detections": self.n_detections,
            "n_rollbacks": self.n_rollbacks,
            "windows_replayed": self.windows_replayed,
            "max_rollback_depth": self.max_rollback_depth,
            "wasted_cost": self.wasted_cost,
            "n_replica_served": self.n_replica_served,
            "n_replica_promoted": self.n_replica_promoted,
            "n_degraded_refs": self.n_degraded_refs,
            "n_degraded_lost": self.n_degraded_lost,
            "reschedule_failures": self.reschedule_failures,
            "restore_mismatches": self.restore_mismatches,
            "budget_exhausted": self.budget_exhausted,
            "recoverable": self.recoverable,
            "data_preserved": self.data_preserved,
            "recovery_latency_s": self.recovery_latency_s,
            "events": [e.to_dict() for e in self.events],
            "sim": self.sim.to_dict(),
        }

    @staticmethod
    def from_dict(payload: dict) -> "RecoveryReport":
        """Inverse of :meth:`to_dict` (with schema-version checking).

        The nested ``sim`` block is loaded through
        :meth:`~repro.sim.SimReport.from_dict`, so its version is
        checked too; derived flags (``recoverable``, ``data_preserved``)
        are recomputed rather than trusted.
        """
        from ..sim import SimReport

        check_schema(payload, "recovery_report")
        return RecoveryReport(
            sim=SimReport.from_dict(payload["sim"]),
            mode=str(payload["mode"]),
            checkpoint_interval=int(payload["checkpoint_interval"]),
            events=[
                RecoveryEvent.from_dict(e) for e in payload.get("events", [])
            ],
            n_detections=int(payload["n_detections"]),
            n_rollbacks=int(payload["n_rollbacks"]),
            windows_replayed=int(payload["windows_replayed"]),
            max_rollback_depth=int(payload["max_rollback_depth"]),
            wasted_cost=float(payload["wasted_cost"]),
            n_replica_served=int(payload["n_replica_served"]),
            n_replica_promoted=int(payload["n_replica_promoted"]),
            n_degraded_refs=int(payload["n_degraded_refs"]),
            n_degraded_lost=int(payload["n_degraded_lost"]),
            reschedule_failures=int(payload["reschedule_failures"]),
            restore_mismatches=int(payload["restore_mismatches"]),
            budget_exhausted=bool(payload["budget_exhausted"]),
            recovery_latency_s=float(payload["recovery_latency_s"]),
        )

    def summary(self) -> str:
        line = (
            f"recovery[{self.mode}]: {self.n_detections} detections, "
            f"{self.n_rollbacks} rollbacks ({self.windows_replayed} windows "
            f"replayed, max depth {self.max_rollback_depth}), "
            f"wasted {self.wasted_cost:g}"
        )
        if self.n_replica_served or self.n_replica_promoted:
            line += (
                f", replicas served {self.n_replica_served} / promoted "
                f"{self.n_replica_promoted}"
            )
        if not self.recoverable:
            line += ", NOT RECOVERABLE"
        return line + " | " + self.sim.summary()


class RecoveryController:
    """Drive a checkpointed replay to completion under online detection.

    Parameters
    ----------
    trace, schedule, model:
        The run, exactly as :func:`~repro.sim.replay_schedule` takes it.
    plan:
        The *ground-truth* fault plan (what actually happens to the
        machine); the controller only ever acts on what the detector has
        discovered from it.
    tensor:
        Reference tensor used for incremental re-planning; required when
        ``policy.reschedule`` is on.
    replicas:
        Static replica sites (a :class:`~repro.core.ReplicatedPlacement`
        or a raw ``replicas``-style tuple-of-tuples); required by the
        ``replicate`` mode (rule ``FLT008``).
    """

    def __init__(
        self,
        trace,
        schedule,
        model,
        plan: FaultPlan,
        tensor=None,
        policy: RecoveryPolicy | None = None,
        capacity=None,
        retry: RetryPolicy | None = None,
        replicas=None,
        detector: FaultDetector | None = None,
        evacuate: bool = True,
        track_links: bool = False,
        instrument: Instrumentation | None = None,
    ) -> None:
        self.policy = policy or RecoveryPolicy()
        self.policy.validate(
            n_windows=schedule.n_windows,
            has_replicas=replicas is not None,
        )
        if self.policy.reschedule and tensor is None:
            raise FaultConfigError(
                "policy.reschedule is on but no reference tensor was given; "
                "pass tensor= or a policy with reschedule=False"
            )
        plan.validate_for(model.topology, schedule.n_windows)
        self.trace = trace
        self.schedule = schedule
        self.model = model
        self.tensor = tensor
        self.plan = plan
        self.capacity = capacity
        self.base_retry = retry or RetryPolicy()
        self.detector = detector or FaultDetector(plan)
        self.evacuate = evacuate
        self.track_links = track_links
        self._obs = resolve(instrument)
        self._replicas = (
            None if replicas is None else getattr(replicas, "replicas", replicas)
        )
        self.report = RecoveryReport(
            sim=None,
            mode=self.policy.mode,
            checkpoint_interval=self.policy.checkpoint_interval,
        )
        self._recoveries_used = 0
        self._polling = True

    # -- degradation-mode hooks (installed on the cursor) --------------------

    def _on_unreachable(self, w, event, d, p, volume, router, alive) -> bool:
        mode = self.policy.mode
        if mode == "strict":
            raise RecoveryError(
                f"strict recovery: datum {d} unreachable from processor {p} "
                f"at window {w}",
                report=self.report,
            )
        if mode == "replicate" and self._replicas is not None and alive[p]:
            route = self._best_replica_route(d, p, router, alive)
            if route is not None:
                from ..sim.replay import _attempt_fetch

                self.report.n_replica_served += 1
                self._obs.count("recovery.replica_served")
                _attempt_fetch(
                    self._cursor.report,
                    self._cursor.retry,
                    self._cursor.injector,
                    w,
                    event,
                    route,
                    volume,
                    self.track_links,
                )
                return True
        self.report.n_degraded_refs += 1
        self._obs.count("recovery.degraded_refs")
        return False  # fall through to the standard unreachable record

    def _on_stranded(self, datum, src, w) -> bool:
        mode = self.policy.mode
        if mode == "strict":
            raise RecoveryError(
                f"strict recovery: datum {datum} stranded on dead processor "
                f"{src} at window {w}",
                report=self.report,
            )
        if mode == "replicate" and self._replicas is not None:
            alive = self._cursor.injector.alive_mask(w)
            for site in self._replicas[datum]:
                site = int(site)
                if not alive[site] or site == src:
                    continue
                try:
                    self._cursor.machine.relocate(datum, src, site)
                except CapacityError:
                    continue
                self.report.n_replica_promoted += 1
                self._obs.count("recovery.replica_promoted")
                return True
        self.report.n_degraded_lost += 1
        self._obs.count("recovery.degraded_lost")
        return False  # fall through to the standard loss record

    def _best_replica_route(self, d, p, router, alive):
        """Shortest surviving route from an alive replica site of ``d``."""
        best = None
        for site in self._replicas[d]:
            site = int(site)
            if not alive[site]:
                continue
            route = router.route(site, p)
            if route is not None and (best is None or len(route) < len(best)):
                best = route
        return best

    # -- the recovery loop ---------------------------------------------------

    def run(self) -> RecoveryReport:
        """Replay to completion; returns the filled :class:`RecoveryReport`.

        In ``strict`` mode any un-recoverable condition raises
        :class:`RecoveryError` (carrying the partial report) instead.
        """
        from ..sim.checkpoint import ReplayCursor

        policy = self.policy
        t0 = time.perf_counter()
        with self._obs.span(
            "recovery.run",
            mode=policy.mode,
            checkpoint_interval=policy.checkpoint_interval,
            n_windows=self.schedule.n_windows,
        ):
            cursor = ReplayCursor(
                self.trace,
                self.schedule,
                self.model,
                capacity=self.capacity,
                faults=self.detector.known_plan,
                retry=self.base_retry,
                evacuate=self.evacuate,
                track_links=self.track_links,
                on_unreachable=self._on_unreachable,
                on_stranded=self._on_stranded,
            )
            self._cursor = cursor
            last_ckpt = cursor.snapshot()
            while not cursor.done:
                w = cursor.window
                if self._polling and w % policy.checkpoint_interval == 0:
                    with self._obs.span("recovery.checkpoint", window=w):
                        last_ckpt = cursor.snapshot()
                cursor.step()
                if not self._polling:
                    continue
                newly = self.detector.poll(w)
                if newly:
                    self._recover(cursor, last_ckpt, w, newly)
            self.report.sim = cursor.finish()
            self.report.recovery_latency_s = time.perf_counter() - t0
            self._obs.gauge("recovery.rollbacks", self.report.n_rollbacks)
            self._obs.gauge("recovery.wasted_cost", self.report.wasted_cost)
            self._obs.observe(
                "recovery.latency_s", self.report.recovery_latency_s
            )
            return self.report

    def _recover(self, cursor, ckpt, window: int, newly) -> None:
        """One detection: rewind, re-plan the suffix, escalate, resume."""
        policy = self.policy
        report = self.report
        report.n_detections += 1
        self._obs.count("recovery.detections")
        if self._recoveries_used >= policy.max_recoveries:
            # budget spent: stop rewinding, finish against ground truth
            report.budget_exhausted = True
            self._obs.count("recovery.budget_exhausted")
            if policy.mode == "strict":
                raise RecoveryError(
                    f"strict recovery: budget of {policy.max_recoveries} "
                    f"recoveries exhausted at window {window}",
                    report=report,
                )
            self._polling = False
            cursor.rebind(faults=self.plan)
            return
        self._recoveries_used += 1

        wasted = cursor.report.degraded_cost - ckpt.report.degraded_cost
        depth = cursor.window - ckpt.window
        with self._obs.span(
            "recovery.rollback", window=window, to_window=ckpt.window
        ):
            cursor.restore(ckpt)
            if cursor.state_digest() != ckpt.digest:
                report.restore_mismatches += 1
                self._obs.count("recovery.restore_mismatch")
        report.n_rollbacks += 1
        report.windows_replayed += depth
        report.max_rollback_depth = max(report.max_rollback_depth, depth)
        report.wasted_cost += wasted
        self._obs.observe("recovery.rollback_depth", depth)

        known = self.detector.known_plan
        rescheduled = False
        if policy.reschedule:
            from ..core.reschedule import reschedule_from_window

            try:
                with self._obs.span(
                    "recovery.reschedule", from_window=ckpt.window
                ):
                    self.schedule = reschedule_from_window(
                        self.schedule,
                        self.tensor,
                        self.model,
                        known,
                        ckpt.window,
                        placement=ckpt.locations,
                        capacity=self.capacity,
                        instrument=self._obs,
                    )
                rescheduled = True
            except CapacityError as exc:
                report.reschedule_failures += 1
                self._obs.count("recovery.reschedule_failure")
                if policy.mode == "strict":
                    raise RecoveryError(
                        f"strict recovery: re-plan from window {ckpt.window} "
                        f"failed: {exc}",
                        report=report,
                    ) from exc
        cursor.rebind(schedule=self.schedule, faults=known)
        escalated = int(
            min(
                policy.recovery_deadline,
                self.base_retry.deadline
                * policy.backoff**self._recoveries_used,
            )
        )
        escalated = max(1, escalated)
        cursor.retry = RetryPolicy(
            deadline=escalated,
            max_retries=self.base_retry.max_retries,
            backoff=self.base_retry.backoff,
        )
        report.events.append(
            RecoveryEvent(
                window=window,
                faults=tuple(str(f) for f in newly),
                rollback_to=ckpt.window,
                rollback_depth=depth,
                rescheduled=rescheduled,
                wasted_cost=float(wasted),
                retry_deadline=escalated,
            )
        )
        record_event(
            "recovery.rollback",
            window=window,
            rollback_to=ckpt.window,
            rollback_depth=depth,
            faults=len(newly),
            rescheduled=rescheduled,
        )


def replay_with_recovery(
    trace,
    schedule,
    model,
    plan: FaultPlan,
    tensor=None,
    policy: RecoveryPolicy | None = None,
    capacity=None,
    retry: RetryPolicy | None = None,
    replicas=None,
    evacuate: bool = True,
    track_links: bool = False,
    instrument: Instrumentation | None = None,
) -> RecoveryReport:
    """One-call online recovery run; see :class:`RecoveryController`."""
    return RecoveryController(
        trace,
        schedule,
        model,
        plan,
        tensor=tensor,
        policy=policy,
        capacity=capacity,
        retry=retry,
        replicas=replicas,
        evacuate=evacuate,
        track_links=track_links,
        instrument=instrument,
    ).run()
