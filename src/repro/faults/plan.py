"""Deterministic fault plans: *what* fails and *when*.

The paper's machine model is fault-free; this module describes the ways a
real PIM array degrades.  A :class:`FaultPlan` is an immutable, seedable
description of three failure modes:

* **node failures** (:class:`NodeFault`) — a processor (and its local
  memory port) stops serving fetches for a window range;
* **directed-link failures** (:class:`LinkFault`) — one direction of a
  mesh wire is severed for a window range;
* **transient message drops** — each fetch attempt is lost with a fixed
  probability, decided by a deterministic counter-based RNG so that any
  two replays of the same plan observe the same drops.

Activation is expressed in *execution windows* (the paper's scheduling
granularity): a fault with ``start=s, end=e`` is active for every window
``w`` with ``s <= w < e`` (``end=None`` means the fault never heals).
All randomness is derived from ``seed`` — a plan is a pure value and two
equal plans inject identical faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..diagnostics import FLT001, FLT002, FLT004, Diagnostic, Severity, code_message
from ..grid import Link, Topology

__all__ = ["FaultConfigError", "NodeFault", "LinkFault", "FaultPlan"]


class FaultConfigError(ValueError):
    """Raised when a fault plan is malformed or does not fit the machine."""


def _check_window_range(start: int, end: int | None, what: str) -> None:
    if start < 0:
        raise FaultConfigError(f"{what}: start window must be >= 0, got {start}")
    if end is not None and end <= start:
        raise FaultConfigError(
            f"{what}: end window {end} must be after start window {start} "
            "(end is exclusive; use end=None for a permanent fault)"
        )


class _WindowedFault:
    """Shared window-activation semantics of every structural fault.

    Both fault kinds activate over the half-open range ``[start, end)``
    with ``end=None`` meaning permanent.  Keeping the implementation in
    one place guarantees :meth:`NodeFault.active_in` and
    :meth:`LinkFault.active_in` can never drift apart (property-tested
    against :meth:`FaultPlan.fault_epoch` membership in
    ``tests/properties``).
    """

    start: int
    end: int | None

    def active_in(self, window: int) -> bool:
        return self.start <= window and (self.end is None or window < self.end)

    def _validate_window_range(self, what: str) -> None:
        _check_window_range(self.start, self.end, what)


@dataclass(frozen=True)
class NodeFault(_WindowedFault):
    """Processor ``pid`` is down for windows ``start <= w < end``."""

    pid: int
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise FaultConfigError(f"node fault names a negative pid {self.pid}")
        self._validate_window_range(f"node fault on pid {self.pid}")


@dataclass(frozen=True)
class LinkFault(_WindowedFault):
    """Directed mesh link ``src -> dst`` is severed for ``start <= w < end``."""

    src: int
    dst: int
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise FaultConfigError(
                f"link fault names a negative pid ({self.src} -> {self.dst})"
            )
        if self.src == self.dst:
            raise FaultConfigError(f"link fault {self.src} -> {self.dst} is a self-loop")
        self._validate_window_range(f"link fault {self.src} -> {self.dst}")

    @property
    def link(self) -> Link:
        return (self.src, self.dst)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seedable set of faults to inject into a replay.

    Attributes
    ----------
    node_faults, link_faults:
        The permanent/windowed structural failures.
    drop_rate:
        Probability in ``[0, 1]`` that any single fetch attempt is lost in
        transit (decided deterministically from ``seed``).
    seed:
        Root seed for every stochastic decision the plan makes.
    """

    node_faults: tuple[NodeFault, ...] = ()
    link_faults: tuple[LinkFault, ...] = ()
    drop_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_faults", tuple(self.node_faults))
        object.__setattr__(self, "link_faults", tuple(self.link_faults))
        if not 0.0 <= self.drop_rate <= 1.0:
            raise FaultConfigError(
                f"drop_rate must be a probability in [0, 1], got {self.drop_rate}"
            )

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all (fault-free replay)."""
        return (
            not self.node_faults and not self.link_faults and self.drop_rate == 0.0
        )

    # -- activation queries --------------------------------------------------

    def down_nodes(self, window: int) -> frozenset[int]:
        """Pids of processors down during ``window``."""
        return frozenset(f.pid for f in self.node_faults if f.active_in(window))

    def down_links(self, window: int) -> frozenset[Link]:
        """Directed links severed during ``window``."""
        return frozenset(f.link for f in self.link_faults if f.active_in(window))

    def fault_epoch(self, window: int) -> tuple[frozenset[int], frozenset[Link]]:
        """Hashable structural-fault state of ``window`` (for router caching)."""
        return self.down_nodes(window), self.down_links(window)

    # -- validation ----------------------------------------------------------

    def config_violations(
        self, topology: Topology | None, n_windows: int | None = None
    ) -> Iterator[Diagnostic]:
        """Every way the plan fails to fit the machine, as coded diagnostics.

        Shared between :meth:`validate_for` (the dynamic gate, which raises
        on the first violation) and the ``FLT001``/``FLT002`` rules of
        :mod:`repro.lint` (the static pass, which reports them all) — so
        both paths emit identical codes and messages.  Either bound may be
        ``None`` to skip its half of the checks.
        """
        n = None if topology is None else topology.n_procs
        if n is None:
            if n_windows is None:
                return
            node_faults: tuple[NodeFault, ...] = ()
            link_faults: tuple[LinkFault, ...] = ()
        else:
            node_faults, link_faults = self.node_faults, self.link_faults
        for f in node_faults:
            if f.pid >= n:
                yield Diagnostic(
                    code=FLT001,
                    severity=Severity.ERROR,
                    message=(
                        f"node fault names pid {f.pid}, but the array has "
                        f"only {n} processors"
                    ),
                    processor=f.pid,
                )
        for f in link_faults:
            if f.src >= n or f.dst >= n:
                yield Diagnostic(
                    code=FLT001,
                    severity=Severity.ERROR,
                    message=(
                        f"link fault {f.src} -> {f.dst} names pids outside "
                        f"the {n}-processor array"
                    ),
                    processor=f.src if f.src >= n else f.dst,
                )
        if n_windows is not None:
            for f in (*self.node_faults, *self.link_faults):
                if f.start >= n_windows:
                    yield Diagnostic(
                        code=FLT002,
                        severity=Severity.ERROR,
                        message=(
                            f"fault {f} activates at window {f.start}, but "
                            f"the schedule has only {n_windows} windows"
                        ),
                        window=f.start,
                    )

    def validate_for(self, topology: Topology, n_windows: int | None = None) -> None:
        """Raise :class:`FaultConfigError` unless the plan fits the machine."""
        for diag in self.config_violations(topology, n_windows):
            raise FaultConfigError(code_message(diag.code, diag.message))

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "node_faults": [
                {"pid": f.pid, "start": f.start, "end": f.end}
                for f in self.node_faults
            ],
            "link_faults": [
                {"src": f.src, "dst": f.dst, "start": f.start, "end": f.end}
                for f in self.link_faults
            ],
            "drop_rate": self.drop_rate,
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(payload: dict) -> "FaultPlan":
        """Build a plan from :meth:`to_dict` output (or hand-written JSON)."""
        if not isinstance(payload, dict):
            raise FaultConfigError(
                f"a fault plan must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"node_faults", "link_faults", "drop_rate", "seed"}
        if unknown:
            raise FaultConfigError(
                f"unknown fault-plan field(s): {', '.join(sorted(unknown))}"
            )
        try:
            node_faults = tuple(
                NodeFault(**entry) for entry in payload.get("node_faults", ())
            )
            link_faults = tuple(
                LinkFault(**entry) for entry in payload.get("link_faults", ())
            )
        except TypeError as exc:
            raise FaultConfigError(f"malformed fault entry: {exc}") from exc
        return FaultPlan(
            node_faults=node_faults,
            link_faults=link_faults,
            drop_rate=float(payload.get("drop_rate", 0.0)),
            seed=int(payload.get("seed", 0)),
        )

    def save_json(self, path) -> None:
        """Write the plan as a JSON document at ``path``."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @staticmethod
    def load_json(path) -> "FaultPlan":
        """Read a plan written by :meth:`save_json` (or authored by hand)."""
        import json
        from pathlib import Path

        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise FaultConfigError(f"{path}: not valid JSON: {exc}") from exc
        return FaultPlan.from_dict(payload)

    # -- deterministic message drops ------------------------------------------

    def drops_message(self, window: int, event: int, attempt: int) -> bool:
        """Whether fetch ``event`` of ``window`` is lost on try ``attempt``.

        Counter-based: the decision depends only on the plan's seed and the
        (window, event, attempt) coordinates, never on evaluation order, so
        replays are reproducible and composable.
        """
        if self.drop_rate <= 0.0:
            return False
        if self.drop_rate >= 1.0:
            return True
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, 0x5EED, window, event, attempt))
        )
        return bool(rng.random() < self.drop_rate)

    # -- seeded generation -----------------------------------------------------

    @staticmethod
    def random(
        topology: Topology,
        n_windows: int,
        node_rate: float = 0.0,
        link_rate: float = 0.0,
        drop_rate: float = 0.0,
        seed: int = 0,
        min_survivors: int = 1,
        transient_fraction: float = 0.5,
        max_down_fraction: float = 0.5,
    ) -> "FaultPlan":
        """Sample a plan: each node/link fails independently with the given
        rate, at a uniform activation window; a ``transient_fraction`` of
        the structural faults heal after a random number of windows.

        At least ``min_survivors`` processors are kept permanently alive so
        the array never fails entirely (recovery would be meaningless), and
        at most ``max_down_fraction`` of the array may carry a node fault —
        without this cap a high ``node_rate`` could sample a plan that
        kills every node in window 0, which no recovery strategy can
        survive.  ``max_down_fraction`` outside ``(0, 1]`` raises a
        ``[FLT004]``-coded :class:`FaultConfigError` (the whole-array-death
        rule this guard exists to pre-empt).
        """
        if n_windows < 1:
            raise FaultConfigError("n_windows must be positive")
        if not 0 <= min_survivors <= topology.n_procs:
            raise FaultConfigError(
                f"min_survivors must be in [0, {topology.n_procs}]"
            )
        if not 0.0 < max_down_fraction <= 1.0:
            raise FaultConfigError(
                code_message(
                    FLT004,
                    f"max_down_fraction must be in (0, 1], got "
                    f"{max_down_fraction}; a plan may not be allowed to "
                    "kill the whole array",
                )
            )
        rng = np.random.default_rng(np.random.SeedSequence((seed, 0xFA117)))
        n = topology.n_procs

        def windowed() -> tuple[int, int | None]:
            start = int(rng.integers(0, n_windows))
            if rng.random() < transient_fraction:
                end = start + 1 + int(rng.integers(0, max(1, n_windows - start)))
                return start, end
            return start, None

        failing = [pid for pid in range(n) if rng.random() < node_rate]
        rng.shuffle(failing)
        failing = failing[: max(0, min(n - min_survivors, int(max_down_fraction * n)))]
        node_faults = []
        for pid in sorted(failing):
            start, end = windowed()
            node_faults.append(NodeFault(pid=pid, start=start, end=end))

        link_faults = []
        if link_rate > 0.0:
            from ..grid import mesh_links

            for src, dst in mesh_links(topology):
                if rng.random() < link_rate:
                    start, end = windowed()
                    link_faults.append(
                        LinkFault(src=src, dst=dst, start=start, end=end)
                    )

        plan = FaultPlan(
            node_faults=tuple(node_faults),
            link_faults=tuple(link_faults),
            drop_rate=drop_rate,
            seed=seed,
        )
        plan.validate_for(topology, n_windows)
        return plan
