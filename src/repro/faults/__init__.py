"""Fault injection and graceful degradation for the PIM array.

The paper's machine model is fault-free; a production-scale array is
not.  This package describes failures (:class:`FaultPlan`), binds them to
a machine (:class:`FaultInjector`), sets the retry/timeout semantics of
degraded fetches (:class:`RetryPolicy`) and plans the evacuation of a
dead node's residents (:func:`plan_evacuation`).  The replay simulator
(:func:`repro.sim.replay_schedule`) and the fault-aware rescheduling pass
(:func:`repro.core.reschedule_around_faults`) consume these primitives;
``docs/fault-model.md`` documents the failure taxonomy end to end.
"""

from .injector import FaultInjector, RetryPolicy
from .online import (
    RECOVERY_MODES,
    FaultDetector,
    RecoveryController,
    RecoveryError,
    RecoveryEvent,
    RecoveryPolicy,
    RecoveryReport,
    replay_with_recovery,
)
from .plan import FaultConfigError, FaultPlan, LinkFault, NodeFault
from .recovery import Relocation, plan_evacuation

__all__ = [
    "FaultPlan",
    "NodeFault",
    "LinkFault",
    "FaultConfigError",
    "FaultInjector",
    "RetryPolicy",
    "Relocation",
    "plan_evacuation",
    "RECOVERY_MODES",
    "FaultDetector",
    "RecoveryPolicy",
    "RecoveryError",
    "RecoveryEvent",
    "RecoveryReport",
    "RecoveryController",
    "replay_with_recovery",
]
