"""Local-Optimal Multiple-Center Data Scheduling (LOMCDS, paper §3.2.1).

Algorithm 1 is applied to every execution window independently: within
each window a datum sits at that window's local optimal center
(Definition 4), and the datum is physically moved between centers at
window boundaries.  The movement cost is *not* considered when choosing
the centers — that is precisely the weakness GOMCDS fixes — but it is of
course charged when the schedule is evaluated.
"""

from __future__ import annotations

import numpy as np

from ..mem import CapacityPlan, OccupancyTracker, first_available
from ..obs import Instrumentation, record_decisions, resolve
from ..trace import ReferenceTensor
from .cost import CostModel
from .kernels import (
    hold_position_numpy,
    hold_position_python,
    local_argmin_python,
    placement_cost_tensor_python,
    resolve_kernel,
)
from .schedule import Schedule

__all__ = ["lomcds"]


def lomcds(
    tensor: ReferenceTensor,
    model: CostModel,
    capacity: CapacityPlan | None = None,
    *,
    kernel: str | None = None,
    instrument: Instrumentation | None = None,
) -> Schedule:
    """Per-window local-optimal centers for every datum.

    A datum that is not referenced at all inside a window has no local
    preference there; it stays wherever the previous window put it (no
    gratuitous movement), which matches the paper's run-time behaviour of
    only moving data "to such centers according to these execution
    windows".  ``kernel`` selects the vectorized path (``"numpy"``,
    default) or the scalar reference oracle (``"python"``); both produce
    bit-identical schedules.
    """
    obs = resolve(instrument)
    kernel = resolve_kernel(kernel)
    n_data, n_windows = tensor.n_data, tensor.n_windows
    with obs.span(
        "scheduler.lomcds",
        n_data=n_data,
        n_windows=n_windows,
        n_procs=model.n_procs,
        constrained=capacity is not None,
        kernel=kernel,
    ):
        with obs.span("lomcds.cost_tensor"):
            if kernel == "python":
                costs = placement_cost_tensor_python(tensor, model)
            else:
                costs = model.all_placement_costs(tensor)  # (D, W, m)
        referenced = tensor.counts.sum(axis=2) > 0  # (D, W)

        record = obs.provenance.recording
        if capacity is None:
            with obs.span("lomcds.local_argmin"):
                if kernel == "python":
                    centers = local_argmin_python(costs)
                    hold_position_python(centers, referenced)
                else:
                    centers = costs.argmin(axis=2)  # lowest-pid tie-break
                    hold_position_numpy(centers, referenced)
            if record:
                record_decisions(
                    obs, costs=costs, centers=centers, model=model,
                    method="LOMCDS", kernel=kernel,
                )
            return Schedule(
                centers=centers, windows=tensor.windows, method="LOMCDS"
            )

        capacity.check_feasible(n_data)
        tracker = OccupancyTracker(capacity, n_windows=n_windows)
        centers = np.empty((n_data, n_windows), dtype=np.int64)
        masks = (
            np.zeros((n_data, n_windows, model.n_procs), dtype=bool)
            if record
            else None
        )
        evictions: list[tuple[int, int]] | None = [] if record else None
        with obs.span("lomcds.capacity_walk") as walk:
            idle_holds = idle_evictions = 0
            for d in tensor.data_priority_order():
                prev: int | None = None
                for w in range(n_windows):
                    available = tracker.available_in_window(w)
                    if masks is not None:
                        masks[d, w] = available
                    if referenced[d, w] or prev is None:
                        proc = first_available(costs[d, w], available)
                    elif available[prev]:
                        proc = prev  # idle window: stay put if there is room
                        idle_holds += 1
                    else:
                        # eviction: the held slot was claimed by a
                        # higher-priority datum, so the idle datum walks
                        # its processor list after all
                        proc = first_available(costs[d, w], available)
                        idle_evictions += 1
                        if evictions is not None:
                            evictions.append((d, w))
                    tracker.claim(proc, w)
                    centers[d, w] = proc
                    prev = proc
            walk.set(idle_holds=idle_holds, idle_evictions=idle_evictions)
            obs.count("lomcds.idle_holds", idle_holds)
            obs.count("lomcds.idle_evictions", idle_evictions)
        if record:
            record_decisions(
                obs, costs=costs, centers=centers, model=model,
                method="LOMCDS", kernel=kernel, masks=masks,
                evictions=evictions,
            )
        return Schedule(
            centers=centers, windows=tensor.windows, method="LOMCDS"
        )
