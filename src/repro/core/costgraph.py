"""The explicit cost-graph of Algorithm 2, as a networkx DAG.

This is the paper's construction verbatim: vertices ``s``, ``d`` and
``(i, j)`` for the *j*-th processor of execution window *i*; edges

* ``s -> (0, j)``   weighted by the reference cost of window 0 at ``j``,
* ``(i, j) -> (i+1, k)`` weighted by the movement cost ``j -> k`` plus the
  reference cost of window ``i+1`` at ``k``,
* ``(n-1, j) -> d`` with weight zero,

so that the shortest ``s -> d`` path spells the globally optimal center
sequence.  The vectorized DP in :mod:`repro.core.gomcds` computes the same
answer in :math:`O(W m^2)` without materializing the graph; this module
exists as a readable reference implementation and a differential-testing
oracle (tests assert both agree on every instance).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..trace import ReferenceTensor
from .cost import CostModel

__all__ = ["SOURCE", "SINK", "build_cost_graph", "solve_cost_graph"]

SOURCE = "s"
SINK = "d"


def build_cost_graph(
    window_costs: np.ndarray,
    move_costs: np.ndarray,
    allowed: np.ndarray | None = None,
) -> nx.DiGraph:
    """Materialize the per-datum cost-graph.

    Parameters mirror :func:`repro.core.gomcds.shortest_center_path`;
    disallowed (full) cells are simply omitted from the graph.
    """
    n_windows, n_procs = window_costs.shape
    if move_costs.shape != (n_procs, n_procs):
        raise ValueError("move_costs must be (n_procs, n_procs)")
    if allowed is None:
        allowed = np.ones((n_windows, n_procs), dtype=bool)
    graph = nx.DiGraph()
    graph.add_node(SOURCE)
    graph.add_node(SINK)
    for j in range(n_procs):
        if allowed[0, j]:
            graph.add_edge(SOURCE, (0, j), weight=float(window_costs[0, j]))
    for i in range(n_windows - 1):
        for j in range(n_procs):
            if not allowed[i, j]:
                continue
            for k in range(n_procs):
                if not allowed[i + 1, k]:
                    continue
                weight = float(move_costs[j, k]) + float(window_costs[i + 1, k])
                graph.add_edge((i, j), (i + 1, k), weight=weight)
    for j in range(n_procs):
        if allowed[n_windows - 1, j]:
            graph.add_edge((n_windows - 1, j), SINK, weight=0.0)
    return graph


def solve_cost_graph(graph: nx.DiGraph, n_windows: int) -> tuple[np.ndarray, float]:
    """Shortest ``s -> d`` path of a cost-graph as a center sequence.

    Returns the ``(n_windows,)`` pid path and its total weight.  Raises
    ``networkx.NetworkXNoPath`` when the memory constraint disconnected
    the graph.
    """
    length, node_path = nx.single_source_dijkstra(graph, SOURCE, SINK, weight="weight")
    inner = node_path[1:-1]
    if len(inner) != n_windows:
        raise ValueError("path does not traverse one node per window")
    centers = np.array([proc for _w, proc in inner], dtype=np.int64)
    return centers, float(length)


def gomcds_via_graph(
    tensor: ReferenceTensor, model: CostModel, d: int
) -> tuple[np.ndarray, float]:
    """Unconstrained Algorithm 2 for datum ``d`` through the literal DAG."""
    window_costs = model.placement_costs(tensor.for_data(d), d)
    graph = build_cost_graph(window_costs, model.movement_cost_matrix(d))
    return solve_cost_graph(graph, tensor.n_windows)
