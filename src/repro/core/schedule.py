"""Schedules: the output of every data-scheduling algorithm.

A schedule assigns each datum a *center* (Definition 3) per execution
window.  Single-center scheduling (SCDS) is the special case where every
row is constant; multiple-center scheduling moves data between windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..trace import WindowSet

__all__ = ["Schedule"]


@dataclass(frozen=True)
class Schedule:
    """Per-datum, per-window center assignment.

    Attributes
    ----------
    centers:
        ``(n_data, n_windows)`` int64 array; ``centers[d, w]`` is the pid
        storing datum ``d`` throughout window ``w``.
    windows:
        The :class:`WindowSet` the window axis refers to.
    method:
        Human-readable name of the producing algorithm (for reports).
    meta:
        Free-form diagnostics attached by the producing scheduler.
    """

    centers: np.ndarray
    windows: WindowSet
    method: str = "unspecified"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        centers = np.asarray(self.centers, dtype=np.int64)
        object.__setattr__(self, "centers", centers)
        if centers.ndim != 2:
            raise ValueError("centers must be (n_data, n_windows)")
        if centers.shape[1] != self.windows.n_windows:
            raise ValueError("center matrix does not match the window set")
        if centers.size and centers.min() < 0:
            raise ValueError("centers must be valid processor ids")

    @property
    def n_data(self) -> int:
        return self.centers.shape[0]

    @property
    def n_windows(self) -> int:
        return self.centers.shape[1]

    def center_of(self, d: int, w: int) -> int:
        """Center (storing processor) of datum ``d`` in window ``w``."""
        return int(self.centers[d, w])

    def initial_placement(self) -> np.ndarray:
        """``(n_data,)`` pids of the pre-execution data distribution."""
        return self.centers[:, 0].copy()

    def movements(self) -> list[tuple[int, int, int, int]]:
        """All relocations as ``(datum, window_boundary, src, dst)``.

        ``window_boundary`` is the index of the window the datum moves
        *into* (movement happens between windows ``w-1`` and ``w``).
        """
        if self.n_windows < 2:
            return []
        moved = self.centers[:, 1:] != self.centers[:, :-1]
        data_ids, boundaries = np.nonzero(moved)
        return [
            (int(d), int(w) + 1, int(self.centers[d, w]), int(self.centers[d, w + 1]))
            for d, w in zip(data_ids, boundaries)
        ]

    def n_movements(self) -> int:
        """Total number of datum relocations across all boundaries."""
        if self.n_windows < 2:
            return 0
        return int((self.centers[:, 1:] != self.centers[:, :-1]).sum())

    def is_static(self) -> bool:
        """True when no datum ever moves (single-center schedule)."""
        return self.n_movements() == 0

    def occupancy(self, n_procs: int) -> np.ndarray:
        """``(n_windows, n_procs)`` data-item residency counts per window."""
        out = np.zeros((self.n_windows, n_procs), dtype=np.int64)
        for w in range(self.n_windows):
            np.add.at(out[w], self.centers[:, w], 1)
        return out

    def restricted_to(self, data_ids: np.ndarray) -> "Schedule":
        """Schedule for a subset of data (rows re-indexed in given order)."""
        return Schedule(
            centers=self.centers[np.asarray(data_ids)],
            windows=self.windows,
            method=self.method,
            meta=dict(self.meta),
        )

    @staticmethod
    def static(placement: np.ndarray, windows: WindowSet, method: str = "static") -> "Schedule":
        """Broadcast a per-datum placement to every window."""
        placement = np.asarray(placement, dtype=np.int64)
        if placement.ndim != 1:
            raise ValueError("placement must be a 1-D pid vector")
        centers = np.repeat(placement[:, None], windows.n_windows, axis=1)
        return Schedule(centers=centers, windows=windows, method=method)
