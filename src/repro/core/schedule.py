"""Schedules: the output of every data-scheduling algorithm.

A schedule assigns each datum a *center* (Definition 3) per execution
window.  Single-center scheduling (SCDS) is the special case where every
row is constant; multiple-center scheduling moves data between windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..diagnostics import SCH001, code_message
from ..trace import WindowSet

__all__ = ["Schedule"]


@dataclass(frozen=True)
class Schedule:
    """Per-datum, per-window center assignment.

    Attributes
    ----------
    centers:
        ``(n_data, n_windows)`` int64 array; ``centers[d, w]`` is the pid
        storing datum ``d`` throughout window ``w``.
    windows:
        The :class:`WindowSet` the window axis refers to.
    method:
        Human-readable name of the producing algorithm (for reports).
    meta:
        Free-form diagnostics attached by the producing scheduler.
    """

    centers: np.ndarray
    windows: WindowSet
    method: str = "unspecified"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        centers = np.asarray(self.centers, dtype=np.int64)
        object.__setattr__(self, "centers", centers)
        if centers.ndim != 2:
            raise ValueError("centers must be (n_data, n_windows)")
        if centers.shape[1] != self.windows.n_windows:
            raise ValueError("center matrix does not match the window set")
        if centers.size and centers.min() < 0:
            raise ValueError("centers must be valid processor ids")

    @property
    def n_data(self) -> int:
        return self.centers.shape[0]

    @property
    def n_windows(self) -> int:
        return self.centers.shape[1]

    def center_of(self, d: int, w: int) -> int:
        """Center (storing processor) of datum ``d`` in window ``w``."""
        return int(self.centers[d, w])

    def initial_placement(self) -> np.ndarray:
        """``(n_data,)`` pids of the pre-execution data distribution."""
        return self.centers[:, 0].copy()

    def movements(self) -> list[tuple[int, int, int, int]]:
        """All relocations as ``(datum, window_boundary, src, dst)``.

        ``window_boundary`` is the index of the window the datum moves
        *into* (movement happens between windows ``w-1`` and ``w``).
        """
        if self.n_windows < 2:
            return []
        moved = self.centers[:, 1:] != self.centers[:, :-1]
        data_ids, boundaries = np.nonzero(moved)
        return [
            (int(d), int(w) + 1, int(self.centers[d, w]), int(self.centers[d, w + 1]))
            for d, w in zip(data_ids, boundaries)
        ]

    def n_movements(self) -> int:
        """Total number of datum relocations across all boundaries."""
        if self.n_windows < 2:
            return 0
        return int((self.centers[:, 1:] != self.centers[:, :-1]).sum())

    def is_static(self) -> bool:
        """True when no datum ever moves (single-center schedule)."""
        return self.n_movements() == 0

    def occupancy(self, n_procs: int) -> np.ndarray:
        """``(n_windows, n_procs)`` data-item residency counts per window.

        Counts every datum in every window, so schedules with movements
        are accounted per-window (a datum moving between windows ``w`` and
        ``w+1`` occupies its old center in ``w`` and its new one in
        ``w+1``).  Raises :class:`ValueError` carrying the ``SCH001``
        residency code when any center names a processor outside
        ``0..n_procs-1`` instead of surfacing a bare ``IndexError``.
        """
        if n_procs < 1:
            raise ValueError("n_procs must be positive")
        if self.centers.size and int(self.centers.max()) >= n_procs:
            d, w = (
                int(x)
                for x in np.unravel_index(
                    int(self.centers.argmax()), self.centers.shape
                )
            )
            raise ValueError(
                code_message(
                    SCH001,
                    f"center {int(self.centers[d, w])} of datum {d} in "
                    f"window {w} is outside the {n_procs}-processor array",
                )
            )
        offsets = np.arange(self.n_windows, dtype=np.int64) * n_procs
        counts = np.bincount(
            (self.centers + offsets[None, :]).ravel(),
            minlength=self.n_windows * n_procs,
        )
        return counts.reshape(self.n_windows, n_procs)

    def restricted_to(self, data_ids: np.ndarray) -> "Schedule":
        """Schedule for a subset of data (rows re-indexed in given order).

        ``data_ids`` is either a 1-D vector of datum ids (each in
        ``0..n_data-1``, no duplicates) or a boolean mask of length
        ``n_data``.  Invalid selections raise :class:`ValueError` instead
        of silently wrapping around via negative indexing.
        """
        ids = np.asarray(data_ids)
        if ids.dtype == np.bool_:
            if ids.shape != (self.n_data,):
                raise ValueError(
                    f"boolean mask has shape {ids.shape}, expected "
                    f"({self.n_data},)"
                )
            ids = np.nonzero(ids)[0]
        else:
            ids = ids.astype(np.int64)
            if ids.ndim != 1:
                raise ValueError(
                    "data_ids must be a 1-D id vector or boolean mask"
                )
            if len(ids) and (ids.min() < 0 or ids.max() >= self.n_data):
                bad = int(ids[(ids < 0) | (ids >= self.n_data)][0])
                raise ValueError(
                    f"datum id {bad} is outside 0..{self.n_data - 1}"
                )
            if len(np.unique(ids)) != len(ids):
                raise ValueError("data_ids must not contain duplicates")
        meta = dict(self.meta)
        cert = meta.get("certificate")
        if isinstance(cert, dict):
            # keep per-datum certificate rows aligned with the new axis
            cert = dict(cert)
            for key in ("potentials", "totals", "masks", "placement"):
                value = cert.get(key)
                if value is not None:
                    cert[key] = np.asarray(value)[ids]
            meta["certificate"] = cert
        return Schedule(
            centers=self.centers[ids],
            windows=self.windows,
            method=self.method,
            meta=meta,
        )

    @staticmethod
    def static(placement: np.ndarray, windows: WindowSet, method: str = "static") -> "Schedule":
        """Broadcast a per-datum placement to every window."""
        placement = np.asarray(placement, dtype=np.int64)
        if placement.ndim != 1:
            raise ValueError("placement must be a 1-D pid vector")
        centers = np.repeat(placement[:, None], windows.n_windows, axis=1)
        return Schedule(centers=centers, windows=windows, method=method)
