"""Algorithm 3: execution-window optimization by grouping.

"If merging consecutive execution windows together and putting the data to
the center of the new window can reduce the total communication cost, we
group these execution windows."  Grouping is performed *per datum* — each
datum may see its own partition of the window axis — and the centers of
the (possibly merged) windows are computed by a pluggable method; the
paper's Table 2 uses LOMCDS (``center_method="local"``).

The greedy loop is the paper's verbatim: starting from singleton windows,
try to extend the current group by the next window and keep the extension
whenever the datum's total cost does not increase; otherwise close the
group and start a new one at that window.

As an extension beyond the paper this module also implements the
*DP-optimal* grouping under local (per-group optimal) centers — an
:math:`O(W^2 m)` dynamic program — used by the grouping ablation bench to
quantify how much the greedy heuristic leaves on the table.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..mem import CapacityError, CapacityPlan, OccupancyTracker, first_available
from ..trace import ReferenceTensor
from .cost import CostModel
from .gomcds import shortest_center_path
from .schedule import Schedule

__all__ = [
    "greedy_grouping",
    "optimal_grouping",
    "grouped_schedule",
    "partition_cost",
]

CenterMethod = Literal["local", "global"]

Interval = tuple[int, int]
"""A group of consecutive windows ``(first, last)``, inclusive."""


def _group_rows(prefix: np.ndarray, partition: list[Interval]) -> np.ndarray:
    """Merged per-group cost rows from a prefix-summed cost matrix."""
    starts = np.array([g[0] for g in partition])
    ends = np.array([g[1] for g in partition])
    return prefix[ends + 1] - prefix[starts]


def partition_cost(
    window_costs: np.ndarray,
    move_costs: np.ndarray,
    partition: list[Interval],
    center_method: CenterMethod = "local",
    prefix: np.ndarray | None = None,
) -> tuple[np.ndarray, float]:
    """COST(T) of Algorithm 3: reference cost at the group centers plus
    the cost of moving the datum between consecutive group centers.

    Returns ``(group_centers, total_cost)``.
    """
    if prefix is None:
        prefix = np.vstack([np.zeros_like(window_costs[:1]), window_costs.cumsum(axis=0)])
    rows = _group_rows(prefix, partition)
    if center_method == "local":
        centers = rows.argmin(axis=1)
        ref = rows[np.arange(len(rows)), centers].sum()
        move = move_costs[centers[:-1], centers[1:]].sum() if len(centers) > 1 else 0.0
        return centers, float(ref + move)
    if center_method == "global":
        centers, total = shortest_center_path(rows, move_costs)
        return centers, total
    raise ValueError(f"unknown center method {center_method!r}")


def greedy_grouping(
    window_costs: np.ndarray,
    move_costs: np.ndarray,
    center_method: CenterMethod = "local",
) -> list[Interval]:
    """Paper's Algorithm 3 for one datum.

    ``window_costs`` is the datum's ``(n_windows, n_procs)`` placement-cost
    matrix; ``move_costs`` its relocation-cost matrix.  Returns the final
    partition as inclusive intervals covering ``0..n_windows-1``.
    """
    n_windows = window_costs.shape[0]
    prefix = np.vstack([np.zeros_like(window_costs[:1]), window_costs.cumsum(axis=0)])

    confirmed: list[Interval] = []
    start = 0
    current: list[Interval] = [(w, w) for w in range(n_windows)]
    _, current_cost = partition_cost(
        window_costs, move_costs, current, center_method, prefix
    )
    for j in range(1, n_windows):
        candidate = (
            confirmed
            + [(start, j)]
            + [(w, w) for w in range(j + 1, n_windows)]
        )
        _, candidate_cost = partition_cost(
            window_costs, move_costs, candidate, center_method, prefix
        )
        if candidate_cost <= current_cost:
            current, current_cost = candidate, candidate_cost
        else:
            confirmed.append((start, j - 1))
            start = j
    confirmed.append((start, n_windows - 1))
    return confirmed


def optimal_grouping(
    window_costs: np.ndarray, move_costs: np.ndarray
) -> list[Interval]:
    """DP-optimal partition under local (per-group argmin) centers.

    Extension beyond the paper: among *all* partitions into consecutive
    groups — not just those the greedy loop reaches — find the one with
    minimum total cost, where each group's center is its merged-window
    local optimum.  State ``B[i][c]``: best cost of scheduling windows
    ``0..i-1`` with the last group centered at ``c``.
    """
    n_windows, n_procs = window_costs.shape
    prefix = np.vstack([np.zeros_like(window_costs[:1]), window_costs.cumsum(axis=0)])
    best = np.full((n_windows + 1, n_procs), np.inf)
    # back[i] = (group_start, prev_center) achieving best[i, center].
    back: list[dict[int, tuple[int, int]]] = [dict() for _ in range(n_windows + 1)]

    for i in range(1, n_windows + 1):
        for j in range(i):
            row = prefix[i] - prefix[j]
            center = int(row.argmin())
            group_cost = float(row[center])
            if j == 0:
                total, prev = group_cost, -1
            else:
                arrivals = best[j] + move_costs[:, center]
                prev = int(arrivals.argmin())
                total = float(arrivals[prev]) + group_cost
                if not np.isfinite(total):
                    continue
            if total < best[i, center]:
                best[i, center] = total
                back[i][center] = (j, prev)

    end_center = int(best[n_windows].argmin())
    partition: list[Interval] = []
    i, center = n_windows, end_center
    while i > 0:
        j, prev = back[i][center]
        partition.append((j, i - 1))
        i, center = j, prev
    partition.reverse()
    return partition


def _assign_group_centers(
    rows: np.ndarray,
    move_costs: np.ndarray,
    partition: list[Interval],
    assign_method: CenterMethod,
    tracker: OccupancyTracker | None,
) -> np.ndarray:
    """Pick a center per group, honoring memory availability if tracked."""
    n_groups = len(partition)
    if tracker is None:
        if assign_method == "local":
            return rows.argmin(axis=1)
        centers, _ = shortest_center_path(rows, move_costs)
        return centers
    if assign_method == "local":
        centers = np.empty(n_groups, dtype=np.int64)
        for g, (first, last) in enumerate(partition):
            available = tracker.available_in_range(first, last)
            proc = first_available(rows[g], available)
            tracker.claim(proc, first, last)
            centers[g] = proc
        return centers
    allowed = np.stack(
        [tracker.available_in_range(first, last) for first, last in partition]
    )
    centers, _ = shortest_center_path(rows, move_costs, allowed=allowed)
    for g, (first, last) in enumerate(partition):
        tracker.claim(int(centers[g]), first, last)
    return centers


def _expand(partition: list[Interval], centers: np.ndarray, n_windows: int) -> np.ndarray:
    """Per-window center vector from per-group centers."""
    out = np.empty(n_windows, dtype=np.int64)
    for (first, last), c in zip(partition, centers):
        out[first : last + 1] = c
    return out


def grouped_schedule(
    tensor: ReferenceTensor,
    model: CostModel,
    capacity: CapacityPlan | None = None,
    center_method: CenterMethod = "local",
    strategy: Literal["greedy", "optimal"] = "greedy",
    assign_method: CenterMethod | None = None,
) -> Schedule:
    """Full data scheduling with per-datum window grouping (Table 2 setup).

    For every datum: run Algorithm 3 (or the DP-optimal variant) on its
    cost matrix, then place the datum at each group's center.  Under a
    memory constraint, data are processed in descending reference-volume
    order and a group's center must have a free slot in *every* window of
    the group (it resides there for the whole group).

    ``center_method`` drives the COST(T) comparisons of the grouping loop
    (the paper's Table 2 uses LOMCDS there, i.e. ``"local"``);
    ``assign_method`` — defaulting to the same — picks the final centers
    on the grouped windows: ``"local"`` per-group optima (LOMCDS on the
    new windows), ``"global"`` the cost-graph shortest path (GOMCDS on
    the new windows).
    """
    n_data, n_windows = tensor.n_data, tensor.n_windows
    assign_method = center_method if assign_method is None else assign_method
    costs = model.all_placement_costs(tensor)  # (D, W, m)
    centers = np.empty((n_data, n_windows), dtype=np.int64)
    partitions: dict[int, list[Interval]] = {}

    tracker = None
    if capacity is not None:
        capacity.check_feasible(n_data)
        tracker = OccupancyTracker(capacity, n_windows=n_windows)

    for d in tensor.data_priority_order():
        move = model.movement_cost_matrix(d)
        if strategy == "greedy":
            partition = greedy_grouping(costs[d], move, center_method)
        elif strategy == "optimal":
            partition = optimal_grouping(costs[d], move)
        else:
            raise ValueError(f"unknown grouping strategy {strategy!r}")
        partitions[int(d)] = partition

        prefix = np.vstack([np.zeros_like(costs[d][:1]), costs[d].cumsum(axis=0)])
        rows = _group_rows(prefix, partition)
        checkpoint = tracker.snapshot() if tracker is not None else None
        try:
            group_centers = _assign_group_centers(
                rows, move, partition, assign_method, tracker
            )
            centers[d] = _expand(partition, group_centers, n_windows)
        except CapacityError:
            if tracker is not None:
                tracker.restore(checkpoint)  # drop partial group claims
            # A grouped datum needs one processor free across its whole
            # group; under tight memories none may exist even though every
            # individual window still has slots.  Degrade gracefully: drop
            # this datum's grouping and place it window by window (always
            # feasible — sequential assignment leaves a slot per window).
            partitions[int(d)] = [(w, w) for w in range(n_windows)]
            window_centers = _assign_group_centers(
                costs[d], move, partitions[int(d)], assign_method, tracker
            )
            centers[d] = window_centers

    method = f"{'GREEDY' if strategy == 'greedy' else 'OPT'}-GROUP+{assign_method.upper()}"
    return Schedule(
        centers=centers,
        windows=tensor.windows,
        method=method,
        meta={"partitions": partitions, "center_method": center_method},
    )
