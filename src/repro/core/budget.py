"""Movement-budgeted GOMCDS (extension).

Run-time data movement is not free in practice: every relocation is an
extra message, a synchronization point, and (per the makespan model) a
serialized phase.  This variant finds the cheapest center path using at
most ``max_moves`` relocations per datum — one extra DP dimension on
Algorithm 2:

    ``f[b, w, k]`` = best cost through window ``w`` ending at center
    ``k`` having moved ``b`` times,

with ``f[b, w, k] = C[w, k] + min(f[b, w-1, k],
min_{j != k} f[b-1, w-1, j] + vol*Dist[j, k])``.  Complexity
``O(W·m²·B)`` per datum.

``max_moves = 0`` reduces to SCDS (per-datum optimal static center);
``max_moves >= W-1`` reduces to GOMCDS.  Sweeping the budget traces the
cost-vs-movement Pareto frontier (ablation K).
"""

from __future__ import annotations

import numpy as np

from ..mem import CapacityError, CapacityPlan, OccupancyTracker
from ..trace import ReferenceTensor
from .cost import CostModel
from .schedule import Schedule

__all__ = ["gomcds_budgeted", "movement_frontier"]

_INF = np.inf


def _budgeted_path(
    window_costs: np.ndarray,
    move_costs: np.ndarray,
    max_moves: int,
    allowed: np.ndarray | None = None,
) -> tuple[np.ndarray, float]:
    """Optimal center path with at most ``max_moves`` relocations."""
    n_windows, n_procs = window_costs.shape
    budget = min(max_moves, n_windows - 1)
    costs = window_costs.astype(np.float64, copy=True)
    if allowed is not None:
        costs[~allowed] = _INF

    # f[b, k]; backpointers store (prev_budget, prev_center).
    f = np.full((budget + 1, n_procs), _INF)
    f[0] = costs[0]
    back = np.zeros((n_windows, budget + 1, n_procs, 2), dtype=np.int64)
    for w in range(1, n_windows):
        new = np.full_like(f, _INF)
        for b in range(budget + 1):
            # stay put
            stay = f[b]
            choice_prev = np.full(n_procs, b)
            choice_center = np.arange(n_procs)
            best = stay.copy()
            if b > 0:
                transition = f[b - 1][:, None] + move_costs  # (from, to)
                np.fill_diagonal(transition, _INF)  # a move must move
                move_best = transition.min(axis=0)
                move_from = transition.argmin(axis=0)
                better = move_best < best
                best = np.where(better, move_best, best)
                choice_prev = np.where(better, b - 1, choice_prev)
                choice_center = np.where(better, move_from, choice_center)
            new[b] = best + costs[w]
            back[w, b, :, 0] = choice_prev
            back[w, b, :, 1] = choice_center
        f = new

    flat = int(np.argmin(f))
    b, k = np.unravel_index(flat, f.shape)
    total = float(f[b, k])
    if not np.isfinite(total):
        raise CapacityError("no feasible center path under the constraints")
    path = np.empty(n_windows, dtype=np.int64)
    b, k = int(b), int(k)
    path[-1] = k
    for w in range(n_windows - 1, 0, -1):
        b, k = (int(x) for x in back[w, b, k])
        path[w - 1] = k
    return path, total


def gomcds_budgeted(
    tensor: ReferenceTensor,
    model: CostModel,
    max_moves: int,
    capacity: CapacityPlan | None = None,
) -> Schedule:
    """Algorithm 2 under a per-datum relocation budget."""
    if max_moves < 0:
        raise ValueError("max_moves must be non-negative")
    n_data, n_windows = tensor.n_data, tensor.n_windows
    costs = model.all_placement_costs(tensor)
    dist = model.distances.astype(np.float64)
    centers = np.empty((n_data, n_windows), dtype=np.int64)

    tracker = None
    order = np.arange(n_data)
    if capacity is not None:
        capacity.check_feasible(n_data)
        tracker = OccupancyTracker(capacity, n_windows=n_windows)
        order = tensor.data_priority_order()

    for d in order:
        move = dist * model.volume(int(d))
        allowed = None if tracker is None else tracker.available_mask()
        path, _ = _budgeted_path(costs[d], move, max_moves, allowed)
        if tracker is not None:
            tracker.claim_path(path)
        centers[d] = path
    return Schedule(
        centers=centers,
        windows=tensor.windows,
        method=f"GOMCDS(B={max_moves})",
        meta={"max_moves": max_moves},
    )


def movement_frontier(
    tensor: ReferenceTensor,
    model: CostModel,
    budgets: tuple[int, ...] = (0, 1, 2, 4, 8),
    capacity: CapacityPlan | None = None,
) -> list[dict]:
    """Cost vs movement Pareto sweep over relocation budgets."""
    from .evaluate import evaluate_schedule

    out = []
    for budget in budgets:
        schedule = gomcds_budgeted(tensor, model, budget, capacity)
        breakdown = evaluate_schedule(schedule, tensor, model)
        out.append(
            {
                "budget": budget,
                "total": breakdown.total,
                "reference": breakdown.reference_cost,
                "movement": breakdown.movement_cost,
                "moves": schedule.n_movements(),
            }
        )
    return out
