"""Exact optimal *static* placement under memory constraints (extension).

SCDS processes data greedily in priority order, so under tight memories
it can displace a datum into a poor slot that a different global
assignment would have avoided.  For **static** placement the globally
optimal capacity-respecting solution is computable in polynomial time:
it is an assignment problem.  Expand each processor into ``capacity``
identical slots and solve

    minimize  Σ_d cost(d, slot(d))     s.t. slots distinct

with the Hungarian algorithm (``scipy.optimize.linear_sum_assignment``),
where ``cost(d, p) = Σ_w C_d[w, p]`` is the merged-window placement cost.

This gives (a) a certified optimum to measure SCDS's greedy gap against
(ablation J) and (b) a test oracle: with capacity slack the result must
match unconstrained SCDS exactly.

The *multi-window* problem with movement does not reduce to assignment
(consecutive windows couple through relocation costs); there the
unconstrained GOMCDS cost remains the usable lower bound.
"""

from __future__ import annotations

import numpy as np

from ..mem import CapacityPlan
from ..trace import ReferenceTensor
from .cost import CostModel
from .schedule import Schedule

__all__ = ["optimal_static_placement", "static_lower_bound"]


def optimal_static_placement(
    tensor: ReferenceTensor,
    model: CostModel,
    capacity: CapacityPlan | None = None,
) -> Schedule:
    """The provably cheapest single-center-per-datum schedule.

    Without a capacity plan this equals unconstrained SCDS (each datum at
    its merged-window optimum).  With one, the slot-expanded assignment
    problem is solved exactly.
    """
    totals = model.all_placement_costs(tensor).sum(axis=1)  # (D, m)
    n_data = tensor.n_data

    if capacity is None:
        return Schedule.static(
            totals.argmin(axis=1), tensor.windows, method="OPT-STATIC"
        )

    capacity.check_feasible(n_data)
    try:
        from scipy.optimize import linear_sum_assignment
    except ImportError as exc:  # pragma: no cover - scipy is a test dep
        raise RuntimeError(
            "optimal_static_placement with a capacity plan requires scipy"
        ) from exc

    slot_owner = np.repeat(
        np.arange(capacity.n_procs), capacity.capacities
    )  # (total_slots,)
    cost_matrix = totals[:, slot_owner]  # (D, total_slots)
    rows, cols = linear_sum_assignment(cost_matrix)
    placement = np.empty(n_data, dtype=np.int64)
    placement[rows] = slot_owner[cols]
    return Schedule.static(placement, tensor.windows, method="OPT-STATIC")


def static_lower_bound(
    tensor: ReferenceTensor,
    model: CostModel,
    capacity: CapacityPlan | None = None,
) -> float:
    """Cost of the optimal static placement (a bound for static methods).

    Note this does *not* bound multiple-center schedules — movement can
    beat any static placement — for those, unconstrained GOMCDS is the
    valid lower bound.
    """
    from .evaluate import evaluate_schedule

    schedule = optimal_static_placement(tensor, model, capacity)
    return evaluate_schedule(schedule, tensor, model).total
