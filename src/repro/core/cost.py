"""The paper's communication-cost model (§2), vectorized.

One reference by processor ``p`` to datum ``d`` stored at center ``c``
costs ``dist(p, c) * volume(d)`` — the x-y-routing hop count weighted by
the transferred volume.  Moving datum ``d`` from center ``j`` to center
``k`` between windows costs ``dist(j, k) * volume(d)``.

Given the reference tensor ``R[d, w, p]`` the cost of storing datum ``d``
at *every* candidate center over *every* window is a single matrix
product, ``C_d = volume(d) * (R_d @ Dist)``, which is what all three
schedulers consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid import Topology, cached_distance_matrix
from ..trace import ReferenceTensor

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Distance metric + per-datum volumes for a scheduling instance.

    Parameters
    ----------
    topology:
        Processor array defining the hop metric.
    volumes:
        Optional ``(n_data,)`` positive transfer volumes; the paper's
        model ("each data transfer takes one time unit") is the default
        all-ones vector, represented as ``None``.
    """

    topology: Topology
    volumes: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.volumes is not None:
            vols = np.asarray(self.volumes, dtype=np.float64)
            if vols.ndim != 1 or len(vols) == 0 or vols.min() <= 0:
                raise ValueError("volumes must be a 1-D positive vector")
            object.__setattr__(self, "volumes", vols)

    @property
    def n_procs(self) -> int:
        return self.topology.n_procs

    @property
    def distances(self) -> np.ndarray:
        """Read-only ``(n, n)`` hop-distance matrix."""
        return cached_distance_matrix(self.topology)

    def volume(self, d: int) -> float:
        """Transfer volume of datum ``d`` (1 under the paper's model)."""
        if self.volumes is None:
            return 1.0
        return float(self.volumes[d])

    def _volume_column(self, n_data: int) -> np.ndarray:
        if self.volumes is None:
            return np.ones(n_data)
        if len(self.volumes) != n_data:
            raise ValueError(
                f"cost model has {len(self.volumes)} volumes, tensor has "
                f"{n_data} data"
            )
        return self.volumes

    def placement_costs(self, ref_counts: np.ndarray, d: int | None = None) -> np.ndarray:
        """Cost of every candidate center for one datum.

        Parameters
        ----------
        ref_counts:
            ``(n_windows, n_procs)`` reference-count matrix of the datum.
        d:
            Datum id, used only to look up its volume (ignored when the
            model is unit-volume).

        Returns
        -------
        ``(n_windows, n_procs)`` float array: entry ``(w, c)`` is the total
        reference cost of window ``w`` if the datum sits at processor ``c``.
        """
        counts = np.asarray(ref_counts)
        if counts.ndim == 1:
            counts = counts[None, :]
        if counts.shape[-1] != self.n_procs:
            raise ValueError("reference counts do not match the processor array")
        costs = counts @ self.distances
        vol = 1.0 if (self.volumes is None or d is None) else self.volume(d)
        return costs * vol

    def all_placement_costs(self, tensor: ReferenceTensor) -> np.ndarray:
        """``(n_data, n_windows, n_procs)`` cost tensor ``C`` for all data."""
        if tensor.n_procs != self.n_procs:
            raise ValueError("reference tensor does not match the processor array")
        costs = tensor.counts @ self.distances
        vols = self._volume_column(tensor.n_data)
        return costs * vols[:, None, None]

    def movement_cost(self, d: int, src: int, dst: int) -> float:
        """Cost of relocating datum ``d`` from ``src`` to ``dst``."""
        return float(self.distances[src, dst]) * self.volume(d)

    def movement_cost_matrix(self, d: int | None = None) -> np.ndarray:
        """``(n, n)`` relocation cost between any two centers for datum ``d``."""
        vol = 1.0 if (self.volumes is None or d is None) else self.volume(d)
        return self.distances * vol
