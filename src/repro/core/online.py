"""Online multiple-center data scheduling (extension beyond the paper).

The paper's LOMCDS/GOMCDS assume the whole sequence of execution windows
(the full reference string) is known before execution.  This module adds
the natural *online* counterpart: windows arrive one at a time, and the
scheduler decides movements with no lookahead.

The policy is ski-rental-style hysteresis, the standard device for online
migration problems: each datum accumulates *regret* — the extra cost paid
by staying at its current center instead of the arriving window's local
optimum — and relocates only once the accumulated regret exceeds
``hysteresis`` times the relocation cost.  ``hysteresis = 1`` moves
eagerly (LOMCDS-like behaviour with one-window delay); ``hysteresis =
inf`` never moves (SCDS-like, but anchored at the first window's
optimum).  Values near 1-2 give the classic constant-competitive
trade-off.

Placement starts at each datum's window-0 local optimum (an online
scheduler cannot see further), so unconstrained OMCDS always costs at
least GOMCDS and the gap measures the value of lookahead — ablation E.
"""

from __future__ import annotations

import math

import numpy as np

from ..mem import CapacityPlan, OccupancyTracker, first_available
from ..obs import Instrumentation, resolve
from ..trace import ReferenceTensor
from .cost import CostModel
from .schedule import Schedule

__all__ = ["omcds"]


def omcds(
    tensor: ReferenceTensor,
    model: CostModel,
    capacity: CapacityPlan | None = None,
    hysteresis: float = 2.0,
    *,
    instrument: Instrumentation | None = None,
) -> Schedule:
    """Online multiple-center data scheduling with hysteresis.

    Parameters
    ----------
    hysteresis:
        Relocation threshold: a datum moves once its accumulated regret
        reaches ``hysteresis * movement_cost``.  Must be positive;
        ``math.inf`` disables movement entirely.
    """
    if not hysteresis > 0:
        raise ValueError("hysteresis must be positive")
    obs = resolve(instrument)
    n_data, n_windows = tensor.n_data, tensor.n_windows
    with obs.span(
        "scheduler.omcds",
        n_data=n_data,
        n_windows=n_windows,
        n_procs=model.n_procs,
        constrained=capacity is not None,
        hysteresis=hysteresis,
    ):
        return _omcds_body(
            tensor, model, capacity, hysteresis, obs, n_data, n_windows
        )


def _omcds_body(
    tensor, model, capacity, hysteresis, obs, n_data, n_windows
) -> Schedule:
    with obs.span("omcds.cost_tensor"):
        costs = model.all_placement_costs(tensor)  # (D, W, m)
    dist = model.distances.astype(np.float64)
    vols = (
        np.ones(n_data)
        if model.volumes is None
        else np.asarray(model.volumes, dtype=np.float64)
    )
    centers = np.empty((n_data, n_windows), dtype=np.int64)

    tracker = None
    order = np.arange(n_data)
    if capacity is not None:
        capacity.check_feasible(n_data)
        tracker = OccupancyTracker(capacity, n_windows=n_windows)
        order = tensor.data_priority_order()

    # Window 0: the only information available is window 0 itself.
    if tracker is None:
        centers[:, 0] = costs[:, 0, :].argmin(axis=1)
    else:
        for d in order:
            proc = first_available(costs[d, 0], tracker.available_in_window(0))
            tracker.claim(proc, 0)
            centers[d, 0] = proc

    regret = np.zeros(n_data)
    for w in range(1, n_windows):
        current = centers[:, w - 1]
        stay_cost = costs[np.arange(n_data), w, current]
        best = costs[:, w, :].argmin(axis=1)
        best_cost = costs[np.arange(n_data), w, best]
        regret += stay_cost - best_cost
        if math.isinf(hysteresis):
            wants_move = np.zeros(n_data, dtype=bool)
        else:
            move_price = vols * dist[current, best]
            wants_move = (regret >= hysteresis * move_price) & (best != current)

        if tracker is None:
            next_centers = np.where(wants_move, best, current)
            regret[wants_move] = 0.0
            centers[:, w] = next_centers
            continue

        for d in order:
            available = tracker.available_in_window(w)
            target = int(best[d]) if wants_move[d] else int(current[d])
            if available[target]:
                proc = target
            elif available[int(current[d])]:
                proc = int(current[d])  # can't move where we want: stay
            else:
                proc = first_available(costs[d, w], available)
            if wants_move[d] and proc == best[d]:
                regret[d] = 0.0
            tracker.claim(proc, w)
            centers[d, w] = proc

    return Schedule(
        centers=centers,
        windows=tensor.windows,
        method="OMCDS",
        meta={"hysteresis": hysteresis},
    )
