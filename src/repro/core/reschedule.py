"""Fault-aware rescheduling: recompute centers around failed processors.

A schedule produced by SCDS/GOMCDS assumes every processor can host data
in every window.  When a :class:`~repro.faults.FaultPlan` takes nodes
down, replaying that schedule degrades (evacuations, skipped moves,
unreachable references).  This pass recomputes the per-window centers
*before* execution, treating a failed processor as infinitely distant in
the windows it is down — exactly the paper's cost-graph shortest path
(:func:`~repro.core.gomcds.shortest_center_path`) with the dead
``(window, processor)`` cells masked out — so the schedule stays valid
and the degradation shows up as a principled cost increase instead of
lost work.

Link faults are not priced here: they only lengthen routes (detours),
which the replay charges at the surviving-route hop count; the center
choice is driven by the node-failure structure.
"""

from __future__ import annotations

import numpy as np

from ..diagnostics import FLT004
from ..faults import FaultPlan
from ..mem import CapacityError, CapacityPlan, OccupancyTracker
from ..obs import Instrumentation, record_decisions, resolve
from ..trace import ReferenceTensor
from .cost import CostModel
from .gomcds import _certificate, shortest_center_path
from .schedule import Schedule

__all__ = [
    "reschedule_around_faults",
    "reschedule_from_window",
    "alive_window_mask",
]


def alive_window_mask(
    plan: FaultPlan, n_windows: int, n_procs: int
) -> np.ndarray:
    """Boolean ``(n_windows, n_procs)``: True where a processor survives."""
    alive = np.ones((n_windows, n_procs), dtype=bool)
    for w in range(n_windows):
        down = list(plan.down_nodes(w))
        if down:
            alive[w, down] = False
    return alive


def reschedule_around_faults(
    tensor: ReferenceTensor,
    model: CostModel,
    plan: FaultPlan,
    capacity: CapacityPlan | None = None,
    *,
    certify: bool = False,
    instrument: Instrumentation | None = None,
) -> Schedule:
    """GOMCDS-style scheduling that never places data on a failed node.

    Parameters
    ----------
    tensor:
        Reference tensor ``R[d, w, p]`` of the application.
    model:
        Communication cost model (metric + volumes).
    plan:
        The fault plan the schedule must survive.  Only node failures
        constrain placement; transient drops and link faults are handled
        at replay time.
    capacity:
        Optional memory constraint, enforced jointly with liveness.

    Returns
    -------
    A :class:`Schedule` whose center for datum ``d`` in window ``w`` is
    always a processor alive throughout ``w``.

    Raises
    ------
    CapacityError
        When some window has no admissible (alive, non-full) processor —
        i.e. the surviving array genuinely cannot hold the data.
    """
    plan.validate_for(model.topology, tensor.n_windows)
    obs = resolve(instrument)
    n_data, n_windows = tensor.n_data, tensor.n_windows
    n_procs = model.n_procs
    with obs.span(
        "scheduler.reschedule_around_faults",
        n_data=n_data,
        n_windows=n_windows,
        n_node_faults=len(plan.node_faults),
        constrained=capacity is not None,
    ):
        with obs.span("reschedule.alive_mask"):
            alive = alive_window_mask(plan, n_windows, n_procs)
        dead_windows = np.nonzero(~alive.any(axis=1))[0]
        if len(dead_windows):
            # Same code and wording as the static FLT004 lint rule: the plan
            # kills the whole array, so no placement can exist.
            raise CapacityError(
                f"window {int(dead_windows[0])} has no surviving processor; "
                "the fault plan kills the whole array",
                window=int(dead_windows[0]),
                code=FLT004,
            )
        obs.gauge(
            "reschedule.masked_cells", int((~alive).sum())
        )

        with obs.span("reschedule.cost_tensor"):
            costs = model.all_placement_costs(tensor)  # (D, W, m)
        dist = model.distances.astype(np.float64)
        vols = (
            np.ones(n_data)
            if model.volumes is None
            else np.asarray(model.volumes, dtype=np.float64)
        )

        tracker = None
        if capacity is not None:
            capacity.check_feasible(n_data)
            tracker = OccupancyTracker(capacity, n_windows=n_windows)

        record = obs.provenance.recording
        centers = np.empty((n_data, n_windows), dtype=np.int64)
        potentials = np.empty((n_data, n_windows, n_procs)) if certify else None
        masks = (
            np.empty((n_data, n_windows, n_procs), dtype=bool)
            if certify or record
            else None
        )
        with obs.span("reschedule.capacity_walk"):
            for d in tensor.data_priority_order():
                allowed = (
                    alive if tracker is None else alive & tracker.available_mask()
                )
                if masks is not None:
                    masks[d] = allowed
                if certify:
                    path, _, potentials[d] = shortest_center_path(
                        costs[d], vols[d] * dist, allowed=allowed,
                        return_potentials=True,
                    )
                else:
                    path, _ = shortest_center_path(
                        costs[d], vols[d] * dist, allowed=allowed
                    )
                if tracker is not None:
                    tracker.claim_path(path)
                centers[d] = path
        meta = {"n_node_faults": len(plan.node_faults)}
        if certify:
            meta["certificate"] = _certificate(potentials, masks)
        if record:
            record_decisions(
                obs, costs=costs, centers=centers, model=model,
                method="GOMCDS+faults", masks=masks,
                meta={"n_node_faults": len(plan.node_faults)},
            )
        return Schedule(
            centers=centers,
            windows=tensor.windows,
            method="GOMCDS+faults",
            meta=meta,
        )


def reschedule_from_window(
    schedule: Schedule,
    tensor: ReferenceTensor,
    model: CostModel,
    plan: FaultPlan,
    from_window: int,
    placement: np.ndarray | None = None,
    capacity: CapacityPlan | None = None,
    *,
    certify: bool = False,
    instrument: Instrumentation | None = None,
) -> Schedule:
    """Re-plan only the windows ``from_window ..`` against a degraded array.

    This is the incremental counterpart of :func:`reschedule_around_faults`
    for online recovery: execution has already committed windows
    ``0 .. from_window-1`` of ``schedule``, a fault was discovered, and the
    run rewinds to the boundary of ``from_window``.  The prefix is history
    — it is copied verbatim into the result — while the suffix is re-solved
    with the same shortest-center-path DP, masked by the node failures in
    ``plan``.

    The suffix is *pinned* to the state at the rollback point: the DP's
    first window pays the move cost from ``placement[d]`` (where datum
    ``d`` actually resides after the rollback) to each candidate center,
    so the recomputed plan charges honestly for relocating off its current
    residency.  ``placement`` defaults to the old schedule's centers for
    window ``from_window - 1`` (or its initial placement when rewinding to
    window 0) — pass the simulator's live locations when evacuations have
    moved data off-plan.

    Raises :class:`~repro.mem.CapacityError` (code ``FLT004``) when some
    suffix window has no admissible processor.
    """
    plan.validate_for(model.topology, tensor.n_windows)
    n_data, n_windows = tensor.n_data, tensor.n_windows
    n_procs = model.n_procs
    if not 0 <= from_window < n_windows:
        raise ValueError(
            f"from_window must be in [0, {n_windows}), got {from_window}"
        )
    if schedule.n_data != n_data or schedule.n_windows != n_windows:
        raise ValueError("schedule does not match the tensor's horizon")
    if placement is None:
        placement = (
            schedule.initial_placement()
            if from_window == 0
            else schedule.centers[:, from_window - 1]
        )
    placement = np.asarray(placement, dtype=np.int64)
    if placement.shape != (n_data,):
        raise ValueError(
            f"placement must have shape ({n_data},), got {placement.shape}"
        )

    obs = resolve(instrument)
    n_suffix = n_windows - from_window
    with obs.span(
        "scheduler.reschedule_from_window",
        from_window=from_window,
        n_suffix=n_suffix,
        n_node_faults=len(plan.node_faults),
        constrained=capacity is not None,
    ):
        with obs.span("reschedule.alive_mask"):
            alive = alive_window_mask(plan, n_windows, n_procs)[from_window:]
        dead_windows = np.nonzero(~alive.any(axis=1))[0]
        if len(dead_windows):
            w_dead = from_window + int(dead_windows[0])
            raise CapacityError(
                f"window {w_dead} has no surviving processor; "
                "the fault plan kills the whole array",
                window=w_dead,
                code=FLT004,
            )
        obs.gauge("reschedule.masked_cells", int((~alive).sum()))

        with obs.span("reschedule.cost_tensor"):
            full_costs = model.all_placement_costs(tensor)
            costs = full_costs[:, from_window:, :]
        dist = model.distances.astype(np.float64)
        vols = (
            np.ones(n_data)
            if model.volumes is None
            else np.asarray(model.volumes, dtype=np.float64)
        )

        tracker = None
        if capacity is not None:
            capacity.check_feasible(n_data)
            tracker = OccupancyTracker(capacity, n_windows=n_suffix)

        record = obs.provenance.recording
        centers = schedule.centers.copy()
        potentials = np.empty((n_data, n_suffix, n_procs)) if certify else None
        masks = (
            np.empty((n_data, n_suffix, n_procs), dtype=bool)
            if certify
            else None
        )
        # provenance covers the full horizon (prefix decisions are history,
        # admissible everywhere), so attribution reconstructs the produced
        # schedule's CostBreakdown, prefix included
        prov_masks = (
            np.ones((n_data, n_windows, n_procs), dtype=bool) if record else None
        )
        with obs.span("reschedule.capacity_walk"):
            for d in tensor.data_priority_order():
                window_costs = costs[d].copy()
                # pin the suffix to the rollback residency: entering window
                # ``from_window`` at center c costs the move from where the
                # datum actually sits right now
                window_costs[0] += vols[d] * dist[placement[d], :]
                allowed = (
                    alive if tracker is None else alive & tracker.available_mask()
                )
                if masks is not None:
                    masks[d] = allowed
                if prov_masks is not None:
                    prov_masks[d, from_window:] = allowed
                if certify:
                    path, _, potentials[d] = shortest_center_path(
                        window_costs, vols[d] * dist, allowed=allowed,
                        return_potentials=True,
                    )
                else:
                    path, _ = shortest_center_path(
                        window_costs, vols[d] * dist, allowed=allowed
                    )
                if tracker is not None:
                    tracker.claim_path(path)
                centers[d, from_window:] = path
        meta = {
            "from_window": from_window,
            "n_node_faults": len(plan.node_faults),
            "base_method": schedule.method,
        }
        if certify:
            meta["certificate"] = _certificate(
                potentials, masks, from_window=from_window, placement=placement
            )
        if record:
            record_decisions(
                obs, costs=full_costs, centers=centers, model=model,
                method="GOMCDS+recovery", masks=prov_masks,
                meta={
                    "from_window": from_window,
                    "n_node_faults": len(plan.node_faults),
                    "base_method": schedule.method,
                },
            )
        return Schedule(
            centers=centers,
            windows=tensor.windows,
            method="GOMCDS+recovery",
            meta=meta,
        )
