"""Analytic evaluation of a schedule's total communication cost.

Implements the paper's objective exactly: the sum over all references of
``dist(referencing processor, center) * volume`` plus, for multi-center
schedules, the relocation cost ``dist(old center, new center) * volume``
at each window boundary where a datum moves.  The initial distribution is
performed before execution begins and is free, as in the paper.

The replay simulator in :mod:`repro.sim` recomputes the same quantity by
routing every reference hop-by-hop; tests assert both agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..schema import SCHEMA_VERSION, check_schema
from ..trace import ReferenceTensor
from .cost import CostModel
from .schedule import Schedule

__all__ = ["CostBreakdown", "evaluate_schedule", "per_datum_costs"]


@dataclass(frozen=True)
class CostBreakdown:
    """Total communication cost split into its two components."""

    reference_cost: float
    movement_cost: float

    @property
    def total(self) -> float:
        return self.reference_cost + self.movement_cost

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.reference_cost + other.reference_cost,
            self.movement_cost + other.movement_cost,
        )

    # -- unified result protocol (shared with SimReport / LintReport) -------

    def to_dict(self) -> dict:
        """Serializable record (``kind`` discriminates result types)."""
        return {
            "kind": "cost_breakdown",
            "schema_version": SCHEMA_VERSION,
            "reference_cost": self.reference_cost,
            "movement_cost": self.movement_cost,
            "total": self.total,
        }

    @staticmethod
    def from_dict(payload: dict) -> "CostBreakdown":
        """Inverse of :meth:`to_dict` (with schema-version checking)."""
        check_schema(payload, "cost_breakdown")
        return CostBreakdown(
            reference_cost=float(payload["reference_cost"]),
            movement_cost=float(payload["movement_cost"]),
        )

    def summary(self) -> str:
        """One-line human summary, consumed by the observability exporters."""
        return (
            f"cost: total {self.total:g} = reference {self.reference_cost:g} "
            f"+ movement {self.movement_cost:g}"
        )


def _check_compatible(schedule: Schedule, tensor: ReferenceTensor, model: CostModel) -> None:
    if schedule.n_data != tensor.n_data:
        raise ValueError("schedule and reference tensor disagree on n_data")
    if schedule.n_windows != tensor.n_windows:
        raise ValueError("schedule and reference tensor disagree on windows")
    if tensor.n_procs != model.n_procs:
        raise ValueError("reference tensor does not match the cost model's array")
    if schedule.centers.size and schedule.centers.max() >= model.n_procs:
        raise ValueError("schedule places data outside the processor array")


def per_datum_costs(
    schedule: Schedule, tensor: ReferenceTensor, model: CostModel
) -> tuple[np.ndarray, np.ndarray]:
    """Per-datum ``(reference_cost, movement_cost)`` vectors.

    Vectorized over data and windows: reference cost gathers, for every
    ``(d, w)``, the column of the cost tensor selected by the schedule;
    movement cost sums metric distances between consecutive centers.
    """
    _check_compatible(schedule, tensor, model)
    n_data, n_windows = schedule.n_data, schedule.n_windows
    if n_data == 0:
        return np.zeros(0), np.zeros(0)
    cost_tensor = model.all_placement_costs(tensor)  # (D, W, m)
    d_idx = np.arange(n_data)[:, None]
    w_idx = np.arange(n_windows)[None, :]
    ref = cost_tensor[d_idx, w_idx, schedule.centers].sum(axis=1)
    if n_windows > 1:
        dist = model.distances
        hops = dist[schedule.centers[:, :-1], schedule.centers[:, 1:]].sum(axis=1)
        vols = (
            np.ones(n_data)
            if model.volumes is None
            else np.asarray(model.volumes, dtype=np.float64)
        )
        move = hops * vols
    else:
        move = np.zeros(n_data)
    return ref.astype(np.float64), move.astype(np.float64)


def evaluate_schedule(
    schedule: Schedule, tensor: ReferenceTensor, model: CostModel
) -> CostBreakdown:
    """Total communication cost of ``schedule`` on ``tensor``."""
    ref, move = per_datum_costs(schedule, tensor, model)
    return CostBreakdown(float(ref.sum()), float(move.sum()))
