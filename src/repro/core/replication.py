"""Replicated data placement (extension beyond the paper).

The paper fixes "one copy of data is allowed in a system".  For
read-dominated data that restriction is the binding constraint: a datum
referenced from two far-apart regions must either sit between them or
commute.  This module relaxes it: each datum may hold up to ``k``
replicas, every reference is served by the *nearest* replica, and each
replica consumes one memory slot.

Choosing replica sites is, per datum, a k-median problem on the mesh with
the merged reference counts as demand.  We use the classic greedy
(marginal-gain) heuristic — optimal for k = 1 (it reduces to SCDS's
center) and (1 - 1/e)-approximate in general — stopping early when an
extra replica saves nothing.

Writes/coherence are out of scope, as this models the paper's
read-oriented reference strings; the ablation bench (EXPERIMENTS.md,
ablation F) quantifies the memory-for-traffic trade-off against SCDS and
GOMCDS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mem import CapacityError, CapacityPlan, OccupancyTracker
from ..trace import ReferenceTensor
from .cost import CostModel

__all__ = ["ReplicatedPlacement", "replicated_scds", "greedy_k_median"]


@dataclass(frozen=True)
class ReplicatedPlacement:
    """Static replica sites per datum.

    ``replicas[d]`` is the sorted tuple of pids hosting copies of ``d``
    (at least one, at most ``k``).
    """

    replicas: tuple[tuple[int, ...], ...]
    k: int

    @property
    def n_data(self) -> int:
        return len(self.replicas)

    def n_copies(self, d: int) -> int:
        return len(self.replicas[d])

    def total_copies(self) -> int:
        return sum(len(r) for r in self.replicas)

    def occupancy(self, n_procs: int) -> np.ndarray:
        out = np.zeros(n_procs, dtype=np.int64)
        for sites in self.replicas:
            for p in sites:
                out[p] += 1
        return out


def greedy_k_median(
    demand: np.ndarray, dist: np.ndarray, k: int, allowed: np.ndarray | None = None
) -> list[int]:
    """Greedy k-median: pick up to ``k`` sites minimizing
    ``sum_p demand[p] * min_site dist[p, site]``.

    Stops early once no additional site strictly reduces the cost.
    ``allowed`` masks admissible sites (memory availability).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n_procs = len(demand)
    if allowed is None:
        allowed = np.ones(n_procs, dtype=bool)
    if not allowed.any():
        raise CapacityError("no processor can host the first replica")

    # cost of serving all demand from a single site s: demand @ dist[:, s]
    single = demand @ dist
    single = np.where(allowed, single, np.inf)
    sites = [int(single.argmin())]
    nearest = dist[:, sites[0]].astype(np.float64)

    for _ in range(k - 1):
        candidates = np.minimum(dist, nearest[:, None])  # (p, site)
        cand_costs = demand @ candidates
        cand_costs = np.where(allowed, cand_costs, np.inf)
        cand_costs[sites] = np.inf
        best = int(cand_costs.argmin())
        current = float(demand @ nearest)
        if not np.isfinite(cand_costs[best]) or cand_costs[best] >= current:
            break  # no strict improvement (or nowhere to put it)
        sites.append(best)
        nearest = np.minimum(nearest, dist[:, best])
    return sorted(sites)


def replicated_scds(
    tensor: ReferenceTensor,
    model: CostModel,
    k: int,
    capacity: CapacityPlan | None = None,
) -> ReplicatedPlacement:
    """Static placement with up to ``k`` replicas per datum.

    Data are processed in descending reference-volume order; every
    replica claims a memory slot for the whole execution (static
    placement, as in SCDS).
    """
    dist = model.distances.astype(np.float64)
    merged = tensor.counts.sum(axis=1)  # (D, m) demand over all windows
    n_data = tensor.n_data

    tracker = None
    free_slots = None
    if capacity is not None:
        capacity.check_feasible(n_data)  # one copy minimum must fit
        tracker = OccupancyTracker(capacity, n_windows=1)
        free_slots = capacity.total

    replicas: list[tuple[int, ...]] = [()] * n_data
    order = tensor.data_priority_order()
    for rank, d in enumerate(order):
        allowed = None if tracker is None else tracker.available_in_window(0)
        vol = model.volume(int(d))
        k_eff = k
        if free_slots is not None:
            # every still-unplaced datum is owed one slot for its first copy
            remaining_after = len(order) - rank - 1
            k_eff = max(1, min(k, free_slots - remaining_after))
        sites = greedy_k_median(merged[d] * vol, dist, k_eff, allowed)
        if tracker is not None:
            for p in sites:
                tracker.claim(p, 0)
            free_slots -= len(sites)
        replicas[int(d)] = tuple(sites)
    return ReplicatedPlacement(replicas=tuple(replicas), k=k)


def evaluate_replicated(
    placement: ReplicatedPlacement, tensor: ReferenceTensor, model: CostModel
) -> float:
    """Total reference cost with every reference served by the nearest
    replica (static placement: no movement term)."""
    if placement.n_data != tensor.n_data:
        raise ValueError("placement and tensor disagree on n_data")
    dist = model.distances.astype(np.float64)
    merged = tensor.counts.sum(axis=1)  # (D, m)
    total = 0.0
    for d in range(tensor.n_data):
        sites = list(placement.replicas[d])
        if not sites:
            continue
        nearest = dist[:, sites].min(axis=1)
        total += float(merged[d] @ nearest) * model.volume(d)
    return total
