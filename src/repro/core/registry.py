"""Scheduler registry: frozen specs behind uniformly-shaped callables.

Historically each scheduling algorithm was a bare function with its own
keyword surface; callers had to know that ``omcds`` takes ``hysteresis``
while ``scds`` does not, and there was no metadata to drive tables, CLIs
or the observability layer.  :class:`SchedulerSpec` fixes the shape once:

    spec(tensor, model, capacity=None, *, instrument=None, **kwargs)

``get_scheduler`` now returns a spec (it *is* a callable, so every old
``get_scheduler(name)(tensor, model, capacity)`` call keeps working),
and the ``SCHEDULERS`` mapping of raw functions is preserved for
backwards compatibility.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

from ..obs import Instrumentation
from .gomcds import gomcds
from .lomcds import lomcds
from .online import omcds
from .scds import scds
from .schedule import Schedule

__all__ = [
    "SchedulerSpec",
    "SCHEDULER_SPECS",
    "SCHEDULERS",
    "get_scheduler",
    "scheduler_spec",
]


@dataclass(frozen=True)
class SchedulerSpec:
    """Immutable description of one scheduling algorithm.

    Attributes
    ----------
    name:
        Canonical (upper-case, paper) name, e.g. ``"GOMCDS"``.
    func:
        The underlying algorithm; must accept
        ``(tensor, model, capacity=None, *, instrument=None)`` plus any
        algorithm-specific keywords.
    multi_center:
        Whether the schedule may move data between windows.
    movement_aware:
        Whether relocation cost participates in the center choice.
    online:
        Whether the algorithm sees windows one at a time (no lookahead).
    description:
        One-line summary for tables and ``repro profile`` output.
    supported_kwargs:
        Algorithm-specific keywords beyond the uniform
        ``(tensor, model, capacity, instrument)`` surface.  The
        :func:`repro.schedule` facade validates against this so a typo'd
        or unsupported option fails with the supported list instead of a
        bare ``TypeError`` from deep inside the solver.
    """

    name: str
    func: Callable[..., Schedule]
    multi_center: bool
    movement_aware: bool
    online: bool
    description: str
    supported_kwargs: tuple[str, ...] = field(default=())

    def __call__(
        self,
        tensor,
        model,
        capacity=None,
        *,
        instrument: Instrumentation | None = None,
        **kwargs,
    ) -> Schedule:
        return self.func(
            tensor, model, capacity=capacity, instrument=instrument, **kwargs
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "multi_center": self.multi_center,
            "movement_aware": self.movement_aware,
            "online": self.online,
            "description": self.description,
            "supported_kwargs": list(self.supported_kwargs),
        }


SCHEDULER_SPECS: dict[str, SchedulerSpec] = {
    spec.name: spec
    for spec in (
        SchedulerSpec(
            name="SCDS",
            func=scds,
            multi_center=False,
            movement_aware=False,
            online=False,
            description="single static center per datum (Algorithm 1)",
            supported_kwargs=("kernel",),
        ),
        SchedulerSpec(
            name="LOMCDS",
            func=lomcds,
            multi_center=True,
            movement_aware=False,
            online=False,
            description="per-window local-optimal centers (§3.2.1)",
            supported_kwargs=("kernel",),
        ),
        SchedulerSpec(
            name="GOMCDS",
            func=gomcds,
            multi_center=True,
            movement_aware=True,
            online=False,
            description="cost-graph shortest-path centers (Algorithm 2)",
            supported_kwargs=("certify", "kernel"),
        ),
        SchedulerSpec(
            name="OMCDS",
            func=omcds,
            multi_center=True,
            movement_aware=True,
            online=True,
            description="online hysteresis scheduling (extension)",
            supported_kwargs=("hysteresis",),
        ),
    )
}

#: Backwards-compatible registry of the raw scheduler functions by
#: table-column name (plus the online extension OMCDS).
SCHEDULERS: dict[str, Callable] = {
    name: spec.func for name, spec in SCHEDULER_SPECS.items()
}


def scheduler_spec(name: str) -> SchedulerSpec:
    """Look up a :class:`SchedulerSpec` by name (case-insensitive)."""
    try:
        return SCHEDULER_SPECS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_SPECS))
        raise KeyError(f"unknown scheduler {name!r}; known: {known}") from None


def get_scheduler(name: str) -> SchedulerSpec:
    """Deprecated alias for :func:`scheduler_spec`.

    Returns the :class:`SchedulerSpec` — a callable with the uniform
    ``(tensor, model, capacity=None, *, instrument=None, **kwargs)``
    shape — so existing ``get_scheduler(name)(tensor, model, cap)``
    call sites keep working.  New code should call
    :func:`repro.schedule`/:func:`repro.schedule_many` (or
    :func:`scheduler_spec` for metadata).
    """
    warnings.warn(
        "get_scheduler() is deprecated; use repro.schedule(..., "
        "algorithm=name) / repro.schedule_many(), or scheduler_spec() "
        "for algorithm metadata",
        DeprecationWarning,
        stacklevel=2,
    )
    return scheduler_spec(name)
