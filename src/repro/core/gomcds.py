"""Algorithm 2: Global-Optimal Multiple-Center Data Scheduling (GOMCDS).

For each datum the paper builds a *cost-graph*: a layered DAG with one
node per (execution window, processor), a pseudo source ``s`` and sink
``d``.  The weight of an edge into node ``(w, k)`` is the reference cost
of hosting the datum at ``k`` during window ``w`` plus the cost of moving
it there from the previous window's processor.  The shortest ``s -> d``
path is the globally optimal center sequence, movement included.

Because the graph is layered and complete between layers, the shortest
path reduces to a forward dynamic program over windows:

    ``f_w[k] = min_j (f_{w-1}[j] + vol * Dist[j, k]) + C[w, k]``

which we evaluate with one ``(m, m)`` broadcast per window — and, when
memory is unconstrained and volumes are uniform per datum, with a single
``(D, m, m)`` broadcast per window for *all* data at once.  The explicit
DAG construction lives in :mod:`repro.core.costgraph` and is used as a
differential-testing oracle for this DP.
"""

from __future__ import annotations

import numpy as np

from ..mem import CapacityError, CapacityPlan, OccupancyTracker
from ..obs import Instrumentation, record_decisions, resolve
from ..trace import ReferenceTensor
from .cost import CostModel
from .kernels import (
    placement_cost_tensor_python,
    resolve_kernel,
    shortest_center_path_python,
)
from .schedule import Schedule

__all__ = ["gomcds", "shortest_center_path"]

_INF = np.inf


def shortest_center_path(
    window_costs: np.ndarray,
    move_costs: np.ndarray,
    allowed: np.ndarray | None = None,
    return_potentials: bool = False,
):
    """Optimal center-per-window path for one datum.

    Parameters
    ----------
    window_costs:
        ``(n_windows, n_procs)`` reference cost of each candidate center.
    move_costs:
        ``(n_procs, n_procs)`` relocation cost between centers.
    allowed:
        Optional boolean mask of admissible ``(window, processor)`` cells
        (memory availability); disallowed cells are priced at infinity.
    return_potentials:
        Also return the forward DP value table ``f`` — the shortest-path
        node potentials that :mod:`repro.verify.certificate` checks for
        dual feasibility and tightness.

    Returns
    -------
    ``(path, cost)`` where ``path`` is the ``(n_windows,)`` pid sequence
    and ``cost`` the total reference + movement cost.  With
    ``return_potentials`` a third ``(n_windows, n_procs)`` array of DP
    potentials (``inf`` at inadmissible cells) is appended.

    Raises
    ------
    CapacityError
        If some window has no admissible processor at all.
    """
    n_windows, n_procs = window_costs.shape
    costs = window_costs.astype(np.float64, copy=True)
    if allowed is not None:
        costs[~allowed] = _INF
    back = np.zeros((n_windows, n_procs), dtype=np.int64)
    potentials = (
        np.empty((n_windows, n_procs), dtype=np.float64)
        if return_potentials
        else None
    )
    f = costs[0]
    if potentials is not None:
        potentials[0] = f
    for w in range(1, n_windows):
        # transition[j, k] = f[j] + move_costs[j, k]
        transition = f[:, None] + move_costs
        back[w] = transition.argmin(axis=0)
        f = transition.min(axis=0) + costs[w]
        if potentials is not None:
            potentials[w] = f
    end = int(f.argmin())
    total = float(f[end])
    if not np.isfinite(total):
        raise CapacityError("no feasible center path under the memory constraint")
    path = np.empty(n_windows, dtype=np.int64)
    path[-1] = end
    for w in range(n_windows - 1, 0, -1):
        path[w - 1] = back[w, path[w]]
    if return_potentials:
        return path, total, potentials
    return path, total


def _all_paths_vectorized(
    costs: np.ndarray,
    dist: np.ndarray,
    vols: np.ndarray,
    return_potentials: bool = False,
):
    """Unconstrained DP for all data at once.

    ``costs`` is ``(D, W, m)``; movement between windows for datum ``d``
    is ``vols[d] * dist``.  Returns ``(D, W)`` center paths, plus the
    ``(D, W, m)`` DP potential tables when ``return_potentials``.
    """
    n_data, n_windows, n_procs = costs.shape
    back = np.zeros((n_data, n_windows, n_procs), dtype=np.int64)
    potentials = (
        np.empty((n_data, n_windows, n_procs), dtype=np.float64)
        if return_potentials
        else None
    )
    f = costs[:, 0, :].astype(np.float64, copy=True)
    if potentials is not None:
        potentials[:, 0, :] = f
    move = vols[:, None, None] * dist[None, :, :]  # (D, m, m)
    for w in range(1, n_windows):
        transition = f[:, :, None] + move  # (D, m, m): axis 1 = from, 2 = to
        back[:, w, :] = transition.argmin(axis=1)
        f = transition.min(axis=1) + costs[:, w, :]
        if potentials is not None:
            potentials[:, w, :] = f
    paths = np.empty((n_data, n_windows), dtype=np.int64)
    paths[:, -1] = f.argmin(axis=1)
    rows = np.arange(n_data)
    for w in range(n_windows - 1, 0, -1):
        paths[:, w - 1] = back[rows, w, paths[:, w]]
    if return_potentials:
        return paths, potentials
    return paths


def _certificate(
    potentials: np.ndarray,
    masks: np.ndarray | None = None,
    from_window: int = 0,
    placement: np.ndarray | None = None,
) -> dict:
    """Schedule-meta payload proving per-datum path optimality.

    ``potentials`` are the forward DP value tables — valid shortest-path
    node potentials over each datum's cost-graph.  The standalone checker
    (:mod:`repro.verify.certificate`) verifies dual feasibility and
    tightness without re-running the solver.
    """
    totals = potentials[:, -1, :].min(axis=1)
    return {
        "kind": "gomcds-potentials",
        "version": 1,
        "potentials": potentials,
        "totals": totals,
        "masks": masks,
        "from_window": int(from_window),
        "placement": None if placement is None else np.asarray(placement),
    }


def gomcds(
    tensor: ReferenceTensor,
    model: CostModel,
    capacity: CapacityPlan | None = None,
    *,
    certify: bool = False,
    kernel: str | None = None,
    instrument: Instrumentation | None = None,
) -> Schedule:
    """Global-optimal multiple-center scheduling (paper's Algorithm 2).

    Without a memory constraint the result is the true per-datum optimum:
    "When there is no processor collision of data in each execution
    window, Algorithm 2 gives global-optimal centers resulting in the
    minimum communication cost for an application."  With a constraint,
    data are routed through the cost-graph in descending reference-volume
    order and full ``(window, processor)`` cells are masked out — the
    processor-list idea generalized to paths.

    With ``certify=True`` the schedule carries an optimality certificate
    in ``meta["certificate"]``: the DP's forward value tables double as
    shortest-path node potentials, so :mod:`repro.verify` can prove each
    path optimal (within its admissible mask) without trusting the solver.

    ``kernel`` selects the vectorized DP (``"numpy"``, default — one
    ``(D, m, m)`` broadcast per window) or the scalar reference oracle
    (``"python"`` — the paper's pseudocode, loop by loop); both produce
    bit-identical schedules and certificates.
    """
    obs = resolve(instrument)
    kernel = resolve_kernel(kernel)
    n_data, n_windows = tensor.n_data, tensor.n_windows
    with obs.span(
        "scheduler.gomcds",
        n_data=n_data,
        n_windows=n_windows,
        n_procs=model.n_procs,
        constrained=capacity is not None,
        kernel=kernel,
    ):
        with obs.span("gomcds.cost_tensor"):
            if kernel == "python":
                costs = placement_cost_tensor_python(tensor, model)
            else:
                costs = model.all_placement_costs(tensor)  # (D, W, m)
        dist = model.distances.astype(np.float64)
        vols = (
            np.ones(n_data)
            if model.volumes is None
            else np.asarray(model.volumes, dtype=np.float64)
        )
        obs.gauge("gomcds.dp_cells", n_data * n_windows * model.n_procs)
        solve_path = (
            shortest_center_path_python
            if kernel == "python"
            else shortest_center_path
        )

        record = obs.provenance.recording
        if capacity is None:
            with obs.span("gomcds.dp_sweep"):
                if kernel == "python":
                    centers = np.empty((n_data, n_windows), dtype=np.int64)
                    potentials = (
                        np.empty((n_data, n_windows, model.n_procs))
                        if certify
                        else None
                    )
                    for d in range(n_data):
                        if certify:
                            centers[d], _, potentials[d] = solve_path(
                                costs[d], vols[d] * dist,
                                return_potentials=True,
                            )
                        else:
                            centers[d], _ = solve_path(costs[d], vols[d] * dist)
                    meta = (
                        {"certificate": _certificate(potentials)}
                        if certify
                        else {}
                    )
                elif certify:
                    centers, potentials = _all_paths_vectorized(
                        costs, dist, vols, return_potentials=True
                    )
                    meta = {"certificate": _certificate(potentials)}
                else:
                    centers = _all_paths_vectorized(costs, dist, vols)
                    meta = {}
            if record:
                record_decisions(
                    obs, costs=costs, centers=centers, model=model,
                    method="GOMCDS", kernel=kernel,
                )
            return Schedule(
                centers=centers,
                windows=tensor.windows,
                method="GOMCDS",
                meta=meta,
            )

        capacity.check_feasible(n_data)
        tracker = OccupancyTracker(capacity, n_windows=n_windows)
        centers = np.empty((n_data, n_windows), dtype=np.int64)
        potentials = (
            np.empty((n_data, n_windows, model.n_procs)) if certify else None
        )
        masks = (
            np.empty((n_data, n_windows, model.n_procs), dtype=bool)
            if certify or record
            else None
        )
        with obs.span("gomcds.capacity_walk"):
            for d in tensor.data_priority_order():
                allowed = tracker.available_mask()
                if masks is not None:
                    masks[d] = allowed
                if certify:
                    path, _, potentials[d] = solve_path(
                        costs[d], vols[d] * dist, allowed=allowed,
                        return_potentials=True,
                    )
                else:
                    path, _ = solve_path(
                        costs[d], vols[d] * dist, allowed=allowed
                    )
                tracker.claim_path(path)
                centers[d] = path
        meta = {"certificate": _certificate(potentials, masks)} if certify else {}
        if record:
            record_decisions(
                obs, costs=costs, centers=centers, model=model,
                method="GOMCDS", kernel=kernel, masks=masks,
            )
        return Schedule(
            centers=centers, windows=tensor.windows, method="GOMCDS", meta=meta
        )
