"""Algorithm 1: Single-Center Data Scheduling (SCDS).

"The single-center data scheduling does not consider the data movement
during the run-time.  Once the data are initialized, they remain at the
same place during the whole execution steps."  All execution windows are
merged into one; for each datum the processors are ranked by the total
communication cost of hosting it, and the datum is assigned to the first
processor in that list with a free memory slot.
"""

from __future__ import annotations

import numpy as np

from ..mem import CapacityPlan, OccupancyTracker, first_available
from ..obs import Instrumentation, record_decisions, resolve
from ..trace import ReferenceTensor
from .cost import CostModel
from .kernels import (
    merged_totals_python,
    placement_cost_tensor_python,
    resolve_kernel,
)
from .schedule import Schedule

__all__ = ["scds"]


def scds(
    tensor: ReferenceTensor,
    model: CostModel,
    capacity: CapacityPlan | None = None,
    *,
    kernel: str | None = None,
    instrument: Instrumentation | None = None,
) -> Schedule:
    """Single-center placement for every datum (paper's Algorithm 1).

    Parameters
    ----------
    tensor:
        Reference tensor ``R[d, w, p]`` built from the application trace.
    model:
        Communication cost model (metric + volumes).
    capacity:
        Optional memory constraint.  ``None`` means unbounded memory, in
        which case every datum lands exactly on its merged-window optimal
        center.  With a constraint, data are assigned in descending
        reference-volume order and each walks its processor list.
    kernel:
        ``"numpy"`` (default) for the vectorized cost accumulation,
        ``"python"`` for the scalar reference oracle — bit-identical
        results (see :mod:`repro.core.kernels`).

    Returns
    -------
    A static :class:`~repro.core.schedule.Schedule` (one center per datum,
    constant across windows).
    """
    obs = resolve(instrument)
    kernel = resolve_kernel(kernel)
    n_data = tensor.n_data
    with obs.span(
        "scheduler.scds",
        n_data=n_data,
        n_windows=tensor.n_windows,
        n_procs=model.n_procs,
        constrained=capacity is not None,
        kernel=kernel,
    ):
        record = obs.provenance.recording
        # Line 2-4 of Algorithm 1: cost of putting datum i at node j, with
        # all windows collected together.
        with obs.span("scds.cost_tensor"):
            if kernel == "python":
                costs = placement_cost_tensor_python(tensor, model)
                totals = merged_totals_python(costs)
            else:
                costs = model.all_placement_costs(tensor)  # (D, W, m)
                totals = costs.sum(axis=1)  # (D, m)

        if capacity is None:
            # Stable argmin = lowest-pid tie-breaking.
            with obs.span("scds.argmin"):
                centers = totals.argmin(axis=1)
            result = Schedule.static(centers, tensor.windows, method="SCDS")
            if record:
                record_decisions(
                    obs, costs=costs, centers=result.centers, model=model,
                    method="SCDS", kernel=kernel,
                )
            return result

        capacity.check_feasible(n_data)
        tracker = OccupancyTracker(capacity, n_windows=1)
        centers = np.empty(n_data, dtype=np.int64)
        masks = np.zeros((n_data, model.n_procs), dtype=bool) if record else None
        with obs.span("scds.capacity_walk") as walk:
            fallbacks = 0
            for d in tensor.data_priority_order():
                # Lines 5-7: sorted processor list, first available slot.
                available = tracker.available_in_window(0)
                if masks is not None:
                    masks[d] = available
                proc = first_available(totals[d], available)
                if proc != int(totals[d].argmin()):
                    fallbacks += 1
                tracker.claim(proc, 0)
                centers[d] = proc
            walk.set(fallbacks=fallbacks)
            obs.count("scheduler.capacity_fallbacks", fallbacks)
        result = Schedule.static(centers, tensor.windows, method="SCDS")
        if record:
            record_decisions(
                obs, costs=costs, centers=result.centers, model=model,
                method="SCDS", kernel=kernel, masks=masks,
            )
        return result
