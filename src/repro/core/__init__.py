"""The paper's contribution: SCDS, LOMCDS, GOMCDS and window grouping.

This package exposes the three data-scheduling algorithms of the paper
(plus the grouping post-pass of its §4) behind a uniform signature::

    schedule = scheduler(
        reference_tensor, cost_model, capacity=None, instrument=None
    )

and an analytic evaluator, :func:`evaluate_schedule`, implementing the
paper's communication-cost objective.  ``get_scheduler`` returns a
frozen :class:`SchedulerSpec` — a uniformly-shaped callable carrying
algorithm metadata; the ``repro.schedule`` facade in :mod:`repro.api`
is the preferred front door.

Calling ``scds``/``lomcds``/``gomcds`` through this package (or
``repro``) emits a :class:`DeprecationWarning` pointing at the facade;
the implementations in the submodules stay warning-free for internal
use and for ``SCHEDULERS``/``SchedulerSpec.func``.
"""

import functools as _functools
import warnings as _warnings

from .cost import CostModel
from .budget import gomcds_budgeted, movement_frontier
from .costgraph import build_cost_graph, gomcds_via_graph, solve_cost_graph
from .evaluate import CostBreakdown, evaluate_schedule, per_datum_costs
from .gomcds import gomcds, shortest_center_path
from .grouping import (
    greedy_grouping,
    grouped_schedule,
    optimal_grouping,
    partition_cost,
)
from .lomcds import lomcds
from .online import omcds
from .optimal import optimal_static_placement, static_lower_bound
from .refine import RefineResult, refine_schedule
from .reschedule import (
    alive_window_mask,
    reschedule_around_faults,
    reschedule_from_window,
)
from .replication import (
    ReplicatedPlacement,
    evaluate_replicated,
    greedy_k_median,
    replicated_scds,
)
from .registry import (
    SCHEDULER_SPECS,
    SCHEDULERS,
    SchedulerSpec,
    get_scheduler,
    scheduler_spec,
)
from .kernels import KERNELS, resolve_kernel
from .scds import scds
from .schedule import Schedule


def _deprecated_entry_point(func, algorithm):
    """Wrap a scheduler so direct calls steer users to the facade.

    ``SCHEDULERS`` and the specs keep the raw function; only the names
    re-exported here (the public direct-call surface) warn.
    """

    @_functools.wraps(func)
    def wrapper(*args, **kwargs):
        _warnings.warn(
            f"calling {algorithm}() directly is deprecated; use "
            f"repro.schedule(..., algorithm={algorithm!r}) or "
            "repro.schedule_many()",
            DeprecationWarning,
            stacklevel=2,
        )
        return func(*args, **kwargs)

    wrapper.__wrapped_scheduler__ = func
    return wrapper


scds = _deprecated_entry_point(scds, "scds")
lomcds = _deprecated_entry_point(lomcds, "lomcds")
gomcds = _deprecated_entry_point(gomcds, "gomcds")

__all__ = [
    "CostModel",
    "Schedule",
    "CostBreakdown",
    "evaluate_schedule",
    "per_datum_costs",
    "scds",
    "lomcds",
    "gomcds",
    "gomcds_budgeted",
    "movement_frontier",
    "shortest_center_path",
    "build_cost_graph",
    "solve_cost_graph",
    "gomcds_via_graph",
    "greedy_grouping",
    "optimal_grouping",
    "grouped_schedule",
    "partition_cost",
    "omcds",
    "optimal_static_placement",
    "static_lower_bound",
    "RefineResult",
    "refine_schedule",
    "reschedule_around_faults",
    "reschedule_from_window",
    "alive_window_mask",
    "ReplicatedPlacement",
    "replicated_scds",
    "evaluate_replicated",
    "greedy_k_median",
    "get_scheduler",
    "scheduler_spec",
    "SchedulerSpec",
    "SCHEDULERS",
    "SCHEDULER_SPECS",
    "KERNELS",
    "resolve_kernel",
]
