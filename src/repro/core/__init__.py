"""The paper's contribution: SCDS, LOMCDS, GOMCDS and window grouping.

This package exposes the three data-scheduling algorithms of the paper
(plus the grouping post-pass of its §4) behind a uniform signature::

    schedule = scheduler(
        reference_tensor, cost_model, capacity=None, instrument=None
    )

and an analytic evaluator, :func:`evaluate_schedule`, implementing the
paper's communication-cost objective.  ``get_scheduler`` returns a
frozen :class:`SchedulerSpec` — a uniformly-shaped callable carrying
algorithm metadata; the ``repro.schedule`` facade in :mod:`repro.api`
is the preferred front door.
"""

from .cost import CostModel
from .budget import gomcds_budgeted, movement_frontier
from .costgraph import build_cost_graph, gomcds_via_graph, solve_cost_graph
from .evaluate import CostBreakdown, evaluate_schedule, per_datum_costs
from .gomcds import gomcds, shortest_center_path
from .grouping import (
    greedy_grouping,
    grouped_schedule,
    optimal_grouping,
    partition_cost,
)
from .lomcds import lomcds
from .online import omcds
from .optimal import optimal_static_placement, static_lower_bound
from .refine import RefineResult, refine_schedule
from .reschedule import (
    alive_window_mask,
    reschedule_around_faults,
    reschedule_from_window,
)
from .replication import (
    ReplicatedPlacement,
    evaluate_replicated,
    greedy_k_median,
    replicated_scds,
)
from .registry import (
    SCHEDULER_SPECS,
    SCHEDULERS,
    SchedulerSpec,
    get_scheduler,
    scheduler_spec,
)
from .scds import scds
from .schedule import Schedule

__all__ = [
    "CostModel",
    "Schedule",
    "CostBreakdown",
    "evaluate_schedule",
    "per_datum_costs",
    "scds",
    "lomcds",
    "gomcds",
    "gomcds_budgeted",
    "movement_frontier",
    "shortest_center_path",
    "build_cost_graph",
    "solve_cost_graph",
    "gomcds_via_graph",
    "greedy_grouping",
    "optimal_grouping",
    "grouped_schedule",
    "partition_cost",
    "omcds",
    "optimal_static_placement",
    "static_lower_bound",
    "RefineResult",
    "refine_schedule",
    "reschedule_around_faults",
    "reschedule_from_window",
    "alive_window_mask",
    "ReplicatedPlacement",
    "replicated_scds",
    "evaluate_replicated",
    "greedy_k_median",
    "get_scheduler",
    "scheduler_spec",
    "SchedulerSpec",
    "SCHEDULERS",
    "SCHEDULER_SPECS",
]
