"""The paper's contribution: SCDS, LOMCDS, GOMCDS and window grouping.

This package exposes the three data-scheduling algorithms of the paper
(plus the grouping post-pass of its §4) behind a uniform signature::

    schedule = scheduler(reference_tensor, cost_model, capacity=None)

and an analytic evaluator, :func:`evaluate_schedule`, implementing the
paper's communication-cost objective.
"""

from typing import Callable

from .cost import CostModel
from .budget import gomcds_budgeted, movement_frontier
from .costgraph import build_cost_graph, gomcds_via_graph, solve_cost_graph
from .evaluate import CostBreakdown, evaluate_schedule, per_datum_costs
from .gomcds import gomcds, shortest_center_path
from .grouping import (
    greedy_grouping,
    grouped_schedule,
    optimal_grouping,
    partition_cost,
)
from .lomcds import lomcds
from .online import omcds
from .optimal import optimal_static_placement, static_lower_bound
from .refine import RefineResult, refine_schedule
from .reschedule import alive_window_mask, reschedule_around_faults
from .replication import (
    ReplicatedPlacement,
    evaluate_replicated,
    greedy_k_median,
    replicated_scds,
)
from .scds import scds
from .schedule import Schedule

__all__ = [
    "CostModel",
    "Schedule",
    "CostBreakdown",
    "evaluate_schedule",
    "per_datum_costs",
    "scds",
    "lomcds",
    "gomcds",
    "gomcds_budgeted",
    "movement_frontier",
    "shortest_center_path",
    "build_cost_graph",
    "solve_cost_graph",
    "gomcds_via_graph",
    "greedy_grouping",
    "optimal_grouping",
    "grouped_schedule",
    "partition_cost",
    "omcds",
    "optimal_static_placement",
    "static_lower_bound",
    "RefineResult",
    "refine_schedule",
    "reschedule_around_faults",
    "alive_window_mask",
    "ReplicatedPlacement",
    "replicated_scds",
    "evaluate_replicated",
    "greedy_k_median",
    "get_scheduler",
    "SCHEDULERS",
]

#: Registry of the paper's schedulers by table-column name (plus the
#: online extension OMCDS).
SCHEDULERS: dict[str, Callable] = {
    "SCDS": scds,
    "LOMCDS": lomcds,
    "GOMCDS": gomcds,
    "OMCDS": omcds,
}


def get_scheduler(name: str) -> Callable:
    """Look up a scheduler by its paper name (case-insensitive)."""
    try:
        return SCHEDULERS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(SCHEDULERS))
        raise KeyError(f"unknown scheduler {name!r}; known: {known}") from None
