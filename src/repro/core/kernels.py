"""Solver kernels: the vectorized numpy path and its scalar Python oracle.

Every scheduler in :mod:`repro.core` accepts a ``kernel=`` keyword:

* ``"numpy"`` (the default) — cost-tensor construction and the DP
  sweeps run as array ops over all ``(window, processor)`` nodes at
  once.  This is the production path the batch engine
  (:mod:`repro.engine`) fans out over.
* ``"python"`` — a deliberately scalar, loop-by-loop reference
  implementation of the same arithmetic.  It exists as a readable
  transcription of the paper's pseudocode and as a differential-testing
  oracle: property tests assert both kernels produce *bit-identical*
  costs and centers on every instance.

Bit-identity holds because both kernels perform the same elementary
operations in the same per-element order: reference costs accumulate in
exact integer arithmetic before the single volume multiply, and each DP
cell is one multiply plus one add per transition.  Ties break toward
the lowest index in both kernels (scalar strict-``<`` scans mirror
``argmin``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KERNELS",
    "resolve_kernel",
    "placement_cost_tensor_python",
    "merged_totals_python",
    "local_argmin_python",
    "hold_position_python",
    "hold_position_numpy",
    "shortest_center_path_python",
]

#: Recognized kernel names, in preference order.
KERNELS = ("numpy", "python")


def resolve_kernel(kernel: str | None) -> str:
    """Canonical kernel name (``None`` means the numpy default)."""
    if kernel is None:
        return "numpy"
    name = str(kernel).lower()
    if name not in KERNELS:
        known = ", ".join(KERNELS)
        raise ValueError(f"unknown kernel {kernel!r}; known kernels: {known}")
    return name


# ---------------------------------------------------------------------------
# cost-tensor construction
# ---------------------------------------------------------------------------


def placement_cost_tensor_python(tensor, model) -> np.ndarray:
    """Scalar transcription of ``CostModel.all_placement_costs``.

    ``C[d, w, p] = vol(d) * sum_q R[d, w, q] * Dist[q, p]`` with the
    inner sum accumulated in exact integer arithmetic — the same value
    the int64 matmul produces before its one float multiply.
    """
    if tensor.n_procs != model.n_procs:
        raise ValueError("reference tensor does not match the processor array")
    counts = tensor.counts
    dist = model.distances
    n_data, n_windows, n_procs = counts.shape
    out = np.empty((n_data, n_windows, n_procs), dtype=np.float64)
    for d in range(n_data):
        vol = model.volume(d)
        for w in range(n_windows):
            row = counts[d, w]
            for p in range(n_procs):
                acc = 0
                for q in range(n_procs):
                    c = int(row[q])
                    if c:
                        acc += c * int(dist[q, p])
                out[d, w, p] = float(acc) * vol
    return out


def merged_totals_python(cost_tensor: np.ndarray) -> np.ndarray:
    """Scalar window merge for SCDS: ``t[d, p] = sum_w C[d, w, p]``."""
    n_data, n_windows, n_procs = cost_tensor.shape
    out = np.empty((n_data, n_procs), dtype=np.float64)
    for d in range(n_data):
        for p in range(n_procs):
            acc = 0.0
            for w in range(n_windows):
                acc += float(cost_tensor[d, w, p])
            out[d, p] = acc
    return out


# ---------------------------------------------------------------------------
# LOMCDS: per-window local argmin + idle hold
# ---------------------------------------------------------------------------


def local_argmin_python(cost_tensor: np.ndarray) -> np.ndarray:
    """Scalar per-window argmin (ties toward the lowest pid)."""
    n_data, n_windows, n_procs = cost_tensor.shape
    centers = np.empty((n_data, n_windows), dtype=np.int64)
    for d in range(n_data):
        for w in range(n_windows):
            best, best_cost = 0, float(cost_tensor[d, w, 0])
            for p in range(1, n_procs):
                c = float(cost_tensor[d, w, p])
                if c < best_cost:
                    best, best_cost = p, c
            centers[d, w] = best
    return centers


def hold_position_python(centers: np.ndarray, referenced: np.ndarray) -> None:
    """Forward-fill centers across idle windows (in place, scalar).

    Windows before a datum's first reference copy the first referenced
    center backward; a datum never referenced keeps its window-0 center.
    """
    n_data, n_windows = centers.shape
    for d in range(n_data):
        refs = [w for w in range(n_windows) if referenced[d, w]]
        if not refs:
            centers[d, :] = centers[d, 0]
            continue
        first = refs[0]
        centers[d, :first] = centers[d, first]
        last_center = centers[d, first]
        for w in range(first + 1, n_windows):
            if referenced[d, w]:
                last_center = centers[d, w]
            else:
                centers[d, w] = last_center


def hold_position_numpy(centers: np.ndarray, referenced: np.ndarray) -> None:
    """Vectorized idle hold: one gather instead of a loop over data.

    For each ``(d, w)`` the source window is the last referenced window
    at or before ``w`` (forward fill), or the first referenced window
    when none precedes it (backward fill of the initial placement).
    Bit-identical to :func:`hold_position_python` by construction.
    """
    n_data, n_windows = centers.shape
    if n_data == 0 or n_windows == 0:
        return
    w_idx = np.arange(n_windows, dtype=np.int64)
    marked = np.where(referenced, w_idx[None, :], -1)
    last_ref = np.maximum.accumulate(marked, axis=1)  # (D, W), -1 = none yet
    # argmax of a boolean row is its first True; all-False rows give 0,
    # which matches the scalar rule "keep the window-0 center".
    first_ref = referenced.argmax(axis=1).astype(np.int64)
    source = np.where(last_ref >= 0, last_ref, first_ref[:, None])
    centers[:] = centers[np.arange(n_data)[:, None], source]


# ---------------------------------------------------------------------------
# GOMCDS: scalar shortest-path DP over the cost graph
# ---------------------------------------------------------------------------


def shortest_center_path_python(
    window_costs: np.ndarray,
    move_costs: np.ndarray,
    allowed: np.ndarray | None = None,
    return_potentials: bool = False,
):
    """Scalar transcription of the Algorithm 2 forward DP.

    Mirrors :func:`repro.core.gomcds.shortest_center_path` cell by cell:
    ``f_w[k] = min_j (f_{w-1}[j] + move[j][k]) + C[w][k]`` with each
    cell computed as exactly one add for the transition and one add for
    the reference term, minima scanning ``j``/``k`` ascending with a
    strict ``<`` (= numpy's lowest-index argmin tie-break).

    Raises
    ------
    CapacityError
        If no admissible path exists under the memory constraint.
    """
    from ..mem import CapacityError

    n_windows, n_procs = window_costs.shape
    inf = float("inf")
    costs = [
        [
            inf
            if allowed is not None and not allowed[w, p]
            else float(window_costs[w, p])
            for p in range(n_procs)
        ]
        for w in range(n_windows)
    ]
    move = [[float(move_costs[j, k]) for k in range(n_procs)] for j in range(n_procs)]
    back = np.zeros((n_windows, n_procs), dtype=np.int64)
    potentials = (
        np.empty((n_windows, n_procs), dtype=np.float64)
        if return_potentials
        else None
    )
    f = list(costs[0])
    if potentials is not None:
        potentials[0] = f
    for w in range(1, n_windows):
        nxt = [0.0] * n_procs
        for k in range(n_procs):
            best_j, best = 0, f[0] + move[0][k]
            for j in range(1, n_procs):
                value = f[j] + move[j][k]
                if value < best:
                    best_j, best = j, value
            back[w, k] = best_j
            nxt[k] = best + costs[w][k]
        f = nxt
        if potentials is not None:
            potentials[w] = f
    end, total = 0, f[0]
    for k in range(1, n_procs):
        if f[k] < total:
            end, total = k, f[k]
    if total == inf or total != total:  # inf or nan: no admissible path
        raise CapacityError("no feasible center path under the memory constraint")
    path = np.empty(n_windows, dtype=np.int64)
    path[-1] = end
    for w in range(n_windows - 1, 0, -1):
        path[w - 1] = back[w, path[w]]
    if return_potentials:
        return path, float(total), potentials
    return path, float(total)
