"""Local-search refinement of capacity-constrained schedules (extension).

Under memory constraints the paper's schedulers assign data greedily in
priority order — a displaced datum never gets its slot back, even when a
later datum would happily trade.  This post-pass fixes that with plain
steepest-descent local search over two move types, both capacity-safe:

* **relocate**: move one datum's center in one window (or a run of
  windows) to a processor with a free slot;
* **swap**: exchange the centers of two data within one window.

Each accepted move strictly decreases the exact objective (reference
cost + movement cost), so termination is guaranteed; the result never
degrades the input schedule.  Used by ablation H to measure how much the
greedy processor-list rule leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mem import CapacityPlan
from ..trace import ReferenceTensor
from .cost import CostModel
from .schedule import Schedule

__all__ = ["RefineResult", "refine_schedule"]


@dataclass(frozen=True)
class RefineResult:
    """Outcome of a refinement run."""

    schedule: Schedule
    initial_cost: float
    final_cost: float
    relocations: int
    swaps: int
    passes: int

    @property
    def improvement(self) -> float:
        return self.initial_cost - self.final_cost


def _delta_for_center_change(
    centers: np.ndarray,
    d: int,
    w: int,
    new_center: int,
    cost_tensor: np.ndarray,
    move: np.ndarray,
) -> float:
    """Exact objective change from setting ``centers[d, w] = new_center``."""
    old = centers[d, w]
    if old == new_center:
        return 0.0
    delta = cost_tensor[d, w, new_center] - cost_tensor[d, w, old]
    n_windows = centers.shape[1]
    if w > 0:
        prev = centers[d, w - 1]
        delta += move[prev, new_center] - move[prev, old]
    if w < n_windows - 1:
        nxt = centers[d, w + 1]
        delta += move[new_center, nxt] - move[old, nxt]
    return float(delta)


def refine_schedule(
    schedule: Schedule,
    tensor: ReferenceTensor,
    model: CostModel,
    capacity: CapacityPlan | None = None,
    max_passes: int = 10,
    tolerance: float = 1e-9,
) -> RefineResult:
    """Improve ``schedule`` by capacity-safe relocations and swaps.

    Deterministic: windows, data and candidate centers are scanned in
    index order and the first strictly-improving move is taken (first-
    improvement descent, which converges faster than steepest descent on
    these instances and is order-stable for reproducibility).
    """
    if schedule.n_data != tensor.n_data or schedule.n_windows != tensor.n_windows:
        raise ValueError("schedule does not match the reference tensor")
    centers = schedule.centers.copy()
    n_data, n_windows = centers.shape
    n_procs = model.n_procs
    cost_tensor = model.all_placement_costs(tensor)
    vols = (
        np.ones(n_data)
        if model.volumes is None
        else np.asarray(model.volumes, dtype=np.float64)
    )
    dist = model.distances.astype(np.float64)

    caps = (
        np.full(n_procs, n_data, dtype=np.int64)
        if capacity is None
        else capacity.capacities
    )
    occupancy = np.zeros((n_windows, n_procs), dtype=np.int64)
    for w in range(n_windows):
        np.add.at(occupancy[w], centers[:, w], 1)
    if (occupancy > caps[None, :]).any():
        raise ValueError("input schedule violates the capacity plan")

    initial = _total_cost(centers, cost_tensor, dist, vols)
    relocations = swaps = passes = 0

    for _pass in range(max_passes):
        passes += 1
        improved = False
        for w in range(n_windows):
            for d in range(n_data):
                move = dist * vols[d]
                old = centers[d, w]
                # relocate: score all candidate centers at once
                raw = cost_tensor[d, w, :] - cost_tensor[d, w, old]
                if w > 0:
                    prev = centers[d, w - 1]
                    raw = raw + (move[prev, :] - move[prev, old])
                if w < n_windows - 1:
                    nxt = centers[d, w + 1]
                    raw = raw + (move[:, nxt] - move[old, nxt])
                raw[old] = 0.0
                blocked = occupancy[w] >= caps
                open_deltas = np.where(blocked, np.inf, raw)
                best_target = int(open_deltas.argmin())
                if open_deltas[best_target] < -tolerance:
                    occupancy[w, old] -= 1
                    occupancy[w, best_target] += 1
                    centers[d, w] = best_target
                    relocations += 1
                    improved = True
                    continue
                # all gainful targets full: try trading slots with an
                # occupant of the most desirable blocked processor
                full_deltas = np.where(blocked, raw, np.inf)
                wanted = int(full_deltas.argmin())
                if full_deltas[wanted] < -tolerance and _try_swap(
                    centers, d, w, wanted, cost_tensor, dist, vols, tolerance
                ):
                    swaps += 1
                    improved = True
        if not improved:
            break

    final = _total_cost(centers, cost_tensor, dist, vols)
    refined = Schedule(
        centers=centers,
        windows=schedule.windows,
        method=f"{schedule.method}+refine",
        meta=dict(schedule.meta),
    )
    return RefineResult(
        schedule=refined,
        initial_cost=initial,
        final_cost=final,
        relocations=relocations,
        swaps=swaps,
        passes=passes,
    )


def _try_swap(
    centers: np.ndarray,
    d: int,
    w: int,
    target: int,
    cost_tensor: np.ndarray,
    dist: np.ndarray,
    vols: np.ndarray,
    tolerance: float,
) -> bool:
    """Swap ``d`` into ``target`` with one of its occupants, if gainful.

    Only occupants of ``target`` are candidates (at most the processor's
    capacity), which keeps the scan bounded; the combined exact delta of
    both half-moves must be strictly negative.
    """
    mine = int(centers[d, w])
    occupants = np.nonzero(centers[:, w] == target)[0]
    for other in occupants:
        other = int(other)
        if other == d:
            continue
        delta = _delta_for_center_change(
            centers, d, w, target, cost_tensor, dist * vols[d]
        )
        # apply d's move virtually before scoring the partner's move
        centers[d, w] = target
        delta += _delta_for_center_change(
            centers, other, w, mine, cost_tensor, dist * vols[other]
        )
        if delta < -tolerance:
            centers[other, w] = mine
            return True
        centers[d, w] = mine  # roll back
    return False


def _total_cost(
    centers: np.ndarray,
    cost_tensor: np.ndarray,
    dist: np.ndarray,
    vols: np.ndarray,
) -> float:
    n_data, n_windows = centers.shape
    d_idx = np.arange(n_data)[:, None]
    w_idx = np.arange(n_windows)[None, :]
    ref = cost_tensor[d_idx, w_idx, centers].sum()
    if n_windows > 1:
        hops = dist[centers[:, :-1], centers[:, 1:]].sum(axis=1)
        ref += (hops * vols).sum()
    return float(ref)
