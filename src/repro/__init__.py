"""repro — reproduction of *Optimizing Data Scheduling on
Processor-In-Memory Arrays* (Tian, Sha, Chantrapornchai, Kogge; IPPS 1998).

The package implements the paper's three data-scheduling algorithms —
SCDS, LOMCDS and GOMCDS — plus the execution-window grouping of its
Algorithm 3, on top of a complete PIM-array substrate: mesh topologies
with x-y routing, access-event traces and execution windows, bounded
per-processor memories, the paper's five benchmark workloads, a hop-level
replay simulator, and the full evaluation harness for its tables and
figure.

Quickstart::

    from repro import (
        Mesh2D, CostModel, CapacityPlan,
        lu_workload, schedule, evaluate_schedule,
    )

    topo = Mesh2D(4, 4)
    workload = lu_workload(16, topo)
    tensor = workload.reference_tensor()
    model = CostModel(topo)
    cap = CapacityPlan.paper_rule(workload.n_data, topo.n_procs)

    sched = schedule(tensor, model, algorithm="gomcds", capacity=cap)
    print(evaluate_schedule(sched, tensor, model).total)

The individual algorithms (``scds``/``lomcds``/``gomcds``/``omcds``)
remain importable but are deprecated entry points; ``schedule`` is the
uniform front door, ``schedule_many`` the batched one
(``docs/performance.md``), and the ``instrument=`` keyword hooks in the
observability layer (``docs/observability.md``).
"""

from .core import (
    CostBreakdown,
    CostModel,
    Schedule,
    SchedulerSpec,
    evaluate_schedule,
    get_scheduler,
    gomcds,
    grouped_schedule,
    lomcds,
    reschedule_around_faults,
    reschedule_from_window,
    scds,
    scheduler_spec,
)
from .api import schedule
from .engine import ScheduleRequest, SolveCache, schedule_many, solve_key
from .distrib import baseline_schedule
from .obs import Instrumentation, instrumented
from .analysis import run_chaos_campaign
from .faults import (
    FaultConfigError,
    FaultDetector,
    FaultInjector,
    FaultPlan,
    LinkFault,
    NodeFault,
    RecoveryController,
    RecoveryError,
    RecoveryPolicy,
    RecoveryReport,
    RetryPolicy,
    replay_with_recovery,
)
from .diagnostics import Diagnostic, Severity
from .grid import FaultAwareRouter, Mesh1D, Mesh2D, Torus2D, XYRouter
from .lint import LintContext, LintReport, run_lint
from .mem import CapacityError, CapacityPlan
from .sim import (
    PIMArray,
    ReplayCursor,
    ResidencyError,
    SimReport,
    replay_schedule,
)
from .trace import (
    ReferenceTensor,
    Trace,
    TraceBuilder,
    WindowSet,
    build_reference_tensor,
    windows_by_step_count,
)
from .workloads import (
    WorkloadInstance,
    benchmark,
    code_workload,
    lu_workload,
    matmul_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # machine
    "Mesh1D",
    "Mesh2D",
    "Torus2D",
    "XYRouter",
    # traces
    "Trace",
    "TraceBuilder",
    "WindowSet",
    "windows_by_step_count",
    "ReferenceTensor",
    "build_reference_tensor",
    # memory
    "CapacityPlan",
    "CapacityError",
    # core algorithms
    "CostModel",
    "Schedule",
    "CostBreakdown",
    "scds",
    "lomcds",
    "gomcds",
    "grouped_schedule",
    "evaluate_schedule",
    "get_scheduler",
    # unified scheduling API (docs/algorithms.md)
    "schedule",
    "scheduler_spec",
    "SchedulerSpec",
    # batch engine (docs/performance.md)
    "schedule_many",
    "ScheduleRequest",
    "SolveCache",
    "solve_key",
    # observability (docs/observability.md)
    "Instrumentation",
    "instrumented",
    # workloads & baselines
    "WorkloadInstance",
    "lu_workload",
    "matmul_workload",
    "code_workload",
    "benchmark",
    "baseline_schedule",
    # simulator
    "PIMArray",
    "replay_schedule",
    "SimReport",
    "ResidencyError",
    # faults & recovery
    "FaultPlan",
    "NodeFault",
    "LinkFault",
    "FaultConfigError",
    "FaultInjector",
    "RetryPolicy",
    "FaultAwareRouter",
    "reschedule_around_faults",
    # online recovery & chaos campaign (docs/fault-model.md)
    "FaultDetector",
    "RecoveryPolicy",
    "RecoveryError",
    "RecoveryController",
    "RecoveryReport",
    "ReplayCursor",
    "replay_with_recovery",
    "reschedule_from_window",
    "run_chaos_campaign",
    # static verifier (docs/lint.md)
    "Diagnostic",
    "Severity",
    "LintContext",
    "LintReport",
    "run_lint",
]
