"""Versioning for the unified result protocol (`to_dict` payloads).

Every report the toolchain serializes — :class:`~repro.core.CostBreakdown`,
:class:`~repro.sim.SimReport`, :class:`~repro.lint.LintReport`,
:class:`~repro.verify.CertifyReport`, :class:`~repro.faults.RecoveryReport`
— stamps its payload with ``schema_version`` so artifacts written by one
toolchain version are never silently misread by another.  Loaders call
:func:`check_schema` before reconstructing; a payload with the wrong
``kind``, a missing version, or a version newer than this toolchain
understands fails loudly with a message naming the mismatch.

The version is global across report kinds (they evolve together in one
repository) and bumps only on breaking payload changes; additive keys do
not require a bump because loaders ignore keys they don't know.
"""

from __future__ import annotations

__all__ = ["SCHEMA_VERSION", "SchemaError", "check_schema"]

#: Current payload schema version for every report ``to_dict``.
SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A serialized report payload cannot be loaded by this toolchain."""


def check_schema(payload: dict, kind: str) -> int:
    """Validate ``payload``'s envelope; returns its schema version.

    Raises :class:`SchemaError` when the payload is not a mapping, is of
    a different ``kind``, carries no ``schema_version``, or was written
    by a *newer* toolchain.  Older (smaller) versions are returned for
    the caller to interpret — version 1 is the floor.
    """
    if not isinstance(payload, dict):
        raise SchemaError(
            f"a {kind} payload must be a mapping, got {type(payload).__name__}"
        )
    found = payload.get("kind")
    if found != kind:
        raise SchemaError(
            f"payload kind mismatch: expected {kind!r}, got {found!r}"
        )
    version = payload.get("schema_version")
    if version is None:
        raise SchemaError(
            f"{kind} payload has no schema_version; it predates the "
            "versioned result protocol — re-export it with a current "
            "toolchain"
        )
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise SchemaError(
            f"{kind} payload carries invalid schema_version {version!r}"
        )
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"{kind} payload has schema_version {version}, but this "
            f"toolchain only understands <= {SCHEMA_VERSION}; upgrade to load it"
        )
    return version
