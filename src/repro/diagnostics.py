"""Stable diagnostic codes shared by static lint and dynamic checks.

Every invariant the system enforces — single-copy residency, per-window
capacity, fault-plan consistency, cost-accounting agreement — carries a
stable code (``SCH002``, ``FLT003``, ...).  The static analyzer in
:mod:`repro.lint` *reports* violations as :class:`Diagnostic` records;
the dynamic enforcement sites (:class:`repro.mem.CapacityError`,
:class:`repro.sim.ResidencyError`, :class:`repro.faults.FaultConfigError`
raise sites) embed the same code in their messages, so a failure observed
mid-simulation names exactly the rule that would have flagged it before
the run (``docs/lint.md`` catalogues all codes).

This module is a dependency leaf: it imports nothing from ``repro`` so
that ``mem``, ``sim``, ``trace`` and ``faults`` can all use it without
cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Severity",
    "Diagnostic",
    "code_message",
    "coord_suffix",
    # schedule codes
    "SCH001",
    "SCH002",
    "SCH003",
    "SCH004",
    # trace/window codes
    "TRC001",
    "TRC002",
    "TRC003",
    # fault-plan codes
    "FLT001",
    "FLT002",
    "FLT003",
    "FLT004",
    "FLT005",
    "FLT006",
    "FLT007",
    "FLT008",
    # cost-accounting codes
    "CST001",
    "CST002",
    # theory-backed codes
    "THY001",
    "THY002",
    "ALL_CODES",
    # dynamic observability codes (not lint rules)
    "OBS001",
    "OBS002",
    "OBS003",
    # benchmark regression-sentinel codes (not lint rules)
    "REG001",
    "REG002",
    "REG003",
    # chaos-campaign recovery-invariant codes (not lint rules)
    "RCV001",
    "RCV002",
    "RCV003",
    "RCV004",
    "DYNAMIC_CODES",
    # static certifier codes (repro.verify, not lint rules)
    "VER001",
    "VER002",
    "VER003",
    "VER004",
    "VER005",
    "VER006",
    "VER007",
    "VER008",
    "VER009",
    "VER010",
    "VER011",
    "VER012",
    "VERIFY_CODES",
    "DIVERGENCE_CODES",
]

# Residency: a datum must have exactly one valid center per window (Def. 3).
SCH001 = "SCH001"
# Capacity: per-window occupancy of a processor exceeds its memory.
SCH002 = "SCH002"
# Movement accounting inconsistent with the center transitions.
SCH003 = "SCH003"
# Schedule does not fit its companion artifacts (trace/topology/capacity).
SCH004 = "SCH004"

# Trace event arrays malformed (ids out of range, unsorted, bad counts).
TRC001 = "TRC001"
# Window set malformed or mismatched against its trace.
TRC002 = "TRC002"
# Degenerate segmentation: a window holds no reference events.
TRC003 = "TRC003"

# Fault names a processor outside the array.
FLT001 = "FLT001"
# Fault activates outside the schedule's window horizon.
FLT002 = "FLT002"
# Link fault names a non-adjacent processor pair (no such wire exists).
FLT003 = "FLT003"
# Some window has no surviving processor (the plan kills the array).
FLT004 = "FLT004"
# Surviving memory cannot hold the data (evacuation must strand items).
FLT005 = "FLT005"
# Schedule places a datum on a node that is down during that window.
FLT006 = "FLT006"
# Recovery checkpoint interval out of range for the schedule's horizon.
FLT007 = "FLT007"
# Replicate recovery mode requested but the run carries no replica copies.
FLT008 = "FLT008"

# Analytic evaluator disagrees with the cost-graph formulation.
CST001 = "CST001"
# Producer-recorded cost in schedule meta disagrees with evaluation.
CST002 = "CST002"

# One-step improvable center (violates the §4 monotonicity argument).
THY001 = "THY001"
# Placement-cost row is not separable convex (Lemma 1 precondition).
THY002 = "THY002"

#: The static lint-rule universe: every code here has a registered rule
#: in :mod:`repro.lint` (asserted by the lint test-suite).
ALL_CODES = (
    SCH001, SCH002, SCH003, SCH004,
    TRC001, TRC002, TRC003,
    FLT001, FLT002, FLT003, FLT004, FLT005, FLT006, FLT007, FLT008,
    CST001, CST002,
    THY001, THY002,
)

# -- dynamic codes: emitted by runtime analyzers, not by lint rules ---------

# Saturated link: one directed mesh link carries a disproportionate share
# of the replayed traffic (hotspot factor above threshold).
OBS001 = "OBS001"
# Link-load imbalance: the Gini coefficient of per-link traffic exceeds
# the configured threshold (traffic concentrates on few wires).
OBS002 = "OBS002"
# Observability misconfiguration: an environment override (for example a
# non-positive REPRO_FLIGHT_CAPACITY ring size) is invalid.
OBS003 = "OBS003"

# Benchmark cost regression: a seeded scheduler cost diverged from the
# tracked baseline (costs are deterministic, so any delta is a real change).
REG001 = "REG001"
# Benchmark timing regression beyond the configured noise tolerance.
REG002 = "REG002"
# Baseline and fresh benchmark reports are not comparable (config drift,
# missing rows) — the sentinel cannot vouch for anything.
REG003 = "REG003"

# Silent data loss: a recoverable chaos scenario lost or stranded datum
# instances the recovery mode promised to preserve.
RCV001 = "RCV001"
# Checkpoint round-trip broken: restoring a snapshot and re-hashing the
# state did not reproduce the checkpoint digest bit for bit.
RCV002 = "RCV002"
# Fault-free drift: a checkpointed replay of a healthy run diverged from
# the monolithic fault-free replay (must be bit-identical).
RCV003 = "RCV003"
# Rollback overshoot: a recovery rewound further than one checkpoint
# interval (the controller's bounded-rollback guarantee).
RCV004 = "RCV004"

#: Codes produced by dynamic analyzers (`repro.obs.spatial`,
#: `repro.analysis.regression`, `repro.analysis.chaos`); catalogued in
#: ``docs/observability.md`` and ``docs/fault-model.md``.
DYNAMIC_CODES = (
    OBS001, OBS002, OBS003, REG001, REG002, REG003,
    RCV001, RCV002, RCV003, RCV004,
)

# -- certifier codes: emitted by the static analysis engine (repro.verify) --

# Capacity overflow proven statically: the abstract occupancy of some
# (window, processor) cell exceeds its memory capacity.
VER001 = "VER001"
# Unreachable placement: a scheduled center is outside the array, down in
# its window, or no surviving route can realize a scheduled transfer.
VER002 = "VER002"
# Link hotspot: the statically derived volume on one directed mesh link
# exceeds the configured per-link budget.
VER003 = "VER003"
# Dead data movement: a relocation that serves no reference before the
# datum moves again and is strictly costlier than skipping the stop.
VER004 = "VER004"
# Optimality certificate missing or malformed (wrong shapes/fields, or a
# mask that admits a processor the fault plan takes down).
VER005 = "VER005"
# Certificate potentials are dual-infeasible: some potential exceeds the
# best incoming value, so they prove no lower bound at all.
VER006 = "VER006"
# Certificate is not tight: the schedule's actual cost disagrees with the
# claimed total or exceeds the certified lower bound (not proven optimal).
VER007 = "VER007"
# Static/dynamic cost divergence: abstract interpretation, the analytic
# evaluator and the replayed simulation disagree on cost totals.
VER008 = "VER008"
# Static/dynamic link divergence: statically derived per-window link
# volumes disagree with the replay's SpatialTrace ground truth.
VER009 = "VER009"
# Delivery-accounting divergence: the replay's fetch/delivery counters
# disagree with the statically predicted accounting identity.
VER010 = "VER010"
# Theory cross-check failure: certified placement-cost rows violate the
# Lemma 1 / Theorem 2 structure (separable convexity along mesh axes).
VER011 = "VER011"
# Decision-provenance divergence: a solver's decision log disagrees with
# the schedule it shipped with (centers, live-ranges, action structure,
# or the bit-exact cost-attribution invariant).
VER012 = "VER012"

#: Codes produced by the static schedule certifier (``repro certify``);
#: catalogued in ``docs/diagnostics.md`` and ``docs/certify.md``.  These
#: are not lint rules: they come from abstract interpretation, certificate
#: checking and the static-vs-dynamic differential gate.
VERIFY_CODES = (
    VER001, VER002, VER003, VER004, VER005, VER006,
    VER007, VER008, VER009, VER010, VER011, VER012,
)

#: The certifier codes whose presence means the toolchain itself is
#: suspect — a broken/forged certificate or a static-vs-dynamic
#: divergence — surfaced as exit code 3 by ``repro certify``.
DIVERGENCE_CODES = (VER005, VER006, VER007, VER008, VER009, VER010, VER012)


class Severity(enum.IntEnum):
    """Diagnostic severity; larger is worse (so ``max`` picks the gate)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()

    @staticmethod
    def parse(text: str) -> "Severity":
        try:
            return Severity[text.strip().upper()]
        except KeyError:
            known = ", ".join(s.name.lower() for s in Severity)
            raise ValueError(
                f"unknown severity {text!r}; expected one of {known}"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a coded, located, actionable violation report.

    Attributes
    ----------
    code:
        Stable rule code (``SCH001``...); stable across releases.
    severity:
        :class:`Severity` after any per-run overrides.
    message:
        Human-readable statement of what is wrong (no code prefix; the
        renderers add it).
    datum, window, processor:
        The violation's coordinates where meaningful; ``None`` when a
        coordinate does not apply (e.g. a whole-plan contradiction).
    hint:
        Optional one-line suggestion for fixing the input.
    """

    code: str
    severity: Severity
    message: str
    datum: int | None = None
    window: int | None = None
    processor: int | None = None
    hint: str | None = None

    @property
    def location(self) -> str:
        """Slash-path form of the coordinates (used by SARIF output)."""
        parts = []
        for name, value in (
            ("datum", self.datum),
            ("window", self.window),
            ("processor", self.processor),
        ):
            if value is not None:
                parts.append(f"{name}/{value}")
        return "/".join(parts) if parts else "schedule"

    def to_dict(self) -> dict:
        """JSON-ready mapping (stable key order for golden tests)."""
        out = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        for key in ("datum", "window", "processor"):
            value = getattr(self, key)
            if value is not None:
                out[key] = int(value)
        if self.hint:
            out["hint"] = self.hint
        return out

    @staticmethod
    def from_dict(payload: dict) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (for report loaders)."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"a diagnostic must be a mapping, got {type(payload).__name__}"
            )
        coords = {
            key: None if payload.get(key) is None else int(payload[key])
            for key in ("datum", "window", "processor")
        }
        return Diagnostic(
            code=str(payload["code"]),
            severity=Severity.parse(payload["severity"]),
            message=str(payload["message"]),
            hint=payload.get("hint"),
            **coords,
        )

    def render(self) -> str:
        """One-line human rendering: ``code severity: message (coords)``."""
        suffix = coord_suffix(self.datum, self.window, self.processor)
        hint = f"\n    hint: {self.hint}" if self.hint else ""
        return f"{self.code} {self.severity}: {self.message}{suffix}{hint}"


def coord_suffix(
    datum: int | None = None,
    window: int | None = None,
    processor: int | None = None,
) -> str:
    """Uniform ``(datum=d, window=w, processor=p)`` suffix for messages.

    The same helper feeds both static diagnostics and the dynamic error
    types, keeping the two report formats textually identical.
    """
    parts = []
    if datum is not None:
        parts.append(f"datum={int(datum)}")
    if window is not None:
        parts.append(f"window={int(window)}")
    if processor is not None:
        parts.append(f"processor={int(processor)}")
    if not parts:
        return ""
    return f" ({', '.join(parts)})"


def code_message(code: str, message: str) -> str:
    """Prefix ``message`` with its diagnostic code: ``[SCH002] ...``."""
    return f"[{code}] {message}"
