"""Executable forms of the paper's Lemma 1 and Theorem 2.

The paper (proofs in its tech-report companion [5]) states that when
``p1`` and ``p2`` are the *closest pair* of local optimal centers of two
consecutive windows w.r.t. a datum, the first window's cost increases
strictly monotonically along the direction from ``p1`` to ``p2`` — on a
1-D array (Lemma 1) and along every shortest path on a 2-D array
(Theorem 2).  These hold because a window's cost as a function of the
center is a sum of Manhattan cones: separable convex piecewise-linear,
flat exactly on the local-optimum set.

This module provides the checkers used by the property-based test-suite
to validate the claims on arbitrary generated instances, and by the
grouping ablation to illustrate *why* pairwise grouping cannot help
(Theorem 3, in :mod:`repro.theory.grouping_props`).
"""

from __future__ import annotations

import numpy as np

from ..grid import Mesh1D, Mesh2D, Topology, cached_distance_matrix

__all__ = [
    "local_optimal_centers",
    "closest_center_pair",
    "is_strictly_increasing",
    "lemma1_holds",
    "theorem2_holds",
]


def local_optimal_centers(cost_row: np.ndarray) -> np.ndarray:
    """All minimizers of a window's cost row (Definition 4, with ties)."""
    cost_row = np.asarray(cost_row)
    return np.nonzero(cost_row == cost_row.min())[0]


def closest_center_pair(
    costs0: np.ndarray, costs1: np.ndarray, topology: Topology
) -> tuple[int, int]:
    """The closest pair of local optimal centers of two windows.

    Returns ``(p1, p2)`` with ``p1`` a local optimum of window 0 and
    ``p2`` of window 1 minimizing their distance; ties break toward the
    lowest pids (deterministic).
    """
    opt0 = local_optimal_centers(costs0)
    opt1 = local_optimal_centers(costs1)
    dist = cached_distance_matrix(topology)
    sub = dist[np.ix_(opt0, opt1)]
    flat = int(sub.argmin())
    i, j = np.unravel_index(flat, sub.shape)
    return int(opt0[i]), int(opt1[j])


def is_strictly_increasing(values: np.ndarray) -> bool:
    """True when every consecutive difference is positive."""
    values = np.asarray(values)
    return bool(np.all(np.diff(values) > 0))


def lemma1_holds(costs0: np.ndarray, p1: int, p2: int) -> bool:
    """Lemma 1 (1-D): strict cost increase walking from ``p1`` to ``p2``.

    ``costs0`` is window 0's cost row on a linear array; ``(p1, p2)``
    should be the closest pair of local optima of the two windows.  A
    zero-length walk trivially holds.
    """
    costs0 = np.asarray(costs0)
    if p1 == p2:
        return True
    step = 1 if p2 > p1 else -1
    walk = costs0[np.arange(p1, p2 + step, step)]
    return is_strictly_increasing(walk)


def theorem2_holds(costs0: np.ndarray, p1: int, p2: int, topology: Mesh2D) -> bool:
    """Theorem 2 (2-D): strict increase along *every* shortest p1->p2 path.

    Rather than enumerating the exponentially many monotone lattice paths,
    we check the equivalent local condition: inside the bounding rectangle
    of ``p1`` and ``p2``, every unit step toward ``p2`` (in either of the
    at most two directions a shortest path may use) strictly increases
    window 0's cost.  Every shortest path is composed of exactly such
    steps, and every such step lies on some shortest path.
    """
    if not isinstance(topology, Mesh2D):
        raise TypeError("Theorem 2 is stated for 2-D meshes")
    costs0 = np.asarray(costs0, dtype=np.float64)
    grid = costs0.reshape(topology.shape)
    r1, c1 = topology.coords(p1)
    r2, c2 = topology.coords(p2)
    dr = 0 if r1 == r2 else (1 if r2 > r1 else -1)
    dc = 0 if c1 == c2 else (1 if c2 > c1 else -1)
    rows = range(r1, r2 + dr, dr) if dr else [r1]
    cols = range(c1, c2 + dc, dc) if dc else [c1]
    for r in rows:
        for c in cols:
            if dr and r != r2 and grid[r + dr, c] <= grid[r, c]:
                return False
            if dc and c != c2 and grid[r, c + dc] <= grid[r, c]:
                return False
    return True


def lemma1_instance(costs0: np.ndarray, costs1: np.ndarray, topology: Mesh1D) -> bool:
    """Full Lemma 1 check: derive the closest pair, then test the walk."""
    p1, p2 = closest_center_pair(costs0, costs1, topology)
    return lemma1_holds(costs0, p1, p2)


def theorem2_instance(costs0: np.ndarray, costs1: np.ndarray, topology: Mesh2D) -> bool:
    """Full Theorem 2 check: derive the closest pair, then test all paths."""
    p1, p2 = closest_center_pair(costs0, costs1, topology)
    return theorem2_holds(costs0, p1, p2, topology)
