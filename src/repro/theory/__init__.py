"""Executable checks of the paper's §4.1 properties (Lemma 1, Thms 2-3)."""

from .convexity import is_convex_sequence, is_separable_convex, separable_components

from .grouping_props import (
    grouped_cost,
    separate_cost,
    theorem3_gap,
    theorem3_gap_heavy_move,
    theorem3_holds,
)
from .monotonicity import (
    closest_center_pair,
    is_strictly_increasing,
    lemma1_holds,
    lemma1_instance,
    local_optimal_centers,
    theorem2_holds,
    theorem2_instance,
)

__all__ = [
    "local_optimal_centers",
    "closest_center_pair",
    "is_strictly_increasing",
    "lemma1_holds",
    "lemma1_instance",
    "theorem2_holds",
    "theorem2_instance",
    "separate_cost",
    "grouped_cost",
    "theorem3_gap",
    "theorem3_gap_heavy_move",
    "theorem3_holds",
    "is_convex_sequence",
    "is_separable_convex",
    "separable_components",
]
