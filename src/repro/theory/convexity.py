"""Separable convexity of placement-cost rows.

The structural fact behind the paper's Lemma 1 / Theorems 2-3: a
window's placement cost as a function of the center,

    ``cost(r, c) = Σ_p refs[p] · (|r - r_p| + |c - c_p|) = F(r) + G(c)``,

is *separable* (a row function plus a column function) and each part is
convex piecewise-linear, flat exactly on the local-optimum interval.
This module verifies those properties on concrete cost rows; the
property suite runs the checks on random instances, which is what makes
the monotonicity checkers in :mod:`repro.theory.monotonicity`
trustworthy rather than vacuous.
"""

from __future__ import annotations

import numpy as np

from ..grid import Mesh1D, Mesh2D

__all__ = [
    "is_convex_sequence",
    "separable_components",
    "is_separable_convex",
]


def is_convex_sequence(values: np.ndarray, tol: float = 1e-9) -> bool:
    """True when second differences are non-negative (discrete convexity)."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 3:
        return True
    return bool(np.all(np.diff(values, 2) >= -tol))


def separable_components(
    cost_row: np.ndarray, topology: Mesh2D
) -> tuple[np.ndarray, np.ndarray, float]:
    """Decompose a 2-D cost row into ``F(r) + G(c)`` parts.

    Returns ``(F, G, residual)`` where the decomposition is anchored at
    ``F(0) = 0`` and ``residual`` is the max absolute reconstruction
    error (0 for true Manhattan cost rows).
    """
    grid = np.asarray(cost_row, dtype=np.float64).reshape(topology.shape)
    f = grid[:, 0] - grid[0, 0]
    g = grid[0, :]
    residual = float(np.abs(grid - (f[:, None] + g[None, :])).max())
    return f, g, residual


def is_separable_convex(
    cost_row: np.ndarray, topology, tol: float = 1e-9
) -> bool:
    """Check the Lemma-1/Theorem-2 preconditions on a cost row.

    1-D rows must be convex; 2-D rows must decompose exactly into
    ``F(r) + G(c)`` with both parts convex.
    """
    if isinstance(topology, Mesh1D):
        return is_convex_sequence(cost_row, tol)
    if isinstance(topology, Mesh2D):
        f, g, residual = separable_components(cost_row, topology)
        return (
            residual <= tol
            and is_convex_sequence(f, tol)
            and is_convex_sequence(g, tol)
        )
    raise TypeError("separable convexity is defined for 1-D/2-D meshes")
