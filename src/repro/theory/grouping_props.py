"""Executable form of the paper's Theorem 3.

"If ``p1`` and ``p2`` are the closest pair of the local optimal centers
with respect to data D for two consecutive execution windows T0 and T1,
grouping T0 and T1 does not reduce the total communication cost with
respect to data D."

Under the paper's unit-volume model the separate (LOMCDS-style) cost —
each window at its local optimum plus the relocation between the two —
is never beaten by any single merged center.  With heavier data volumes
the theorem's premise breaks (relocation grows with volume while the
per-reference cost of a *merged* center does not), which is exactly the
regime where Algorithm 3's multi-window grouping earns its keep; the
property tests cover both sides.
"""

from __future__ import annotations

import numpy as np

from ..grid import Topology, cached_distance_matrix
from .monotonicity import closest_center_pair

__all__ = ["separate_cost", "grouped_cost", "theorem3_gap", "theorem3_holds"]


def separate_cost(
    costs0: np.ndarray, costs1: np.ndarray, topology: Topology, volume: float = 1.0
) -> float:
    """Two-window cost at the closest pair of local optima, plus the move."""
    p1, p2 = closest_center_pair(costs0, costs1, topology)
    dist = cached_distance_matrix(topology)
    return float(costs0[p1] + costs1[p2] + volume * dist[p1, p2])


def grouped_cost(costs0: np.ndarray, costs1: np.ndarray) -> float:
    """Best single-center cost of the merged window."""
    merged = np.asarray(costs0) + np.asarray(costs1)
    return float(merged.min())


def theorem3_gap(
    costs0: np.ndarray, costs1: np.ndarray, topology: Topology, volume: float = 1.0
) -> float:
    """``grouped - separate``; Theorem 3 asserts this is >= 0.

    ``costs0``/``costs1`` must be *unit-volume* cost rows.  A uniform
    datum volume scales the reference and the relocation cost alike, so
    the gap simply scales with it and its sign is volume-independent; the
    interesting non-unit case — volume paid by the *move only* — is
    exposed by :func:`theorem3_gap_heavy_move`.
    """
    unit_gap = grouped_cost(costs0, costs1) - separate_cost(
        costs0, costs1, topology, volume=1.0
    )
    return volume * unit_gap


def theorem3_gap_heavy_move(
    costs0: np.ndarray, costs1: np.ndarray, topology: Topology, move_volume: float
) -> float:
    """Gap when only the relocation pays the datum's volume.

    Models a datum whose references fetch single elements but whose
    relocation ships the whole object — the regime where grouping *can*
    strictly reduce cost (the gap goes negative), motivating Algorithm 3.
    """
    p1, p2 = closest_center_pair(costs0, costs1, topology)
    dist = cached_distance_matrix(topology)
    separate = float(costs0[p1] + costs1[p2] + move_volume * dist[p1, p2])
    return grouped_cost(costs0, costs1) - separate


def theorem3_holds(
    costs0: np.ndarray, costs1: np.ndarray, topology: Topology
) -> bool:
    """Theorem 3 under the paper's unit-volume model."""
    return theorem3_gap(costs0, costs1, topology, volume=1.0) >= 0.0
