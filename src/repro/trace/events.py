"""Access-event traces: the program substrate of the scheduling problem.

The paper abstracts a program as its *data reference string*: a sequence of
(processor, datum) reference events issued over parallel execution steps.
We store a trace as a struct-of-arrays over four parallel int64 vectors —
``steps``, ``procs``, ``data``, ``counts`` — which the reference-tensor
builder consumes with a single ``np.add.at``.

A :class:`TraceBuilder` offers an append interface for workload generators;
:class:`Trace` is the immutable result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AccessEvent", "Trace", "TraceBuilder", "concat_traces", "reverse_trace"]


@dataclass(frozen=True)
class AccessEvent:
    """One reference: processor ``proc`` touches datum ``data`` ``count``
    times during execution step ``step``."""

    step: int
    proc: int
    data: int
    count: int = 1


@dataclass(frozen=True)
class Trace:
    """Immutable reference trace.

    Attributes
    ----------
    steps, procs, data, counts:
        Parallel int64 arrays; entry ``i`` says processor ``procs[i]``
        referenced datum ``data[i]`` ``counts[i]`` times at step
        ``steps[i]``.  Entries are sorted by step (stable).
    n_steps:
        Number of execution steps spanned (``max(steps) + 1``, or an
        explicit larger horizon).
    n_data:
        Number of distinct datum ids addressable (``max(data) + 1`` or an
        explicit larger universe, so empty-reference data still exist).
    n_procs:
        Size of the processor array the trace was generated for.
    """

    steps: np.ndarray
    procs: np.ndarray
    data: np.ndarray
    counts: np.ndarray
    n_steps: int
    n_data: int
    n_procs: int

    def __post_init__(self) -> None:
        arrays = (self.steps, self.procs, self.data, self.counts)
        lengths = {a.shape for a in arrays}
        if len(lengths) != 1 or any(a.ndim != 1 for a in arrays):
            raise ValueError("trace arrays must be 1-D and parallel")
        if len(self.steps):
            if self.steps.min() < 0 or self.steps.max() >= self.n_steps:
                raise ValueError("step ids out of range")
            if self.procs.min() < 0 or self.procs.max() >= self.n_procs:
                raise ValueError("processor ids out of range")
            if self.data.min() < 0 or self.data.max() >= self.n_data:
                raise ValueError("datum ids out of range")
            if self.counts.min() <= 0:
                raise ValueError("reference counts must be positive")
            if np.any(np.diff(self.steps) < 0):
                raise ValueError("trace events must be sorted by step")

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def total_references(self) -> int:
        """Total number of individual data references in the trace."""
        return int(self.counts.sum())

    def events(self) -> list[AccessEvent]:
        """Materialize events as objects (for tests and small examples)."""
        return [
            AccessEvent(int(s), int(p), int(d), int(c))
            for s, p, d, c in zip(self.steps, self.procs, self.data, self.counts)
        ]

    def shifted(self, step_offset: int) -> "Trace":
        """Copy of the trace with all steps moved later by ``step_offset``."""
        if step_offset < 0:
            raise ValueError("step_offset must be non-negative")
        return Trace(
            steps=self.steps + step_offset,
            procs=self.procs,
            data=self.data,
            counts=self.counts,
            n_steps=self.n_steps + step_offset,
            n_data=self.n_data,
            n_procs=self.n_procs,
        )


@dataclass
class TraceBuilder:
    """Mutable accumulator used by workload generators.

    Generators call :meth:`add` once per reference and :meth:`end_step`
    at parallel-step boundaries; :meth:`build` freezes the result.
    """

    n_procs: int
    n_data: int
    _steps: list[int] = field(default_factory=list)
    _procs: list[int] = field(default_factory=list)
    _data: list[int] = field(default_factory=list)
    _counts: list[int] = field(default_factory=list)
    _current_step: int = 0
    _step_dirty: bool = False

    def add(self, proc: int, data: int, count: int = 1) -> None:
        """Record ``count`` references to ``data`` by ``proc`` this step."""
        if not 0 <= proc < self.n_procs:
            raise ValueError(f"proc {proc} outside array of {self.n_procs}")
        if not 0 <= data < self.n_data:
            raise ValueError(f"datum {data} outside universe of {self.n_data}")
        if count <= 0:
            raise ValueError("count must be positive")
        self._steps.append(self._current_step)
        self._procs.append(proc)
        self._data.append(data)
        self._counts.append(count)
        self._step_dirty = True

    def add_many(self, proc: int, data_ids, count: int = 1) -> None:
        """Record references by ``proc`` to each datum in ``data_ids``."""
        for d in data_ids:
            self.add(proc, int(d), count)

    def end_step(self) -> int:
        """Close the current parallel step; returns the new step index."""
        self._current_step += 1
        self._step_dirty = False
        return self._current_step

    @property
    def current_step(self) -> int:
        return self._current_step

    def build(self) -> Trace:
        """Freeze into a :class:`Trace` (consolidating duplicate events)."""
        n_steps = self._current_step + (1 if self._step_dirty else 0)
        n_steps = max(n_steps, 1)
        steps = np.asarray(self._steps, dtype=np.int64)
        procs = np.asarray(self._procs, dtype=np.int64)
        data = np.asarray(self._data, dtype=np.int64)
        counts = np.asarray(self._counts, dtype=np.int64)
        if len(steps):
            # Consolidate duplicate (step, proc, data) triples so the trace
            # stays compact for reference-heavy kernels.
            key = (steps * self.n_procs + procs) * self.n_data + data
            order = np.argsort(key, kind="stable")
            key, steps, procs, data, counts = (
                key[order],
                steps[order],
                procs[order],
                data[order],
                counts[order],
            )
            boundaries = np.concatenate(([True], key[1:] != key[:-1]))
            group = np.cumsum(boundaries) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=np.int64)
            np.add.at(summed, group, counts)
            steps, procs, data = steps[boundaries], procs[boundaries], data[boundaries]
            counts = summed
        return Trace(
            steps=steps,
            procs=procs,
            data=data,
            counts=counts,
            n_steps=n_steps,
            n_data=self.n_data,
            n_procs=self.n_procs,
        )


def concat_traces(first: Trace, second: Trace) -> Trace:
    """Concatenate two traces in time (``second`` runs after ``first``).

    Both traces must target the same processor array and datum universe;
    this is how the paper's combined benchmarks (3, 4, 5) are formed.
    """
    if first.n_procs != second.n_procs:
        raise ValueError("traces target different processor arrays")
    if first.n_data != second.n_data:
        raise ValueError("traces use different datum universes")
    shifted = second.shifted(first.n_steps)
    return Trace(
        steps=np.concatenate([first.steps, shifted.steps]),
        procs=np.concatenate([first.procs, shifted.procs]),
        data=np.concatenate([first.data, shifted.data]),
        counts=np.concatenate([first.counts, shifted.counts]),
        n_steps=shifted.n_steps,
        n_data=first.n_data,
        n_procs=first.n_procs,
    )


def reverse_trace(trace: Trace) -> Trace:
    """The trace executed in reverse step order (paper's benchmark 5).

    Step ``s`` becomes step ``n_steps - 1 - s``; references within a step
    are unordered so nothing else changes.
    """
    new_steps = trace.n_steps - 1 - trace.steps
    order = np.argsort(new_steps, kind="stable")
    return Trace(
        steps=new_steps[order],
        procs=trace.procs[order],
        data=trace.data[order],
        counts=trace.counts[order],
        n_steps=trace.n_steps,
        n_data=trace.n_data,
        n_procs=trace.n_procs,
    )
