"""Program substrate: access traces, execution windows, reference strings."""

from .dataref import data_reference_string, per_processor_demand, working_set_sizes
from .events import AccessEvent, Trace, TraceBuilder, concat_traces, reverse_trace
from .io import load_schedule, load_trace, save_schedule, save_trace
from .refstrings import ReferenceTensor, build_reference_tensor
from .segmentation import segment_by_similarity, segment_dp, step_profiles
from .windows import (
    WindowSet,
    single_window,
    window_per_step,
    windows_by_step_count,
    windows_from_boundaries,
)

__all__ = [
    "AccessEvent",
    "Trace",
    "TraceBuilder",
    "concat_traces",
    "reverse_trace",
    "WindowSet",
    "windows_by_step_count",
    "windows_from_boundaries",
    "single_window",
    "window_per_step",
    "ReferenceTensor",
    "build_reference_tensor",
    "data_reference_string",
    "per_processor_demand",
    "working_set_sizes",
    "save_trace",
    "load_trace",
    "save_schedule",
    "load_schedule",
    "step_profiles",
    "segment_by_similarity",
    "segment_dp",
]
