"""Data reference strings per processor (Definition 2 of the paper).

Dual view of :mod:`repro.trace.refstrings`: for each *processor*, which
data does it touch, window by window.  The schedulers themselves only need
the processor-side view, but the simulator, the memory planner (minimum
residency requirements) and the reports use this one.
"""

from __future__ import annotations

import numpy as np

from .events import Trace
from .windows import WindowSet

__all__ = [
    "data_reference_string",
    "per_processor_demand",
    "working_set_sizes",
]


def data_reference_string(trace: Trace, proc: int) -> list[tuple[int, int]]:
    """Definition 2: the ordered ``(step, datum)`` references of ``proc``.

    References within one step are emitted in datum order (intra-step
    order is not semantically meaningful); multi-count events repeat.
    """
    if not 0 <= proc < trace.n_procs:
        raise ValueError(f"proc {proc} outside array of {trace.n_procs}")
    mask = trace.procs == proc
    out: list[tuple[int, int]] = []
    for s, d, c in zip(trace.steps[mask], trace.data[mask], trace.counts[mask]):
        out.extend([(int(s), int(d))] * int(c))
    return out


def per_processor_demand(trace: Trace, windows: WindowSet) -> np.ndarray:
    """``(n_windows, n_procs)`` total reference counts issued per processor."""
    out = np.zeros((windows.n_windows, trace.n_procs), dtype=np.int64)
    if len(trace):
        w = windows.assign(trace.steps)
        np.add.at(out, (w, trace.procs), trace.counts)
    return out


def working_set_sizes(trace: Trace, windows: WindowSet) -> np.ndarray:
    """``(n_windows, n_procs)`` count of *distinct* data each processor
    touches per window — the lower bound on useful local residency."""
    out = np.zeros((windows.n_windows, trace.n_procs), dtype=np.int64)
    if len(trace):
        w = windows.assign(trace.steps)
        key = (w * trace.n_procs + trace.procs) * trace.n_data + trace.data
        uniq = np.unique(key)
        procs = (uniq // trace.n_data) % trace.n_procs
        wins = uniq // (trace.n_data * trace.n_procs)
        np.add.at(out, (wins, procs), 1)
    return out
