"""Persistence for traces, windows and schedules (single ``.npz`` files).

Generating reference traces can dominate experiment time for large
kernels; these helpers let a workload be generated once and re-scheduled
many times, and let schedules be archived next to EXPERIMENTS.md results.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .events import Trace
from .windows import WindowSet

__all__ = ["save_trace", "load_trace", "save_schedule", "load_schedule"]


def save_trace(path, trace: Trace, windows: WindowSet | None = None) -> None:
    """Write a trace (and optionally its window set) to ``path`` (.npz)."""
    payload = {
        "steps": trace.steps,
        "procs": trace.procs,
        "data": trace.data,
        "counts": trace.counts,
        "meta": np.array([trace.n_steps, trace.n_data, trace.n_procs]),
    }
    if windows is not None:
        if windows.n_steps != trace.n_steps:
            raise ValueError("window set does not span the trace")
        payload["window_starts"] = windows.starts
    np.savez_compressed(Path(path), **payload)


def load_trace(path) -> tuple[Trace, WindowSet | None]:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        n_steps, n_data, n_procs = (int(x) for x in archive["meta"])
        trace = Trace(
            steps=archive["steps"],
            procs=archive["procs"],
            data=archive["data"],
            counts=archive["counts"],
            n_steps=n_steps,
            n_data=n_data,
            n_procs=n_procs,
        )
        windows = None
        if "window_starts" in archive:
            windows = WindowSet(starts=archive["window_starts"], n_steps=n_steps)
    return trace, windows


def save_schedule(path, schedule) -> None:
    """Write a schedule's centers + windows to ``path`` (.npz)."""
    np.savez_compressed(
        Path(path),
        centers=schedule.centers,
        window_starts=schedule.windows.starts,
        n_steps=np.array([schedule.windows.n_steps]),
        method=np.array([schedule.method]),
    )


def load_schedule(path):
    """Read a schedule written by :func:`save_schedule`."""
    from ..core.schedule import Schedule

    with np.load(Path(path)) as archive:
        windows = WindowSet(
            starts=archive["window_starts"], n_steps=int(archive["n_steps"][0])
        )
        return Schedule(
            centers=archive["centers"],
            windows=windows,
            method=str(archive["method"][0]),
        )
