"""Persistence for traces, windows and schedules (single ``.npz`` files).

Generating reference traces can dominate experiment time for large
kernels; these helpers let a workload be generated once and re-scheduled
many times, and let schedules be archived next to EXPERIMENTS.md results.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..diagnostics import SCH001, SCH004, TRC001, TRC002, code_message
from .events import Trace
from .windows import WindowSet

__all__ = ["save_trace", "load_trace", "save_schedule", "load_schedule"]


def _require_keys(archive, path, required, kind: str, code: str) -> None:
    missing = [k for k in required if k not in archive.files]
    if missing:
        raise ValueError(
            code_message(
                code,
                f"{path} is not a {kind} archive: missing key(s) "
                f"{', '.join(missing)} (present: {', '.join(archive.files)})",
            )
        )


def save_trace(path, trace: Trace, windows: WindowSet | None = None) -> None:
    """Write a trace (and optionally its window set) to ``path`` (.npz)."""
    payload = {
        "steps": trace.steps,
        "procs": trace.procs,
        "data": trace.data,
        "counts": trace.counts,
        "meta": np.array([trace.n_steps, trace.n_data, trace.n_procs]),
    }
    if windows is not None:
        if windows.n_steps != trace.n_steps:
            raise ValueError(
                f"window set spans {windows.n_steps} steps but the trace "
                f"has {trace.n_steps}"
            )
        payload["window_starts"] = windows.starts
    np.savez_compressed(Path(path), **payload)


def load_trace(path) -> tuple[Trace, WindowSet | None]:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`ValueError` naming ``path`` when the archive is missing
    keys, has a malformed ``meta`` record, or holds out-of-range event
    arrays (e.g. negative processor ids) — a corrupt or foreign ``.npz``
    fails loudly instead of producing an inconsistent :class:`Trace`.
    """
    path = Path(path)
    with np.load(path) as archive:
        _require_keys(
            archive,
            path,
            ("steps", "procs", "data", "counts", "meta"),
            "trace",
            TRC001,
        )
        meta = archive["meta"]
        if meta.shape != (3,):
            raise ValueError(
                code_message(
                    TRC001,
                    f"{path}: trace meta must hold [n_steps, n_data, "
                    f"n_procs], got shape {meta.shape}",
                )
            )
        n_steps, n_data, n_procs = (int(x) for x in meta)
        if min(n_steps, n_data, n_procs) < 1:
            raise ValueError(
                code_message(
                    TRC001,
                    f"{path}: trace meta must be positive, got "
                    f"n_steps={n_steps}, n_data={n_data}, n_procs={n_procs}",
                )
            )
        try:
            trace = Trace(
                steps=archive["steps"],
                procs=archive["procs"],
                data=archive["data"],
                counts=archive["counts"],
                n_steps=n_steps,
                n_data=n_data,
                n_procs=n_procs,
            )
        except ValueError as exc:
            raise ValueError(
                code_message(TRC001, f"{path}: invalid trace archive: {exc}")
            ) from exc
        windows = None
        if "window_starts" in archive:
            try:
                windows = WindowSet(
                    starts=archive["window_starts"], n_steps=n_steps
                )
            except ValueError as exc:
                raise ValueError(
                    code_message(
                        TRC002, f"{path}: invalid window set in archive: {exc}"
                    )
                ) from exc
    return trace, windows


def save_schedule(path, schedule) -> None:
    """Write a schedule's centers + windows to ``path`` (.npz)."""
    np.savez_compressed(
        Path(path),
        centers=schedule.centers,
        window_starts=schedule.windows.starts,
        n_steps=np.array([schedule.windows.n_steps]),
        method=np.array([schedule.method]),
    )


def load_schedule(path):
    """Read a schedule written by :func:`save_schedule`.

    Raises :class:`ValueError` naming ``path`` for missing keys, a
    negative processor id in ``centers``, or a center/window shape
    mismatch.
    """
    from ..core.schedule import Schedule

    path = Path(path)
    with np.load(path) as archive:
        _require_keys(
            archive,
            path,
            ("centers", "window_starts", "n_steps", "method"),
            "schedule",
            SCH004,
        )
        try:
            windows = WindowSet(
                starts=archive["window_starts"],
                n_steps=int(archive["n_steps"][0]),
            )
            centers = archive["centers"]
            if centers.ndim != 2 or centers.shape[1] != windows.n_windows:
                raise ValueError(
                    code_message(
                        SCH004,
                        f"centers shape {centers.shape} does not match "
                        f"{windows.n_windows} windows (expected (n_data, "
                        f"{windows.n_windows}))",
                    )
                )
            if centers.size and centers.min() < 0:
                raise ValueError(
                    code_message(
                        SCH001,
                        f"centers hold negative processor id "
                        f"{int(centers.min())}; processor ids must be >= 0",
                    )
                )
            return Schedule(
                centers=centers,
                windows=windows,
                method=str(archive["method"][0]),
            )
        except ValueError as exc:
            raise ValueError(f"{path}: invalid schedule archive: {exc}") from exc
