"""Reference tensors: the processor reference strings of Definition 1.

Every scheduler in the paper consumes, for each datum *D* and execution
window *w*, the multiset of processors that reference *D* in *w* — i.e.
the processor reference string.  Since the cost model is order-free inside
a window, a count vector over processors is a lossless representation:

    ``R[d, w, p]`` = number of references by processor ``p`` to datum
    ``d`` within window ``w``.

The tensor is built from a :class:`~repro.trace.events.Trace` with one
``np.add.at`` scatter and is the only program-side input of
``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .events import Trace
from .windows import WindowSet

__all__ = ["ReferenceTensor", "build_reference_tensor"]


@dataclass(frozen=True)
class ReferenceTensor:
    """Dense per-datum, per-window processor reference counts.

    Attributes
    ----------
    counts:
        ``(n_data, n_windows, n_procs)`` int64 array.
    windows:
        The :class:`WindowSet` the window axis refers to.
    """

    counts: np.ndarray
    windows: WindowSet

    def __post_init__(self) -> None:
        if self.counts.ndim != 3:
            raise ValueError("reference tensor must be (n_data, n_windows, n_procs)")
        if self.counts.shape[1] != self.windows.n_windows:
            raise ValueError("window axis does not match the WindowSet")
        if len(self.counts) and self.counts.min() < 0:
            raise ValueError("reference counts must be non-negative")

    @property
    def n_data(self) -> int:
        return self.counts.shape[0]

    @property
    def n_windows(self) -> int:
        return self.counts.shape[1]

    @property
    def n_procs(self) -> int:
        return self.counts.shape[2]

    def for_data(self, d: int) -> np.ndarray:
        """``(n_windows, n_procs)`` count matrix of datum ``d`` (view)."""
        return self.counts[d]

    def total_references(self, d: int | None = None) -> int:
        """Total reference count, overall or for one datum."""
        if d is None:
            return int(self.counts.sum())
        return int(self.counts[d].sum())

    def data_priority_order(self) -> np.ndarray:
        """Datum ids sorted by descending total reference volume.

        Used for capacity-constrained assignment: the heaviest data claim
        their optimal processors first (ties break toward lower ids).
        """
        totals = self.counts.sum(axis=(1, 2))
        return np.argsort(-totals, kind="stable")

    def referenced_data(self) -> np.ndarray:
        """Datum ids that are referenced at least once."""
        return np.nonzero(self.counts.sum(axis=(1, 2)) > 0)[0]

    def processor_reference_string(self, d: int, w: int) -> np.ndarray:
        """Definition 1 as an explicit multiset: pids repeated by count.

        Order inside a window is not semantically meaningful for the cost
        model; pids are returned ascending.
        """
        row = self.counts[d, w]
        return np.repeat(np.arange(self.n_procs), row)

    def regroup(self, new_windows: WindowSet) -> "ReferenceTensor":
        """Re-aggregate counts onto a coarser/finer WindowSet.

        ``new_windows`` must partition the same step horizon; counts of the
        old windows are summed into the new window containing their start
        step.  Only valid when every old window lies inside one new window
        (i.e. ``new_windows`` is a coarsening), which is checked.
        """
        if new_windows.n_steps != self.windows.n_steps:
            raise ValueError("window sets span different step horizons")
        old_bounds = [self.windows.bounds(w) for w in range(self.n_windows)]
        assignment = new_windows.assign(self.windows.starts)
        for (lo, hi), g in zip(old_bounds, assignment):
            glo, ghi = new_windows.bounds(int(g))
            if lo < glo or hi > ghi:
                raise ValueError("new windows must coarsen the old windows")
        out = np.zeros(
            (self.n_data, new_windows.n_windows, self.n_procs), dtype=np.int64
        )
        np.add.at(out, (slice(None), assignment), self.counts)
        return ReferenceTensor(counts=out, windows=new_windows)


def build_reference_tensor(trace: Trace, windows: WindowSet) -> ReferenceTensor:
    """Scatter a trace into the ``R[d, w, p]`` tensor for ``windows``."""
    if windows.n_steps != trace.n_steps:
        raise ValueError("window set does not span the trace's steps")
    counts = np.zeros(
        (trace.n_data, windows.n_windows, trace.n_procs), dtype=np.int64
    )
    if len(trace):
        w = windows.assign(trace.steps)
        np.add.at(counts, (trace.data, w, trace.procs), trace.counts)
    return ReferenceTensor(counts=counts, windows=windows)
