"""Automatic execution-window segmentation (extension of the paper's §4).

The paper assumes execution windows "are given" and §4 only *merges*
them.  But where should the boundaries come from in the first place?
Section 4's own discussion says the answer is behavioural: windows
should cover spans of steps with a stable reference pattern, and break
where the pattern shifts.  This module derives boundaries from the trace
itself, using the per-step **demand profile** — the vector of reference
counts per processor — as the pattern signature:

* :func:`segment_by_similarity` — streaming change-point detection: a
  new window starts whenever the cosine similarity between the running
  window's mean profile and the next step's profile drops below a
  threshold.  One pass, O(T·m).
* :func:`segment_dp` — optimal ``k``-segmentation: dynamic programming
  minimizing the total within-window variation (sum of squared
  distances of step profiles to their window mean), the 1-D analogue of
  k-means on the time axis.  O(T²·(m + k)).

Ablation I compares these against the kernels' natural (outer-loop)
windows and fixed-size windows.
"""

from __future__ import annotations

import numpy as np

from .events import Trace
from .windows import WindowSet, windows_from_boundaries

__all__ = ["step_profiles", "segment_by_similarity", "segment_dp"]


#: Datum-bucket granularities of the joint feature (powers of a base).
_BUCKET_LEVELS = (1, 8, 64)
_N_BUCKETS = 8


def step_profiles(
    trace: Trace, normalize: bool = False, feature: str = "proc"
) -> np.ndarray:
    """Per-step demand signatures.

    ``feature="proc"``: the ``(n_steps, n_procs)`` processor demand
    vector — cheap, but blind to *which data* each processor touches
    (an FFT's stages all look identical through it).

    ``feature="proc-datum"``: a multi-resolution joint sketch — for each
    bucket level ``L`` in ``(1, 8, 64)`` the demand is histogrammed over
    ``(processor, (datum // L) mod 8)`` cells, concatenated into one
    ``(n_steps, n_procs * 24)`` matrix.  Steps that pair the same
    processors with *different* data (stride patterns) now separate.
    """
    if feature == "proc":
        out = np.zeros((trace.n_steps, trace.n_procs), dtype=np.float64)
        if len(trace):
            np.add.at(out, (trace.steps, trace.procs), trace.counts)
    elif feature == "proc-datum":
        width = trace.n_procs * _N_BUCKETS
        out = np.zeros(
            (trace.n_steps, width * len(_BUCKET_LEVELS)), dtype=np.float64
        )
        if len(trace):
            for lvl, level in enumerate(_BUCKET_LEVELS):
                buckets = (trace.data // level) % _N_BUCKETS
                cols = lvl * width + trace.procs * _N_BUCKETS + buckets
                np.add.at(out, (trace.steps, cols), trace.counts)
    else:
        raise ValueError(f"unknown feature {feature!r}")
    if normalize:
        norms = np.linalg.norm(out, axis=1, keepdims=True)
        np.divide(out, norms, out=out, where=norms > 0)
    return out


def segment_by_similarity(
    trace: Trace,
    threshold: float = 0.5,
    min_window: int = 1,
    feature: str = "proc-datum",
) -> WindowSet:
    """Greedy change-point segmentation on demand-profile similarity.

    Step ``t`` joins the current window while the cosine similarity of
    its profile with the window's running mean stays at least
    ``threshold``; otherwise a boundary is placed (subject to
    ``min_window``).  Steps with no references always join.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    if min_window < 1:
        raise ValueError("min_window must be at least 1")
    profiles = step_profiles(trace, feature=feature)
    boundaries = [0]
    running = profiles[0].copy()
    window_len = 1
    for t in range(1, trace.n_steps):
        profile = profiles[t]
        p_norm = np.linalg.norm(profile)
        r_norm = np.linalg.norm(running)
        if p_norm == 0 or r_norm == 0:
            similarity = 1.0  # idle steps never force a boundary
        else:
            similarity = float(profile @ running) / (p_norm * r_norm)
        if similarity < threshold and window_len >= min_window:
            boundaries.append(t)
            running = profile.copy()
            window_len = 1
        else:
            running += profile
            window_len += 1
    return windows_from_boundaries(boundaries, trace.n_steps)


def segment_dp(trace: Trace, n_windows: int, feature: str = "proc-datum") -> WindowSet:
    """Optimal ``n_windows``-segmentation by within-window variation.

    Minimizes ``sum_w sum_{t in w} ||profile_t - mean_w||^2`` over all
    partitions of the step axis into exactly ``n_windows`` contiguous
    windows (fewer if there are not enough steps).
    """
    if n_windows < 1:
        raise ValueError("n_windows must be at least 1")
    profiles = step_profiles(trace, feature=feature)
    n_steps = trace.n_steps
    n_windows = min(n_windows, n_steps)

    # Interval cost via prefix sums: sse(a, b) over steps [a, b).
    prefix = np.vstack([np.zeros_like(profiles[:1]), np.cumsum(profiles, axis=0)])
    sq_prefix = np.concatenate([[0.0], np.cumsum((profiles**2).sum(axis=1))])

    def sse(a: int, b: int) -> float:
        total = prefix[b] - prefix[a]
        count = b - a
        return float(sq_prefix[b] - sq_prefix[a] - (total @ total) / count)

    best = np.full((n_windows + 1, n_steps + 1), np.inf)
    back = np.zeros((n_windows + 1, n_steps + 1), dtype=np.int64)
    best[0, 0] = 0.0
    for k in range(1, n_windows + 1):
        for end in range(k, n_steps + 1):
            for start in range(k - 1, end):
                cand = best[k - 1, start] + sse(start, end)
                if cand < best[k, end]:
                    best[k, end] = cand
                    back[k, end] = start
    boundaries = []
    end = n_steps
    for k in range(n_windows, 0, -1):
        start = int(back[k, end])
        boundaries.append(start)
        end = start
    return windows_from_boundaries(sorted(boundaries), n_steps)
