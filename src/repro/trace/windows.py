"""Execution windows: segmentation of a trace's steps.

"A sequence of parallel execution steps are grouped into an execution
window" (paper, §2).  A :class:`WindowSet` is an ordered partition of the
step axis ``[0, n_steps)`` into contiguous, non-empty intervals.  The
schedulers only see window indices; how windows are drawn (fixed step
count, loop-level markers, ...) is decided here.

Window *grouping* (paper's Algorithm 3) happens downstream of this module,
per datum, in ``repro.core.grouping``; this module also provides the
`merge` primitive it relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .events import Trace

__all__ = [
    "WindowSet",
    "windows_by_step_count",
    "windows_from_boundaries",
    "single_window",
    "window_per_step",
]


@dataclass(frozen=True)
class WindowSet:
    """An ordered partition of steps ``[0, n_steps)`` into windows.

    ``starts[i]`` is the first step of window ``i``; window ``i`` covers
    ``[starts[i], starts[i+1])`` with an implicit final bound ``n_steps``.
    """

    starts: np.ndarray
    n_steps: int

    def __post_init__(self) -> None:
        starts = np.asarray(self.starts, dtype=np.int64)
        object.__setattr__(self, "starts", starts)
        if self.n_steps < 1:
            raise ValueError(
                f"a WindowSet needs a positive step horizon, got "
                f"n_steps={self.n_steps}"
            )
        if starts.ndim != 1 or len(starts) == 0:
            raise ValueError("a WindowSet needs at least one window")
        if starts[0] != 0:
            raise ValueError(
                f"first window must start at step 0, got start "
                f"{int(starts[0])}; windows partition [0, n_steps) with no gap"
            )
        diffs = np.diff(starts)
        if np.any(diffs <= 0):
            i = int(np.argmax(diffs <= 0))
            raise ValueError(
                f"window starts must be strictly increasing: start[{i + 1}]="
                f"{int(starts[i + 1])} does not follow start[{i}]="
                f"{int(starts[i])} (an equal start would make window {i} empty)"
            )
        if starts[-1] >= self.n_steps:
            raise ValueError(
                f"last window would be empty: it starts at step "
                f"{int(starts[-1])} but the trace has only {self.n_steps} "
                f"steps (valid starts are 0..{self.n_steps - 1})"
            )

    @property
    def n_windows(self) -> int:
        return len(self.starts)

    def __len__(self) -> int:
        return self.n_windows

    def bounds(self, w: int) -> tuple[int, int]:
        """Half-open step interval ``[lo, hi)`` of window ``w``."""
        if not 0 <= w < self.n_windows:
            raise ValueError(f"window {w} out of range")
        lo = int(self.starts[w])
        hi = int(self.starts[w + 1]) if w + 1 < self.n_windows else self.n_steps
        return lo, hi

    def sizes(self) -> np.ndarray:
        """Number of steps in each window."""
        ends = np.append(self.starts[1:], self.n_steps)
        return ends - self.starts

    def window_of_steps(self) -> np.ndarray:
        """``(n_steps,)`` array mapping each step to its window index."""
        out = np.zeros(self.n_steps, dtype=np.int64)
        out[self.starts[1:]] = 1
        return np.cumsum(out)

    def assign(self, steps: np.ndarray) -> np.ndarray:
        """Window index of each step in ``steps`` (vectorized)."""
        return np.searchsorted(self.starts, np.asarray(steps), side="right") - 1

    def merge(self, first: int, last: int) -> "WindowSet":
        """New WindowSet with windows ``first..last`` (inclusive) merged."""
        if not 0 <= first <= last < self.n_windows:
            raise ValueError(f"bad merge range [{first}, {last}]")
        keep = np.concatenate([self.starts[: first + 1], self.starts[last + 1 :]])
        return WindowSet(starts=keep, n_steps=self.n_steps)


def windows_by_step_count(trace_or_steps, steps_per_window: int) -> WindowSet:
    """Split a trace (or a step horizon) into fixed-size windows.

    The final window absorbs any remainder steps, matching the paper's
    informal treatment of trailing steps.
    """
    n_steps = (
        trace_or_steps.n_steps
        if isinstance(trace_or_steps, Trace)
        else int(trace_or_steps)
    )
    if steps_per_window < 1:
        raise ValueError(
            f"steps_per_window must be >= 1, got {steps_per_window}"
        )
    starts = np.arange(0, n_steps, steps_per_window, dtype=np.int64)
    # Fold a short trailing window into its predecessor to avoid windows
    # smaller than half the nominal size, unless it is the only window.
    if len(starts) > 1 and n_steps - starts[-1] < max(1, steps_per_window // 2):
        starts = starts[:-1]
    return WindowSet(starts=starts, n_steps=n_steps)


def windows_from_boundaries(boundaries, n_steps: int) -> WindowSet:
    """Build windows from explicit start steps (e.g. outer-loop markers).

    Boundaries are deduplicated and a leading 0 is supplied if missing;
    boundaries at or past ``n_steps`` are dropped.  Negative boundaries
    are rejected outright rather than silently folded into window 0.
    """
    starts = np.unique(np.asarray(list(boundaries), dtype=np.int64))
    if len(starts) and starts[0] < 0:
        bad = [int(b) for b in starts[starts < 0]]
        raise ValueError(
            f"window boundaries must be non-negative step indices, got {bad}"
        )
    if len(starts) == 0 or starts[0] != 0:
        starts = np.concatenate([[0], starts])
    starts = starts[starts < n_steps]
    return WindowSet(starts=starts, n_steps=n_steps)


def single_window(trace_or_steps) -> WindowSet:
    """One window spanning the whole execution (SCDS's view)."""
    n_steps = (
        trace_or_steps.n_steps
        if isinstance(trace_or_steps, Trace)
        else int(trace_or_steps)
    )
    return WindowSet(starts=np.zeros(1, dtype=np.int64), n_steps=n_steps)


def window_per_step(trace_or_steps) -> WindowSet:
    """The finest segmentation: every step its own window."""
    n_steps = (
        trace_or_steps.n_steps
        if isinstance(trace_or_steps, Trace)
        else int(trace_or_steps)
    )
    return WindowSet(starts=np.arange(n_steps, dtype=np.int64), n_steps=n_steps)
