"""Standalone checking of GOMCDS shortest-path optimality certificates.

GOMCDS reduces per-datum scheduling to a shortest ``s -> d`` path in a
layered cost-graph, so its forward DP value tables are shortest-path
*node potentials*.  A certificate attached by ``gomcds(...,
certify=True)`` (or the fault-aware reschedulers) therefore proves
optimality through two classical, solver-independent conditions:

* **dual feasibility** — ``pi[0, k] <= C[0, k]`` and
  ``pi[w, k] <= min_j(pi[w-1, j] + move[j, k]) + C[w, k]`` for every
  admissible cell, which makes ``min_k pi[W-1, k]`` a valid *lower
  bound* on any admissible center path's cost (``VER006`` on failure);
* **tightness** — the schedule's actual path cost, recomputed here from
  the reference tensor and the metric alone, equals the claimed total
  and does not exceed that lower bound, squeezing the path against the
  optimum (``VER007`` on failure).

Together the two conditions certify each datum's center sequence is a
minimum-cost path over its admissible ``(window, processor)`` cells —
no trust in the solver required, and any tampering with potentials,
totals or centers breaks one of them.

The theory cross-check (``VER011``) ties the certificate to the paper's
§4 structure: Lemma 1 / Theorem 2 argue via cost rows that are convex
and separable along the mesh axes, which
:func:`repro.theory.is_separable_convex` verifies on sampled rows.  A
violation does not invalidate the LP-duality proof above, but it means
the cost model left the regime the paper's monotonicity argument (and
the SCDS/LOMCDS heuristics) assume — worth a warning.
"""

from __future__ import annotations

import numpy as np

from ..core import CostModel
from ..core.reschedule import alive_window_mask
from ..diagnostics import VER005, VER006, VER007, VER011, Diagnostic, Severity
from ..faults import FaultPlan
from ..theory import is_separable_convex
from ..trace import ReferenceTensor
from .abstract import MAX_DIAGNOSTICS_PER_CHECK, _emit, _volumes

__all__ = ["check_certificate", "certificate_of"]

#: relative tolerance for cost comparisons (costs are hop-count sums).
_TOL = 1e-6
#: cap on separable-convexity spot checks (rows are independent).
_THEORY_SAMPLE = 32


def certificate_of(schedule) -> dict | None:
    """The schedule's attached certificate payload, if any."""
    cert = schedule.meta.get("certificate") if schedule.meta else None
    return cert if isinstance(cert, dict) else None


def _malformed(message: str, hint: str | None = None) -> list[Diagnostic]:
    return [
        Diagnostic(
            code=VER005,
            severity=Severity.ERROR,
            message=f"malformed certificate: {message}",
            hint=hint or "re-emit with gomcds(..., certify=True)",
        )
    ]


def check_certificate(
    schedule,
    tensor: ReferenceTensor,
    model: CostModel,
    faults: FaultPlan | None = None,
    *,
    require: bool = False,
    check_theory: bool = True,
) -> list[Diagnostic]:
    """Verify the schedule's optimality certificate against the inputs.

    Returns coded diagnostics: ``VER005`` for a missing (when
    ``require``) or structurally broken certificate, ``VER006`` for
    dual-infeasible potentials, ``VER007`` for a non-tight certificate
    (claimed total wrong, schedule outside its admissible region, or
    path cost above the certified lower bound), and ``VER011`` for
    theory cross-check warnings.  An empty list means every datum's
    center path is proven optimal.
    """
    cert = certificate_of(schedule)
    if cert is None:
        raw = schedule.meta.get("certificate") if schedule.meta else None
        if raw is not None:
            return _malformed(
                f"expected a mapping, got {type(raw).__name__}"
            )
        if not require:
            return []
        return [
            Diagnostic(
                code=VER005,
                severity=Severity.ERROR,
                message=(
                    "no optimality certificate attached to the schedule"
                ),
                hint="schedule with gomcds(..., certify=True) or "
                "reschedule_*(..., certify=True)",
            )
        ]

    if cert.get("kind") != "gomcds-potentials":
        return _malformed(f"unknown kind {cert.get('kind')!r}")

    n_data, n_windows = schedule.centers.shape
    n_procs = model.n_procs
    from_window = int(cert.get("from_window", 0))
    if not 0 <= from_window < n_windows:
        return _malformed(f"from_window {from_window} outside the horizon")
    n_suffix = n_windows - from_window

    potentials = cert.get("potentials")
    totals = cert.get("totals")
    if potentials is None or totals is None:
        return _malformed("potentials/totals missing")
    potentials = np.asarray(potentials, dtype=np.float64)
    totals = np.asarray(totals, dtype=np.float64)
    if potentials.shape != (n_data, n_suffix, n_procs):
        return _malformed(
            f"potentials have shape {potentials.shape}, expected "
            f"({n_data}, {n_suffix}, {n_procs})"
        )
    if totals.shape != (n_data,):
        return _malformed(f"totals have shape {totals.shape}")

    masks = cert.get("masks")
    if masks is not None:
        masks = np.asarray(masks, dtype=bool)
        if masks.shape != potentials.shape:
            return _malformed(f"masks have shape {masks.shape}")

    placement = cert.get("placement")
    if placement is not None:
        placement = np.asarray(placement, dtype=np.int64)
        if placement.shape != (n_data,):
            return _malformed(f"placement has shape {placement.shape}")
        if placement.size and (
            placement.min() < 0 or placement.max() >= n_procs
        ):
            return _malformed("placement names a pid outside the array")

    diagnostics: list[Diagnostic] = []

    if faults is not None and masks is not None:
        alive = alive_window_mask(faults, n_windows, n_procs)[from_window:]
        leaks = masks & ~alive[None, :, :]
        if leaks.any():
            d, w, p = (int(x[0]) for x in np.nonzero(leaks))
            return _malformed(
                f"admissible mask admits processor {p} in window "
                f"{from_window + w}, which the fault plan takes down "
                f"(first leak: datum {d})",
                hint="re-emit the certificate from "
                "reschedule_around_faults(..., certify=True)",
            )

    # -- rebuild the cost tensor independently of the solver ----------------
    costs = model.all_placement_costs(tensor)[:, from_window:, :].astype(
        np.float64, copy=True
    )
    dist = model.distances.astype(np.float64)
    vols = _volumes(model, n_data)
    if placement is not None:
        # the recovery DP pins its first window to the rollback residency
        costs[:, 0, :] += vols[:, None] * dist[placement, :]
    if masks is not None:
        costs[~masks] = np.inf

    _check_dual_feasibility(potentials, costs, dist, vols, diagnostics,
                            from_window)
    _check_tightness(
        schedule, potentials, totals, costs, dist, vols, from_window,
        diagnostics,
    )
    if check_theory:
        _check_theory(schedule, tensor, model, from_window, diagnostics)
    return diagnostics


def _check_dual_feasibility(
    potentials, costs, dist, vols, diagnostics, from_window
):
    """VER006: ``pi`` must never exceed the best incoming value."""
    n_data, n_suffix, _ = potentials.shape
    finite = potentials[np.isfinite(potentials)]
    tol = _TOL * (1.0 + (float(np.abs(finite).max()) if finite.size else 0.0))
    move = vols[:, None, None] * dist[None, :, :]  # (D, m, m)
    lower = costs[:, 0, :]
    for w in range(n_suffix):
        if w > 0:
            lower = (
                potentials[:, w - 1, :, None] + move
            ).min(axis=1) + costs[:, w, :]
        bad = potentials[:, w, :] > lower + tol
        for d, p in zip(*np.nonzero(bad)):
            _emit(
                diagnostics,
                Diagnostic(
                    code=VER006,
                    severity=Severity.ERROR,
                    message=(
                        f"certificate potential {potentials[d, w, p]:g} "
                        f"exceeds the best incoming value "
                        f"{lower[d, p]:g}; the potentials are "
                        "dual-infeasible and certify nothing"
                    ),
                    datum=int(d),
                    window=from_window + int(w),
                    processor=int(p),
                ),
            )


def _check_tightness(
    schedule, potentials, totals, costs, dist, vols, from_window, diagnostics
):
    """VER007: recomputed path cost == claimed total == certified bound."""
    n_data, n_suffix, _ = potentials.shape
    path = schedule.centers[:, from_window:]
    bound = potentials[:, -1, :].min(axis=1)
    tol = _TOL * (1.0 + np.abs(np.where(np.isfinite(bound), bound, 0.0)))

    gathered = np.take_along_axis(costs, path[:, :, None], axis=2)[:, :, 0]
    actual = gathered.sum(axis=1)
    if n_suffix > 1:
        actual = actual + vols * dist[path[:, :-1], path[:, 1:]].sum(axis=1)

    for d in np.nonzero(~np.isfinite(actual))[0]:
        _emit(
            diagnostics,
            Diagnostic(
                code=VER007,
                severity=Severity.ERROR,
                message=(
                    "schedule leaves the certificate's admissible "
                    "(window, processor) region; the certified optimum "
                    "does not cover this path"
                ),
                datum=int(d),
            ),
        )
    finite = np.isfinite(actual)

    for d in np.nonzero(
        finite & (np.abs(actual - totals) > tol)
    )[0]:
        _emit(
            diagnostics,
            Diagnostic(
                code=VER007,
                severity=Severity.ERROR,
                message=(
                    f"recomputed path cost {actual[d]:g} disagrees with "
                    f"the certified total {totals[d]:g}"
                ),
                datum=int(d),
            ),
        )
    for d in np.nonzero(finite & (actual > bound + tol))[0]:
        _emit(
            diagnostics,
            Diagnostic(
                code=VER007,
                severity=Severity.ERROR,
                message=(
                    f"path cost {actual[d]:g} exceeds the certified "
                    f"lower bound {bound[d]:g}; the center sequence is "
                    "not proven optimal"
                ),
                datum=int(d),
                hint="re-solve with gomcds (the schedule may have been "
                "edited after certification)",
            ),
        )
    # a totals vector below its own potentials' bound is a forged claim
    for d in np.nonzero(totals < bound - tol)[0]:
        _emit(
            diagnostics,
            Diagnostic(
                code=VER007,
                severity=Severity.ERROR,
                message=(
                    f"certified total {totals[d]:g} undercuts the "
                    f"potentials' own bound {bound[d]:g} (tampered "
                    "claim)"
                ),
                datum=int(d),
            ),
        )


def _check_theory(schedule, tensor, model, from_window, diagnostics):
    """VER011: sampled cost rows must satisfy the Lemma 1 preconditions."""
    costs = model.all_placement_costs(tensor)
    referenced = costs.sum(axis=2) > 0  # (D, W): rows with any cost mass
    checked = 0
    for d, w in zip(*np.nonzero(referenced)):
        if int(w) < from_window:
            continue
        if checked >= _THEORY_SAMPLE:
            return
        checked += 1
        if not is_separable_convex(costs[d, w], model.topology):
            _emit(
                diagnostics,
                Diagnostic(
                    code=VER011,
                    severity=Severity.WARNING,
                    message=(
                        "placement-cost row is not separable convex; the "
                        "certificate still proves optimality, but the "
                        "Lemma 1 / Theorem 2 monotonicity structure does "
                        "not hold for this cost model"
                    ),
                    datum=int(d),
                    window=int(w),
                ),
            )
            if (
                sum(1 for x in diagnostics if x.code == VER011)
                >= MAX_DIAGNOSTICS_PER_CHECK
            ):
                return
