"""Static schedule certifier: prove it before you run it.

Three pillars over ``Schedule``/``WindowSet``/``FaultPlan`` (see
``docs/certify.md``):

1. an **abstract interpreter** (:mod:`.abstract`) deriving per-datum
   residency live-ranges, per-processor occupancy and exact per-link
   x-y traffic — emitting ``VER001``–``VER004``;
2. a **certificate checker** (:mod:`.certificate`) verifying the
   shortest-path potential certificates GOMCDS and the fault-aware
   reschedulers emit with ``certify=True`` — ``VER005``–``VER007`` and
   the ``VER011`` theory cross-check;
3. a **differential gate** (:mod:`.differential`) comparing every
   static prediction against replayed ground truth —
   ``VER008``–``VER010``;
4. a **provenance auditor** (:mod:`.provenance`) cross-checking
   decision logs (``repro explain``) against the interpreter's live
   ranges and the evaluator's exact cost breakdown — ``VER012``.

``repro certify`` surfaces the stack on the CLI with exit codes
0 (clean) / 1 (warnings) / 2 (static errors) / 3 (divergence).
"""

from .abstract import StaticPrediction, interpret_schedule
from .certificate import certificate_of, check_certificate
from .differential import run_differential
from .engine import (
    EXIT_CERT_CLEAN,
    EXIT_CERT_DIVERGENCE,
    EXIT_CERT_ERRORS,
    EXIT_CERT_WARNINGS,
    CertifyReport,
    certify_schedule,
    certify_workload,
)
from .output import (
    VERIFY_RULE_TITLES,
    render_certify_human,
    render_certify_json,
    render_certify_sarif,
)
from .provenance import check_provenance_log

__all__ = [
    "StaticPrediction",
    "interpret_schedule",
    "check_certificate",
    "certificate_of",
    "run_differential",
    "check_provenance_log",
    "CertifyReport",
    "certify_schedule",
    "certify_workload",
    "EXIT_CERT_CLEAN",
    "EXIT_CERT_WARNINGS",
    "EXIT_CERT_ERRORS",
    "EXIT_CERT_DIVERGENCE",
    "render_certify_human",
    "render_certify_json",
    "render_certify_sarif",
    "VERIFY_RULE_TITLES",
]
