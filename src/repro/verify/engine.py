"""The certify engine: run all three pillars and gate on the result.

``certify_schedule`` is the library entry point behind ``repro
certify``: it abstract-interprets the schedule, checks the attached
optimality certificate, replays for ground truth and reports every
coded finding in one :class:`CertifyReport`.  ``certify_workload``
wraps it for the named paper benchmarks (the CI gating path), emitting
certificates from the production scheduler so the proof chain covers
exactly what ships.

Exit-code contract (one step stricter than lint's 0/1/2):

* ``0`` — clean: interpreted, certified, and replay agrees;
* ``1`` — warnings only (hotspots over budget, dead movement, theory
  cross-check findings);
* ``2`` — static errors: the schedule itself is broken (capacity
  overflow, unreachable placements);
* ``3`` — divergence: a certificate failed to verify or the static and
  dynamic views disagree — the *toolchain* is suspect, which is worse
  than a bad schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import DIVERGENCE_CODES, VER005, Diagnostic, Severity
from ..faults import FaultPlan, RetryPolicy
from ..mem import CapacityPlan
from ..obs import Instrumentation, resolve
from ..schema import SCHEMA_VERSION, check_schema
from ..trace import ReferenceTensor, Trace, build_reference_tensor
from .abstract import interpret_schedule
from .certificate import certificate_of, check_certificate
from .differential import run_differential

__all__ = [
    "CertifyReport",
    "certify_schedule",
    "certify_workload",
    "EXIT_CERT_CLEAN",
    "EXIT_CERT_WARNINGS",
    "EXIT_CERT_ERRORS",
    "EXIT_CERT_DIVERGENCE",
]

EXIT_CERT_CLEAN = 0
EXIT_CERT_WARNINGS = 1
EXIT_CERT_ERRORS = 2
EXIT_CERT_DIVERGENCE = 3


@dataclass
class CertifyReport:
    """Everything one certification run established (or refuted)."""

    label: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)
    facts: dict = field(default_factory=dict)
    certified_data: int = 0

    @property
    def n_errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return sum(
            1 for d in self.diagnostics if d.severity == Severity.WARNING
        )

    @property
    def n_infos(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == Severity.INFO)

    @property
    def diverged(self) -> bool:
        """A certificate or the static/dynamic comparison failed."""
        return any(
            d.severity == Severity.ERROR and d.code in DIVERGENCE_CODES
            for d in self.diagnostics
        )

    @property
    def exit_code(self) -> int:
        if self.diverged:
            return EXIT_CERT_DIVERGENCE
        if self.n_errors:
            return EXIT_CERT_ERRORS
        if self.n_warnings:
            return EXIT_CERT_WARNINGS
        return EXIT_CERT_CLEAN

    def to_dict(self) -> dict:
        return {
            "kind": "certify-report",
            "schema_version": SCHEMA_VERSION,
            "label": self.label,
            "checks": list(self.checks),
            "certified_data": self.certified_data,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "n_errors": self.n_errors,
            "n_warnings": self.n_warnings,
            "n_infos": self.n_infos,
            "diverged": self.diverged,
            "exit_code": self.exit_code,
            "facts": self.facts,
        }

    @staticmethod
    def from_dict(payload: dict) -> "CertifyReport":
        """Inverse of :meth:`to_dict` (with schema-version checking).

        Severity counts, divergence and the exit code are recomputed
        from the diagnostics, not trusted from the payload.
        """
        check_schema(payload, "certify-report")
        return CertifyReport(
            label=str(payload["label"]),
            diagnostics=[
                Diagnostic.from_dict(d) for d in payload.get("diagnostics", [])
            ],
            checks=[str(c) for c in payload.get("checks", [])],
            facts=dict(payload.get("facts", {})),
            certified_data=int(payload.get("certified_data", 0)),
        )

    def summary(self) -> str:
        verdict = {
            EXIT_CERT_CLEAN: "certified",
            EXIT_CERT_WARNINGS: "certified with warnings",
            EXIT_CERT_ERRORS: "rejected (static errors)",
            EXIT_CERT_DIVERGENCE: "rejected (divergence)",
        }[self.exit_code]
        return (
            f"certify {self.label}: {verdict} — {self.n_errors} error(s), "
            f"{self.n_warnings} warning(s) over {len(self.checks)} check(s)"
        )


def certify_schedule(
    schedule,
    trace: Trace,
    model,
    *,
    tensor: ReferenceTensor | None = None,
    capacity: CapacityPlan | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    link_budget: float | None = None,
    hotspot_factor: float | None = None,
    require_certificate: bool = False,
    differential: bool = True,
    check_theory: bool = True,
    label: str | None = None,
    instrument: Instrumentation | None = None,
) -> CertifyReport:
    """Run abstract interpretation, certificate checking and the
    differential gate over one schedule; see the module docstring for
    the exit-code contract.

    ``tensor`` is derived from ``trace`` + the schedule's windows when
    not supplied.  ``differential=False`` skips the replay (purely
    static certification, e.g. when only the proofs are wanted).
    """
    obs = resolve(instrument)
    windows = schedule.windows
    if windows.n_steps != trace.n_steps:
        raise ValueError("schedule windows do not span the trace")
    if trace.n_data != schedule.n_data:
        raise ValueError("schedule and trace disagree on n_data")
    if tensor is None:
        tensor = build_reference_tensor(trace, windows)

    report = CertifyReport(
        label=label or f"{schedule.method} ({schedule.n_data} data, "
        f"{schedule.n_windows} windows)"
    )
    with obs.span(
        "verify.certify",
        n_data=schedule.n_data,
        n_windows=schedule.n_windows,
        faulted=faults is not None and not faults.is_empty,
    ):
        with obs.span("verify.abstract"):
            prediction, diags = interpret_schedule(
                schedule,
                tensor,
                model,
                trace=trace,
                capacity=capacity,
                faults=faults,
                retry=retry,
                link_budget=link_budget,
                hotspot_factor=hotspot_factor,
            )
        report.checks.append("abstract-interpretation")
        report.diagnostics.extend(diags)
        if prediction is not None:
            report.facts["static"] = prediction.to_dict()

        with obs.span("verify.certificates"):
            cert_diags = check_certificate(
                schedule,
                tensor,
                model,
                faults=faults,
                require=require_certificate,
                check_theory=check_theory,
            )
        report.checks.append("certificates")
        report.diagnostics.extend(cert_diags)
        cert = certificate_of(schedule)
        if cert is not None and not any(
            d.severity == Severity.ERROR for d in cert_diags
        ):
            report.certified_data = schedule.n_data
        elif cert is None and not require_certificate:
            report.diagnostics.append(
                Diagnostic(
                    code=VER005,
                    severity=Severity.INFO,
                    message=(
                        "no optimality certificate attached; capacity, "
                        "reachability and the differential gate still "
                        "hold, but optimality is unproven"
                    ),
                    hint="schedule with gomcds(..., certify=True)",
                )
            )

        if differential and prediction is not None:
            with obs.span("verify.differential"):
                diff_diags, facts = run_differential(
                    schedule, trace, tensor, model, prediction,
                    capacity=capacity, faults=faults, retry=retry,
                )
            report.checks.append("differential")
            report.diagnostics.extend(diff_diags)
            report.facts.update(facts)
        obs.count("verify.diagnostics", len(report.diagnostics))
    return report


def certify_workload(
    bench: int,
    size: int,
    topology,
    scheduler: str = "GOMCDS",
    seed: int = 1998,
    capacity_multiplier: float = 2.0,
    faults: FaultPlan | None = None,
    *,
    instrument: Instrumentation | None = None,
    **kwargs,
) -> CertifyReport:
    """Certify a named paper benchmark end to end (the CI gating path).

    Schedules the workload with the requested algorithm — emitting an
    optimality certificate when the scheduler supports one (GOMCDS, and
    the fault-aware rescheduler when ``faults`` is given) — then runs
    the full pillar stack.
    """
    from ..core import CostModel, reschedule_around_faults, scheduler_spec
    from ..workloads import benchmark

    workload = benchmark(bench, size, topology, seed=seed)
    tensor = workload.reference_tensor()
    model = CostModel(topology)
    capacity = CapacityPlan.paper_rule(
        workload.n_data, topology.n_procs, multiplier=capacity_multiplier
    )
    name = scheduler.upper()
    if faults is not None and not faults.is_empty:
        schedule = reschedule_around_faults(
            tensor, model, faults, capacity, certify=True,
            instrument=instrument,
        )
    elif name == "GOMCDS":
        schedule = scheduler_spec(name)(
            tensor, model, capacity, certify=True, instrument=instrument
        )
    else:
        schedule = scheduler_spec(name)(
            tensor, model, capacity, instrument=instrument
        )
    return certify_schedule(
        schedule,
        workload.trace,
        model,
        tensor=tensor,
        capacity=capacity,
        faults=faults,
        label=f"bench {bench} (size {size}, {schedule.method})",
        instrument=instrument,
        **kwargs,
    )
