"""Cross-validation of decision provenance against the certifier.

A :class:`~repro.obs.provenance.DecisionLog` is a *claim* about a solve:
these are the centers I chose, this is why, and these per-cell costs sum
to the schedule's :class:`~repro.core.evaluate.CostBreakdown` exactly.
:func:`check_provenance_log` audits that claim against independent
ground truth:

1. **identity** — the log's center matrix must equal the schedule's,
   cell for cell (a log explaining a different schedule is worse than
   no log);
2. **action structure** — ``hold`` exactly when the center repeats,
   window 0 only ``place``/``detour``;
3. **live ranges** — the log's run-length encoding must match the
   abstract interpreter's (:func:`repro.verify.abstract.interpret_schedule`)
   residency intervals;
4. **attribution** — the log's reconstructed cost breakdown must equal
   :func:`repro.core.evaluate.evaluate_schedule` **bit-identically**
   (exact float ``==``, no tolerance).

Every divergence is a ``VER012`` :class:`~repro.diagnostics.Diagnostic`
(error severity; the certify CLI convention maps divergence codes to
exit 3).  Per-check emission is capped so a corrupted log cannot flood
a report.
"""

from __future__ import annotations

import numpy as np

from ..core.evaluate import evaluate_schedule
from ..diagnostics import VER012, Diagnostic, Severity
from .abstract import interpret_schedule

__all__ = ["check_provenance_log", "MAX_PROVENANCE_DIAGNOSTICS"]

#: Per-check emission cap — a corrupted log fails loudly, not endlessly.
MAX_PROVENANCE_DIAGNOSTICS = 8

_HOLD = 1  # ACTION_HOLD; mirrored here to keep verify importable without obs
_W0_ACTIONS = (0, 4)  # place, detour


def _diag(message, datum=None, window=None, hint=None) -> Diagnostic:
    return Diagnostic(
        code=VER012,
        severity=Severity.ERROR,
        message=message,
        datum=datum,
        window=window,
        hint=hint,
    )


def _check_identity(log, schedule, out: list) -> bool:
    """Centers must match the shipped schedule; False = unusable log."""
    centers = np.asarray(schedule.centers)
    if log.centers.shape != centers.shape:
        out.append(
            _diag(
                f"decision log shape {log.centers.shape} does not match "
                f"the schedule's {centers.shape}; the log explains a "
                "different problem",
                hint="re-record provenance for this schedule",
            )
        )
        return False
    diff = np.argwhere(log.centers != centers)
    for d, w in diff[:MAX_PROVENANCE_DIAGNOSTICS]:
        out.append(
            _diag(
                f"decision log claims center {int(log.centers[d, w])} but "
                f"the schedule placed this datum on {int(centers[d, w])}",
                datum=int(d),
                window=int(w),
            )
        )
    return len(diff) == 0


def _check_actions(log, out: list) -> None:
    """Action codes must be consistent with the center matrix itself."""
    emitted = 0
    for d in range(log.n_data):
        if int(log.actions[d, 0]) not in _W0_ACTIONS:
            emitted += 1
            if emitted <= MAX_PROVENANCE_DIAGNOSTICS:
                out.append(
                    _diag(
                        "window 0 must be a placement (or detour), not "
                        f"'{_action_name(log, d, 0)}'",
                        datum=d,
                        window=0,
                    )
                )
        for w in range(1, log.n_windows):
            held = int(log.actions[d, w]) == _HOLD
            same = log.centers[d, w] == log.centers[d, w - 1]
            if held == bool(same):
                continue
            emitted += 1
            if emitted <= MAX_PROVENANCE_DIAGNOSTICS:
                verb = "claims a hold but the center moved" if held else (
                    f"claims '{_action_name(log, d, w)}' but the center "
                    "did not change"
                )
                out.append(_diag(f"decision log {verb}", datum=d, window=w))


def _action_name(log, d: int, w: int) -> str:
    from ..obs.provenance import ACTION_NAMES

    code = int(log.actions[d, w])
    return ACTION_NAMES[code] if 0 <= code < len(ACTION_NAMES) else str(code)


def _check_live_ranges(log, prediction, out: list) -> None:
    predicted = prediction.live_ranges
    claimed = log.live_ranges()
    emitted = 0
    for d, (want, got) in enumerate(zip(predicted, claimed)):
        if want == got:
            continue
        emitted += 1
        if emitted > MAX_PROVENANCE_DIAGNOSTICS:
            break
        out.append(
            _diag(
                f"residency disagrees with the abstract interpreter: "
                f"log says {got}, interpreter derives {want}",
                datum=d,
            )
        )


def _check_attribution(log, schedule, tensor, model, out: list) -> None:
    truth = evaluate_schedule(schedule, tensor, model)
    claimed = log.attribution()
    for name in ("reference_cost", "movement_cost", "total"):
        want = getattr(truth, name)
        got = getattr(claimed, name)
        if got == want:  # exact — the attribution invariant is bit-level
            continue
        out.append(
            _diag(
                f"attributed {name} {got!r} does not reconstruct the "
                f"evaluator's {want!r} bit-identically "
                f"(delta {got - want:g})",
                hint="the sum of per-datum attributed costs must equal "
                "evaluate_schedule() exactly; see docs/explain.md",
            )
        )


def check_provenance_log(
    log,
    schedule,
    tensor,
    model,
    *,
    prediction=None,
) -> list[Diagnostic]:
    """Audit a decision log against the schedule it claims to explain.

    Parameters
    ----------
    log:
        The :class:`~repro.obs.provenance.DecisionLog` under audit.
    schedule, tensor, model:
        The solve it explains — ground truth for centers, live ranges
        (via the abstract interpreter) and the cost breakdown.
    prediction:
        Optional pre-computed :class:`~repro.verify.abstract.StaticPrediction`
        for the same (schedule, tensor, model); derived internally when
        omitted.

    Returns
    -------
    ``list[Diagnostic]`` — empty when the log checks out, ``VER012``
    entries (error severity) on any divergence.
    """
    diagnostics: list[Diagnostic] = []
    if not _check_identity(log, schedule, diagnostics):
        return diagnostics
    _check_actions(log, diagnostics)
    if prediction is None:
        prediction, _ = interpret_schedule(schedule, tensor, model)
    if prediction is not None:
        _check_live_ranges(log, prediction, diagnostics)
    _check_attribution(log, schedule, tensor, model, diagnostics)
    return diagnostics
