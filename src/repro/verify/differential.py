"""The static-vs-dynamic differential gate.

Three independent implementations claim to know what a schedule costs:
the abstract interpreter (:mod:`.abstract`), the analytic evaluator
(:func:`repro.core.evaluate_schedule`) and the replay simulator
(:func:`repro.sim.replay_schedule`).  They share almost no code — the
interpreter routes links, the evaluator gathers a distance matrix, the
simulator executes a machine model — so agreement between all three is
strong evidence the whole stack is consistent, and *any* divergence
means one of them is wrong.  This module runs the replay with spatial
telemetry and compares:

* cost totals (``VER008``): static vs analytic vs replayed, including
  the per-window series and the degraded-mode buckets under faults;
* per-window per-link volumes (``VER009``): the interpreter's x-y
  traffic against the replay's :class:`~repro.obs.SpatialTrace` — these
  must agree to the bit for integer-valued volumes;
* delivery accounting (``VER010``): fetch/local/move/evacuation/retry
  counters and the delivered + dropped + unreachable == fetches
  identity.
"""

from __future__ import annotations

import numpy as np

from ..core import CostModel, evaluate_schedule
from ..diagnostics import VER008, VER009, VER010, Diagnostic, Severity
from ..faults import FaultPlan, RetryPolicy
from ..grid import link_key
from ..mem import CapacityPlan
from ..obs import Instrumentation
from ..sim import replay_schedule
from ..trace import ReferenceTensor, Trace
from .abstract import MAX_DIAGNOSTICS_PER_CHECK, StaticPrediction, _emit

__all__ = ["run_differential"]

#: absolute tolerance for cost comparisons; link volumes are compared
#: exactly (they are sums of the same multiset for integer volumes).
_COST_TOL = 1e-6
_LINK_TOL = 1e-9


def run_differential(
    schedule,
    trace: Trace,
    tensor: ReferenceTensor,
    model: CostModel,
    prediction: StaticPrediction,
    capacity: CapacityPlan | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> tuple[list[Diagnostic], dict]:
    """Replay the schedule and fail on any static/dynamic divergence.

    Returns ``(diagnostics, facts)`` where ``facts`` carries the ground
    truth observed (replay totals, delivery counters, link traffic) for
    the certify report.  Under faults the replay runs without runtime
    capacity enforcement — the static layer owns the capacity check
    (``VER001``), and degraded relocation order would otherwise make
    transient occupancy an execution artifact the interpreter cannot
    (and should not) model.
    """
    diagnostics: list[Diagnostic] = []
    faulted = faults is not None and not faults.is_empty

    instr = Instrumentation.started(spatial=True)
    report = replay_schedule(
        trace,
        schedule,
        model,
        capacity=None if faulted else capacity,
        faults=faults,
        retry=retry,
        instrument=instr,
    )
    spatial = instr.spatial.traces[-1] if instr.spatial.traces else None

    facts = {
        "replay": report.to_dict(),
        "static": prediction.to_dict(),
    }

    _compare_costs(prediction, report, schedule, tensor, model, faulted,
                   diagnostics, facts)
    if spatial is not None:
        _compare_links(prediction, spatial, model.topology, diagnostics)
    _compare_accounting(prediction, report, trace, faulted, diagnostics)
    return diagnostics, facts


def _cost_diverged(name, static_value, dynamic_value, diagnostics, extra=""):
    if abs(static_value - dynamic_value) <= _COST_TOL * (
        1.0 + abs(dynamic_value)
    ):
        return False
    _emit(
        diagnostics,
        Diagnostic(
            code=VER008,
            severity=Severity.ERROR,
            message=(
                f"static {name} {static_value:g} diverges from the "
                f"replayed ground truth {dynamic_value:g}{extra}"
            ),
        ),
    )
    return True


def _compare_costs(
    prediction, report, schedule, tensor, model, faulted, diagnostics, facts
):
    """VER008: every implementation must agree on what the run costs."""
    _cost_diverged(
        "reference cost", prediction.reference_cost, report.reference_cost,
        diagnostics,
    )
    _cost_diverged(
        "movement cost", prediction.movement_cost, report.movement_cost,
        diagnostics,
    )
    if faulted:
        _cost_diverged(
            "evacuation cost", prediction.evacuation_cost,
            report.evacuation_cost, diagnostics,
        )
        _cost_diverged(
            "retry cost", prediction.retry_cost, report.retry_cost,
            diagnostics,
        )
    else:
        # the analytic evaluator is a third, independent implementation
        analytic = evaluate_schedule(schedule, tensor, model)
        facts["analytic"] = analytic.to_dict()
        _cost_diverged(
            "total", prediction.total, analytic.total, diagnostics,
            extra=" (analytic evaluator)",
        )
        _cost_diverged(
            "total", prediction.total,
            report.reference_cost + report.movement_cost, diagnostics,
        )

    per_window = np.asarray(report.per_window_cost, dtype=np.float64)
    static_pw = np.asarray(prediction.per_window_cost, dtype=np.float64)
    if static_pw.shape != per_window.shape:
        _emit(
            diagnostics,
            Diagnostic(
                code=VER008,
                severity=Severity.ERROR,
                message=(
                    f"per-window cost series have different lengths "
                    f"({static_pw.shape} static vs {per_window.shape} "
                    "replayed)"
                ),
            ),
        )
        return
    off = np.abs(static_pw - per_window) > _COST_TOL * (1.0 + per_window)
    for w in np.nonzero(off)[0]:
        _emit(
            diagnostics,
            Diagnostic(
                code=VER008,
                severity=Severity.ERROR,
                message=(
                    f"static window cost {static_pw[w]:g} diverges from "
                    f"the replayed {per_window[w]:g}"
                ),
                window=int(w),
            ),
        )


def _compare_links(prediction, spatial, topology, diagnostics):
    """VER009: static x-y traffic must equal the SpatialTrace, bit for bit."""
    n_windows = max(len(prediction.window_links), spatial.n_windows)
    emitted = 0
    for w in range(n_windows):
        static_links = (
            prediction.window_links[w]
            if w < len(prediction.window_links)
            else {}
        )
        dynamic_links = (
            spatial.window_links[w] if w < spatial.n_windows else {}
        )
        for link in sorted(set(static_links) | set(dynamic_links)):
            lhs = static_links.get(link, 0.0)
            rhs = dynamic_links.get(link, 0.0)
            if abs(lhs - rhs) <= _LINK_TOL:
                continue
            emitted += 1
            if emitted > MAX_DIAGNOSTICS_PER_CHECK:
                return
            _emit(
                diagnostics,
                Diagnostic(
                    code=VER009,
                    severity=Severity.ERROR,
                    message=(
                        f"link {link_key(link, topology.shape)} volume "
                        f"diverges: static {lhs:g} vs replayed {rhs:g}"
                    ),
                    window=w,
                    processor=int(link[0]),
                ),
            )


def _count_diverged(name, static_value, dynamic_value, diagnostics, window=None):
    if int(static_value) == int(dynamic_value):
        return False
    _emit(
        diagnostics,
        Diagnostic(
            code=VER010,
            severity=Severity.ERROR,
            message=(
                f"static {name} count {int(static_value)} diverges from "
                f"the replayed {int(dynamic_value)}"
            ),
            window=window,
        ),
    )
    return True


def _compare_accounting(prediction, report, trace, faulted, diagnostics):
    """VER010: the delivery ledger must balance, statically and dynamically."""
    _count_diverged("fetch", prediction.n_fetches, report.n_fetches,
                    diagnostics)
    _count_diverged("local-fetch", prediction.n_local_fetches,
                    report.n_local_fetches, diagnostics)
    _count_diverged("delivered", prediction.n_delivered, report.n_delivered,
                    diagnostics)
    _count_diverged("movement", prediction.n_moves, report.n_moves,
                    diagnostics)
    if faulted:
        _count_diverged("unreachable", prediction.n_unreachable,
                        report.n_unreachable, diagnostics)
        _count_diverged("dropped", prediction.n_dropped, report.n_dropped,
                        diagnostics)
        _count_diverged("retry", prediction.n_retries, report.n_retries,
                        diagnostics)
        _count_diverged("skipped-move", prediction.n_skipped_moves,
                        report.n_skipped_moves, diagnostics)
        _count_diverged("evacuation", prediction.n_evacuated,
                        report.n_evacuated, diagnostics)
        _count_diverged("lost-datum", prediction.n_lost, report.n_lost,
                        diagnostics)
    if report.n_fetches != len(trace.steps):
        _emit(
            diagnostics,
            Diagnostic(
                code=VER010,
                severity=Severity.ERROR,
                message=(
                    f"replay served {report.n_fetches} fetches but the "
                    f"trace holds {len(trace.steps)} reference events"
                ),
            ),
        )
    if not report.accounts_for_all_fetches():
        _emit(
            diagnostics,
            Diagnostic(
                code=VER010,
                severity=Severity.ERROR,
                message=(
                    "replay delivery ledger does not balance: delivered "
                    f"{report.n_delivered} + dropped {report.n_dropped} "
                    f"+ unreachable {report.n_unreachable} != fetches "
                    f"{report.n_fetches}"
                ),
            ),
        )
